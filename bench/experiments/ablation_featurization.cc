/**
 * @file
 * Ablation of the classifier featurization (DESIGN.md decision #6) and
 * of the attacker's measurement primitive.
 *
 * Featurization: the pipeline feeds the CNN-LSTM two channels per time
 * bucket — bucket mean (coarse profile) and sub-bucket dip depth (fine
 * interrupt texture). This experiment measures each channel alone, the
 * combination, and the effect of dropping winsorization.
 *
 * Primitive: compares the loop-counting trace against the gap-trace
 * attacker (per-period stolen time from CLOCK_MONOTONIC polling), the
 * paper's Section 5.2 observation that different attack code sees the
 * same channel.
 */

#include <algorithm>
#include <cstdio>

#include "base/stopwatch.hh"
#include "base/table.hh"
#include "experiments.hh"
#include "stats/descriptive.hh"

namespace bigfish::bench {

namespace {

/** Builds a dataset with a configurable featurization. */
ml::Dataset
makeDataset(const attack::TraceSet &traces, std::size_t feature_len,
            int num_classes, bool mean_channel, bool dip_channel,
            bool winsorized)
{
    ml::Dataset data;
    const auto means = traces.toFeatures(feature_len);
    const auto dips = traces.toDipFeatures(feature_len);
    const auto labels = traces.labels();
    for (std::size_t i = 0; i < means.size(); ++i) {
        std::vector<double> x;
        if (mean_channel) {
            auto m = winsorized ? stats::winsorize(means[i]) : means[i];
            const auto z = stats::zscore(m);
            x.insert(x.end(), z.begin(), z.end());
        }
        if (dip_channel) {
            const auto z = stats::zscore(dips[i]);
            x.insert(x.end(), z.begin(), z.end());
        }
        data.add(std::move(x), labels[i]);
    }
    data.numClasses = std::max(data.numClasses, num_classes);
    return data;
}

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    core::CollectionConfig config = core::collectionForScale(scale);
    config.browser = web::BrowserProfile::chrome();
    const web::SiteCatalog catalog(scale.sites, 7);
    const core::TraceCollector collector(config);
    auto collected =
        collector.collectClosedWorld(catalog, scale.tracesPerSite);
    if (!collected.isOk())
        return collected.status();
    const auto &traces = collected.value();

    ml::EvalConfig eval;
    eval.folds = scale.folds;
    eval.seed = scale.seed;
    eval.topK = scale.topK;

    struct Variant
    {
        const char *name;
        bool mean, dip, winsor;
        std::size_t channels;
    };
    const Variant variants[] = {
        {"mean + dip (default)", true, true, true, 2},
        {"mean only", true, false, true, 1},
        {"dip only", false, true, true, 1},
        {"mean + dip, no winsorize", true, true, false, 2},
    };

    // This experiment drives ml::crossValidate() directly (it ablates
    // the featurization below toDataset()), so it meters the whole
    // cross-validation itself and books it under "train" — the eval
    // pass is a rounding error next to the fits, and the fold-level
    // split now lives in the stage graph the main pipeline runs.
    Table table({"featurization", "top-1", "top-k"});
    int variant_index = 0;
    for (const auto &v : variants) {
        const auto data = makeDataset(traces, scale.featureLen,
                                      scale.sites, v.mean, v.dip,
                                      v.winsor);
        auto params = ml::CnnLstmParams::traceDefaults();
        params.inputChannels = v.channels;
        ProcessCpuStopwatch cv_cpu;
        Stopwatch cv_wall;
        const auto result =
            ml::crossValidate(ml::cnnLstmFactory(params), data, eval);
        artifact.addMetric("variant" + std::to_string(variant_index++) +
                               "_top1",
                           result.top1Mean);
        artifact.addPhaseSeconds("train", cv_cpu.seconds(),
                                 cv_wall.seconds());
        table.addRow({v.name,
                      formatPercentPm(result.top1Mean, result.top1Std),
                      formatPercent(result.topKMean)});
        std::printf("finished: %s\n", v.name);
    }
    std::printf("\nFEATURIZATION ABLATION (chance = %.1f%%)\n%s",
                100.0 / scale.sites, table.render().c_str());

    // Measurement-primitive comparison: loop counter vs gap trace.
    attack::TraceSet gap_traces;
    for (SiteId id = 0; id < catalog.size(); ++id) {
        for (int run_index = 0; run_index < scale.tracesPerSite;
             ++run_index) {
            const auto timeline =
                collector.synthesizeTimeline(catalog.site(id), run_index);
            auto gap = attack::collectGapTrace(timeline,
                                               config.effectivePeriod());
            if (!gap.isOk())
                return gap.status();
            attack::Trace t = std::move(gap).value();
            t.siteId = id;
            t.label = id;
            gap_traces.add(std::move(t));
        }
    }
    const auto gap_data = core::toDataset(gap_traces, scale.featureLen,
                                          scale.sites);
    ProcessCpuStopwatch prim_cpu;
    Stopwatch prim_wall;
    const auto gap_result = ml::crossValidate(
        core::classifierForScale(scale), gap_data, eval);
    const auto loop_data =
        core::toDataset(traces, scale.featureLen, scale.sites);
    const auto loop_result = ml::crossValidate(
        core::classifierForScale(scale), loop_data, eval);
    artifact.addPhaseSeconds("train", prim_cpu.seconds(),
                             prim_wall.seconds());

    Table prim({"measurement primitive", "top-1", "top-k"});
    prim.addRow({"loop counter (throughput)",
                 formatPercentPm(loop_result.top1Mean,
                                 loop_result.top1Std),
                 formatPercent(loop_result.topKMean)});
    prim.addRow({"monotonic-clock gaps (stolen time)",
                 formatPercentPm(gap_result.top1Mean, gap_result.top1Std),
                 formatPercent(gap_result.topKMean)});
    std::printf("\nMEASUREMENT-PRIMITIVE COMPARISON\n%s",
                prim.render().c_str());
    std::printf("\nexpected: both primitives fingerprint websites — the "
                "channel is the interrupt\nactivity itself, not any one "
                "way of observing it (Section 5.2).\n");
    artifact.addMetric("loop_primitive_top1", loop_result.top1Mean);
    artifact.addMetric("gap_primitive_top1", gap_result.top1Mean);
    return artifact;
}

} // namespace

void
registerAblationFeaturization(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "ablation_featurization";
    d.title = "classifier input channels & measurement primitives";
    d.paperReference = "DESIGN.md decision #6 (not a paper table)";
    d.schema = core::commonScaleSchema();
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
