/**
 * @file
 * Table 2: controlled comparison on one machine (Chrome on Linux): the
 * loop-counting and sweep-counting attackers under (a) no noise,
 * (b) the cache-sweep countermeasure of Shusterman et al., and (c) the
 * spurious-interrupt countermeasure introduced by the paper.
 *
 * Expected shape (paper): loop 95.7 / 92.6 / 62.0; sweep 78.4 / 76.2 /
 * 55.3 — interrupt noise devastates both attacks while cache noise
 * barely registers, and the loop attacker dominates throughout.
 *
 * The old table2_noise binary also ran the Section 4.2 background-noise
 * and Section 6.2 overhead experiments; those are now their own
 * registrations (background_noise, defense_overhead).
 */

#include <cstdio>

#include "base/table.hh"
#include "experiments.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);
    const auto pipeline = core::pipelineForScale(scale);

    core::CollectionConfig base = core::collectionForScale(scale);
    base.machine = sim::MachineConfig::linuxDesktop();
    base.browser = web::BrowserProfile::chrome();

    const char *attackers[] = {"loop-counting", "sweep-counting"};
    const attack::AttackerKind kinds[] = {
        attack::AttackerKind::LoopCounting,
        attack::AttackerKind::SweepCounting};

    core::CollectionConfig cache_noise = base;
    cache_noise.cacheSweepNoise = true;
    core::CollectionConfig irq_noise = base;
    irq_noise.spuriousInterruptNoise = true;
    const struct
    {
        const char *name;
        const char *slug;
        const core::CollectionConfig &config;
    } variants[] = {
        {"no noise", "none", base},
        {"cache-sweep noise", "cache_noise", cache_noise},
        {"interrupt noise", "irq_noise", irq_noise},
    };

    // Loop- and sweep-counting attack the same victim under each noise
    // condition: shared-timeline collection runs the expensive synthesis
    // once per condition instead of once per (attacker, condition).
    double acc[2][3];
    for (std::size_t v = 0; v < 3; ++v) {
        auto shared = core::runFingerprintingShared(variants[v].config,
                                                    kinds, pipeline);
        if (!shared.isOk())
            return shared.status();
        for (std::size_t a = 0; a < 2; ++a) {
            artifact.addResult(std::string(attackers[a]) + "_" +
                                   variants[v].slug,
                               shared.value()[a]);
            acc[a][v] = shared.value()[a].closedWorld.top1Mean;
        }
        std::printf("finished loop+sweep / %s\n", variants[v].name);
    }

    const auto expected = [&ctx](const std::string &metric) {
        return formatPercent(
            ctx.descriptor->expectedValue(metric).value_or(0.0));
    };
    Table table({"attack", "no noise (paper/meas)",
                 "cache-sweep noise (paper/meas)",
                 "interrupt noise (paper/meas)"});
    for (std::size_t a = 0; a < 2; ++a) {
        const std::string name = attackers[a];
        table.addRow({name,
                      expected(name + "_none_top1") + " / " +
                          formatPercent(acc[a][0]),
                      expected(name + "_cache_noise_top1") + " / " +
                          formatPercent(acc[a][1]),
                      expected(name + "_irq_noise_top1") + " / " +
                          formatPercent(acc[a][2])});
    }
    std::printf("\n%s", table.render().c_str());
    std::printf("\nexpected shape: interrupt noise >> cache noise for "
                "both attacks;\nloop-counting > sweep-counting in every "
                "column.\n");
    return artifact;
}

} // namespace

void
registerTable2Noise(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "table2_noise";
    d.title = "attacks under noise-injection countermeasures";
    d.paperReference = "Table 2 (Chrome on Linux, closed world)";
    d.schema = core::commonScaleSchema();
    d.expected = {
        {"loop-counting_none_top1", 0.957},
        {"loop-counting_cache_noise_top1", 0.926},
        {"loop-counting_irq_noise_top1", 0.620},
        {"sweep-counting_none_top1", 0.784},
        {"sweep-counting_cache_noise_top1", 0.762},
        {"sweep-counting_irq_noise_top1", 0.553},
    };
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
