/**
 * @file
 * Section 6.2: page-load overhead of the spurious-interrupt
 * countermeasure.
 *
 * Expected shape (paper): average page-load time grows from 3.12 s to
 * 3.61 s — about +15.7% — when the defense floods the victim's cores
 * with spurious interrupts.
 */

#include <cstdio>

#include "defense/noise.hh"
#include "experiments.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    Rng rng(scale.seed);
    const auto overlay = defense::spuriousInterruptOverlay(
        15 * kSec, defense::SpuriousInterruptParams{}, rng);
    const double overhead =
        defense::loadTimeOverheadFactor(overlay, 4) - 1.0;

    std::printf("\ncountermeasure page-load overhead:\n");
    std::printf("  paper:    3.12 s -> 3.61 s (+15.7%%)\n");
    std::printf("  measured: +%.1f%%\n", overhead * 100.0);

    artifact.addMetric("load_overhead_factor", overhead);
    return artifact;
}

} // namespace

void
registerDefenseOverhead(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "defense_overhead";
    d.title = "page-load cost of the spurious-interrupt countermeasure";
    d.paperReference = "Section 6.2 (3.12 s -> 3.61 s, +15.7%)";
    d.schema = core::commonScaleSchema();
    d.expected = {
        {"load_overhead_factor", 0.157},
    };
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
