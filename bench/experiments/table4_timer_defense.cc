/**
 * @file
 * Table 4: the loop-counting attacker against different timers —
 * Chrome's jittered 0.1 ms timer, a Tor-style quantized 100 ms timer,
 * and the paper's randomized timer at period lengths P = 5, 100 and
 * 500 ms.
 *
 * Expected shape (paper): jittered 96.6/99.4; quantized 86.0/96.9 —
 * still far above chance; randomized 1.0/5.1, 1.9/6.9, 5.2/13.7 —
 * within a few points of a blind guess even when the attacker adapts
 * its period length.
 */

#include <cstdio>

#include "base/table.hh"
#include "experiments.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);
    const auto pipeline = core::pipelineForScale(scale);

    struct RowSpec
    {
        const char *timer;
        const char *a_ms;
        int period_ms;
        timers::TimerSpec spec;
    };
    const RowSpec rows[] = {
        {"jittered", "0.1", 5, timers::TimerSpec::jittered(100 * kUsec)},
        {"quantized", "100", 5,
         timers::TimerSpec::quantized(100 * kMsec)},
        {"randomized", "1", 5, timers::TimerSpec::randomizedDefense()},
        {"randomized", "1", 100, timers::TimerSpec::randomizedDefense()},
        {"randomized", "1", 500, timers::TimerSpec::randomizedDefense()},
    };

    const auto expected = [&ctx](const std::string &metric) {
        return formatPercent(
            ctx.descriptor->expectedValue(metric).value_or(0.0));
    };
    Table table({"timer", "A (ms)", "P (ms)", "top-1 paper", "top-1 meas",
                 "top-5 paper", "top-5 meas"});
    for (const auto &row : rows) {
        core::CollectionConfig config = core::collectionForScale(scale);
        config.browser = web::BrowserProfile::nativePython();
        config.timerOverride = row.spec;
        config.period = row.period_ms * kMsec;
        auto result = core::runFingerprinting(config, pipeline);
        if (!result.isOk())
            return result.status();
        const std::string label = std::string(row.timer) + "_p" +
                                  std::to_string(row.period_ms);
        artifact.addResult(label, result.value());
        table.addRow({row.timer, row.a_ms, std::to_string(row.period_ms),
                      expected(label + "_top1"),
                      formatPercentPm(result.value().closedWorld.top1Mean,
                                      result.value().closedWorld.top1Std),
                      expected(label + "_top5"),
                      formatPercent(
                          result.value().closedWorld.topKMean)});
        std::printf("finished: %s timer, P = %d ms\n", row.timer,
                    row.period_ms);
    }

    std::printf("\n%s", table.render().c_str());
    std::printf("\nchance: top-1 %.1f%%, top-5 %.1f%%\n",
                100.0 / scale.sites, 500.0 / scale.sites);
    std::printf("expected shape: quantization alone leaves the attack far "
                "above chance;\nthe randomized timer collapses it to "
                "near-chance at every period length.\n");
    return artifact;
}

} // namespace

void
registerTable4TimerDefense(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "table4_timer_defense";
    d.title = "the randomized-timer countermeasure";
    d.paperReference =
        "Table 4 (Python attacker; accuracy vs timer and period P)";
    d.schema = core::commonScaleSchema();
    d.expected = {
        {"jittered_p5_top1", 0.966},    {"jittered_p5_top5", 0.994},
        {"quantized_p5_top1", 0.860},   {"quantized_p5_top5", 0.969},
        {"randomized_p5_top1", 0.010},  {"randomized_p5_top5", 0.051},
        {"randomized_p100_top1", 0.019}, {"randomized_p100_top5", 0.069},
        {"randomized_p500_top1", 0.052}, {"randomized_p500_top5", 0.137},
    };
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
