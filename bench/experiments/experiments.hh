/**
 * @file
 * Registration entry points for every experiment in the suite.
 *
 * Each paper table, figure and ablation lives in its own TU in this
 * directory as an ExperimentDescriptor (schema + expected numbers + run
 * function) and registers itself here; registerAllExperiments() is what
 * the `bigfish` CLI and the registry tests call. The old per-experiment
 * main()s are gone — the CLI is the only binary entry point.
 */

#ifndef BF_BENCH_EXPERIMENTS_HH
#define BF_BENCH_EXPERIMENTS_HH

#include "core/registry.hh"

namespace bigfish::bench {

void registerTable1Fingerprinting(core::ExperimentRegistry &registry);
void registerTable2Noise(core::ExperimentRegistry &registry);
void registerTable3Isolation(core::ExperimentRegistry &registry);
void registerTable4TimerDefense(core::ExperimentRegistry &registry);
void registerBackgroundNoise(core::ExperimentRegistry &registry);
void registerDefenseOverhead(core::ExperimentRegistry &registry);
void registerFig3Traces(core::ExperimentRegistry &registry);
void registerFig4Correlation(core::ExperimentRegistry &registry);
void registerFig5InterruptTime(core::ExperimentRegistry &registry);
void registerGapAttribution(core::ExperimentRegistry &registry);
void registerFig6GapDistributions(core::ExperimentRegistry &registry);
void registerFig7TimerOutputs(core::ExperimentRegistry &registry);
void registerFig8LoopDurations(core::ExperimentRegistry &registry);
void registerAblationFeaturization(core::ExperimentRegistry &registry);
void registerAblationSignalSources(core::ExperimentRegistry &registry);

/** Registers every experiment above. */
void registerAllExperiments(core::ExperimentRegistry &registry);

} // namespace bigfish::bench

#endif // BF_BENCH_EXPERIMENTS_HH
