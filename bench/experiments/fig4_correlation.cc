/**
 * @file
 * Figure 4: normalized traces averaged over many runs, collected with
 * the loop-counting and sweep-counting attackers on the same sites.
 *
 * The paper reports Pearson correlations between the two attackers'
 * averaged traces of r = 0.87 (nytimes.com), 0.79 (amazon.com) and
 * 0.94 (weather.com) — evidence that both attackers are shaped by the
 * same system events. We reproduce the same averaging and correlation.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "experiments.hh"
#include "stats/descriptive.hh"
#include "web/catalog.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    // The paper averages 100 runs; 0 = auto (100 at paper scale, 30
    // otherwise — the old binary's behavior).
    int runs = static_cast<int>(ctx.spec.getInt("runs"));
    if (runs == 0)
        runs = scale.tracesPerSite >= 100 ? 100 : 30;

    core::CollectionConfig loop_config;
    loop_config.attacker = attack::AttackerKind::LoopCounting;
    loop_config.seed = scale.seed;
    core::CollectionConfig sweep_config = loop_config;
    sweep_config.attacker = attack::AttackerKind::SweepCounting;

    const core::TraceCollector loop_collector(loop_config);
    const core::TraceCollector sweep_collector(sweep_config);

    Table table({"website", "runs", "paper r", "measured r", "loop max",
                 "sweep max"});
    for (const auto &site : web::SiteCatalog::exampleSites()) {
        std::vector<std::vector<double>> loop_runs, sweep_runs;
        double loop_max = 0.0, sweep_max = 0.0;
        for (int run_index = 0; run_index < runs; ++run_index) {
            auto loop = loop_collector.collectOne(site, run_index);
            if (!loop.isOk())
                return loop.status();
            auto sweep = sweep_collector.collectOne(site, run_index);
            if (!sweep.isOk())
                return sweep.status();
            loop_runs.push_back(
                stats::downsample(loop.value().normalized(), 300));
            sweep_runs.push_back(
                stats::downsample(sweep.value().normalized(), 300));
            loop_max = std::max(loop_max, loop.value().maxCount());
            sweep_max = std::max(sweep_max, sweep.value().maxCount());
        }
        const double r =
            stats::pearson(stats::elementwiseMean(loop_runs),
                           stats::elementwiseMean(sweep_runs));
        artifact.addMetric(site.name + "_pearson_r", r);
        const auto paper_r =
            ctx.descriptor->expectedValue(site.name + "_pearson_r");
        table.addRow({site.name, std::to_string(runs),
                      paper_r ? formatDouble(*paper_r, 2)
                              : std::string("-"),
                      formatDouble(r, 2), formatDouble(loop_max, 0),
                      formatDouble(sweep_max, 0)});
    }
    std::printf("\n%s\n", table.render().c_str());
    std::printf("paper context: maximum counts were ~27,000 iterations for "
                "the loop attacker\nand ~32 sweeps for the sweep attacker; "
                "averaged traces are strongly correlated.\n");
    return artifact;
}

} // namespace

void
registerFig4Correlation(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "fig4_correlation";
    d.title = "loop-counting vs sweep-counting trace shapes";
    d.paperReference =
        "Figure 4 (averaged normalized traces; r = 0.87/0.79/0.94)";
    d.schema = core::commonScaleSchema();
    d.schema.addInt("runs", "", 0, 0, 100000,
                    "averaging runs (0 = auto: 100 at paper scale, "
                    "else 30)");
    d.expected = {
        {"nytimes.com_pearson_r", 0.87},
        {"amazon.com_pearson_r", 0.79},
        {"weather.com_pearson_r", 0.94},
    };
    d.smokeOverrides = {{"runs", "4"}};
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
