/**
 * @file
 * Figure 5: with movable IRQs pinned away from the attacker's core, the
 * eBPF tracer measures the share of each 100 ms interval spent in
 * interrupt handlers (split softirq vs rescheduling IPI) averaged over
 * many runs of the three example sites — the profile that visually
 * matches the Figure 3 trace strips.
 *
 * The old fig5 binary also computed the Section 5.2 gap-attribution
 * headline; that is now its own registration (gap_attribution).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "experiments.hh"
#include "ktrace/attribution.hh"
#include "stats/descriptive.hh"
#include "web/catalog.hh"

namespace bigfish::bench {

namespace {

void
renderSeries(const char *label, const std::vector<double> &series)
{
    const double peak = stats::maxValue(series);
    std::printf("  %-10s|", label);
    for (double v : series) {
        const int level =
            peak > 0.0 ? std::min(9, static_cast<int>(v / peak * 9.99))
                       : 0;
        std::printf("%c", " .:-=+*#%@"[level]);
    }
    std::printf("| peak %.2f%%\n", peak * 100.0);
}

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    // Paper setup: irqbalance pins IRQs away; attacker pinned to a core.
    core::CollectionConfig config;
    config.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    config.machine.pinnedCores = true;
    config.browser = web::BrowserProfile::nativeRust();
    config.seed = scale.seed;
    const core::TraceCollector collector(config);

    int runs = static_cast<int>(ctx.spec.getInt("runs"));
    if (runs == 0)
        runs = scale.tracesPerSite >= 100 ? 100 : 25;

    std::printf("\n%% of each 100 ms interval spent in non-movable "
                "interrupt handlers (averaged over %d runs):\n\n",
                runs);

    for (const auto &site : web::SiteCatalog::exampleSites()) {
        std::vector<std::vector<double>> softirq_runs, resched_runs,
            total_runs;
        for (int run_index = 0; run_index < runs; ++run_index) {
            const auto timeline =
                collector.synthesizeTimeline(site, run_index);
            const auto records = ktrace::KernelTracer().record(timeline);
            const auto profile = ktrace::KernelTracer::profile(
                records, timeline.duration);
            softirq_runs.push_back(profile.softirqFraction);
            resched_runs.push_back(profile.reschedFraction);
            total_runs.push_back(profile.totalFraction);
        }
        std::printf("%s (0 .. 15 s)\n", site.name.c_str());
        renderSeries("softirq", stats::elementwiseMean(softirq_runs));
        renderSeries("resched", stats::elementwiseMean(resched_runs));
        const auto total_mean = stats::elementwiseMean(total_runs);
        renderSeries("total", total_mean);
        artifact.addMetric(site.name + "_total_peak",
                           stats::maxValue(total_mean));
        std::printf("\n");
    }

    std::printf("expected shape: nytimes interrupt time concentrated in "
                "the first ~4 s;\namazon spikes near 5 s and 10 s; "
                "weather shows recurring resched activity.\n");
    return artifact;
}

} // namespace

void
registerFig5InterruptTime(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "fig5_interrupt_time";
    d.title = "time spent in interrupt handlers per 100 ms interval";
    d.paperReference = "Figure 5 (softirq vs resched-IPI profiles)";
    d.schema = core::commonScaleSchema();
    d.schema.addInt("runs", "", 0, 0, 100000,
                    "averaging runs (0 = auto: 100 at paper scale, "
                    "else 25)");
    d.smokeOverrides = {{"runs", "4"}};
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
