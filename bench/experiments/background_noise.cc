/**
 * @file
 * Section 4.2: robustness of the loop-counting attack to realistic
 * background noise — Slack plus Spotify playing music next to the
 * victim browser.
 *
 * Expected shape (paper): accuracy drops only from 96.6% to 93.4%;
 * the attack does not depend on a quiet machine.
 */

#include <cstdio>

#include "experiments.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);
    const auto pipeline = core::pipelineForScale(scale);

    core::CollectionConfig quiet = core::collectionForScale(scale);
    quiet.machine = sim::MachineConfig::linuxDesktop();
    quiet.browser = web::BrowserProfile::chrome();
    core::CollectionConfig background = quiet;
    background.backgroundApps = true;

    auto bg = core::runFingerprinting(background, pipeline);
    if (!bg.isOk())
        return bg.status();
    artifact.addResult("loop-counting_background", bg.value());

    auto qt = core::runFingerprinting(quiet, pipeline);
    if (!qt.isOk())
        return qt.status();
    artifact.addResult("loop-counting_quiet", qt.value());

    std::printf("\nbackground noise (Slack + Spotify playing music):\n");
    std::printf("  paper:    96.6%% -> 93.4%%\n");
    std::printf("  measured: %.1f%% -> %.1f%%\n",
                qt.value().closedWorld.top1Mean * 100.0,
                bg.value().closedWorld.top1Mean * 100.0);
    std::printf("\nexpected shape: background apps cost only a few "
                "points.\n");
    return artifact;
}

} // namespace

void
registerBackgroundNoise(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "background_noise";
    d.title = "loop-counting accuracy with Slack + Spotify running";
    d.paperReference = "Section 4.2 (Chrome on Linux, closed world)";
    d.schema = core::commonScaleSchema();
    d.expected = {
        {"loop-counting_quiet_top1", 0.966},
        {"loop-counting_background_top1", 0.934},
    };
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
