/**
 * @file
 * Ablation: which simulated leakage channels carry the attack?
 *
 * DESIGN.md calls out the interrupt-stream decomposition as the central
 * modelling decision; this experiment deletes one channel at a time from
 * the machine model and re-measures closed-world accuracy, quantifying
 * each channel's contribution. It also ablates the classifier (CNN-LSTM
 * vs softmax regression vs kNN) and the feature length.
 *
 * Expected shape: non-movable channels (softirqs + resched/TLB IPIs)
 * carry the majority of the signal, mirroring the paper's Section 5;
 * DVFS and contention are minor; the attack survives any single
 * deletion (defense-in-depth failure).
 */

#include <cstdio>

#include "base/table.hh"
#include "experiments.hh"

namespace bigfish::bench {

namespace {

Result<double>
accuracy(const core::CollectionConfig &config,
         const core::PipelineConfig &pipeline,
         core::RunArtifact &artifact, const std::string &label)
{
    auto result = core::runFingerprinting(config, pipeline);
    if (!result.isOk())
        return result.status();
    artifact.addResult(label, result.value());
    return result.value().closedWorld.top1Mean;
}

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);
    const auto pipeline = core::pipelineForScale(scale);

    core::CollectionConfig base = core::collectionForScale(scale);
    base.browser = web::BrowserProfile::nativePython();
    base.machine.pinnedCores = true; // Isolate the interrupt channels.

    struct Step
    {
        const char *name;
        void (*apply)(core::CollectionConfig &);
    };
    const Step steps[] = {
        {"full model", [](core::CollectionConfig &) {}},
        {"- movable device IRQs",
         [](core::CollectionConfig &c) {
             c.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
         }},
        {"- softirq dispatch to attacker core",
         [](core::CollectionConfig &c) {
             c.machine.os.softirqShare = 0.0;
         }},
        {"- victim resched/TLB IPIs",
         [](core::CollectionConfig &c) {
             // Zeroing the victim's IPI activity is not possible from
             // config, so approximate by muting the IPI handlers.
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::ReschedIpi, {1, 0.01});
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::TlbShootdown, {1, 0.01});
             c.machine.handlerCosts.contextSwitchNs = 1500;
         }},
        {"- DVFS signal",
         [](core::CollectionConfig &c) {
             c.machine.frequencyScaling = false;
         }},
        {"- tick work modulation",
         [](core::CollectionConfig &c) {
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::SoftirqTimer, {1, 0.01});
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::IrqWork, {1, 0.01});
         }},
    };

    Table table({"model (cumulative deletions)", "top-1", "delta"});
    core::CollectionConfig config = base;
    double prev = -1.0;
    int step_index = 0;
    for (const auto &step : steps) {
        step.apply(config);
        auto acc = accuracy(config, pipeline, artifact,
                            "channel_step" +
                                std::to_string(step_index++));
        if (!acc.isOk())
            return acc.status();
        table.addRow({step.name, formatPercent(acc.value()),
                      prev < 0
                          ? std::string("-")
                          : formatDouble((acc.value() - prev) * 100.0,
                                         1)});
        prev = acc.value();
        std::printf("finished: %s\n", step.name);
    }
    std::printf("\nLEAKAGE-CHANNEL ABLATION (chance = %.1f%%)\n%s",
                100.0 / scale.sites, table.render().c_str());

    // Classifier ablation on the unmodified attack.
    Table clf({"classifier", "top-1"});
    struct ClfRow
    {
        const char *name;
        ml::ClassifierFactory factory;
    };
    const ClfRow classifiers[] = {
        {"cnn-lstm (paper architecture)",
         core::classifierForScale(scale)},
        {"softmax regression", ml::softmaxRegressionFactory()},
        {"kNN (k=5)", ml::knnFactory(5)},
    };
    int clf_index = 0;
    for (const auto &row : classifiers) {
        auto p = pipeline;
        p.factory = row.factory;
        auto acc = accuracy(base, p, artifact,
                            "classifier" + std::to_string(clf_index++));
        if (!acc.isOk())
            return acc.status();
        clf.addRow({row.name, formatPercent(acc.value())});
        std::printf("finished classifier: %s\n", row.name);
    }
    std::printf("\nCLASSIFIER ABLATION\n%s", clf.render().c_str());

    // Feature-length ablation.
    Table feat({"feature length", "top-1"});
    for (std::size_t len : {64u, 128u, 256u, 512u}) {
        auto p = pipeline;
        p.featureLen = len;
        auto acc = accuracy(base, p, artifact,
                            "features" + std::to_string(len));
        if (!acc.isOk())
            return acc.status();
        feat.addRow({std::to_string(len), formatPercent(acc.value())});
        std::printf("finished feature length: %zu\n", len);
    }
    std::printf("\nFEATURE-LENGTH ABLATION\n%s", feat.render().c_str());
    return artifact;
}

} // namespace

void
registerAblationSignalSources(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "ablation_signal_sources";
    d.title = "per-channel leakage contributions";
    d.paperReference = "DESIGN.md ablations (not a paper table)";
    d.schema = core::commonScaleSchema();
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
