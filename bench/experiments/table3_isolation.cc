/**
 * @file
 * Table 3: the Python loop-counting attacker under incrementally
 * stronger isolation mechanisms.
 *
 * Each configuration inherits all previous mechanisms:
 *   default -> +disable frequency scaling -> +pin to separate cores
 *   -> +remove (movable) IRQ interrupts -> +run in separate VMs.
 *
 * Expected shape (paper): 95.2 / 94.2 / 94.0 / 88.2 / 91.6 top-1 —
 * small dips for DVFS and pinning, a visible dip when movable IRQs
 * leave, and a *rise* under VM isolation (interrupt amplification).
 */

#include <cstdio>

#include "base/table.hh"
#include "experiments.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);
    const auto pipeline = core::pipelineForScale(scale);

    core::CollectionConfig config = core::collectionForScale(scale);
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::nativePython();

    struct Step
    {
        const char *name;
        void (*apply)(core::CollectionConfig &);
    };
    const Step steps[] = {
        {"default", [](core::CollectionConfig &) {}},
        {"+ disable frequency scaling",
         [](core::CollectionConfig &c) {
             c.machine.frequencyScaling = false;
         }},
        {"+ pin to separate cores",
         [](core::CollectionConfig &c) { c.machine.pinnedCores = true; }},
        {"+ remove IRQ interrupts",
         [](core::CollectionConfig &c) {
             c.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
         }},
        {"+ run in separate VMs",
         [](core::CollectionConfig &c) { c.machine.vmIsolation = true; }},
    };

    const auto expected = [&ctx](const std::string &metric) {
        return formatPercent(
            ctx.descriptor->expectedValue(metric).value_or(0.0));
    };
    Table table({"isolation mechanism", "top-1 paper", "top-1 meas",
                 "top-5 paper", "top-5 meas"});
    int step_index = 0;
    for (const auto &step : steps) {
        step.apply(config); // Mechanisms accumulate.
        auto result = core::runFingerprinting(config, pipeline);
        if (!result.isOk())
            return result.status();
        const std::string label =
            "isolation_step" + std::to_string(step_index++);
        artifact.addResult(label, result.value());
        table.addRow({step.name, expected(label + "_top1"),
                      formatPercentPm(result.value().closedWorld.top1Mean,
                                      result.value().closedWorld.top1Std),
                      expected(label + "_top5"),
                      formatPercent(
                          result.value().closedWorld.topKMean)});
        std::printf("finished: %s\n", step.name);
    }

    std::printf("\n%s", table.render().c_str());
    std::printf("\nexpected shape: small dips from DVFS/pinning; a clear "
                "dip when movable IRQs\nare removed; accuracy *recovers* "
                "under VM isolation (handler amplification).\n"
                "Takeaway 3: no isolation mechanism stops the attack.\n");
    return artifact;
}

} // namespace

void
registerTable3Isolation(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "table3_isolation";
    d.title = "isolation mechanisms vs the Python attacker";
    d.paperReference = "Table 3 (incremental isolation; top-1/top-5)";
    d.schema = core::commonScaleSchema();
    d.expected = {
        {"isolation_step0_top1", 0.952}, {"isolation_step0_top5", 0.991},
        {"isolation_step1_top1", 0.942}, {"isolation_step1_top5", 0.986},
        {"isolation_step2_top1", 0.940}, {"isolation_step2_top5", 0.983},
        {"isolation_step3_top1", 0.882}, {"isolation_step3_top5", 0.973},
        {"isolation_step4_top1", 0.916}, {"isolation_step4_top5", 0.973},
    };
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
