/**
 * @file
 * Figure 6: distributions of user-space execution gap lengths per
 * interrupt type, measured over many page loads.
 *
 * Expected shape (paper, Section 5.3): every gap exceeds ~1.5 us
 * (Meltdown-era context-switch overhead); each type has a
 * characteristic distribution; softirq and IRQ-work gaps include the
 * timer tick they piggyback on, so the IRQ-work mode lines up with a
 * late timer-interrupt mode (~5.5 us in the paper).
 */

#include <algorithm>
#include <cstdio>

#include "experiments.hh"
#include "ktrace/attribution.hh"
#include "stats/descriptive.hh"
#include "stats/histogram.hh"
#include "web/catalog.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    // Paper: a core that does not receive network IRQs or IRQ work is
    // used for most series; we keep the spread policy so network RX and
    // IRQ work are also observable, as in the figure.
    core::CollectionConfig config;
    config.machine.pinnedCores = true;
    config.browser = web::BrowserProfile::nativeRust();
    config.seed = scale.seed;
    const core::TraceCollector collector(config);

    const web::SiteCatalog catalog(std::max(scale.sites, 10), 7);
    const int loads = static_cast<int>(ctx.spec.getInt("loads"));

    std::vector<ktrace::AttributedGap> all_gaps;
    for (int load = 0; load < loads; ++load) {
        const auto &site = catalog.site(load % 10);
        const auto timeline =
            collector.synthesizeTimeline(site, 1000 + load);
        const auto gaps = ktrace::attributeGaps(
            ktrace::GapDetector().detect(timeline),
            ktrace::KernelTracer().record(timeline));
        all_gaps.insert(all_gaps.end(), gaps.begin(), gaps.end());
    }

    const sim::InterruptKind kinds[] = {
        sim::InterruptKind::SoftirqNetRx,
        sim::InterruptKind::TimerTick,
        sim::InterruptKind::IrqWork,
        sim::InterruptKind::NetworkRx,
        sim::InterruptKind::ReschedIpi,
        sim::InterruptKind::TlbShootdown,
    };

    double min_gap_us = 1e18;
    for (const auto kind : kinds) {
        auto lengths = ktrace::gapLengthsForKind(all_gaps, kind);
        if (lengths.empty()) {
            std::printf("%s: no samples\n\n",
                        sim::interruptKindName(kind).c_str());
            continue;
        }
        for (double &v : lengths) {
            v /= 1000.0; // ns -> us
            min_gap_us = std::min(min_gap_us, v);
        }
        stats::Histogram hist(0.0, 10.0, 20);
        hist.addAll(lengths);
        const double median = stats::quantile(lengths, 0.5);
        std::printf("%s  (%zu gaps, median %.1f us, mode bin %.2f us)\n",
                    sim::interruptKindName(kind).c_str(), lengths.size(),
                    median, hist.binCenter(hist.modeBin()));
        std::printf("%s\n", hist.render(" us", 46).c_str());
        artifact.addMetric(sim::interruptKindName(kind) +
                               "_median_gap_us",
                           median);
    }

    std::printf("minimum observed gap: %.2f us "
                "(paper: all gaps > 1.5 us)\n", min_gap_us);
    std::printf("note: softirq/IRQ-work gaps include the timer tick they "
                "piggyback on,\nso their distributions sit above the "
                "resched-IPI distribution.\n");
    artifact.addMetric("min_gap_us", min_gap_us);
    return artifact;
}

} // namespace

void
registerFig6GapDistributions(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "fig6_gap_distributions";
    d.title = "gap lengths per interrupt type";
    d.paperReference = "Figure 6 (50 loads over 10 sites; gaps > 1.5 us)";
    d.schema = core::commonScaleSchema();
    d.schema.addInt("loads", "", 50, 1, 1000000,
                    "page loads to aggregate gaps over");
    d.expected = {
        {"min_gap_us", 1.5},
    };
    d.smokeOverrides = {{"loads", "6"}};
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
