#include "experiments.hh"

namespace bigfish::bench {

void
registerAllExperiments(core::ExperimentRegistry &registry)
{
    registerAblationFeaturization(registry);
    registerAblationSignalSources(registry);
    registerBackgroundNoise(registry);
    registerDefenseOverhead(registry);
    registerFig3Traces(registry);
    registerFig4Correlation(registry);
    registerFig5InterruptTime(registry);
    registerFig6GapDistributions(registry);
    registerFig7TimerOutputs(registry);
    registerFig8LoopDurations(registry);
    registerGapAttribution(registry);
    registerTable1Fingerprinting(registry);
    registerTable2Noise(registry);
    registerTable3Isolation(registry);
    registerTable4TimerDefense(registry);
}

} // namespace bigfish::bench
