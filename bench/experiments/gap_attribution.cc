/**
 * @file
 * Section 5.2: the fraction of user-space execution gaps >100 ns
 * attributable to interrupts — the paper's evidence that interrupts,
 * not cache contention, carry the side channel.
 *
 * Expected shape (paper): over 99% of gaps line up with an interrupt
 * recorded by the eBPF tracer.
 */

#include <cstdio>

#include "experiments.hh"
#include "ktrace/attribution.hh"
#include "web/catalog.hh"

namespace bigfish::bench {

namespace {

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    // Same setup as fig5_interrupt_time: IRQs pinned away, attacker
    // pinned, native Rust victim.
    core::CollectionConfig config;
    config.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    config.machine.pinnedCores = true;
    config.browser = web::BrowserProfile::nativeRust();
    config.seed = scale.seed;
    const core::TraceCollector collector(config);

    int runs = static_cast<int>(ctx.spec.getInt("runs"));
    if (runs == 0)
        runs = scale.tracesPerSite >= 100 ? 100 : 25;

    std::size_t total_gaps = 0, attributed = 0;
    for (const auto &site : web::SiteCatalog::exampleSites()) {
        for (int run_index = 0; run_index < runs; ++run_index) {
            const auto timeline =
                collector.synthesizeTimeline(site, run_index);
            const auto records = ktrace::KernelTracer().record(timeline);
            const auto gap_report =
                ktrace::summarize(ktrace::attributeGaps(
                    ktrace::GapDetector().detect(timeline), records));
            total_gaps += gap_report.totalGaps;
            attributed += gap_report.attributedToInterrupt;
        }
    }

    const double fraction = total_gaps > 0
                                ? static_cast<double>(attributed) /
                                      static_cast<double>(total_gaps)
                                : 0.0;
    std::printf("\ngap attribution (threshold 100 ns, %d runs x 3 "
                "sites):\n", runs);
    std::printf("  paper:    >99%% of gaps caused by interrupts\n");
    std::printf("  measured: %.2f%% of %zu gaps attributed to "
                "interrupts\n", fraction * 100.0, total_gaps);

    artifact.addMetric("interrupt_attribution_fraction", fraction);
    artifact.addMetric("total_gaps", static_cast<double>(total_gaps));
    return artifact;
}

} // namespace

void
registerGapAttribution(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "gap_attribution";
    d.title = "share of execution gaps caused by interrupts";
    d.paperReference = "Section 5.2 (>99% of gaps >100 ns)";
    d.schema = core::commonScaleSchema();
    d.schema.addInt("runs", "", 0, 0, 100000,
                    "runs per site (0 = auto: 100 at paper scale, "
                    "else 25)");
    d.expected = {
        {"interrupt_attribution_fraction", 0.99},
    };
    d.smokeOverrides = {{"runs", "4"}};
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
