/**
 * @file
 * Figure 7: example outputs of the three secure timers — Tor's 100 ms
 * quantized timer, Chrome's 0.1 ms jittered timer, and the paper's
 * randomized timer — against the true time (the dashed diagonal in the
 * paper's plots).
 */

#include <cstdio>

#include "experiments.hh"
#include "timers/timer.hh"

namespace bigfish::bench {

namespace {

/** Dumps one timer's observed-vs-real table; returns the final lag. */
double
dumpTimer(const char *title, timers::TimerModel &timer, TimeNs span,
          TimeNs step)
{
    std::printf("%s\n", title);
    std::printf("  %-14s %-14s %-10s\n", "real (ms)", "observed (ms)",
                "lag (ms)");
    double final_lag_ms = 0.0;
    for (TimeNs t = 0; t <= span; t += step) {
        const TimeNs obs = timer.observe(t);
        final_lag_ms = static_cast<double>(t - obs) / kMsec;
        std::printf("  %-14.2f %-14.2f %-10.2f\n",
                    static_cast<double>(t) / kMsec,
                    static_cast<double>(obs) / kMsec, final_lag_ms);
    }
    std::printf("\n");
    return final_lag_ms;
}

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);
    std::printf("\n");

    auto quantized =
        timers::TimerSpec::quantized(100 * kMsec).make(scale.seed);
    artifact.addMetric(
        "quantized_final_lag_ms",
        dumpTimer("(a) quantized timer, A = 100 ms (Tor Browser)",
                  *quantized, 400 * kMsec, 25 * kMsec));

    auto jittered =
        timers::TimerSpec::jittered(100 * kUsec).make(scale.seed);
    artifact.addMetric(
        "jittered_final_lag_ms",
        dumpTimer("(b) jittered timer, A = 0.1 ms (Chrome)", *jittered,
                  kMsec, 100 * kUsec));

    auto randomized =
        timers::TimerSpec::randomizedDefense().make(scale.seed);
    artifact.addMetric(
        "randomized_final_lag_ms",
        dumpTimer(
            "(c) randomized timer, A = 1 ms, threshold = 100 ms (ours)",
            *randomized, 400 * kMsec, 25 * kMsec));

    std::printf("expected shape: (a) staircase with 100 ms steps;\n"
                "(b) tracks real time within 0.2 ms;\n"
                "(c) irregular staircase lagging real time by a random "
                "amount bounded by 100 ms.\n");
    return artifact;
}

} // namespace

void
registerFig7TimerOutputs(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "fig7_timer_outputs";
    d.title = "secure timer behaviours";
    d.paperReference = "Figure 7 (quantized / jittered / randomized)";
    d.schema = core::commonScaleSchema();
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
