/**
 * @file
 * Figure 3: example loop-counting traces for nytimes.com, amazon.com and
 * weather.com, collected over 15 seconds with P = 5 ms in Chrome.
 *
 * The paper renders traces as shaded strips (darker = smaller counter =
 * more interrupt activity); this experiment renders the same strips in
 * ASCII and reports the counter range, which the paper gives as roughly
 * 21,000-27,000 iterations.
 */

#include <algorithm>
#include <cstdio>

#include "experiments.hh"
#include "stats/descriptive.hh"
#include "web/catalog.hh"

namespace bigfish::bench {

namespace {

/** Renders a trace as an ASCII density strip (dark = low count). */
void
renderStrip(const attack::Trace &trace, int width)
{
    static const char shades[] = " .:-=+*#%@";
    const auto norm = stats::downsample(trace.normalized(),
                                        static_cast<std::size_t>(width));
    const double lo = stats::minValue(norm);
    const double hi = stats::maxValue(norm);
    std::printf("  |");
    for (double v : norm) {
        // Invert: darker (higher index) = lower counter value.
        const double darkness = hi > lo ? (hi - v) / (hi - lo) : 0.0;
        const int idx = std::min(9, static_cast<int>(darkness * 10.0));
        std::printf("%c", shades[idx]);
    }
    std::printf("|\n");
}

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    core::CollectionConfig config;
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::chrome();
    config.attacker = attack::AttackerKind::LoopCounting;
    config.seed = scale.seed;
    const core::TraceCollector collector(config);

    std::printf("\npaper: counter values range from ~21,000 to ~27,000;\n"
                "darker shades = smaller counter = interrupt-heavy spans.\n"
                "time axis: 0 .. 15 s\n\n");

    for (const auto &site : web::SiteCatalog::exampleSites()) {
        auto trace = collector.collectOne(site, 0);
        if (!trace.isOk())
            return trace.status();
        std::printf("%s\n", site.name.c_str());
        for (int row = 0; row < 3; ++row) {
            auto strip = collector.collectOne(site, row);
            if (!strip.isOk())
                return strip.status();
            renderStrip(strip.value(), 100);
        }
        std::printf("  counter: min %.0f  mean %.0f  max %.0f  "
                    "(%zu periods)\n\n",
                    stats::minValue(trace.value().counts),
                    stats::mean(trace.value().counts),
                    trace.value().maxCount(), trace.value().size());
        artifact.addMetric(site.name + "_counter_mean",
                           stats::mean(trace.value().counts));
        artifact.addMetric(site.name + "_counter_max",
                           trace.value().maxCount());
    }

    std::printf("expected shape: nytimes dark in the first ~4 s;\n"
                "amazon dark for ~2 s with spikes near 5 s and 10 s;\n"
                "weather shows recurring dark bands from periodic "
                "activity.\n");
    return artifact;
}

} // namespace

void
registerFig3Traces(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "fig3_traces";
    d.title = "example loop-counting traces";
    d.paperReference =
        "Figure 3 (three 15 s traces, P = 5 ms, Chrome on Linux)";
    d.schema = core::commonScaleSchema();
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
