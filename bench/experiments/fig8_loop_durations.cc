/**
 * @file
 * Figure 8: the distribution of the *real* duration of one 5 ms
 * attacker measurement period under each secure timer.
 *
 * Expected shape (paper):
 *  (a) quantized 100 ms — the attacker cannot end a 5 ms period until
 *      the observed clock steps, so durations cluster at ~100 ms;
 *  (b) jittered 0.1 ms — durations spread roughly 4.8-5.2 ms around P;
 *  (c) randomized — durations spread across 0-100 ms: the attacker can
 *      no longer measure throughput over a known interval.
 */

#include <cstdio>
#include <vector>

#include "experiments.hh"
#include "stats/descriptive.hh"
#include "stats/histogram.hh"
#include "web/catalog.hh"

namespace bigfish::bench {

namespace {

/** Measures period durations under @p spec; returns the median (ms). */
Result<double>
durationsUnder(const char *title, const timers::TimerSpec &spec,
               std::uint64_t seed, int runs, double hist_lo,
               double hist_hi)
{
    core::CollectionConfig config;
    config.browser = web::BrowserProfile::nativePython();
    config.timerOverride = spec;
    config.period = 5 * kMsec;
    config.seed = seed;
    const core::TraceCollector collector(config);

    std::vector<double> durations_ms;
    for (int run_index = 0; run_index < runs; ++run_index) {
        auto trace =
            collector.collectOne(web::nytimesSignature(0), run_index);
        if (!trace.isOk())
            return trace.status();
        for (TimeNs w : trace.value().wallTimes)
            durations_ms.push_back(static_cast<double>(w) / kMsec);
    }

    stats::Histogram hist(hist_lo, hist_hi, 20);
    hist.addAll(durations_ms);
    const double median = stats::quantile(durations_ms, 0.5);
    std::printf("%s\n", title);
    std::printf("  %zu periods, median %.2f ms, p5 %.2f ms, p95 %.2f ms\n",
                durations_ms.size(), median,
                stats::quantile(durations_ms, 0.05),
                stats::quantile(durations_ms, 0.95));
    std::printf("%s\n", hist.render(" ms", 40).c_str());
    return median;
}

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);
    const int runs = static_cast<int>(ctx.spec.getInt("runs"));
    std::printf("\n");

    auto quantized = durationsUnder(
        "(a) quantized timer, A = 100 ms (Tor)",
        timers::TimerSpec::quantized(100 * kMsec), scale.seed, runs,
        90.0, 110.0);
    if (!quantized.isOk())
        return quantized.status();
    artifact.addMetric("quantized_median_ms", quantized.value());

    auto jittered = durationsUnder(
        "(b) jittered timer, A = 0.1 ms (Chrome)",
        timers::TimerSpec::jittered(100 * kUsec), scale.seed, runs, 4.5,
        5.5);
    if (!jittered.isOk())
        return jittered.status();
    artifact.addMetric("jittered_median_ms", jittered.value());

    auto randomized = durationsUnder(
        "(c) randomized timer (ours)",
        timers::TimerSpec::randomizedDefense(), scale.seed, runs, 0.0,
        100.0);
    if (!randomized.isOk())
        return randomized.status();
    artifact.addMetric("randomized_median_ms", randomized.value());
    return artifact;
}

} // namespace

void
registerFig8LoopDurations(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "fig8_loop_durations";
    d.title = "one 5 ms attacker loop under secure timers";
    d.paperReference =
        "Figure 8 (quantized ~100 ms; jittered ~4.8-5.2 ms; randomized "
        "0-100 ms)";
    d.schema = core::commonScaleSchema();
    d.schema.addInt("runs", "", 3, 1, 10000,
                    "traces per timer variant");
    d.expected = {
        {"quantized_median_ms", 100.0},
        {"jittered_median_ms", 5.0},
    };
    d.smokeOverrides = {{"runs", "2"}};
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
