/**
 * @file
 * Table 1: closed- and open-world website-fingerprinting accuracy for
 * every browser x OS combination, comparing this paper's loop-counting
 * attack against the state-of-the-art cache-occupancy (sweep-counting)
 * attack of Shusterman et al. [65].
 *
 * Expected shape: the loop-counting attack matches or beats the cache
 * attack in every configuration (the paper's only tie is Tor); Chrome/
 * Firefox/Safari land in the ~90s; Tor's 100 ms timer halves accuracy;
 * Windows trails Linux/macOS.
 */

#include <cstdio>

#include "base/table.hh"
#include "experiments.hh"
#include "stats/ttest.hh"

namespace bigfish::bench {

namespace {

/** One browser x OS cell; the paper's numbers live in the descriptor. */
struct Cell
{
    const char *browser;
    const char *os;
    web::BrowserProfile profile;
    sim::MachineConfig machine;
};

std::vector<Cell>
cells()
{
    return {
        {"Chrome", "Linux", web::BrowserProfile::chrome(),
         sim::MachineConfig::linuxDesktop()},
        {"Chrome", "Windows", web::BrowserProfile::chrome(),
         sim::MachineConfig::windowsWorkstation()},
        {"Chrome", "macOS", web::BrowserProfile::chrome(),
         sim::MachineConfig::macbook()},
        {"Firefox", "Linux", web::BrowserProfile::firefox(),
         sim::MachineConfig::linuxDesktop()},
        {"Firefox", "Windows", web::BrowserProfile::firefox(),
         sim::MachineConfig::windowsWorkstation()},
        {"Firefox", "macOS", web::BrowserProfile::firefox(),
         sim::MachineConfig::macbook()},
        {"Safari", "macOS", web::BrowserProfile::safari(),
         sim::MachineConfig::macbook()},
        {"Tor", "Linux", web::BrowserProfile::torBrowser(),
         sim::MachineConfig::linuxDesktop()},
    };
}

Result<core::RunArtifact>
run(const core::RunContext &ctx)
{
    const auto scale = core::scaleFromSpec(ctx.spec);
    auto artifact = core::makeArtifact(ctx);

    // Paper numbers come from the descriptor (one source of truth);
    // cells the paper did not evaluate have no expected entry.
    const auto expectedFmt = [&ctx](const std::string &metric) {
        const auto v = ctx.descriptor->expectedValue(metric);
        return v.has_value() ? formatPercent(*v) : std::string("-");
    };

    Table closed({"browser", "os", "loop paper", "loop meas",
                  "cache paper", "cache meas", "p(loop>cache)"});
    Table open({"browser", "os", "sens meas", "non-sens meas",
                "comb paper", "comb meas", "cache comb paper",
                "cache comb meas"});

    for (const auto &cell : cells()) {
        core::CollectionConfig cfg = core::collectionForScale(scale);
        cfg.machine = cell.machine;
        cfg.browser = cell.profile;

        auto pipeline = core::pipelineForScale(scale);
        pipeline.openWorldExtra = scale.openWorldExtra;

        // Both attackers observe the same victim: one shared-timeline
        // collection halves the dominant phase without changing either
        // attacker's traces.
        const attack::AttackerKind kinds[] = {
            attack::AttackerKind::LoopCounting,
            attack::AttackerKind::SweepCounting};
        auto shared = core::runFingerprintingShared(cfg, kinds, pipeline);
        if (!shared.isOk())
            return shared.status();
        const auto &results = shared.value();
        const auto &loop_result = results[0];
        const auto &sweep_result = results[1];

        const auto ttest =
            stats::welchTTest(loop_result.closedWorld.foldTop1,
                              sweep_result.closedWorld.foldTop1);

        const std::string slug =
            std::string(cell.browser) + "_" + cell.os + "_";
        artifact.addResult(slug + "loop", loop_result);
        artifact.addResult(slug + "sweep", sweep_result);

        closed.addRow({cell.browser, cell.os,
                       expectedFmt(slug + "loop_top1"),
                       formatPercentPm(loop_result.closedWorld.top1Mean,
                                       loop_result.closedWorld.top1Std),
                       expectedFmt(slug + "sweep_top1"),
                       formatPercentPm(sweep_result.closedWorld.top1Mean,
                                       sweep_result.closedWorld.top1Std),
                       "p=" + formatDouble(ttest.pTwoSided, 4)});
        open.addRow(
            {cell.browser, cell.os,
             formatPercent(
                 loop_result.openWorld.openWorld.sensitiveAccuracy),
             formatPercent(
                 loop_result.openWorld.openWorld.nonSensitiveAccuracy),
             expectedFmt(slug + "loop_open_combined"),
             formatPercent(
                 loop_result.openWorld.openWorld.combinedAccuracy),
             expectedFmt(slug + "sweep_open_combined"),
             formatPercent(
                 sweep_result.openWorld.openWorld.combinedAccuracy)});

        // Tor also gets a top-5 row in the paper (86.4% vs 71.9%);
        // rendered from the top-k metric at its default k = 5.
        if (std::string(cell.browser) == "Tor") {
            closed.addRow(
                {"Tor (top" +
                     std::to_string(loop_result.closedWorld.topK) + ")",
                 cell.os, expectedFmt(slug + "loop_top5"),
                 formatPercentPm(loop_result.closedWorld.topKMean,
                                 loop_result.closedWorld.topKStd),
                 expectedFmt(slug + "sweep_top5"),
                 formatPercentPm(sweep_result.closedWorld.topKMean,
                                 sweep_result.closedWorld.topKStd),
                 "-"});
        }
        std::printf("finished %s / %s\n", cell.browser, cell.os);
    }

    std::printf("\nCLOSED WORLD (top-1 accuracy, chance = %.1f%%)\n%s",
                100.0 / scale.sites, closed.render().c_str());
    std::printf("\nOPEN WORLD (combined accuracy; blind guess of "
                "non-sensitive = %.0f%% at paper scale)\n%s",
                100.0 * scale.openWorldExtra /
                    (scale.openWorldExtra +
                     scale.sites * scale.tracesPerSite),
                open.render().c_str());
    std::printf("\nexpected shape: loop >= cache everywhere; Tor lowest; "
                "Windows below Linux.\n");
    return artifact;
}

} // namespace

void
registerTable1Fingerprinting(core::ExperimentRegistry &registry)
{
    core::ExperimentDescriptor d;
    d.name = "table1_fingerprinting";
    d.title = "closed/open world accuracy per browser x OS";
    d.paperReference =
        "Table 1 (loop-counting vs cache-occupancy attack [65])";
    d.schema = core::commonScaleSchema();
    d.expected = {
        {"Chrome_Linux_loop_top1", 0.966},
        {"Chrome_Linux_sweep_top1", 0.914},
        {"Chrome_Linux_loop_open_combined", 0.972},
        {"Chrome_Linux_sweep_open_combined", 0.864},
        {"Chrome_Windows_loop_top1", 0.925},
        {"Chrome_Windows_sweep_top1", 0.800},
        {"Chrome_Windows_loop_open_combined", 0.945},
        {"Chrome_Windows_sweep_open_combined", 0.861},
        {"Chrome_macOS_loop_top1", 0.944},
        {"Chrome_macOS_loop_open_combined", 0.943},
        {"Firefox_Linux_loop_top1", 0.953},
        {"Firefox_Linux_sweep_top1", 0.800},
        {"Firefox_Linux_loop_open_combined", 0.964},
        {"Firefox_Linux_sweep_open_combined", 0.874},
        {"Firefox_Windows_loop_top1", 0.919},
        {"Firefox_Windows_sweep_top1", 0.877},
        {"Firefox_Windows_loop_open_combined", 0.937},
        {"Firefox_Windows_sweep_open_combined", 0.877},
        {"Firefox_macOS_loop_top1", 0.944},
        {"Firefox_macOS_loop_open_combined", 0.950},
        {"Safari_macOS_loop_top1", 0.966},
        {"Safari_macOS_sweep_top1", 0.726},
        {"Safari_macOS_loop_open_combined", 0.967},
        {"Safari_macOS_sweep_open_combined", 0.805},
        {"Tor_Linux_loop_top1", 0.498},
        {"Tor_Linux_sweep_top1", 0.467},
        {"Tor_Linux_loop_open_combined", 0.629},
        {"Tor_Linux_sweep_open_combined", 0.629},
        {"Tor_Linux_loop_top5", 0.864},
        {"Tor_Linux_sweep_top5", 0.719},
    };
    d.run = run;
    registry.add(std::move(d));
}

} // namespace bigfish::bench
