/**
 * @file
 * Figure 8: the distribution of the *real* duration of one 5 ms
 * attacker measurement period under each secure timer.
 *
 * Expected shape (paper):
 *  (a) quantized 100 ms — the attacker cannot end a 5 ms period until
 *      the observed clock steps, so durations cluster at ~100 ms;
 *  (b) jittered 0.1 ms — durations spread roughly 4.8-5.2 ms around P;
 *  (c) randomized — durations spread across 0-100 ms: the attacker can
 *      no longer measure throughput over a known interval.
 */

#include <cstdio>

#include "bench_common.hh"
#include "stats/descriptive.hh"
#include "stats/histogram.hh"
#include "web/catalog.hh"

using namespace bigfish;

namespace {

void
durationsUnder(const char *title, const timers::TimerSpec &spec,
               const bench::BenchScale &scale, double hist_lo,
               double hist_hi)
{
    core::CollectionConfig config;
    config.browser = web::BrowserProfile::nativePython();
    config.timerOverride = spec;
    config.period = 5 * kMsec;
    config.seed = scale.seed;
    const core::TraceCollector collector(config);

    std::vector<double> durations_ms;
    for (int run = 0; run < 3; ++run) {
        const auto trace =
            collector.collectOneOrDie(web::nytimesSignature(0), run);
        for (TimeNs w : trace.wallTimes)
            durations_ms.push_back(static_cast<double>(w) / kMsec);
    }

    stats::Histogram hist(hist_lo, hist_hi, 20);
    hist.addAll(durations_ms);
    std::printf("%s\n", title);
    std::printf("  %zu periods, median %.2f ms, p5 %.2f ms, p95 %.2f ms\n",
                durations_ms.size(), stats::quantile(durations_ms, 0.5),
                stats::quantile(durations_ms, 0.05),
                stats::quantile(durations_ms, 0.95));
    std::printf("%s\n", hist.render(" ms", 40).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("fig8_loop_durations", scale);
    bench::printBanner(
        "fig8_loop_durations: one 5 ms attacker loop under secure timers",
        "Figure 8 (quantized ~100 ms; jittered ~4.8-5.2 ms; randomized "
        "0-100 ms)",
        scale);
    std::printf("\n");

    durationsUnder("(a) quantized timer, A = 100 ms (Tor)",
                   timers::TimerSpec::quantized(100 * kMsec), scale, 90.0,
                   110.0);
    durationsUnder("(b) jittered timer, A = 0.1 ms (Chrome)",
                   timers::TimerSpec::jittered(100 * kUsec), scale, 4.5,
                   5.5);
    durationsUnder("(c) randomized timer (ours)",
                   timers::TimerSpec::randomizedDefense(), scale, 0.0,
                   100.0);
    report.write();
    return 0;
}
