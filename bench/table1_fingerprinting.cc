/**
 * @file
 * Table 1: closed- and open-world website-fingerprinting accuracy for
 * every browser x OS combination, comparing this paper's loop-counting
 * attack against the state-of-the-art cache-occupancy (sweep-counting)
 * attack of Shusterman et al. [65].
 *
 * Expected shape: the loop-counting attack matches or beats the cache
 * attack in every configuration (the paper's only tie is Tor); Chrome/
 * Firefox/Safari land in the ~90s; Tor's 100 ms timer halves accuracy;
 * Windows trails Linux/macOS.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_common.hh"
#include "stats/ttest.hh"

using namespace bigfish;

namespace {

struct Row
{
    const char *browser;
    const char *os;
    web::BrowserProfile profile;
    sim::MachineConfig machine;
    double paperLoopClosed;   ///< Paper, loop-counting closed world.
    double paperCacheClosed;  ///< Paper, cache attack [65] closed world.
    double paperLoopOpen;     ///< Paper, loop-counting open combined.
    double paperCacheOpen;    ///< Paper, cache attack [65] open combined.
};

} // namespace

int
main(int argc, char **argv)
{
    auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("table1_fingerprinting", scale);
    bench::printBanner(
        "table1_fingerprinting: closed/open world accuracy per browser x OS",
        "Table 1 (loop-counting vs cache-occupancy attack [65])", scale);

    const std::vector<Row> rows = {
        {"Chrome", "Linux", web::BrowserProfile::chrome(),
         sim::MachineConfig::linuxDesktop(), 0.966, 0.914, 0.972, 0.864},
        {"Chrome", "Windows", web::BrowserProfile::chrome(),
         sim::MachineConfig::windowsWorkstation(), 0.925, 0.800, 0.945,
         0.861},
        {"Chrome", "macOS", web::BrowserProfile::chrome(),
         sim::MachineConfig::macbook(), 0.944, -1, 0.943, -1},
        {"Firefox", "Linux", web::BrowserProfile::firefox(),
         sim::MachineConfig::linuxDesktop(), 0.953, 0.800, 0.964, 0.874},
        {"Firefox", "Windows", web::BrowserProfile::firefox(),
         sim::MachineConfig::windowsWorkstation(), 0.919, 0.877, 0.937,
         0.877},
        {"Firefox", "macOS", web::BrowserProfile::firefox(),
         sim::MachineConfig::macbook(), 0.944, -1, 0.950, -1},
        {"Safari", "macOS", web::BrowserProfile::safari(),
         sim::MachineConfig::macbook(), 0.966, 0.726, 0.967, 0.805},
        {"Tor", "Linux", web::BrowserProfile::torBrowser(),
         sim::MachineConfig::linuxDesktop(), 0.498, 0.467, 0.629, 0.629},
    };

    auto fmt = [](double v) {
        return v < 0 ? std::string("-") : formatPercent(v);
    };

    Table closed({"browser", "os", "loop paper", "loop meas",
                  "cache paper", "cache meas", "p(loop>cache)"});
    Table open({"browser", "os", "sens meas", "non-sens meas",
                "comb paper", "comb meas", "cache comb paper",
                "cache comb meas"});

    for (const auto &row : rows) {
        core::CollectionConfig cfg;
        cfg.machine = row.machine;
        cfg.browser = row.profile;
        cfg.seed = scale.seed;

        auto pipeline = bench::makePipeline(scale);
        pipeline.openWorldExtra = scale.openWorldExtra;

        // Both attackers observe the same victim: one shared-timeline
        // collection halves the dominant phase without changing either
        // attacker's traces.
        const attack::AttackerKind kinds[] = {
            attack::AttackerKind::LoopCounting,
            attack::AttackerKind::SweepCounting};
        const auto results =
            core::runFingerprintingSharedOrDie(cfg, kinds, pipeline);
        const auto &loop_result = results[0];
        const auto &sweep_result = results[1];

        const auto ttest = stats::welchTTest(
            loop_result.closedWorld.foldTop1,
            sweep_result.closedWorld.foldTop1);

        const std::string slug =
            std::string(row.browser) + "_" + row.os + "_";
        report.addResult(slug + "loop", loop_result);
        report.addResult(slug + "sweep", sweep_result);

        closed.addRow({row.browser, row.os, fmt(row.paperLoopClosed),
                       formatPercentPm(loop_result.closedWorld.top1Mean,
                                       loop_result.closedWorld.top1Std),
                       fmt(row.paperCacheClosed),
                       formatPercentPm(sweep_result.closedWorld.top1Mean,
                                       sweep_result.closedWorld.top1Std),
                       "p=" + formatDouble(ttest.pTwoSided, 4)});
        open.addRow(
            {row.browser, row.os,
             formatPercent(loop_result.openWorld.openWorld
                               .sensitiveAccuracy),
             formatPercent(loop_result.openWorld.openWorld
                               .nonSensitiveAccuracy),
             fmt(row.paperLoopOpen),
             formatPercent(
                 loop_result.openWorld.openWorld.combinedAccuracy),
             fmt(row.paperCacheOpen),
             formatPercent(
                 sweep_result.openWorld.openWorld.combinedAccuracy)});

        // Tor also gets a top-5 row in the paper (86.4% vs 71.9%).
        if (std::string(row.browser) == "Tor") {
            closed.addRow({"Tor (top5)", row.os, "86.4%",
                           formatPercentPm(loop_result.closedWorld.top5Mean,
                                           loop_result.closedWorld.top5Std),
                           "71.9%",
                           formatPercentPm(
                               sweep_result.closedWorld.top5Mean,
                               sweep_result.closedWorld.top5Std),
                           "-"});
        }
        std::printf("finished %s / %s\n", row.browser, row.os);
    }

    std::printf("\nCLOSED WORLD (top-1 accuracy, chance = %.1f%%)\n%s",
                100.0 / scale.sites, closed.render().c_str());
    std::printf("\nOPEN WORLD (combined accuracy; blind guess of "
                "non-sensitive = %.0f%% at paper scale)\n%s",
                100.0 * scale.openWorldExtra /
                    (scale.openWorldExtra +
                     scale.sites * scale.tracesPerSite),
                open.render().c_str());
    std::printf("\nexpected shape: loop >= cache everywhere; Tor lowest; "
                "Windows below Linux.\n");
    report.write();
    return 0;
}
