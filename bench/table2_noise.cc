/**
 * @file
 * Table 2 (plus the Section 4.2 background-noise experiment and the
 * Section 6.2 countermeasure overhead).
 *
 * Controlled comparison on one machine (Chrome on Linux): the
 * loop-counting and sweep-counting attackers under (a) no noise,
 * (b) the cache-sweep countermeasure of Shusterman et al., and (c) the
 * spurious-interrupt countermeasure introduced by the paper.
 *
 * Expected shape (paper): loop 95.7 / 92.6 / 62.0; sweep 78.4 / 76.2 /
 * 55.3 — interrupt noise devastates both attacks while cache noise
 * barely registers, and the loop attacker dominates throughout.
 * Additionally: Slack+Spotify background noise only drops the loop
 * attack from 96.6% to 93.4%, and the interrupt countermeasure costs
 * ~15.7% page-load time.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_common.hh"
#include "defense/noise.hh"

using namespace bigfish;

namespace {

double
measure(const core::CollectionConfig &config,
        const core::PipelineConfig &pipeline, bench::BenchReport &report,
        const std::string &label)
{
    const auto result = core::runFingerprintingOrDie(config, pipeline);
    report.addResult(label, result);
    return result.closedWorld.top1Mean;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("table2_noise", scale);
    bench::printBanner(
        "table2_noise: attacks under noise-injection countermeasures",
        "Table 2 + Sections 4.2/6.2 (Chrome on Linux, closed world)",
        scale);

    const auto pipeline = bench::makePipeline(scale);

    core::CollectionConfig base;
    base.machine = sim::MachineConfig::linuxDesktop();
    base.browser = web::BrowserProfile::chrome();
    base.seed = scale.seed;

    const struct
    {
        const char *name;
        double paperNone, paperCache, paperIrq;
    } attackers[] = {
        {"loop-counting", 0.957, 0.926, 0.620},
        {"sweep-counting", 0.784, 0.762, 0.553},
    };
    const attack::AttackerKind kinds[] = {
        attack::AttackerKind::LoopCounting,
        attack::AttackerKind::SweepCounting};

    core::CollectionConfig cache_noise = base;
    cache_noise.cacheSweepNoise = true;
    core::CollectionConfig irq_noise = base;
    irq_noise.spuriousInterruptNoise = true;
    const struct
    {
        const char *name;
        const char *slug;
        const core::CollectionConfig &config;
    } variants[] = {
        {"no noise", "none", base},
        {"cache-sweep noise", "cache_noise", cache_noise},
        {"interrupt noise", "irq_noise", irq_noise},
    };

    // Loop- and sweep-counting attack the same victim under each noise
    // condition: shared-timeline collection runs the expensive synthesis
    // once per condition instead of once per (attacker, condition).
    double acc[2][3];
    for (std::size_t v = 0; v < 3; ++v) {
        const auto results = core::runFingerprintingSharedOrDie(
            variants[v].config, kinds, pipeline);
        for (std::size_t a = 0; a < 2; ++a) {
            report.addResult(std::string(attackers[a].name) + "_" +
                                 variants[v].slug,
                             results[a]);
            acc[a][v] = results[a].closedWorld.top1Mean;
        }
        std::printf("finished loop+sweep / %s\n", variants[v].name);
    }

    Table table({"attack", "no noise (paper/meas)",
                 "cache-sweep noise (paper/meas)",
                 "interrupt noise (paper/meas)"});
    for (std::size_t a = 0; a < 2; ++a) {
        table.addRow({attackers[a].name,
                      formatPercent(attackers[a].paperNone) + " / " +
                          formatPercent(acc[a][0]),
                      formatPercent(attackers[a].paperCache) + " / " +
                          formatPercent(acc[a][1]),
                      formatPercent(attackers[a].paperIrq) + " / " +
                          formatPercent(acc[a][2])});
    }
    std::printf("\n%s", table.render().c_str());

    // Section 4.2: robustness to realistic background noise.
    core::CollectionConfig background = base;
    background.backgroundApps = true;
    const double bg_acc =
        measure(background, pipeline, report, "loop-counting_background");
    core::CollectionConfig quiet = base;
    const double quiet_acc =
        measure(quiet, pipeline, report, "loop-counting_quiet");
    std::printf("\nbackground noise (Slack + Spotify playing music):\n");
    std::printf("  paper:    96.6%% -> 93.4%%\n");
    std::printf("  measured: %s -> %s\n", formatPercent(quiet_acc).c_str(),
                formatPercent(bg_acc).c_str());

    // Section 6.2: page-load overhead of the interrupt countermeasure.
    Rng rng(scale.seed);
    const auto overlay = defense::spuriousInterruptOverlay(
        15 * kSec, defense::SpuriousInterruptParams{}, rng);
    const double overhead =
        defense::loadTimeOverheadFactor(overlay, 4) - 1.0;
    std::printf("\ncountermeasure page-load overhead:\n");
    std::printf("  paper:    3.12 s -> 3.61 s (+15.7%%)\n");
    std::printf("  measured: +%.1f%%\n", overhead * 100.0);

    std::printf("\nexpected shape: interrupt noise >> cache noise for "
                "both attacks;\nloop-counting > sweep-counting in every "
                "column; background apps cost only a few points.\n");
    report.addMetric("load_overhead_factor", overhead);
    report.write();
    return 0;
}
