/**
 * @file
 * Table 2 (plus the Section 4.2 background-noise experiment and the
 * Section 6.2 countermeasure overhead).
 *
 * Controlled comparison on one machine (Chrome on Linux): the
 * loop-counting and sweep-counting attackers under (a) no noise,
 * (b) the cache-sweep countermeasure of Shusterman et al., and (c) the
 * spurious-interrupt countermeasure introduced by the paper.
 *
 * Expected shape (paper): loop 95.7 / 92.6 / 62.0; sweep 78.4 / 76.2 /
 * 55.3 — interrupt noise devastates both attacks while cache noise
 * barely registers, and the loop attacker dominates throughout.
 * Additionally: Slack+Spotify background noise only drops the loop
 * attack from 96.6% to 93.4%, and the interrupt countermeasure costs
 * ~15.7% page-load time.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_common.hh"
#include "defense/noise.hh"

using namespace bigfish;

namespace {

double
measure(const core::CollectionConfig &config,
        const core::PipelineConfig &pipeline)
{
    return core::runFingerprintingOrDie(config, pipeline).closedWorld.top1Mean;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::printBanner(
        "table2_noise: attacks under noise-injection countermeasures",
        "Table 2 + Sections 4.2/6.2 (Chrome on Linux, closed world)",
        scale);

    const auto pipeline = bench::makePipeline(scale);

    core::CollectionConfig base;
    base.machine = sim::MachineConfig::linuxDesktop();
    base.browser = web::BrowserProfile::chrome();
    base.seed = scale.seed;

    const struct
    {
        const char *name;
        attack::AttackerKind kind;
        double paperNone, paperCache, paperIrq;
    } attackers[] = {
        {"loop-counting", attack::AttackerKind::LoopCounting, 0.957, 0.926,
         0.620},
        {"sweep-counting", attack::AttackerKind::SweepCounting, 0.784,
         0.762, 0.553},
    };

    Table table({"attack", "no noise (paper/meas)",
                 "cache-sweep noise (paper/meas)",
                 "interrupt noise (paper/meas)"});

    for (const auto &attacker : attackers) {
        core::CollectionConfig none = base;
        none.attacker = attacker.kind;
        core::CollectionConfig cache_noise = none;
        cache_noise.cacheSweepNoise = true;
        core::CollectionConfig irq_noise = none;
        irq_noise.spuriousInterruptNoise = true;

        const double a = measure(none, pipeline);
        std::printf("finished %s / no noise\n", attacker.name);
        const double b = measure(cache_noise, pipeline);
        std::printf("finished %s / cache-sweep noise\n", attacker.name);
        const double c = measure(irq_noise, pipeline);
        std::printf("finished %s / interrupt noise\n", attacker.name);

        table.addRow({attacker.name,
                      formatPercent(attacker.paperNone) + " / " +
                          formatPercent(a),
                      formatPercent(attacker.paperCache) + " / " +
                          formatPercent(b),
                      formatPercent(attacker.paperIrq) + " / " +
                          formatPercent(c)});
    }
    std::printf("\n%s", table.render().c_str());

    // Section 4.2: robustness to realistic background noise.
    core::CollectionConfig background = base;
    background.backgroundApps = true;
    const double bg_acc = measure(background, pipeline);
    core::CollectionConfig quiet = base;
    const double quiet_acc = measure(quiet, pipeline);
    std::printf("\nbackground noise (Slack + Spotify playing music):\n");
    std::printf("  paper:    96.6%% -> 93.4%%\n");
    std::printf("  measured: %s -> %s\n", formatPercent(quiet_acc).c_str(),
                formatPercent(bg_acc).c_str());

    // Section 6.2: page-load overhead of the interrupt countermeasure.
    Rng rng(scale.seed);
    const auto overlay = defense::spuriousInterruptOverlay(
        15 * kSec, defense::SpuriousInterruptParams{}, rng);
    const double overhead =
        defense::loadTimeOverheadFactor(overlay, 4) - 1.0;
    std::printf("\ncountermeasure page-load overhead:\n");
    std::printf("  paper:    3.12 s -> 3.61 s (+15.7%%)\n");
    std::printf("  measured: +%.1f%%\n", overhead * 100.0);

    std::printf("\nexpected shape: interrupt noise >> cache noise for "
                "both attacks;\nloop-counting > sweep-counting in every "
                "column; background apps cost only a few points.\n");
    return 0;
}
