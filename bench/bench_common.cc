#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace bigfish::bench {

namespace {

long
envLong(const char *name, long fallback)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::atol(value) : fallback;
}

bool
parseFlag(const char *arg, const char *name, long &out)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = std::atol(arg + len + 1);
        return true;
    }
    return false;
}

} // namespace

BenchScale
parseScale(int argc, char **argv)
{
    BenchScale scale;
    scale.sites = static_cast<int>(envLong("BF_SITES", scale.sites));
    scale.tracesPerSite =
        static_cast<int>(envLong("BF_TRACES", scale.tracesPerSite));
    scale.openWorldExtra =
        static_cast<int>(envLong("BF_OPEN", scale.openWorldExtra));
    scale.featureLen = static_cast<std::size_t>(
        envLong("BF_FEATURES", static_cast<long>(scale.featureLen)));
    scale.folds = static_cast<int>(envLong("BF_FOLDS", scale.folds));
    scale.seed = static_cast<std::uint64_t>(envLong("BF_SEED", 2022));

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        long value = 0;
        if (parseFlag(arg, "--sites", value)) {
            scale.sites = static_cast<int>(value);
        } else if (parseFlag(arg, "--traces", value)) {
            scale.tracesPerSite = static_cast<int>(value);
        } else if (parseFlag(arg, "--open", value)) {
            scale.openWorldExtra = static_cast<int>(value);
        } else if (parseFlag(arg, "--features", value)) {
            scale.featureLen = static_cast<std::size_t>(value);
        } else if (parseFlag(arg, "--folds", value)) {
            scale.folds = static_cast<int>(value);
        } else if (parseFlag(arg, "--seed", value)) {
            scale.seed = static_cast<std::uint64_t>(value);
        } else if (std::strcmp(arg, "--paper-model") == 0) {
            scale.paperModel = true;
        } else if (std::strcmp(arg, "--full") == 0) {
            scale.sites = 100;
            scale.tracesPerSite = 100;
            scale.openWorldExtra = 5000;
            scale.folds = 10;
        } else {
            fatal(std::string("unknown flag: ") + arg +
                  " (supported: --sites= --traces= --open= --features= "
                  "--folds= --seed= --paper-model --full)");
        }
    }
    fatalIf(scale.sites < 2 || scale.tracesPerSite < 1,
            "bench scale must include >=2 sites and >=1 trace");
    return scale;
}

ml::ClassifierFactory
makeClassifier(const BenchScale &scale)
{
    ml::CnnLstmParams params = scale.paperModel
                                   ? ml::CnnLstmParams::paperScale()
                                   : ml::CnnLstmParams::traceDefaults();
    // The fingerprinting pipeline always emits the two-channel
    // (mean + dip-depth) featurization.
    params.inputChannels = 2;
    return ml::cnnLstmFactory(params);
}

core::PipelineConfig
makePipeline(const BenchScale &scale)
{
    core::PipelineConfig pipeline;
    pipeline.numSites = scale.sites;
    pipeline.tracesPerSite = scale.tracesPerSite;
    pipeline.featureLen = scale.featureLen;
    pipeline.eval.folds = scale.folds;
    pipeline.eval.seed = scale.seed;
    pipeline.factory = makeClassifier(scale);
    return pipeline;
}

void
printBanner(const std::string &experiment,
            const std::string &paper_reference, const BenchScale &scale)
{
    std::printf("================================================------\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("reproduces: %s\n", paper_reference.c_str());
    std::printf("scale: %d sites x %d traces, %zu features, %d folds, "
                "seed %llu%s\n",
                scale.sites, scale.tracesPerSite, scale.featureLen,
                scale.folds,
                static_cast<unsigned long long>(scale.seed),
                scale.paperModel ? ", paper-scale model" : "");
    std::printf("(paper scale: 100 sites x 100 traces, 10 folds; run with "
                "--full)\n");
    std::printf("================================================------\n");
}

} // namespace bigfish::bench
