#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace bigfish::bench {

namespace {

long
envLong(const char *name, long fallback)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::atol(value) : fallback;
}

bool
parseFlag(const char *arg, const char *name, long &out)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = std::atol(arg + len + 1);
        return true;
    }
    return false;
}

bool
parseStringFlag(const char *arg, const char *name, std::string &out)
{
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = arg + len + 1;
        return true;
    }
    return false;
}

} // namespace

BenchScale
parseScale(int argc, char **argv)
{
    BenchScale scale;
    scale.sites = static_cast<int>(envLong("BF_SITES", scale.sites));
    scale.tracesPerSite =
        static_cast<int>(envLong("BF_TRACES", scale.tracesPerSite));
    scale.openWorldExtra =
        static_cast<int>(envLong("BF_OPEN", scale.openWorldExtra));
    scale.featureLen = static_cast<std::size_t>(
        envLong("BF_FEATURES", static_cast<long>(scale.featureLen)));
    scale.folds = static_cast<int>(envLong("BF_FOLDS", scale.folds));
    scale.seed = static_cast<std::uint64_t>(envLong("BF_SEED", 2022));

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        long value = 0;
        if (parseFlag(arg, "--sites", value)) {
            scale.sites = static_cast<int>(value);
        } else if (parseFlag(arg, "--traces", value)) {
            scale.tracesPerSite = static_cast<int>(value);
        } else if (parseFlag(arg, "--open", value)) {
            scale.openWorldExtra = static_cast<int>(value);
        } else if (parseFlag(arg, "--features", value)) {
            scale.featureLen = static_cast<std::size_t>(value);
        } else if (parseFlag(arg, "--folds", value)) {
            scale.folds = static_cast<int>(value);
        } else if (parseFlag(arg, "--seed", value)) {
            scale.seed = static_cast<std::uint64_t>(value);
        } else if (parseFlag(arg, "--threads", value)) {
            scale.threads = static_cast<int>(value);
        } else if (parseStringFlag(arg, "--json", scale.jsonPath)) {
            // Parsed into scale.jsonPath.
        } else if (std::strcmp(arg, "--paper-model") == 0) {
            scale.paperModel = true;
        } else if (std::strcmp(arg, "--full") == 0) {
            scale.sites = 100;
            scale.tracesPerSite = 100;
            scale.openWorldExtra = 5000;
            scale.folds = 10;
        } else {
            fatal(std::string("unknown flag: ") + arg +
                  " (supported: --sites= --traces= --open= --features= "
                  "--folds= --seed= --threads= --json= --paper-model "
                  "--full)");
        }
    }
    fatalIf(scale.sites < 2 || scale.tracesPerSite < 1,
            "bench scale must include >=2 sites and >=1 trace");
    if (scale.threads > 0)
        setGlobalThreads(scale.threads);
    return scale;
}

BenchReport::BenchReport(std::string experiment, BenchScale scale)
    : experiment_(std::move(experiment)), scale_(std::move(scale)),
      start_(std::chrono::steady_clock::now())
{
}

void
BenchReport::addResult(const std::string &label,
                       const core::FingerprintResult &result)
{
    collectSeconds_ += result.collectSeconds;
    featurizeSeconds_ += result.featurizeSeconds;
    trainSeconds_ += result.trainSeconds;
    evalSeconds_ += result.evalSeconds;
    addMetric(label + "_top1", result.closedWorld.top1Mean);
    if (result.hasOpenWorld)
        addMetric(label + "_open_combined",
                  result.openWorld.openWorld.combinedAccuracy);
}

void
BenchReport::addMetric(const std::string &name, double value)
{
    metrics_.emplace_back(name, value);
}

void
BenchReport::addPhaseSeconds(const std::string &phase, double seconds)
{
    if (phase == "collect")
        collectSeconds_ += seconds;
    else if (phase == "featurize")
        featurizeSeconds_ += seconds;
    else if (phase == "train")
        trainSeconds_ += seconds;
    else if (phase == "eval")
        evalSeconds_ += seconds;
    else
        fatal("unknown bench phase: " + phase);
}

void
BenchReport::write() const
{
    if (scale_.jsonPath.empty())
        return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    FILE *f = std::fopen(scale_.jsonPath.c_str(), "w");
    fatalIf(f == nullptr,
            "cannot open --json report path " + scale_.jsonPath);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"experiment\": \"%s\",\n", experiment_.c_str());
    std::fprintf(f, "  \"threads\": %d,\n", globalThreadCount());
    std::fprintf(f,
                 "  \"scale\": {\"sites\": %d, \"tracesPerSite\": %d, "
                 "\"openWorldExtra\": %d, \"featureLen\": %zu, "
                 "\"folds\": %d, \"seed\": %llu, \"paperModel\": %s},\n",
                 scale_.sites, scale_.tracesPerSite, scale_.openWorldExtra,
                 scale_.featureLen, scale_.folds,
                 static_cast<unsigned long long>(scale_.seed),
                 scale_.paperModel ? "true" : "false");
    std::fprintf(f, "  \"wallSeconds\": %.3f,\n", wall);
    std::fprintf(f,
                 "  \"phases\": {\"collectSeconds\": %.3f, "
                 "\"featurizeSeconds\": %.3f, \"trainSeconds\": %.3f, "
                 "\"evalSeconds\": %.3f},\n",
                 collectSeconds_, featurizeSeconds_, trainSeconds_,
                 evalSeconds_);
    std::fprintf(f, "  \"metrics\": {");
    for (std::size_t i = 0; i < metrics_.size(); ++i)
        std::fprintf(f, "%s\n    \"%s\": %.6f", i > 0 ? "," : "",
                     metrics_[i].first.c_str(), metrics_[i].second);
    std::fprintf(f, "%s}\n", metrics_.empty() ? "" : "\n  ");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("report written: %s\n", scale_.jsonPath.c_str());
}

ml::ClassifierFactory
makeClassifier(const BenchScale &scale)
{
    ml::CnnLstmParams params = scale.paperModel
                                   ? ml::CnnLstmParams::paperScale()
                                   : ml::CnnLstmParams::traceDefaults();
    // The fingerprinting pipeline always emits the two-channel
    // (mean + dip-depth) featurization.
    params.inputChannels = 2;
    return ml::cnnLstmFactory(params);
}

core::PipelineConfig
makePipeline(const BenchScale &scale)
{
    core::PipelineConfig pipeline;
    pipeline.numSites = scale.sites;
    pipeline.tracesPerSite = scale.tracesPerSite;
    pipeline.featureLen = scale.featureLen;
    pipeline.eval.folds = scale.folds;
    pipeline.eval.seed = scale.seed;
    pipeline.factory = makeClassifier(scale);
    return pipeline;
}

void
printBanner(const std::string &experiment,
            const std::string &paper_reference, const BenchScale &scale)
{
    std::printf("================================================------\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("reproduces: %s\n", paper_reference.c_str());
    std::printf("scale: %d sites x %d traces, %zu features, %d folds, "
                "seed %llu%s\n",
                scale.sites, scale.tracesPerSite, scale.featureLen,
                scale.folds,
                static_cast<unsigned long long>(scale.seed),
                scale.paperModel ? ", paper-scale model" : "");
    std::printf("(paper scale: 100 sites x 100 traces, 10 folds; run with "
                "--full)\n");
    std::printf("threads: %d (--threads=N or BF_THREADS to change)\n",
                globalThreadCount());
    std::printf("================================================------\n");
}

} // namespace bigfish::bench
