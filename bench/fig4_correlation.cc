/**
 * @file
 * Figure 4: normalized traces averaged over many runs, collected with
 * the loop-counting and sweep-counting attackers on the same sites.
 *
 * The paper reports Pearson correlations between the two attackers'
 * averaged traces of r = 0.87 (nytimes.com), 0.79 (amazon.com) and
 * 0.94 (weather.com) — evidence that both attackers are shaped by the
 * same system events. We reproduce the same averaging and correlation.
 */

#include <cstdio>
#include <vector>

#include "base/table.hh"
#include "bench_common.hh"
#include "stats/descriptive.hh"
#include "web/catalog.hh"

using namespace bigfish;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("fig4_correlation", scale);
    bench::printBanner(
        "fig4_correlation: loop-counting vs sweep-counting trace shapes",
        "Figure 4 (averaged normalized traces; r = 0.87/0.79/0.94)",
        scale);

    // The paper averages 100 runs; default to a faster 30 unless --full.
    const int runs = scale.tracesPerSite >= 100 ? 100 : 30;

    core::CollectionConfig loop_config;
    loop_config.attacker = attack::AttackerKind::LoopCounting;
    loop_config.seed = scale.seed;
    core::CollectionConfig sweep_config = loop_config;
    sweep_config.attacker = attack::AttackerKind::SweepCounting;

    const core::TraceCollector loop_collector(loop_config);
    const core::TraceCollector sweep_collector(sweep_config);

    const double paper_r[] = {0.87, 0.79, 0.94};

    Table table({"website", "runs", "paper r", "measured r",
                 "loop max", "sweep max"});
    int site_index = 0;
    for (const auto &site : web::SiteCatalog::exampleSites()) {
        std::vector<std::vector<double>> loop_runs, sweep_runs;
        double loop_max = 0.0, sweep_max = 0.0;
        for (int run = 0; run < runs; ++run) {
            const auto loop = loop_collector.collectOneOrDie(site, run);
            const auto sweep = sweep_collector.collectOneOrDie(site, run);
            loop_runs.push_back(
                stats::downsample(loop.normalized(), 300));
            sweep_runs.push_back(
                stats::downsample(sweep.normalized(), 300));
            loop_max = std::max(loop_max, loop.maxCount());
            sweep_max = std::max(sweep_max, sweep.maxCount());
        }
        const double r = stats::pearson(stats::elementwiseMean(loop_runs),
                                        stats::elementwiseMean(sweep_runs));
        table.addRow({site.name, std::to_string(runs),
                      formatDouble(paper_r[site_index], 2),
                      formatDouble(r, 2), formatDouble(loop_max, 0),
                      formatDouble(sweep_max, 0)});
        ++site_index;
    }
    std::printf("\n%s\n", table.render().c_str());
    std::printf("paper context: maximum counts were ~27,000 iterations for "
                "the loop attacker\nand ~32 sweeps for the sweep attacker; "
                "averaged traces are strongly correlated.\n");
    report.write();
    return 0;
}
