/**
 * @file
 * Shared infrastructure for the experiment harnesses (one binary per
 * paper table/figure).
 *
 * Every harness accepts the same scale knobs so the whole suite can run
 * quickly by default yet scale up toward the paper's dimensions:
 *
 *   --sites=N     closed-world sites            (default 20, paper 100)
 *   --traces=N    traces per site               (default 20, paper 100)
 *   --open=N      open-world one-off traces     (default 60, paper 5000)
 *   --features=N  classifier input length       (default 256)
 *   --folds=N     cross-validation folds        (default 5, paper 10)
 *   --seed=N      master seed                   (default 2022)
 *   --paper-model use the paper's exact CNN-LSTM hyperparameters
 *   --full        paper-scale dataset (implies 100/100/5000, 10 folds)
 *
 * Environment variables BF_SITES, BF_TRACES, BF_OPEN, BF_FEATURES,
 * BF_FOLDS, BF_SEED override the defaults before flags are applied.
 */

#ifndef BF_BENCH_COMMON_HH
#define BF_BENCH_COMMON_HH

#include <cstdint>
#include <string>

#include "core/collector.hh"
#include "core/pipeline.hh"

namespace bigfish::bench {

/** Common scale knobs shared by every harness. */
struct BenchScale
{
    int sites = 20;
    int tracesPerSite = 20;
    int openWorldExtra = 60;
    std::size_t featureLen = 256;
    int folds = 5;
    std::uint64_t seed = 2022;
    bool paperModel = false;
};

/** Parses env vars then command-line flags. Unknown flags are fatal. */
BenchScale parseScale(int argc, char **argv);

/** Builds a PipelineConfig from the scale (closed world only). */
core::PipelineConfig makePipeline(const BenchScale &scale);

/** The classifier factory the scale selects. */
ml::ClassifierFactory makeClassifier(const BenchScale &scale);

/** Prints the harness banner: experiment id, paper reference, scale. */
void printBanner(const std::string &experiment,
                 const std::string &paper_reference,
                 const BenchScale &scale);

} // namespace bigfish::bench

#endif // BF_BENCH_COMMON_HH
