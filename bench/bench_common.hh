/**
 * @file
 * Shared infrastructure for the experiment harnesses (one binary per
 * paper table/figure).
 *
 * Every harness accepts the same scale knobs so the whole suite can run
 * quickly by default yet scale up toward the paper's dimensions:
 *
 *   --sites=N     closed-world sites            (default 20, paper 100)
 *   --traces=N    traces per site               (default 20, paper 100)
 *   --open=N      open-world one-off traces     (default 60, paper 5000)
 *   --features=N  classifier input length       (default 256)
 *   --folds=N     cross-validation folds        (default 5, paper 10)
 *   --seed=N      master seed                   (default 2022)
 *   --paper-model use the paper's exact CNN-LSTM hyperparameters
 *   --full        paper-scale dataset (implies 100/100/5000, 10 folds)
 *   --threads=N   worker threads (default: BF_THREADS, else hardware)
 *   --json=PATH   write a machine-readable run report to PATH
 *
 * Environment variables BF_SITES, BF_TRACES, BF_OPEN, BF_FEATURES,
 * BF_FOLDS, BF_SEED override the defaults before flags are applied.
 */

#ifndef BF_BENCH_COMMON_HH
#define BF_BENCH_COMMON_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/collector.hh"
#include "core/pipeline.hh"

namespace bigfish::bench {

/** Common scale knobs shared by every harness. */
struct BenchScale
{
    int sites = 20;
    int tracesPerSite = 20;
    int openWorldExtra = 60;
    std::size_t featureLen = 256;
    int folds = 5;
    std::uint64_t seed = 2022;
    bool paperModel = false;
    /** Worker threads (0 = pool default: BF_THREADS, else hardware). */
    int threads = 0;
    /** --json=PATH: where to write the run report; empty disables it. */
    std::string jsonPath;
};

/** Parses env vars then command-line flags. Unknown flags are fatal. */
BenchScale parseScale(int argc, char **argv);

/**
 * Machine-readable run report: wall-clock per pipeline phase
 * (collect/featurize/train/eval), thread count and headline metrics,
 * written as JSON to the --json=PATH target. Construct right after
 * parseScale() (it starts the wall clock), feed it every
 * FingerprintResult plus any headline metrics, and call write() before
 * exit; write() is a no-op when --json was not given.
 */
class BenchReport
{
  public:
    BenchReport(std::string experiment, BenchScale scale);

    /** Accumulates the run's phase timings; @p label prefixes metrics. */
    void addResult(const std::string &label,
                   const core::FingerprintResult &result);

    /** Records one headline metric (e.g. "chrome_linux_top1"). */
    void addMetric(const std::string &name, double value);

    /** Adds seconds to one phase bucket by name. */
    void addPhaseSeconds(const std::string &phase, double seconds);

    /** Writes the JSON report; no-op without --json=PATH. */
    void write() const;

  private:
    std::string experiment_;
    BenchScale scale_;
    std::chrono::steady_clock::time_point start_;
    double collectSeconds_ = 0.0;
    double featurizeSeconds_ = 0.0;
    double trainSeconds_ = 0.0;
    double evalSeconds_ = 0.0;
    std::vector<std::pair<std::string, double>> metrics_;
};

/** Builds a PipelineConfig from the scale (closed world only). */
core::PipelineConfig makePipeline(const BenchScale &scale);

/** The classifier factory the scale selects. */
ml::ClassifierFactory makeClassifier(const BenchScale &scale);

/** Prints the harness banner: experiment id, paper reference, scale. */
void printBanner(const std::string &experiment,
                 const std::string &paper_reference,
                 const BenchScale &scale);

} // namespace bigfish::bench

#endif // BF_BENCH_COMMON_HH
