/**
 * @file
 * Table 4: the loop-counting attacker against different timers —
 * Chrome's jittered 0.1 ms timer, a Tor-style quantized 100 ms timer,
 * and the paper's randomized timer at period lengths P = 5, 100 and
 * 500 ms.
 *
 * Expected shape (paper): jittered 96.6/99.4; quantized 86.0/96.9 —
 * still far above chance; randomized 1.0/5.1, 1.9/6.9, 5.2/13.7 —
 * within a few points of a blind guess even when the attacker adapts
 * its period length.
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_common.hh"

using namespace bigfish;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("table4_timer_defense", scale);
    bench::printBanner(
        "table4_timer_defense: the randomized-timer countermeasure",
        "Table 4 (Python attacker; accuracy vs timer and period P)",
        scale);

    const auto pipeline = bench::makePipeline(scale);

    struct RowSpec
    {
        const char *timer;
        const char *a_ms;
        int period_ms;
        timers::TimerSpec spec;
        double paperTop1, paperTop5;
    };
    const RowSpec rows[] = {
        {"jittered", "0.1", 5, timers::TimerSpec::jittered(100 * kUsec),
         0.966, 0.994},
        {"quantized", "100", 5, timers::TimerSpec::quantized(100 * kMsec),
         0.860, 0.969},
        {"randomized", "1", 5, timers::TimerSpec::randomizedDefense(),
         0.010, 0.051},
        {"randomized", "1", 100, timers::TimerSpec::randomizedDefense(),
         0.019, 0.069},
        {"randomized", "1", 500, timers::TimerSpec::randomizedDefense(),
         0.052, 0.137},
    };

    Table table({"timer", "A (ms)", "P (ms)", "top-1 paper", "top-1 meas",
                 "top-5 paper", "top-5 meas"});
    for (const auto &row : rows) {
        core::CollectionConfig config;
        config.browser = web::BrowserProfile::nativePython();
        config.timerOverride = row.spec;
        config.period = row.period_ms * kMsec;
        config.seed = scale.seed;
        const auto result = core::runFingerprintingOrDie(config, pipeline);
        report.addResult(std::string(row.timer) + "_p" +
                             std::to_string(row.period_ms),
                         result);
        table.addRow({row.timer, row.a_ms, std::to_string(row.period_ms),
                      formatPercent(row.paperTop1),
                      formatPercentPm(result.closedWorld.top1Mean,
                                      result.closedWorld.top1Std),
                      formatPercent(row.paperTop5),
                      formatPercent(result.closedWorld.top5Mean)});
        std::printf("finished: %s timer, P = %d ms\n", row.timer,
                    row.period_ms);
    }

    std::printf("\n%s", table.render().c_str());
    std::printf("\nchance: top-1 %.1f%%, top-5 %.1f%%\n",
                100.0 / scale.sites, 500.0 / scale.sites);
    std::printf("expected shape: quantization alone leaves the attack far "
                "above chance;\nthe randomized timer collapses it to "
                "near-chance at every period length.\n");
    report.write();
    return 0;
}
