/**
 * @file
 * Google-benchmark microbenchmarks of the core components, including
 * the ablation DESIGN.md calls out: the closed-form ExecutionEngine vs
 * a brute-force per-iteration interpreter.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "attack/attacker.hh"
#include "base/simd.hh"
#include "core/collector.hh"
#include "ktrace/attribution.hh"
#include "ml/classifier.hh"
#include "ml/conv.hh"
#include "ml/kernels.hh"
#include "ml/lstm.hh"
#include "ml/matrix.hh"
#include "sim/engine.hh"
#include "sim/synthesizer.hh"
#include "web/catalog.hh"

using namespace bigfish;

namespace {

sim::RunTimeline
benchTimeline(TimeNs duration)
{
    Rng rng(1);
    const auto activity = web::realizeWorkload(
        web::amazonSignature(0), duration, 1.0, web::RealizationNoise{},
        rng);
    sim::InterruptSynthesizer synth(sim::MachineConfig::linuxDesktop());
    Rng synth_rng(2);
    return synth.synthesize(activity, synth_rng);
}

void
BM_SynthesizeTimeline(benchmark::State &state)
{
    Rng rng(1);
    const auto activity = web::realizeWorkload(
        web::amazonSignature(0), 15 * kSec, 1.0, web::RealizationNoise{},
        rng);
    sim::InterruptSynthesizer synth(sim::MachineConfig::linuxDesktop());
    std::uint64_t seed = 0;
    for (auto _ : state) {
        Rng synth_rng(seed++);
        benchmark::DoNotOptimize(synth.synthesize(activity, synth_rng));
    }
}
BENCHMARK(BM_SynthesizeTimeline);

void
BM_EngineClosedForm(benchmark::State &state)
{
    const auto timeline = benchTimeline(15 * kSec);
    timers::PreciseTimer timer;
    for (auto _ : state) {
        sim::ExecutionEngine engine(
            timeline,
            std::vector<double>(timeline.iterCostFactor.size(), 185.0));
        sim::PeriodResult result;
        std::int64_t total = 0;
        while (engine.runPeriod(timer, 5 * kMsec, result))
            total += result.iterations;
        benchmark::DoNotOptimize(total);
    }
    state.SetLabel("15 s trace, ~81M simulated iterations");
}
BENCHMARK(BM_EngineClosedForm);

void
BM_EngineBruteForceReference(benchmark::State &state)
{
    // The ablation: what trace collection would cost without the
    // closed-form stepping (on a shorter run to stay tractable).
    const auto timeline = benchTimeline(200 * kMsec);
    timers::PreciseTimer timer;
    for (auto _ : state) {
        double t = 0.0;
        std::size_t idx = 0;
        std::int64_t total = 0;
        const double duration = static_cast<double>(timeline.duration);
        while (t < duration) {
            const TimeNs begin =
                timer.observe(static_cast<TimeNs>(std::llround(t)));
            std::int64_t counter = 0;
            while (true) {
                double rem = 185.0;
                while (idx < timeline.stolen.size() &&
                       static_cast<double>(
                           timeline.stolen[idx].arrival) <= t + rem) {
                    rem -= std::max(
                        0.0,
                        static_cast<double>(
                            timeline.stolen[idx].arrival) - t);
                    t = static_cast<double>(timeline.stolen[idx].end());
                    ++idx;
                }
                t += rem;
                ++counter;
                if (timer.observe(static_cast<TimeNs>(std::llround(t))) -
                        begin >=
                    5 * kMsec)
                    break;
                if (t >= duration)
                    break;
            }
            total += counter;
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetLabel("0.2 s trace (75x shorter than the closed-form run)");
}
BENCHMARK(BM_EngineBruteForceReference);

void
BM_CollectLoopTrace(benchmark::State &state)
{
    core::CollectionConfig config;
    const core::TraceCollector collector(config);
    const auto site = web::nytimesSignature(0);
    int run = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(collector.collectOneOrDie(site, run++));
}
BENCHMARK(BM_CollectLoopTrace);

void
BM_CollectSweepTrace(benchmark::State &state)
{
    core::CollectionConfig config;
    config.attacker = attack::AttackerKind::SweepCounting;
    const core::TraceCollector collector(config);
    const auto site = web::nytimesSignature(0);
    int run = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(collector.collectOneOrDie(site, run++));
}
BENCHMARK(BM_CollectSweepTrace);

void
BM_TimerObserve(benchmark::State &state)
{
    auto timer = timers::TimerSpec::randomizedDefense().make(3);
    TimeNs t = 0;
    for (auto _ : state) {
        t += 137 * kUsec;
        if (t > 10 * kSec)
            t = 0;
        benchmark::DoNotOptimize(timer->observe(t));
    }
}
BENCHMARK(BM_TimerObserve);

void
BM_GapDetectionAndAttribution(benchmark::State &state)
{
    const auto timeline = benchTimeline(15 * kSec);
    for (auto _ : state) {
        const auto gaps = ktrace::GapDetector().detect(timeline);
        const auto records = ktrace::KernelTracer().record(timeline);
        benchmark::DoNotOptimize(ktrace::attributeGaps(gaps, records));
    }
}
BENCHMARK(BM_GapDetectionAndAttribution);

/**
 * Old-vs-new dense-kernel comparison: matmulReference is the naive
 * i-j-k triple loop every layer used before the blocked kernels landed;
 * the optimized pairs below quantify the rewrite on a conv-sized GEMM
 * (32x48 * 48x83) and a classifier-head GEMV (20x1024 * 1024x1).
 */
void
BM_MatmulNaiveReference(benchmark::State &state)
{
    Rng rng(7);
    ml::Matrix a(32, 48), b(48, 83);
    a.randomize(rng, 1.0);
    b.randomize(rng, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ml::matmulReference(a, b));
    state.SetLabel("naive i-j-k loop (pre-rewrite kernel)");
}
BENCHMARK(BM_MatmulNaiveReference);

void
BM_MatmulOptimized(benchmark::State &state)
{
    Rng rng(7);
    ml::Matrix a(32, 48), b(48, 83);
    a.randomize(rng, 1.0);
    b.randomize(rng, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ml::matmul(a, b));
    state.SetLabel("blocked k-unrolled kernel (same shape)");
}
BENCHMARK(BM_MatmulOptimized);

void
BM_GemvNaiveReference(benchmark::State &state)
{
    Rng rng(8);
    ml::Matrix a(20, 1024), x(1024, 1);
    a.randomize(rng, 1.0);
    x.randomize(rng, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ml::matmulReference(a, x));
}
BENCHMARK(BM_GemvNaiveReference);

void
BM_GemvOptimized(benchmark::State &state)
{
    Rng rng(8);
    ml::Matrix a(20, 1024), x(1024, 1);
    a.randomize(rng, 1.0);
    x.randomize(rng, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ml::gemv(a, x));
    state.SetLabel("multi-accumulator dot kernel");
}
BENCHMARK(BM_GemvOptimized);

void
BM_Conv1DForward(benchmark::State &state)
{
    Rng rng(4);
    ml::Conv1D conv(1, 32, 8, 3, rng);
    ml::Matrix input(1, 256);
    input.randomize(rng, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(conv.forward(input, false));
}
BENCHMARK(BM_Conv1DForward);

void
BM_LstmForward(benchmark::State &state)
{
    Rng rng(5);
    ml::Lstm lstm(32, 32, rng);
    ml::Matrix input(32, 16);
    input.randomize(rng, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(lstm.forward(input, false));
}
BENCHMARK(BM_LstmForward);

void
BM_CnnLstmTrainEpochPerSample(benchmark::State &state)
{
    Rng rng(6);
    ml::Dataset train;
    for (int c = 0; c < 4; ++c) {
        for (int i = 0; i < 8; ++i) {
            std::vector<double> x(256);
            for (auto &v : x)
                v = rng.normal(0, 1);
            train.add(std::move(x), c);
        }
    }
    ml::CnnLstmParams params;
    params.maxEpochs = 1;
    params.patience = 1;
    for (auto _ : state) {
        ml::CnnLstmClassifier model(4, 256, params, 7);
        model.fit(train, train);
        benchmark::DoNotOptimize(model.predictScores(train.features[0]));
    }
    state.SetLabel("one epoch over 32 samples");
}
BENCHMARK(BM_CnnLstmTrainEpochPerSample);

/**
 * Per-ISA kernel sweep: each case runs once per simd::Tag (Arg 0..2 =
 * scalar/sse2/avx2, clamped to what the host supports) at the shapes
 * the paper model actually trains — LSTM hidden 32 over 32-sample
 * batches (gate spans of 1024 lanes), the full CNN-LSTM Adam parameter
 * block, and the conv GEMM — so the scalar row IS the before and the
 * avx2 row the after of the vectorization.
 */
simd::Tag
benchTag(benchmark::State &state)
{
    const auto requested = static_cast<simd::Tag>(state.range(0));
    const simd::Tag actual = simd::setActive(requested);
    if (actual != requested)
        state.SetLabel(std::string("host lacks ") + simd::name(requested) +
                       "; ran " + simd::name(actual));
    else
        state.SetLabel(simd::name(actual));
    return actual;
}

void
BM_KernelDotByIsa(benchmark::State &state)
{
    const simd::Tag saved = simd::active();
    benchTag(state);
    Rng rng(11);
    std::vector<float> a(1024), b(1024);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<float>(rng.normal(0, 1));
        b[i] = static_cast<float>(rng.normal(0, 1));
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ml::kernels::dot(a.data(), b.data(), a.size()));
    simd::setActive(saved);
}
BENCHMARK(BM_KernelDotByIsa)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelLstmGatesByIsa(benchmark::State &state)
{
    // One batched LSTM step at paper scale: hidden 32 x 32 samples.
    const simd::Tag saved = simd::active();
    benchTag(state);
    constexpr std::size_t kLanes = 32 * 32;
    Rng rng(12);
    std::vector<float> zi(kLanes), zf(kLanes), zg(kLanes), zo(kLanes),
        c(kLanes), h(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) {
        zi[i] = static_cast<float>(rng.normal(0, 2));
        zf[i] = static_cast<float>(rng.normal(0, 2));
        zg[i] = static_cast<float>(rng.normal(0, 2));
        zo[i] = static_cast<float>(rng.normal(0, 2));
        c[i] = static_cast<float>(rng.normal(0, 1));
    }
    for (auto _ : state) {
        std::vector<float> i2 = zi, f2 = zf, g2 = zg, o2 = zo, c2 = c;
        ml::kernels::lstmGatesForward(i2.data(), f2.data(), g2.data(),
                                      o2.data(), c2.data(), h.data(),
                                      kLanes);
        benchmark::DoNotOptimize(h.data());
    }
    simd::setActive(saved);
}
BENCHMARK(BM_KernelLstmGatesByIsa)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelAdamStepByIsa(benchmark::State &state)
{
    // The LSTM weight block of the paper model: 4H x (H + in + 1),
    // H=32, in=96 -> 16512 parameters per step.
    const simd::Tag saved = simd::active();
    benchTag(state);
    constexpr std::size_t kParams = 4 * 32 * (32 + 96 + 1);
    Rng rng(13);
    std::vector<float> p(kParams), g(kParams), m(kParams), v(kParams);
    for (std::size_t i = 0; i < kParams; ++i) {
        p[i] = static_cast<float>(rng.normal(0, 1));
        g[i] = static_cast<float>(rng.normal(0, 1));
        m[i] = static_cast<float>(rng.normal(0, 0.1));
        v[i] = std::fabs(static_cast<float>(rng.normal(0, 0.1)));
    }
    ml::kernels::AdamConsts consts;
    consts.beta1 = 0.9f;
    consts.beta2 = 0.999f;
    consts.oneMinusBeta1 = 0.1f;
    consts.oneMinusBeta2 = 0.001f;
    consts.invBiasCorrection1 = 1.0f / (1.0f - 0.81f);
    consts.invBiasCorrection2 = 1.0f / (1.0f - 0.998001f);
    consts.learningRate = 1e-3f;
    consts.epsilon = 1e-8f;
    consts.gradScale = 1.0f / 32.0f;
    for (auto _ : state) {
        ml::kernels::adamStep(p.data(), g.data(), m.data(), v.data(),
                              kParams, consts);
        benchmark::DoNotOptimize(p.data());
    }
    simd::setActive(saved);
}
BENCHMARK(BM_KernelAdamStepByIsa)->Arg(0)->Arg(1)->Arg(2);

void
BM_KernelSigmoidByIsa(benchmark::State &state)
{
    const simd::Tag saved = simd::active();
    benchTag(state);
    Rng rng(14);
    std::vector<float> base(4096);
    for (float &x : base)
        x = static_cast<float>(rng.normal(0, 4));
    for (auto _ : state) {
        std::vector<float> d = base;
        ml::kernels::sigmoid(d.data(), d.size());
        benchmark::DoNotOptimize(d.data());
    }
    simd::setActive(saved);
}
BENCHMARK(BM_KernelSigmoidByIsa)->Arg(0)->Arg(1)->Arg(2);

void
BM_MatmulByIsa(benchmark::State &state)
{
    // The conv-sized GEMM from the old/new pair above, per ISA.
    const simd::Tag saved = simd::active();
    benchTag(state);
    Rng rng(7);
    ml::Matrix a(32, 48), b(48, 83);
    a.randomize(rng, 1.0);
    b.randomize(rng, 1.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(ml::matmul(a, b));
    simd::setActive(saved);
}
BENCHMARK(BM_MatmulByIsa)->Arg(0)->Arg(1)->Arg(2);

} // namespace

BENCHMARK_MAIN();
