/**
 * @file
 * Figure 7: example outputs of the three secure timers — Tor's 100 ms
 * quantized timer, Chrome's 0.1 ms jittered timer, and the paper's
 * randomized timer — against the true time (the dashed diagonal in the
 * paper's plots).
 */

#include <cstdio>

#include "bench_common.hh"
#include "timers/timer.hh"

using namespace bigfish;

namespace {

void
dumpTimer(const char *title, timers::TimerModel &timer, TimeNs span,
          TimeNs step)
{
    std::printf("%s\n", title);
    std::printf("  %-14s %-14s %-10s\n", "real (ms)", "observed (ms)",
                "lag (ms)");
    for (TimeNs t = 0; t <= span; t += step) {
        const TimeNs obs = timer.observe(t);
        std::printf("  %-14.2f %-14.2f %-10.2f\n",
                    static_cast<double>(t) / kMsec,
                    static_cast<double>(obs) / kMsec,
                    static_cast<double>(t - obs) / kMsec);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("fig7_timer_outputs", scale);
    bench::printBanner("fig7_timer_outputs: secure timer behaviours",
                       "Figure 7 (quantized / jittered / randomized)",
                       scale);
    std::printf("\n");

    auto quantized = timers::TimerSpec::quantized(100 * kMsec)
                         .make(scale.seed);
    dumpTimer("(a) quantized timer, A = 100 ms (Tor Browser)", *quantized,
              400 * kMsec, 25 * kMsec);

    auto jittered = timers::TimerSpec::jittered(100 * kUsec)
                        .make(scale.seed);
    dumpTimer("(b) jittered timer, A = 0.1 ms (Chrome)", *jittered, kMsec,
              100 * kUsec);

    auto randomized =
        timers::TimerSpec::randomizedDefense().make(scale.seed);
    dumpTimer("(c) randomized timer, A = 1 ms, threshold = 100 ms (ours)",
              *randomized, 400 * kMsec, 25 * kMsec);

    std::printf("expected shape: (a) staircase with 100 ms steps;\n"
                "(b) tracks real time within 0.2 ms;\n"
                "(c) irregular staircase lagging real time by a random "
                "amount bounded by 100 ms.\n");
    report.write();
    return 0;
}
