/**
 * @file
 * Ablation: which simulated leakage channels carry the attack?
 *
 * DESIGN.md calls out the interrupt-stream decomposition as the central
 * modelling decision; this harness deletes one channel at a time from
 * the machine model and re-measures closed-world accuracy, quantifying
 * each channel's contribution. It also ablates the classifier (CNN-LSTM
 * vs softmax regression vs kNN) and the feature length.
 *
 * Expected shape: non-movable channels (softirqs + resched/TLB IPIs)
 * carry the majority of the signal, mirroring the paper's Section 5;
 * DVFS and contention are minor; the attack survives any single
 * deletion (defense-in-depth failure).
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_common.hh"

using namespace bigfish;

namespace {

double
accuracy(core::CollectionConfig config, core::PipelineConfig pipeline,
         bench::BenchReport &report, const std::string &label)
{
    const auto result = core::runFingerprintingOrDie(config, pipeline);
    report.addResult(label, result);
    return result.closedWorld.top1Mean;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("ablation_signal_sources", scale);
    bench::printBanner(
        "ablation_signal_sources: per-channel leakage contributions",
        "DESIGN.md ablations (not a paper table)", scale);

    const auto pipeline = bench::makePipeline(scale);

    core::CollectionConfig base;
    base.browser = web::BrowserProfile::nativePython();
    base.machine.pinnedCores = true; // Isolate the interrupt channels.
    base.seed = scale.seed;

    struct Step
    {
        const char *name;
        void (*apply)(core::CollectionConfig &);
    };
    const Step steps[] = {
        {"full model", [](core::CollectionConfig &) {}},
        {"- movable device IRQs",
         [](core::CollectionConfig &c) {
             c.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
         }},
        {"- softirq dispatch to attacker core",
         [](core::CollectionConfig &c) {
             c.machine.os.softirqShare = 0.0;
         }},
        {"- victim resched/TLB IPIs",
         [](core::CollectionConfig &c) {
             // Zeroing the victim's IPI activity is modelled by scaling
             // its rates away in the handler-cost table is not possible
             // from config, so approximate by muting the IPI handlers.
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::ReschedIpi, {1, 0.01});
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::TlbShootdown, {1, 0.01});
             c.machine.handlerCosts.contextSwitchNs = 1500;
         }},
        {"- DVFS signal",
         [](core::CollectionConfig &c) {
             c.machine.frequencyScaling = false;
         }},
        {"- tick work modulation",
         [](core::CollectionConfig &c) {
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::SoftirqTimer, {1, 0.01});
             c.machine.handlerCosts.setParams(
                 sim::InterruptKind::IrqWork, {1, 0.01});
         }},
    };

    Table table({"model (cumulative deletions)", "top-1", "delta"});
    core::CollectionConfig config = base;
    double prev = -1.0;
    int step_index = 0;
    for (const auto &step : steps) {
        step.apply(config);
        const double acc =
            accuracy(config, pipeline, report,
                     "channel_step" + std::to_string(step_index++));
        table.addRow({step.name, formatPercent(acc),
                      prev < 0 ? std::string("-")
                               : formatDouble((acc - prev) * 100.0, 1)});
        prev = acc;
        std::printf("finished: %s\n", step.name);
    }
    std::printf("\nLEAKAGE-CHANNEL ABLATION (chance = %.1f%%)\n%s",
                100.0 / scale.sites, table.render().c_str());

    // Classifier ablation on the unmodified attack.
    Table clf({"classifier", "top-1"});
    struct ClfRow
    {
        const char *name;
        ml::ClassifierFactory factory;
    };
    const ClfRow classifiers[] = {
        {"cnn-lstm (paper architecture)", bench::makeClassifier(scale)},
        {"softmax regression", ml::softmaxRegressionFactory()},
        {"kNN (k=5)", ml::knnFactory(5)},
    };
    int clf_index = 0;
    for (const auto &row : classifiers) {
        auto p = pipeline;
        p.factory = row.factory;
        clf.addRow(
            {row.name,
             formatPercent(accuracy(
                 base, p, report,
                 "classifier" + std::to_string(clf_index++)))});
        std::printf("finished classifier: %s\n", row.name);
    }
    std::printf("\nCLASSIFIER ABLATION\n%s", clf.render().c_str());

    // Feature-length ablation.
    Table feat({"feature length", "top-1"});
    for (std::size_t len : {64u, 128u, 256u, 512u}) {
        auto p = pipeline;
        p.featureLen = len;
        feat.addRow({std::to_string(len),
                     formatPercent(accuracy(base, p, report,
                                            "features" +
                                                std::to_string(len)))});
        std::printf("finished feature length: %zu\n", len);
    }
    std::printf("\nFEATURE-LENGTH ABLATION\n%s", feat.render().c_str());
    report.write();
    return 0;
}
