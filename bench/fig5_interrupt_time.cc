/**
 * @file
 * Figure 5 + the Section 5.2 attribution headline.
 *
 * With movable IRQs pinned away from the attacker's core, the eBPF
 * tracer measures the share of each 100 ms interval spent in interrupt
 * handlers (split softirq vs rescheduling IPI) averaged over many runs
 * of the three example sites — the profile that visually matches the
 * Figure 3 trace strips. The harness also reports the fraction of
 * user-space execution gaps >100 ns attributable to interrupts, which
 * the paper finds to exceed 99%.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "ktrace/attribution.hh"
#include "stats/descriptive.hh"
#include "web/catalog.hh"

using namespace bigfish;

namespace {

void
renderSeries(const char *label, const std::vector<double> &series)
{
    const double peak = stats::maxValue(series);
    std::printf("  %-10s|", label);
    for (double v : series) {
        const int level =
            peak > 0.0 ? std::min(9, static_cast<int>(v / peak * 9.99))
                       : 0;
        std::printf("%c", " .:-=+*#%@"[level]);
    }
    std::printf("| peak %.2f%%\n", peak * 100.0);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("fig5_interrupt_time", scale);
    bench::printBanner(
        "fig5_interrupt_time: time spent in interrupt handlers",
        "Figure 5 + Section 5.2 (>99% of gaps >100 ns are interrupts)",
        scale);

    // Paper setup: irqbalance pins IRQs away; attacker pinned to a core.
    core::CollectionConfig config;
    config.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    config.machine.pinnedCores = true;
    config.browser = web::BrowserProfile::nativeRust();
    config.seed = scale.seed;
    const core::TraceCollector collector(config);

    const int runs = scale.tracesPerSite >= 100 ? 100 : 25;
    std::size_t total_gaps = 0, attributed = 0;

    std::printf("\n%% of each 100 ms interval spent in non-movable "
                "interrupt handlers (averaged over %d runs):\n\n", runs);

    for (const auto &site : web::SiteCatalog::exampleSites()) {
        std::vector<std::vector<double>> softirq_runs, resched_runs,
            total_runs;
        for (int run = 0; run < runs; ++run) {
            const auto timeline = collector.synthesizeTimeline(site, run);
            const auto records = ktrace::KernelTracer().record(timeline);
            const auto profile = ktrace::KernelTracer::profile(
                records, timeline.duration);
            softirq_runs.push_back(profile.softirqFraction);
            resched_runs.push_back(profile.reschedFraction);
            total_runs.push_back(profile.totalFraction);

            const auto gap_report = ktrace::summarize(ktrace::attributeGaps(
                ktrace::GapDetector().detect(timeline), records));
            total_gaps += gap_report.totalGaps;
            attributed += gap_report.attributedToInterrupt;
        }
        std::printf("%s (0 .. 15 s)\n", site.name.c_str());
        renderSeries("softirq", stats::elementwiseMean(softirq_runs));
        renderSeries("resched", stats::elementwiseMean(resched_runs));
        renderSeries("total", stats::elementwiseMean(total_runs));
        std::printf("\n");
    }

    const double fraction = total_gaps > 0
                                ? static_cast<double>(attributed) /
                                      static_cast<double>(total_gaps)
                                : 0.0;
    std::printf("gap attribution (threshold 100 ns):\n");
    std::printf("  paper:    >99%% of gaps caused by interrupts\n");
    std::printf("  measured: %.2f%% of %zu gaps attributed to "
                "interrupts\n", fraction * 100.0, total_gaps);
    std::printf("\nexpected shape: nytimes interrupt time concentrated in "
                "the first ~4 s;\namazon spikes near 5 s and 10 s; weather "
                "shows recurring resched activity.\n");
    report.write();
    return 0;
}
