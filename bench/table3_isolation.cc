/**
 * @file
 * Table 3: the Python loop-counting attacker under incrementally
 * stronger isolation mechanisms.
 *
 * Each configuration inherits all previous mechanisms:
 *   default -> +disable frequency scaling -> +pin to separate cores
 *   -> +remove (movable) IRQ interrupts -> +run in separate VMs.
 *
 * Expected shape (paper): 95.2 / 94.2 / 94.0 / 88.2 / 91.6 top-1 —
 * small dips for DVFS and pinning, a visible dip when movable IRQs
 * leave, and a *rise* under VM isolation (interrupt amplification).
 */

#include <cstdio>

#include "base/table.hh"
#include "bench_common.hh"

using namespace bigfish;

int
main(int argc, char **argv)
{
    const auto scale = bench::parseScale(argc, argv);
    bench::BenchReport report("table3_isolation", scale);
    bench::printBanner(
        "table3_isolation: isolation mechanisms vs the Python attacker",
        "Table 3 (incremental isolation; top-1/top-5 accuracy)", scale);

    const auto pipeline = bench::makePipeline(scale);

    core::CollectionConfig config;
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::nativePython();
    config.seed = scale.seed;

    struct Step
    {
        const char *name;
        double paperTop1, paperTop5;
        void (*apply)(core::CollectionConfig &);
    };
    const Step steps[] = {
        {"default", 0.952, 0.991, [](core::CollectionConfig &) {}},
        {"+ disable frequency scaling", 0.942, 0.986,
         [](core::CollectionConfig &c) {
             c.machine.frequencyScaling = false;
         }},
        {"+ pin to separate cores", 0.940, 0.983,
         [](core::CollectionConfig &c) { c.machine.pinnedCores = true; }},
        {"+ remove IRQ interrupts", 0.882, 0.973,
         [](core::CollectionConfig &c) {
             c.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
         }},
        {"+ run in separate VMs", 0.916, 0.973,
         [](core::CollectionConfig &c) { c.machine.vmIsolation = true; }},
    };

    Table table({"isolation mechanism", "top-1 paper", "top-1 meas",
                 "top-5 paper", "top-5 meas"});
    int step_index = 0;
    for (const auto &step : steps) {
        step.apply(config); // Mechanisms accumulate.
        const auto result = core::runFingerprintingOrDie(config, pipeline);
        report.addResult("isolation_step" + std::to_string(step_index++),
                         result);
        table.addRow({step.name, formatPercent(step.paperTop1),
                      formatPercentPm(result.closedWorld.top1Mean,
                                      result.closedWorld.top1Std),
                      formatPercent(step.paperTop5),
                      formatPercent(result.closedWorld.top5Mean)});
        std::printf("finished: %s\n", step.name);
    }

    std::printf("\n%s", table.render().c_str());
    std::printf("\nexpected shape: small dips from DVFS/pinning; a clear "
                "dip when movable IRQs\nare removed; accuracy *recovers* "
                "under VM isolation (handler amplification).\n"
                "Takeaway 3: no isolation mechanism stops the attack.\n");
    report.write();
    return 0;
}
