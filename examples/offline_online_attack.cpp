/**
 * @file
 * The paper's two-phase attack workflow as two decoupled stages:
 *
 *   offline phase — collect labeled traces on an attacker-controlled
 *   machine, save them to disk, train the classifier, save the weights;
 *
 *   online phase  — reload the weights into a freshly constructed model
 *   and classify new "victim" traces it has never seen.
 *
 * Demonstrates trace CSV persistence (attack/trace_io.hh) and model
 * weight persistence (ml/serialize.hh).
 *
 * Usage:
 *   offline_online_attack [work_dir]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "attack/trace_io.hh"
#include "core/collector.hh"
#include "core/pipeline.hh"
#include "ml/serialize.hh"
#include "web/catalog.hh"

using namespace bigfish;

int
main(int argc, char **argv)
{
    const std::string dir = argc > 1 ? argv[1] : "/tmp";
    const std::string trace_path = dir + "/bigfish_traces.csv";
    const std::string weight_path = dir + "/bigfish_model.txt";

    const int sites = 8;
    const int traces_per_site = 14;
    const std::size_t feature_len = 256;

    core::CollectionConfig config;
    config.browser = web::BrowserProfile::chrome();
    config.seed = 777;
    const web::SiteCatalog catalog(sites, 7);

    // ---- Offline phase -------------------------------------------------
    std::printf("[offline] collecting %d x %d traces...\n", sites,
                traces_per_site);
    const core::TraceCollector collector(config);
    const auto trainset =
        collector.collectClosedWorldOrDie(catalog, traces_per_site);
    attack::saveTracesOrDie(trace_path, trainset);
    std::printf("[offline] saved %zu traces to %s\n", trainset.size(),
                trace_path.c_str());

    // Reload from disk (proving the training pipeline runs off CSV).
    const auto reloaded = attack::loadTracesOrDie(trace_path);
    const auto data = core::toDataset(reloaded, feature_len, sites);

    ml::CnnLstmParams params = ml::CnnLstmParams::traceDefaults();
    ml::CnnLstmClassifier model(sites, data.featureLen(), params, 42);
    std::printf("[offline] training on reloaded traces...\n");
    model.fit(data, data);
    ml::saveWeightsOrDie(weight_path, model.network());
    std::printf("[offline] saved weights (%zu parameters) to %s\n",
                model.network().numParameters(), weight_path.c_str());

    // ---- Online phase --------------------------------------------------
    // A fresh process would construct the same architecture and load the
    // weights; we simulate that with a second model instance seeded
    // differently (so its random init is provably overwritten).
    ml::CnnLstmClassifier online(sites, data.featureLen(), params, 999);
    ml::loadWeightsOrDie(weight_path, online.network());

    std::printf("[online] classifying 3 fresh victim page loads:\n");
    int hits = 0, total = 0;
    for (SiteId id = 0; id < sites; id += 3) {
        // Run indices beyond the training range = unseen loads.
        const auto victim_trace =
            collector.collectOneOrDie(catalog.site(id), traces_per_site + 5);
        attack::TraceSet one;
        one.add(victim_trace);
        const auto features = core::toDataset(one, feature_len, sites);
        const Label predicted = online.predict(features.features[0]);
        std::printf("  victim loaded %-20s -> predicted %s\n",
                    catalog.site(id).name.c_str(),
                    catalog.site(predicted).name.c_str());
        ++total;
        if (predicted == id)
            ++hits;
    }
    std::printf("[online] %d/%d correct\n", hits, total);
    return 0;
}
