/**
 * @file
 * Quickstart: collect loop-counting traces for three example websites
 * and classify them with the CNN-LSTM model.
 *
 * This walks the library's three core steps in ~60 lines:
 *   1. Describe the attack setup (machine + browser + attacker).
 *   2. Collect labeled traces while the simulated victim loads sites.
 *   3. Train/evaluate the classifier with cross-validation.
 */

#include <cstdio>

#include "core/collector.hh"
#include "core/pipeline.hh"
#include "stats/descriptive.hh"
#include "web/catalog.hh"

using namespace bigfish;

int
main()
{
    // 1. Attack setup: a 4-core Linux desktop, Chrome's jittered 0.1 ms
    //    timer, the loop-counting attacker with P = 5 ms.
    core::CollectionConfig config;
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::chrome();
    config.attacker = attack::AttackerKind::LoopCounting;
    config.seed = 2022;

    const core::TraceCollector collector(config);

    // 2. Collect a few traces of the paper's three running examples.
    const auto sites = web::SiteCatalog::exampleSites();
    std::printf("Collecting example traces (15 s victim page loads)...\n");
    for (const auto &site : sites) {
        const attack::Trace trace = collector.collectOneOrDie(site, 0);
        std::printf(
            "  %-14s %4zu periods   counter: min %7.0f  mean %7.0f  "
            "max %7.0f\n",
            site.name.c_str(), trace.size(),
            stats::minValue(trace.counts), stats::mean(trace.counts),
            trace.maxCount());
    }

    // 3. Fingerprint a small closed world end to end.
    core::PipelineConfig pipeline;
    pipeline.numSites = 8;
    pipeline.tracesPerSite = 12;
    pipeline.featureLen = 256;
    pipeline.eval.folds = 4;
    pipeline.eval.seed = 7;

    std::printf("\nTraining the CNN-LSTM on %d sites x %d traces...\n",
                pipeline.numSites, pipeline.tracesPerSite);
    const auto result = core::runFingerprintingOrDie(config, pipeline);
    std::printf("closed-world accuracy: top-1 %.1f%%  top-%d %.1f%%\n",
                result.closedWorld.top1Mean * 100.0,
                result.closedWorld.topK,
                result.closedWorld.topKMean * 100.0);
    std::printf("(chance would be %.1f%%)\n", 100.0 / pipeline.numSites);
    return 0;
}
