/**
 * @file
 * Fault injection: re-run the fingerprinting evaluation while the
 * platform misbehaves, and watch the pipeline degrade gracefully.
 *
 * The paper shows the attack survives *noise*; this example shows the
 * reproduction also survives outright *faults*: lost and re-delivered
 * interrupts, a skewed attacker clock that occasionally steps backwards,
 * attacker stalls, and traces truncated mid-collection. Unusable traces
 * are dropped with accounting (FingerprintResult::droppedTraces) instead
 * of aborting the run, and every fault decision is derived from
 * FaultConfig::seed, so a faulted run is bit-reproducible.
 */

#include <cstdio>

#include "core/collector.hh"
#include "core/pipeline.hh"
#include "ml/classifier.hh"

using namespace bigfish;

int
main()
{
    core::CollectionConfig config;
    config.seed = 2022;

    core::PipelineConfig pipeline;
    pipeline.numSites = 6;
    pipeline.tracesPerSite = 10;
    pipeline.featureLen = 192;
    pipeline.eval.folds = 4;
    // kNN keeps this demo fast; swap in cnnLstmFactory() for the
    // paper's classifier.
    pipeline.factory = ml::knnFactory(3);

    std::printf("Baseline (no faults)...\n");
    const auto clean = core::runFingerprintingOrDie(config, pipeline);
    std::printf("  top-1 %.1f%%  (%zu traces collected, %zu dropped)\n\n",
                clean.closedWorld.top1Mean * 100.0,
                clean.collectedTraces, clean.droppedTraces);

    // A hostile platform: 10% of interrupts never delivered, 5%
    // re-delivered late, the attacker's clock 100 ppm fast with rare
    // backward steps, two stalls per second, and one trace in five cut
    // off almost immediately (the victim navigating away), leaving too
    // few periods to be usable.
    config.faults.dropInterruptProb = 0.10;
    config.faults.duplicateInterruptProb = 0.05;
    config.faults.timerSkewPpm = 100.0;
    config.faults.timerBackstepProb = 0.01;
    config.faults.stallsPerSecond = 2.0;
    config.faults.truncateProb = 0.20;
    config.faults.truncateKeepMin = 0.0;
    config.faults.truncateKeepMax = 0.002;
    config.faults.seed = 7;

    std::printf("Same evaluation under injected faults...\n");
    const auto faulted = core::runFingerprintingOrDie(config, pipeline);
    std::printf("  top-1 %.1f%%  (%zu traces collected, %zu dropped)\n",
                faulted.closedWorld.top1Mean * 100.0,
                faulted.collectedTraces, faulted.droppedTraces);
    std::printf("  accuracy delta vs clean: %+.1f points; chance %.1f%%\n",
                (faulted.closedWorld.top1Mean -
                 clean.closedWorld.top1Mean) * 100.0,
                100.0 / pipeline.numSites);

    // Deterministic: the same fault seed replays the identical run.
    const auto again = core::runFingerprintingOrDie(config, pipeline);
    std::printf("  replay with same fault seed: top-1 %.1f%% "
                "(%s)\n",
                again.closedWorld.top1Mean * 100.0,
                again.closedWorld.top1Mean ==
                        faulted.closedWorld.top1Mean
                    ? "bit-identical"
                    : "MISMATCH");
    return 0;
}
