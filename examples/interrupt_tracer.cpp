/**
 * @file
 * The eBPF-toolset scenario (the paper's Section 5.2 methodology):
 * run the user-space gap detector and the kernel tracer over the same
 * page load, join the two event streams, and print the attribution
 * report plus per-kind gap statistics.
 *
 * Usage:
 *   interrupt_tracer [site_index 0..2] [runs]
 */

#include <cstdio>
#include <cstdlib>

#include "core/collector.hh"
#include "ktrace/attribution.hh"
#include "stats/descriptive.hh"
#include "web/catalog.hh"

using namespace bigfish;

int
main(int argc, char **argv)
{
    const int site_index = argc > 1 ? std::atoi(argv[1]) : 0;
    const int runs = argc > 2 ? std::atoi(argv[2]) : 10;

    const auto sites = web::SiteCatalog::exampleSites();
    const auto &site = sites[static_cast<std::size_t>(site_index) %
                             sites.size()];

    // Paper setup: Rust gap detector on a pinned core, movable IRQs
    // bound away by irqbalance — so observed gaps come from the
    // non-movable interrupts the kernel cannot isolate.
    core::CollectionConfig config;
    config.browser = web::BrowserProfile::nativeRust();
    config.machine.pinnedCores = true;
    config.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    config.seed = 99;
    const core::TraceCollector collector(config);

    std::printf("tracing %d loads of %s "
                "(gap detector + kernel tracer on one clock)\n\n",
                runs, site.name.c_str());

    std::size_t total_gaps = 0, interrupt_gaps = 0, any_gaps = 0;
    std::vector<double> per_kind[sim::kNumInterruptKinds];
    for (int run = 0; run < runs; ++run) {
        const auto timeline = collector.synthesizeTimeline(site, run);
        const auto gaps = ktrace::GapDetector().detect(timeline);
        const auto records = ktrace::KernelTracer().record(timeline);
        const auto attributed = ktrace::attributeGaps(gaps, records);
        const auto report = ktrace::summarize(attributed);
        total_gaps += report.totalGaps;
        interrupt_gaps += report.attributedToInterrupt;
        any_gaps += report.attributedToAny;
        for (int k = 0; k < sim::kNumInterruptKinds; ++k) {
            const auto lengths = ktrace::gapLengthsForKind(
                attributed, static_cast<sim::InterruptKind>(k));
            per_kind[k].insert(per_kind[k].end(), lengths.begin(),
                               lengths.end());
        }
    }

    std::printf("gaps longer than 100 ns:        %zu\n", total_gaps);
    std::printf("attributed to interrupts:       %.2f%%  "
                "(paper: over 99%%)\n",
                100.0 * static_cast<double>(interrupt_gaps) /
                    static_cast<double>(total_gaps));
    std::printf("attributed to any kernel event: %.2f%%\n\n",
                100.0 * static_cast<double>(any_gaps) /
                    static_cast<double>(total_gaps));

    std::printf("%-18s %8s %10s %10s %10s\n", "interrupt kind", "gaps",
                "p50 (us)", "p90 (us)", "max (us)");
    for (int k = 0; k < sim::kNumInterruptKinds; ++k) {
        auto &lengths = per_kind[k];
        if (lengths.empty())
            continue;
        for (double &v : lengths)
            v /= 1000.0;
        std::printf("%-18s %8zu %10.1f %10.1f %10.1f\n",
                    sim::interruptKindName(
                        static_cast<sim::InterruptKind>(k))
                        .c_str(),
                    lengths.size(), stats::quantile(lengths, 0.5),
                    stats::quantile(lengths, 0.9),
                    stats::maxValue(lengths));
    }
    std::printf("\nall interrupt gaps exceed the ~1.5 us context-switch "
                "floor, and softirq/IRQ-work\ngaps include the timer tick "
                "they piggyback on — exactly Figure 6's structure.\n");
    return 0;
}
