/**
 * @file
 * Continuous-monitoring scenario: the victim browses from page to page
 * while the attacker records ONE long trace, then segments it at
 * detected navigations and classifies each visit — the deployment mode
 * a real attacker faces (the paper's evaluation uses per-load traces).
 *
 * Usage:
 *   continuous_monitoring [visits] [sites]
 */

#include <cstdio>
#include <cstdlib>

#include "attack/segmentation.hh"
#include "core/collector.hh"
#include "core/pipeline.hh"
#include "web/session.hh"

using namespace bigfish;

int
main(int argc, char **argv)
{
    const int visits = argc > 1 ? std::atoi(argv[1]) : 6;
    const int sites = argc > 2 ? std::atoi(argv[2]) : 8;
    const std::size_t feature_len = 256;

    core::CollectionConfig config;
    config.browser = web::BrowserProfile::chrome();
    config.seed = 4242;
    const web::SiteCatalog catalog(sites, 7);

    // ---- Train on ordinary per-load traces. ---------------------------
    std::printf("training on %d x 14 aligned traces...\n", sites);
    const core::TraceCollector collector(config);
    const auto trainset = collector.collectClosedWorldOrDie(catalog, 14);
    const auto train_data = core::toDataset(trainset, feature_len, sites);
    auto model = ml::cnnLstmFactory(ml::CnnLstmParams::traceDefaults())(
        sites, train_data.featureLen(), 11);
    model->fit(train_data, train_data);

    // ---- The victim browses; the attacker records one long trace. ----
    Rng session_rng(555);
    const auto session = web::BrowsingSession::random(
        catalog, visits, 12 * kSec, 20 * kSec, session_rng);
    std::printf("victim browses %d pages over %.0f s\n", visits,
                static_cast<double>(session.duration()) /
                    static_cast<double>(kSec));

    Rng realize_rng(556);
    auto activity = web::realizeSession(
        session, catalog, config.browser.loadTimeScale,
        config.realization, realize_rng);
    sim::InterruptSynthesizer synth(config.machine);
    Rng synth_rng(557);
    auto timeline = synth.synthesize(activity, synth_rng);
    Rng browser_rng(558);
    web::applyBrowserRuntime(timeline, config.browser, browser_rng);

    auto timer = config.effectiveTimer().make(559);
    const auto long_trace = attack::collectTraceOrDie(
        config.attacker, config.attackerParams, config.machine, timeline,
        *timer, config.effectivePeriod(), 560);

    // ---- Segment and classify. ----------------------------------------
    const auto onsets = attack::detectNavigations(long_trace);
    std::printf("detected %zu navigations (ground truth: %d)\n",
                onsets.size(), visits);
    const auto slices = attack::sliceTrace(long_trace, onsets);

    const auto truth_times = session.navigationTimes();
    int matched = 0, correct = 0;
    for (const auto &slice_onset_idx : onsets) {
        const TimeNs detected_at =
            static_cast<TimeNs>(slice_onset_idx) * long_trace.period;
        // Match against the nearest ground-truth navigation.
        TimeNs best = -1;
        std::size_t best_visit = 0;
        for (std::size_t v = 0; v < truth_times.size(); ++v) {
            const TimeNs d = std::abs(detected_at - truth_times[v]);
            if (best < 0 || d < best) {
                best = d;
                best_visit = v;
            }
        }
        if (best >= 0 && best < 3 * kSec)
            ++matched;
        (void)best_visit;
    }

    for (std::size_t i = 0; i < slices.size(); ++i) {
        attack::TraceSet one;
        one.add(slices[i]);
        const auto features = core::toDataset(one, feature_len, sites);
        const Label predicted = model->predict(features.features[0]);
        // Ground truth: the visit whose navigation is nearest the slice
        // start.
        const TimeNs at =
            static_cast<TimeNs>(onsets[i]) * long_trace.period;
        std::size_t visit = 0;
        for (std::size_t v = 0; v < truth_times.size(); ++v)
            if (std::abs(at - truth_times[v]) <
                std::abs(at - truth_times[visit]))
                visit = v;
        const SiteId truth = session.steps[visit].site;
        std::printf("  t=%5.1fs  truth %-20s predicted %-20s %s\n",
                    static_cast<double>(at) / kSec,
                    catalog.site(truth).name.c_str(),
                    catalog.site(predicted).name.c_str(),
                    predicted == truth ? "OK" : "x");
        if (predicted == truth)
            ++correct;
    }
    std::printf("\nnavigation detection: %d/%zu within 3 s of truth\n",
                matched, onsets.size());
    if (!slices.empty())
        std::printf("visit classification: %d/%zu correct (chance %.0f%%)\n",
                    correct, slices.size(), 100.0 / sites);
    return 0;
}
