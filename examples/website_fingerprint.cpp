/**
 * @file
 * Full website-fingerprinting scenario (the paper's Section 4 pipeline):
 * closed world + open world, loop-counting vs sweep-counting, with a
 * per-site classification report.
 *
 * Usage:
 *   website_fingerprint [sites] [traces_per_site] [open_world_extra]
 *
 * Defaults are small (12 x 12 + 36) so the example finishes in well
 * under a minute on one core.
 */

#include <cstdio>
#include <cstdlib>

#include "core/collector.hh"
#include "core/pipeline.hh"
#include "stats/confusion.hh"
#include "web/catalog.hh"

using namespace bigfish;

namespace {

/** Trains on a fixed split and prints the per-site recall report. */
void
perSiteReport(const core::CollectionConfig &config,
              const web::SiteCatalog &catalog, int traces_per_site,
              std::size_t feature_len)
{
    const core::TraceCollector collector(config);
    const auto set = collector.collectClosedWorldOrDie(catalog, traces_per_site);
    const auto data =
        core::toDataset(set, feature_len, catalog.size());

    // 75/10/15 split by trace index (run index varies within a site).
    ml::Dataset train, val, test;
    train.numClasses = val.numClasses = test.numClasses = data.numClasses;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const int run = static_cast<int>(i) % traces_per_site;
        if (run < traces_per_site * 3 / 4)
            train.add(data.features[i], data.labels[i]);
        else if (run < traces_per_site * 17 / 20)
            val.add(data.features[i], data.labels[i]);
        else
            test.add(data.features[i], data.labels[i]);
    }

    auto model = ml::cnnLstmFactory(ml::CnnLstmParams::traceDefaults())(
        data.numClasses, data.featureLen(), 99);
    model->fit(train, val);

    stats::ConfusionMatrix confusion(catalog.size());
    for (std::size_t i = 0; i < test.size(); ++i)
        confusion.add(test.labels[i], model->predict(test.features[i]));

    std::printf("\nper-site recall on the held-out runs:\n");
    for (SiteId id = 0; id < catalog.size(); ++id) {
        std::printf("  %-22s %5.1f%%\n", catalog.site(id).name.c_str(),
                    confusion.recall(id) * 100.0);
    }
    std::printf("overall: %.1f%% (chance %.1f%%)\n",
                confusion.accuracy() * 100.0, 100.0 / catalog.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const int sites = argc > 1 ? std::atoi(argv[1]) : 12;
    const int traces = argc > 2 ? std::atoi(argv[2]) : 12;
    const int open_extra = argc > 3 ? std::atoi(argv[3]) : 36;

    core::CollectionConfig config;
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::chrome();
    config.seed = 1234;

    core::PipelineConfig pipeline;
    pipeline.numSites = sites;
    pipeline.tracesPerSite = traces;
    pipeline.openWorldExtra = open_extra;
    pipeline.featureLen = 256;
    pipeline.eval.folds = 4;

    std::printf("closed world: %d sites x %d traces; open world: +%d "
                "one-off traces\n", sites, traces, open_extra);

    // Loop-counting attack (this paper).
    config.attacker = attack::AttackerKind::LoopCounting;
    const auto loop = core::runFingerprintingOrDie(config, pipeline);
    std::printf("\nloop-counting attack:\n");
    std::printf("  closed world: top-1 %.1f%%  top-%d %.1f%%\n",
                loop.closedWorld.top1Mean * 100.0,
                loop.closedWorld.topK,
                loop.closedWorld.topKMean * 100.0);
    std::printf("  open world:   sensitive %.1f%%  non-sensitive %.1f%%  "
                "combined %.1f%%\n",
                loop.openWorld.openWorld.sensitiveAccuracy * 100.0,
                loop.openWorld.openWorld.nonSensitiveAccuracy * 100.0,
                loop.openWorld.openWorld.combinedAccuracy * 100.0);

    // Sweep-counting baseline (Shusterman et al.).
    config.attacker = attack::AttackerKind::SweepCounting;
    auto sweep_pipeline = pipeline;
    sweep_pipeline.openWorldExtra = 0;
    const auto sweep = core::runFingerprintingOrDie(config, sweep_pipeline);
    std::printf("\nsweep-counting (cache-occupancy) baseline:\n");
    std::printf("  closed world: top-1 %.1f%%  top-%d %.1f%%\n",
                sweep.closedWorld.top1Mean * 100.0,
                sweep.closedWorld.topK,
                sweep.closedWorld.topKMean * 100.0);

    // Per-site report for the loop attack.
    config.attacker = attack::AttackerKind::LoopCounting;
    const web::SiteCatalog catalog(sites, pipeline.catalogSeed);
    perSiteReport(config, catalog, traces, pipeline.featureLen);
    return 0;
}
