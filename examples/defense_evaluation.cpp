/**
 * @file
 * Countermeasure evaluation scenario (the paper's Section 6): deploy the
 * randomized timer and the spurious-interrupt injector against the
 * loop-counting attack and measure how much protection each buys, along
 * with the deployment cost.
 *
 * Usage:
 *   defense_evaluation [sites] [traces_per_site]
 */

#include <cstdio>
#include <cstdlib>

#include "core/collector.hh"
#include "core/pipeline.hh"
#include "defense/noise.hh"
#include "web/catalog.hh"

using namespace bigfish;

namespace {

double
accuracy(core::CollectionConfig config, const core::PipelineConfig &p)
{
    return core::runFingerprintingOrDie(config, p).closedWorld.top1Mean;
}

} // namespace

int
main(int argc, char **argv)
{
    const int sites = argc > 1 ? std::atoi(argv[1]) : 12;
    const int traces = argc > 2 ? std::atoi(argv[2]) : 12;

    core::PipelineConfig pipeline;
    pipeline.numSites = sites;
    pipeline.tracesPerSite = traces;
    pipeline.featureLen = 256;
    pipeline.eval.folds = 4;

    core::CollectionConfig base;
    base.browser = web::BrowserProfile::chrome();
    base.seed = 31337;

    std::printf("attack: loop-counting in Chrome, %d sites x %d traces "
                "(chance %.1f%%)\n\n", sites, traces, 100.0 / sites);

    const double undefended = accuracy(base, pipeline);
    std::printf("undefended:                 %.1f%%\n", undefended * 100.0);

    // Defense 1: the randomized timer (Section 6.1).
    core::CollectionConfig timer_defense = base;
    timer_defense.timerOverride = timers::TimerSpec::randomizedDefense();
    const double with_timer = accuracy(timer_defense, pipeline);
    std::printf("randomized timer:           %.1f%%\n", with_timer * 100.0);

    // Defense 2: spurious interrupts (Section 6.2).
    core::CollectionConfig noise_defense = base;
    noise_defense.spuriousInterruptNoise = true;
    const double with_noise = accuracy(noise_defense, pipeline);
    std::printf("spurious interrupts:        %.1f%%\n", with_noise * 100.0);

    // Both at once (not in the paper, but the API composes freely).
    core::CollectionConfig both = noise_defense;
    both.timerOverride = timers::TimerSpec::randomizedDefense();
    const double with_both = accuracy(both, pipeline);
    std::printf("both defenses:              %.1f%%\n\n", with_both * 100.0);

    // Deployment costs.
    Rng rng(7);
    const auto overlay = defense::spuriousInterruptOverlay(
        15 * kSec, defense::SpuriousInterruptParams{}, rng);
    std::printf("spurious-interrupt page-load overhead: +%.1f%% "
                "(paper: +15.7%%)\n",
                (defense::loadTimeOverheadFactor(overlay, 4) - 1.0) *
                    100.0);
    std::printf("randomized-timer cost: timer API resolution drops to "
                "~10-100 ms bursts;\n  no CPU overhead (paper proposes a "
                "permission model for apps needing precision).\n");
    return 0;
}
