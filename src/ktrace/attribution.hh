/**
 * @file
 * Attribution: joining the GapDetector's user-space gaps against the
 * KernelTracer's handler log (Section 5.2).
 *
 * A gap is *attributed* when at least one traceable interrupt record
 * overlaps it. The paper's headline result — over 99% of gaps longer
 * than 100 ns are caused by interrupts — is reproduced by this join;
 * the unattributed residue comes from untraceable SMI-like stalls (and,
 * in the paper, Turbo Boost artifacts).
 *
 * The join also produces Figure 6's per-kind gap-length distributions:
 * each gap is labeled with the kinds of the records inside it, so a gap
 * containing a timer tick plus piggybacked IRQ work contributes its
 * *total* length to both kinds' distributions — which is why the
 * IRQ-work spike lines up with the timer-interrupt spike in the paper.
 */

#ifndef BF_KTRACE_ATTRIBUTION_HH
#define BF_KTRACE_ATTRIBUTION_HH

#include <array>
#include <vector>

#include "ktrace/gap_detector.hh"
#include "ktrace/tracer.hh"

namespace bigfish::ktrace {

/** One gap together with the interrupt kinds found inside it. */
struct AttributedGap
{
    Gap gap;
    /** Per-kind flag: did a record of this kind overlap the gap? */
    std::array<bool, sim::kNumInterruptKinds> kinds{};
    /** True when any traceable *interrupt* record overlaps the gap. */
    bool attributedToInterrupt = false;
    /** True when any traceable record (incl. preemption) overlaps. */
    bool attributedToAny = false;
};

/** Aggregate attribution statistics. */
struct AttributionReport
{
    std::size_t totalGaps = 0;
    std::size_t attributedToInterrupt = 0;
    std::size_t attributedToAny = 0;

    /** Fraction of gaps explained by interrupts (the >99% result). */
    double interruptFraction() const
    {
        return totalGaps == 0 ? 0.0
                              : static_cast<double>(attributedToInterrupt) /
                                    static_cast<double>(totalGaps);
    }

    /** Fraction of gaps explained by any traceable record. */
    double anyFraction() const
    {
        return totalGaps == 0 ? 0.0
                              : static_cast<double>(attributedToAny) /
                                    static_cast<double>(totalGaps);
    }
};

/**
 * Joins gaps with tracer records (both sorted by time).
 *
 * @param gaps GapDetector output.
 * @param records KernelTracer output.
 * @return One AttributedGap per input gap, in order.
 */
std::vector<AttributedGap>
attributeGaps(const std::vector<Gap> &gaps,
              const std::vector<InterruptRecord> &records);

/** Summarizes an attribution join. */
AttributionReport summarize(const std::vector<AttributedGap> &gaps);

/**
 * Gap lengths (in ns) of all gaps containing @p kind, for Figure 6's
 * per-kind distributions.
 */
std::vector<double> gapLengthsForKind(const std::vector<AttributedGap> &gaps,
                                      sim::InterruptKind kind);

} // namespace bigfish::ktrace

#endif // BF_KTRACE_ATTRIBUTION_HH
