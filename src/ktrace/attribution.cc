#include "ktrace/attribution.hh"

namespace bigfish::ktrace {

std::vector<AttributedGap>
attributeGaps(const std::vector<Gap> &gaps,
              const std::vector<InterruptRecord> &records)
{
    std::vector<AttributedGap> out;
    out.reserve(gaps.size());
    std::size_t r = 0;
    for (const Gap &gap : gaps) {
        AttributedGap attributed;
        attributed.gap = gap;
        // Rewind is never needed: both streams are time-sorted and gap
        // ends are non-decreasing, but records may overlap multiple gaps'
        // probe windows, so only advance past records that end before the
        // gap starts.
        while (r < records.size() && records[r].end() < gap.start)
            ++r;
        for (std::size_t k = r;
             k < records.size() && records[k].start <= gap.end(); ++k) {
            if (records[k].end() < gap.start)
                continue;
            attributed.kinds[static_cast<std::size_t>(records[k].kind)] =
                true;
            attributed.attributedToAny = true;
            if (sim::isInterrupt(records[k].kind))
                attributed.attributedToInterrupt = true;
        }
        out.push_back(attributed);
    }
    return out;
}

AttributionReport
summarize(const std::vector<AttributedGap> &gaps)
{
    AttributionReport report;
    report.totalGaps = gaps.size();
    for (const AttributedGap &g : gaps) {
        if (g.attributedToInterrupt)
            ++report.attributedToInterrupt;
        if (g.attributedToAny)
            ++report.attributedToAny;
    }
    return report;
}

std::vector<double>
gapLengthsForKind(const std::vector<AttributedGap> &gaps,
                  sim::InterruptKind kind)
{
    std::vector<double> lengths;
    for (const AttributedGap &g : gaps)
        if (g.kinds[static_cast<std::size_t>(kind)])
            lengths.push_back(static_cast<double>(g.gap.length));
    return lengths;
}

} // namespace bigfish::ktrace
