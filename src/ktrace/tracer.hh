/**
 * @file
 * KernelTracer: the eBPF-analog kernel instrumentation of Section 5.2.
 *
 * The paper attaches eBPF programs to kprobes/tracepoints that fire when
 * interrupt handlers run, logging (timestamp, cause). Our tracer plays
 * the same role against the simulator: it observes the RunTimeline the
 * way kprobes observe the kernel — it sees every *traceable* handler
 * entry/exit, but not SMI-like stalls (Linux forbids probing some entry
 * paths; the paper similarly disables Turbo Boost to suppress gaps it
 * cannot attribute).
 *
 * Crucially the tracer does NOT share code with the GapDetector: the
 * attribution experiment joins two independently produced event streams
 * on their timestamps, as the paper does with the shared monotonic
 * clock.
 */

#ifndef BF_KTRACE_TRACER_HH
#define BF_KTRACE_TRACER_HH

#include <array>
#include <vector>

#include "base/types.hh"
#include "sim/run_timeline.hh"

namespace bigfish::ktrace {

/** One logged handler execution. */
struct InterruptRecord
{
    TimeNs start = 0;
    TimeNs duration = 0;
    sim::InterruptKind kind = sim::InterruptKind::TimerTick;

    TimeNs end() const { return start + duration; }
};

/** Per-100ms-interval interrupt-time aggregation (Figure 5). */
struct InterruptTimeProfile
{
    TimeNs interval = 100 * kMsec;
    /** Fraction of each interval spent in softirq handlers. */
    std::vector<double> softirqFraction;
    /** Fraction of each interval spent in rescheduling-IPI handlers. */
    std::vector<double> reschedFraction;
    /** Fraction of each interval spent in any interrupt handler. */
    std::vector<double> totalFraction;
};

/** Records interrupt handler executions from a run. */
class KernelTracer
{
  public:
    /**
     * Observes one run, logging every traceable handler execution.
     * Preemptions are visible (sched tracepoints exist) but are not
     * interrupts; untraceable stalls are invisible.
     */
    std::vector<InterruptRecord>
    record(const sim::RunTimeline &timeline) const;

    /**
     * Aggregates records into Figure 5's per-interval time-in-handler
     * fractions.
     *
     * @param records Tracer output.
     * @param duration Run length.
     * @param interval Aggregation interval (paper: 100 ms).
     */
    static InterruptTimeProfile
    profile(const std::vector<InterruptRecord> &records, TimeNs duration,
            TimeNs interval = 100 * kMsec);

    /** Count of records per interrupt kind. */
    static std::array<std::size_t, sim::kNumInterruptKinds>
    countByKind(const std::vector<InterruptRecord> &records);
};

} // namespace bigfish::ktrace

#endif // BF_KTRACE_TRACER_HH
