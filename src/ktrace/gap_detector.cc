#include "ktrace/gap_detector.hh"

#include "base/logging.hh"

namespace bigfish::ktrace {

GapDetector::GapDetector(GapDetectorConfig config) : config_(config)
{
    fatalIf(config_.pollCostNs <= 0, "poll cost must be positive");
}

std::vector<Gap>
GapDetector::detect(const sim::RunTimeline &timeline) const
{
    std::vector<Gap> gaps;
    const TimeNs poll = config_.pollCostNs;
    const auto &stolen = timeline.stolen;

    // Between stolen intervals consecutive readings differ by exactly one
    // poll cost, so only stolen time can produce a jump. Two stolen
    // intervals closer together than one poll leave no room for a reading
    // in between and are observed as a single merged gap.
    std::size_t i = 0;
    while (i < stolen.size()) {
        const TimeNs gap_start = stolen[i].arrival;
        TimeNs gap_end = stolen[i].end();
        std::size_t j = i + 1;
        while (j < stolen.size() && stolen[j].arrival - gap_end < poll) {
            gap_end = stolen[j].end();
            ++j;
        }
        // The reading before the gap happened up to one poll earlier and
        // the one after it one poll later; the observed jump is the
        // stolen span plus a single poll interval.
        const TimeNs observed = (gap_end - gap_start) + poll;
        if (observed >= config_.threshold)
            gaps.push_back({gap_start, observed});
        i = j;
    }
    return gaps;
}

} // namespace bigfish::ktrace
