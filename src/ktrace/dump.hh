/**
 * @file
 * Human-readable kernel-trace dumps (KUtrace-style).
 *
 * The paper points to KUtrace as the kind of deeper instrumentation one
 * would need to chase causal chains between non-movable interrupts and
 * other system events. This module renders a window of the tracer's
 * record stream — and, optionally, the attacker's observed gaps aligned
 * against it — as a text timeline for exactly that sort of inspection.
 */

#ifndef BF_KTRACE_DUMP_HH
#define BF_KTRACE_DUMP_HH

#include <iosfwd>
#include <vector>

#include "ktrace/attribution.hh"
#include "ktrace/gap_detector.hh"
#include "ktrace/tracer.hh"

namespace bigfish::ktrace {

/** Options for timeline dumps. */
struct DumpOptions
{
    TimeNs windowStart = 0;       ///< First timestamp to print.
    TimeNs windowEnd = 10 * kMsec; ///< One past the last timestamp.
    std::size_t maxRows = 200;    ///< Row cap (guards huge windows).
};

/**
 * Prints one row per handler record inside the window:
 *   "+1.234567ms  softirq:net_rx   4.2us"
 */
void dumpRecords(std::ostream &out,
                 const std::vector<InterruptRecord> &records,
                 const DumpOptions &options = {});

/**
 * Prints the attribution join inside the window: each observed gap with
 * its length and the kernel events found inside it, flagging any
 * unattributed gaps with "??" (the SMI-like residue).
 */
void dumpAttributedGaps(std::ostream &out,
                        const std::vector<AttributedGap> &gaps,
                        const DumpOptions &options = {});

} // namespace bigfish::ktrace

#endif // BF_KTRACE_DUMP_HH
