#include "ktrace/tracer.hh"

#include <algorithm>

namespace bigfish::ktrace {

std::vector<InterruptRecord>
KernelTracer::record(const sim::RunTimeline &timeline) const
{
    std::vector<InterruptRecord> records;
    records.reserve(timeline.stolen.size());
    for (const sim::StolenInterval &s : timeline.stolen) {
        if (!sim::isTraceable(s.kind))
            continue;
        records.push_back({s.arrival, s.duration, s.kind});
    }
    return records;
}

InterruptTimeProfile
KernelTracer::profile(const std::vector<InterruptRecord> &records,
                      TimeNs duration, TimeNs interval)
{
    InterruptTimeProfile out;
    out.interval = interval;
    const std::size_t n =
        static_cast<std::size_t>((duration + interval - 1) / interval);
    out.softirqFraction.assign(n, 0.0);
    out.reschedFraction.assign(n, 0.0);
    out.totalFraction.assign(n, 0.0);

    for (const InterruptRecord &r : records) {
        if (!sim::isInterrupt(r.kind))
            continue;
        // Spread the handler's duration over the intervals it overlaps.
        TimeNs t = r.start;
        while (t < r.end() && t < duration) {
            const std::size_t idx = static_cast<std::size_t>(t / interval);
            const TimeNs bin_end =
                std::min((static_cast<TimeNs>(idx) + 1) * interval,
                         duration);
            const TimeNs slice = std::min(r.end(), bin_end) - t;
            const double frac = static_cast<double>(slice) /
                                static_cast<double>(interval);
            out.totalFraction[idx] += frac;
            if (r.kind == sim::InterruptKind::SoftirqNetRx ||
                r.kind == sim::InterruptKind::SoftirqTimer) {
                out.softirqFraction[idx] += frac;
            } else if (r.kind == sim::InterruptKind::ReschedIpi) {
                out.reschedFraction[idx] += frac;
            }
            t += slice;
        }
    }
    return out;
}

std::array<std::size_t, sim::kNumInterruptKinds>
KernelTracer::countByKind(const std::vector<InterruptRecord> &records)
{
    std::array<std::size_t, sim::kNumInterruptKinds> counts{};
    for (const InterruptRecord &r : records)
        ++counts[static_cast<std::size_t>(r.kind)];
    return counts;
}

} // namespace bigfish::ktrace
