#include "ktrace/dump.hh"

#include <iomanip>
#include <ostream>

namespace bigfish::ktrace {

namespace {

void
printTimestamp(std::ostream &out, TimeNs t)
{
    out << '+' << std::fixed << std::setprecision(6)
        << static_cast<double>(t) / static_cast<double>(kMsec) << "ms";
}

} // namespace

void
dumpRecords(std::ostream &out, const std::vector<InterruptRecord> &records,
            const DumpOptions &options)
{
    std::size_t rows = 0;
    for (const InterruptRecord &r : records) {
        if (r.end() < options.windowStart)
            continue;
        if (r.start >= options.windowEnd || rows >= options.maxRows)
            break;
        printTimestamp(out, r.start);
        out << "  " << std::left << std::setw(18)
            << sim::interruptKindName(r.kind) << std::right << std::fixed
            << std::setprecision(1)
            << static_cast<double>(r.duration) / kUsec << "us\n";
        ++rows;
    }
    if (rows == options.maxRows)
        out << "... (row cap reached)\n";
}

void
dumpAttributedGaps(std::ostream &out,
                   const std::vector<AttributedGap> &gaps,
                   const DumpOptions &options)
{
    std::size_t rows = 0;
    for (const AttributedGap &gap : gaps) {
        if (gap.gap.end() < options.windowStart)
            continue;
        if (gap.gap.start >= options.windowEnd || rows >= options.maxRows)
            break;
        printTimestamp(out, gap.gap.start);
        out << "  gap " << std::fixed << std::setprecision(1)
            << static_cast<double>(gap.gap.length) / kUsec << "us  <- ";
        if (!gap.attributedToAny) {
            out << "?? (no kernel event)";
        } else {
            bool first = true;
            for (int k = 0; k < sim::kNumInterruptKinds; ++k) {
                if (!gap.kinds[static_cast<std::size_t>(k)])
                    continue;
                if (!first)
                    out << " + ";
                out << sim::interruptKindName(
                    static_cast<sim::InterruptKind>(k));
                first = false;
            }
        }
        out << "\n";
        ++rows;
    }
    if (rows == options.maxRows)
        out << "... (row cap reached)\n";
}

} // namespace bigfish::ktrace
