/**
 * @file
 * GapDetector: the user-space half of the Section 5.2 methodology.
 *
 * The paper's Rust attacker spins reading CLOCK_MONOTONIC through the
 * vDSO (~tens of ns per read) and records every jump in consecutive
 * readings above a threshold. We replay the same loop against a
 * RunTimeline: while the core is free the readings advance by the poll
 * cost; when anything steals the core, the next reading jumps by the
 * stolen time. Stolen intervals separated by less than one poll are
 * observed as a single merged gap — the reason softirq/IRQ-work gap
 * distributions include the timer tick they piggyback on (Figure 6).
 */

#ifndef BF_KTRACE_GAP_DETECTOR_HH
#define BF_KTRACE_GAP_DETECTOR_HH

#include <vector>

#include "base/types.hh"
#include "sim/run_timeline.hh"

namespace bigfish::ktrace {

/** One observed execution gap. */
struct Gap
{
    TimeNs start = 0;  ///< Monotonic reading before the jump.
    TimeNs length = 0; ///< Size of the jump (includes one poll cost).

    TimeNs end() const { return start + length; }
};

/** Configuration of the spinning monotonic-clock reader. */
struct GapDetectorConfig
{
    /** Cost of one clock read (vDSO CLOCK_MONOTONIC, ~30 ns). */
    TimeNs pollCostNs = 30;
    /** Minimum observed jump recorded as a gap (paper studies >100 ns). */
    TimeNs threshold = 100;
};

/** Detects execution gaps the way the paper's Rust attacker does. */
class GapDetector
{
  public:
    explicit GapDetector(GapDetectorConfig config = {});

    /** Replays the polling loop over @p timeline and returns all gaps. */
    std::vector<Gap> detect(const sim::RunTimeline &timeline) const;

    const GapDetectorConfig &config() const { return config_; }

  private:
    GapDetectorConfig config_;
};

} // namespace bigfish::ktrace

#endif // BF_KTRACE_GAP_DETECTOR_HH
