/**
 * @file
 * Synthetic website workload models.
 *
 * A SiteSignature is the stable, site-identifying description of what a
 * page load does to the system: an ordered set of activity phases
 * (network fetches, parse/layout, script/GC churn, rendering, media),
 * each contributing rates to every interrupt-generating subsystem, plus
 * optional late periodic activity (ads/media heartbeats) and fixed-time
 * activity spikes. The *signature* is deterministic per site; the
 * per-run *realization* (TraceWorkload) adds the load-to-load variation
 * a real page exhibits: timing jitter, rate noise, and a global
 * slow/fast-load factor.
 *
 * Three hand-crafted signatures reproduce the qualitative descriptions
 * the paper gives of its running examples (Figures 3-5): nytimes.com
 * concentrates activity in the first ~4 s; amazon.com is busy for ~2 s
 * with extra spikes near 5 s and 10 s; weather.com routinely triggers
 * rescheduling IPIs alongside TLB shootdowns.
 */

#ifndef BF_WEB_SITE_HH
#define BF_WEB_SITE_HH

#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "sim/activity.hh"

namespace bigfish::web {

/** The flavor of one activity phase; determines which rates dominate. */
enum class PhaseType
{
    NetworkFetch, ///< Resource download burst: NIC IRQs + NET_RX softirqs.
    ParseLayout,  ///< HTML/CSS processing: CPU + memory churn.
    Script,       ///< JS execution and GC: CPU, TLB shootdowns, wakeups.
    Render,       ///< Paint/composite: graphics IRQs.
    Media,        ///< Video/audio: sustained periodic NIC + GPU activity.
};

/** One phase of a page load. */
struct ActivityPhase
{
    PhaseType type = PhaseType::NetworkFetch;
    TimeNs start = 0;    ///< Offset from navigation start.
    TimeNs duration = 0; ///< Phase length.
    double intensity = 1.0; ///< Scales the type's characteristic rates.
};

/** A short burst of activity at a fixed offset (amazon's 5 s/10 s spikes). */
struct ActivitySpike
{
    TimeNs at = 0;
    TimeNs duration = 200 * kMsec;
    double intensity = 1.0;
    PhaseType type = PhaseType::NetworkFetch;
};

/** The stable identity of one website's load behaviour. */
struct SiteSignature
{
    SiteId id = 0;
    std::string name;
    std::vector<ActivityPhase> phases;
    std::vector<ActivitySpike> spikes;
    /** Baseline idle activity after load completes (ads, heartbeats). */
    double idleIntensity = 0.05;
    /** Bias of this site toward resched/TLB churn (weather.com-like). */
    double reschedBias = 1.0;
    /** Bias toward cache-heavy working sets. */
    double cacheBias = 1.0;
    /**
     * Bias of this site's deferred-softirq pressure (packet-batch sizes
     * and ksoftirqd storm intensity). Together with reschedBias this
     * gives each site a fine-timescale interrupt *texture* fingerprint
     * that survives macro-timing jitter between loads.
     */
    double softirqBias = 1.0;
    /**
     * Sub-100 ms activity cadence: render-frame pacing and packet-burst
     * trains give each site a characteristic micro-rhythm. This is the
     * structure a 0.1 ms timer can exploit but a 100 ms quantized timer
     * averages away (Table 4's jittered-vs-quantized gap).
     */
    TimeNs microPeriod = 60 * kMsec;
    /** Fraction of each micro-period that is active. */
    double microDuty = 0.5;
};

/** Per-run variation parameters applied when realizing a signature. */
struct RealizationNoise
{
    double phaseStartJitterMs = 150.0; ///< Stddev of phase start shifts.
    double phaseDurationSigma = 0.18;  ///< Lognormal sigma on durations.
    double rateSigma = 0.22;           ///< Lognormal sigma on phase rates.
    double runLoadSigma = 0.15;        ///< Lognormal sigma shared per run.
};

/**
 * Converts the characteristic rates of a phase type into an
 * ActivitySample, scaled by the phase intensity and signature biases.
 */
sim::ActivitySample phaseRates(PhaseType type, double intensity,
                               const SiteSignature &signature);

/**
 * Realizes one run of one site as a victim ActivityTimeline.
 *
 * @param signature The site to load.
 * @param duration Trace length.
 * @param loadTimeScale Stretch factor on the load (Tor Browser ~3x).
 * @param noise Per-run variation parameters.
 * @param rng Per-run randomness.
 */
sim::ActivityTimeline realizeWorkload(const SiteSignature &signature,
                                      TimeNs duration, double loadTimeScale,
                                      const RealizationNoise &noise,
                                      Rng &rng);

} // namespace bigfish::web

#endif // BF_WEB_SITE_HH
