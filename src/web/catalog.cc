#include "web/catalog.hh"

#include <algorithm>

#include "base/logging.hh"

namespace bigfish::web {

const std::vector<std::string> &
appendixASiteNames()
{
    // The paper's Appendix A closed-world dataset (Alexa top sites after
    // exclusions), plus weather.com, which the paper uses as a running
    // example in Figures 3-5.
    static const std::vector<std::string> names = {
        "1688.com", "6.cn", "adobe.com", "alibaba.com", "aliexpress.com",
        "alipay.com", "amazon.com", "aparat.com", "apple.com",
        "babytree.com", "baidu.com", "bbc.com", "bing.com", "booking.com",
        "canva.com", "chase.com", "cnblogs.com", "cnn.com", "csdn.net",
        "daum.net", "detik.com", "dropbox.com", "ebay.com", "espn.com",
        "etsy.com", "facebook.com", "fandom.com", "force.com",
        "freepik.com", "github.com", "godaddy.com", "gome.com.cn",
        "google.com", "grammarly.com", "hao123.com", "haosou.com",
        "xinhuanet.com", "huanqiu.com", "ilovepdf.com", "imdb.com",
        "imgur.com", "indeed.com", "instagram.com", "intuit.com", "jd.com",
        "kompas.com", "linkedin.com", "live.com", "mail.ru", "medium.com",
        "microsoft.com", "msn.com", "myshopify.com", "naver.com",
        "netflix.com", "nytimes.com", "office.com", "ok.ru", "okezone.com",
        "panda.tv", "paypal.com", "pikiran-rakyat.com", "pinterest.com",
        "primevideo.com", "qq.com", "rakuten.co.jp", "reddit.com",
        "rednet.cn", "roblox.com", "salesforce.com", "savefrom.net",
        "sina.com.cn", "slack.com", "so.com", "sohu.com", "spotify.com",
        "stackoverflow.com", "taobao.com", "telegram.org", "tianya.cn",
        "tiktok.com", "tmall.com", "tradingview.com", "tribunnews.com",
        "tumblr.com", "twitch.tv", "twitter.com", "vk.com", "walmart.com",
        "weibo.com", "wetransfer.com", "whatsapp.com", "wikipedia.org",
        "wordpress.com", "yahoo.com", "youtube.com", "yy.com", "zhanqi.tv",
        "zillow.com", "zoom.us", "weather.com",
    };
    return names;
}

SiteSignature
nytimesSignature(SiteId id)
{
    SiteSignature sig;
    sig.id = id;
    sig.name = "nytimes.com";
    // Nearly all activity happens within the first four seconds.
    sig.phases = {
        {PhaseType::NetworkFetch, 0, 900 * kMsec, 1.4},
        {PhaseType::ParseLayout, 300 * kMsec, 800 * kMsec, 1.2},
        {PhaseType::Script, 800 * kMsec, 1500 * kMsec, 1.3},
        {PhaseType::Render, 1200 * kMsec, 1400 * kMsec, 1.1},
        {PhaseType::NetworkFetch, 2200 * kMsec, 1200 * kMsec, 0.9},
        {PhaseType::Render, 3000 * kMsec, 1000 * kMsec, 0.6},
    };
    sig.idleIntensity = 0.25;
    sig.microPeriod = 45 * kMsec;
    sig.microDuty = 0.5;
    return sig;
}

SiteSignature
amazonSignature(SiteId id)
{
    SiteSignature sig;
    sig.id = id;
    sig.name = "amazon.com";
    // Most activity in the first two seconds; distinct activity spikes
    // around five and ten seconds (deferred widgets / recommendations).
    sig.phases = {
        {PhaseType::NetworkFetch, 0, 700 * kMsec, 1.6},
        {PhaseType::ParseLayout, 250 * kMsec, 600 * kMsec, 1.3},
        {PhaseType::Render, 600 * kMsec, 900 * kMsec, 1.3},
        {PhaseType::Script, 900 * kMsec, 1100 * kMsec, 1.1},
    };
    sig.spikes = {
        {5 * kSec, 450 * kMsec, 1.4, PhaseType::NetworkFetch},
        {5200 * kMsec, 350 * kMsec, 1.0, PhaseType::Render},
        {10 * kSec, 450 * kMsec, 1.3, PhaseType::NetworkFetch},
        {10200 * kMsec, 350 * kMsec, 0.9, PhaseType::Render},
    };
    sig.idleIntensity = 0.3;
    sig.microPeriod = 70 * kMsec;
    sig.microDuty = 0.4;
    return sig;
}

SiteSignature
weatherSignature(SiteId id)
{
    SiteSignature sig;
    sig.id = id;
    sig.name = "weather.com";
    // weather.com routinely triggers rescheduling interrupts, often
    // alongside TLB shootdowns (Section 5.2), and stays active with
    // periodic map/ad refreshes.
    sig.reschedBias = 2.2;
    sig.phases = {
        {PhaseType::NetworkFetch, 0, 800 * kMsec, 1.2},
        {PhaseType::Script, 500 * kMsec, 1800 * kMsec, 1.4},
        {PhaseType::Render, 1000 * kMsec, 1500 * kMsec, 1.2},
        {PhaseType::Media, 2500 * kMsec, 2500 * kMsec, 0.8},
    };
    sig.spikes = {
        {6 * kSec, 500 * kMsec, 0.9, PhaseType::Script},
        {9 * kSec, 500 * kMsec, 0.9, PhaseType::Script},
        {12 * kSec, 500 * kMsec, 0.8, PhaseType::Script},
    };
    sig.idleIntensity = 0.45;
    sig.microPeriod = 30 * kMsec;
    sig.microDuty = 0.6;
    return sig;
}

SiteSignature
SiteCatalog::generate(SiteId id, const std::string &name, Rng rng)
{
    SiteSignature sig;
    sig.id = id;
    sig.name = name;
    sig.reschedBias = rng.lognormal(1.0, 0.45);
    sig.cacheBias = rng.lognormal(1.0, 0.30);
    sig.softirqBias = rng.lognormal(1.0, 0.20);
    sig.idleIntensity = rng.uniform(0.05, 0.5);
    sig.microPeriod =
        static_cast<TimeNs>(rng.uniform(25.0, 95.0) * kMsec);
    sig.microDuty = rng.uniform(0.25, 0.75);

    // Every load starts with a network fetch; the rest of the phase plan
    // is a site-characteristic random program.
    const TimeNs load_span =
        static_cast<TimeNs>(rng.uniform(1.8, 7.0) * kSec);
    sig.phases.push_back({PhaseType::NetworkFetch, 0,
                          static_cast<TimeNs>(rng.uniform(0.4, 1.2) * kSec),
                          rng.uniform(0.8, 1.8)});
    const int extra_phases = static_cast<int>(rng.uniformInt(3, 8));
    static const PhaseType kTypes[] = {
        PhaseType::NetworkFetch, PhaseType::ParseLayout, PhaseType::Script,
        PhaseType::Render, PhaseType::Media};
    for (int i = 0; i < extra_phases; ++i) {
        ActivityPhase phase;
        phase.type = kTypes[rng.uniformInt(0, 4)];
        // Bias phase starts toward the beginning of the load.
        const double u = rng.uniform();
        phase.start = static_cast<TimeNs>(u * u *
                                          static_cast<double>(load_span));
        phase.duration =
            static_cast<TimeNs>(rng.uniform(0.15, 2.2) * kSec);
        phase.intensity = rng.uniform(0.4, 1.8);
        sig.phases.push_back(phase);
    }

    // Some sites schedule late bursts (lazy widgets, ad rotations).
    const int n_spikes = static_cast<int>(rng.uniformInt(0, 3));
    for (int i = 0; i < n_spikes; ++i) {
        ActivitySpike spike;
        spike.at = static_cast<TimeNs>(rng.uniform(4.0, 14.0) * kSec);
        spike.duration =
            static_cast<TimeNs>(rng.uniform(0.15, 0.6) * kSec);
        spike.intensity = rng.uniform(0.5, 1.5);
        spike.type = kTypes[rng.uniformInt(0, 4)];
        sig.spikes.push_back(spike);
    }
    return sig;
}

SiteCatalog::SiteCatalog(int numSites, std::uint64_t seed) : seed_(seed)
{
    fatalIf(numSites <= 0, "SiteCatalog needs a positive site count");
    const auto &names = appendixASiteNames();
    Rng master(seed);
    sites_.reserve(numSites);
    for (SiteId id = 0; id < numSites; ++id) {
        std::string name;
        if (id < static_cast<SiteId>(names.size()))
            name = names[id];
        else
            name = names[id % names.size()] + "#" +
                   std::to_string(id / static_cast<int>(names.size()));
        if (name == "nytimes.com")
            sites_.push_back(nytimesSignature(id));
        else if (name == "amazon.com")
            sites_.push_back(amazonSignature(id));
        else if (name == "weather.com")
            sites_.push_back(weatherSignature(id));
        else
            sites_.push_back(generate(id, name, master.fork(id)));
    }
}

const SiteSignature &
SiteCatalog::site(SiteId id) const
{
    fatalIf(id < 0 || id >= size(), "SiteCatalog site id out of range");
    return sites_[static_cast<std::size_t>(id)];
}

SiteSignature
SiteCatalog::openWorldSite(int index) const
{
    const SiteId id = size() + index;
    Rng rng(mix64(seed_ ^ 0x09e61d0facadeULL) ^
            mix64(static_cast<std::uint64_t>(index) + 1));
    return generate(id, "openworld-" + std::to_string(index), std::move(rng));
}

std::vector<SiteSignature>
SiteCatalog::exampleSites()
{
    return {nytimesSignature(0), amazonSignature(1), weatherSignature(2)};
}

} // namespace bigfish::web
