/**
 * @file
 * SiteCatalog: the closed-world and open-world website populations.
 *
 * The closed world uses the paper's actual Appendix A list (the Alexa
 * top-100 after the paper's exclusions), each name bound to a seeded
 * generated signature; the open world adds an arbitrary number of
 * one-off "non-sensitive" sites (the paper collects 5,000). Three sites
 * (nytimes.com, amazon.com and the Figure 3 example weather.com) carry
 * hand-crafted signatures matching the paper's qualitative descriptions.
 */

#ifndef BF_WEB_CATALOG_HH
#define BF_WEB_CATALOG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "web/site.hh"

namespace bigfish::web {

/** The paper's Appendix A closed-world site names, in order. */
const std::vector<std::string> &appendixASiteNames();

/** Hand-crafted nytimes.com signature (activity in the first ~4 s). */
SiteSignature nytimesSignature(SiteId id);

/** Hand-crafted amazon.com signature (busy 0-2 s, spikes at 5 s, 10 s). */
SiteSignature amazonSignature(SiteId id);

/** Hand-crafted weather.com signature (resched/TLB-heavy). */
SiteSignature weatherSignature(SiteId id);

/** A population of websites the victim may visit. */
class SiteCatalog
{
  public:
    /**
     * Builds a closed-world catalog of @p numSites sites.
     *
     * Site 0..numSites-1 take their names from Appendix A (cycling with a
     * numeric suffix past 100); nytimes.com and amazon.com (when within
     * range) use their hand-crafted signatures.
     *
     * @param numSites Number of closed-world sites.
     * @param seed Master seed; the same seed reproduces the catalog.
     */
    SiteCatalog(int numSites, std::uint64_t seed);

    /** Number of closed-world sites. */
    int size() const { return static_cast<int>(sites_.size()); }

    /** The signature of closed-world site @p id. */
    const SiteSignature &site(SiteId id) const;

    /** All closed-world signatures. */
    const std::vector<SiteSignature> &sites() const { return sites_; }

    /**
     * Generates a one-off open-world ("non-sensitive") site. Each call
     * with a distinct @p index yields a distinct site drawn from the same
     * generative family as the closed world.
     */
    SiteSignature openWorldSite(int index) const;

    /** The three hand-crafted example sites used by Figures 3-5. */
    static std::vector<SiteSignature> exampleSites();

  private:
    /** Generates one random signature. */
    static SiteSignature generate(SiteId id, const std::string &name,
                                  Rng rng);

    std::vector<SiteSignature> sites_;
    std::uint64_t seed_;
};

} // namespace bigfish::web

#endif // BF_WEB_CATALOG_HH
