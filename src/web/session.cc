#include "web/session.hh"

#include "base/logging.hh"

namespace bigfish::web {

TimeNs
BrowsingSession::duration() const
{
    TimeNs total = 0;
    for (const BrowsingStep &step : steps)
        total += step.dwell;
    return total;
}

std::vector<TimeNs>
BrowsingSession::navigationTimes() const
{
    std::vector<TimeNs> times;
    times.reserve(steps.size());
    TimeNs t = 0;
    for (const BrowsingStep &step : steps) {
        times.push_back(t);
        t += step.dwell;
    }
    return times;
}

BrowsingSession
BrowsingSession::random(const SiteCatalog &catalog, int visits,
                        TimeNs min_dwell, TimeNs max_dwell, Rng &rng)
{
    fatalIf(visits <= 0, "session needs at least one visit");
    fatalIf(min_dwell <= 0 || max_dwell < min_dwell,
            "invalid dwell-time range");
    BrowsingSession session;
    session.steps.reserve(static_cast<std::size_t>(visits));
    for (int i = 0; i < visits; ++i) {
        BrowsingStep step;
        step.site = static_cast<SiteId>(
            rng.uniformInt(0, catalog.size() - 1));
        step.dwell = min_dwell + static_cast<TimeNs>(
                                     rng.uniform() *
                                     static_cast<double>(max_dwell -
                                                         min_dwell));
        session.steps.push_back(step);
    }
    return session;
}

sim::ActivityTimeline
realizeSession(const BrowsingSession &session, const SiteCatalog &catalog,
               double load_time_scale, const RealizationNoise &noise,
               Rng &rng)
{
    fatalIf(session.steps.empty(), "cannot realize an empty session");
    sim::ActivityTimeline timeline(session.duration());
    const auto navigations = session.navigationTimes();
    for (std::size_t i = 0; i < session.steps.size(); ++i) {
        const BrowsingStep &step = session.steps[i];
        Rng visit_rng = rng.fork(i + 1);
        // Realize the visit over its dwell window: the page's own
        // timeline is as long as the victim stays on it.
        const auto visit = realizeWorkload(catalog.site(step.site),
                                           step.dwell, load_time_scale,
                                           noise, visit_rng);
        timeline.addShifted(visit, navigations[i]);
    }
    timeline.clampPhysical();
    return timeline;
}

} // namespace bigfish::web
