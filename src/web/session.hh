/**
 * @file
 * Multi-page browsing sessions — the continuous-monitoring scenario.
 *
 * The paper (and its predecessors) evaluate on traces aligned with a
 * single page load; a deployed attacker instead records one long trace
 * while the victim browses from page to page and must segment it before
 * classifying. This module generates such sessions: an ordered list of
 * (site, dwell time) visits realized into one long victim
 * ActivityTimeline, together with the ground-truth navigation instants
 * the attacker is trying to recover (see attack/segmentation.hh for the
 * recovery side).
 */

#ifndef BF_WEB_SESSION_HH
#define BF_WEB_SESSION_HH

#include <vector>

#include "web/catalog.hh"
#include "web/site.hh"

namespace bigfish::web {

/** One visit in a browsing session. */
struct BrowsingStep
{
    SiteId site = 0;
    /** Time from this navigation to the next (load + reading time). */
    TimeNs dwell = 15 * kSec;
};

/** An ordered multi-page browsing session. */
struct BrowsingSession
{
    std::vector<BrowsingStep> steps;

    /** Total session duration. */
    TimeNs duration() const;

    /** Ground-truth navigation instants (one per step, cumulative). */
    std::vector<TimeNs> navigationTimes() const;

    /**
     * Draws a random session: @p visits sites chosen uniformly from the
     * catalog with dwell times uniform in [minDwell, maxDwell].
     */
    static BrowsingSession random(const SiteCatalog &catalog, int visits,
                                  TimeNs min_dwell, TimeNs max_dwell,
                                  Rng &rng);
};

/**
 * Realizes a whole session as one victim ActivityTimeline: each visit's
 * load is realized independently (with per-run noise) and superimposed
 * at its navigation offset.
 */
sim::ActivityTimeline realizeSession(const BrowsingSession &session,
                                     const SiteCatalog &catalog,
                                     double load_time_scale,
                                     const RealizationNoise &noise,
                                     Rng &rng);

} // namespace bigfish::web

#endif // BF_WEB_SESSION_HH
