#include "web/browser.hh"

#include <algorithm>

namespace bigfish::web {

BrowserProfile
BrowserProfile::chrome()
{
    BrowserProfile b;
    b.name = "chrome";
    b.timer = timers::TimerSpec::jittered(100 * kUsec);
    b.runtimeNoiseSigma = 0.005;
    b.stallRate = 1.2;
    return b;
}

BrowserProfile
BrowserProfile::firefox()
{
    BrowserProfile b;
    b.name = "firefox";
    b.timer = timers::TimerSpec::jittered(kMsec);
    b.runtimeNoiseSigma = 0.006;
    b.stallRate = 1.5;
    return b;
}

BrowserProfile
BrowserProfile::safari()
{
    BrowserProfile b;
    b.name = "safari";
    b.timer = timers::TimerSpec::quantized(kMsec);
    b.runtimeNoiseSigma = 0.005;
    b.stallRate = 2.0;
    return b;
}

BrowserProfile
BrowserProfile::torBrowser()
{
    BrowserProfile b;
    b.name = "tor";
    b.timer = timers::TimerSpec::quantized(100 * kMsec);
    b.traceDuration = 50 * kSec;
    b.loadTimeScale = 3.0;
    b.loadVariability = 2.5;
    b.runtimeNoiseSigma = 0.020;
    b.stallRate = 4.0;
    return b;
}

BrowserProfile
BrowserProfile::nativePython()
{
    BrowserProfile b;
    b.name = "python";
    b.timer = timers::TimerSpec::precise();
    b.runtimeNoiseSigma = 0.004;
    b.stallRate = 0.2;
    return b;
}

BrowserProfile
BrowserProfile::nativeRust()
{
    BrowserProfile b;
    b.name = "rust";
    b.timer = timers::TimerSpec::precise();
    b.runtimeNoiseSigma = 0.001;
    b.stallRate = 0.0;
    return b;
}

void
applyBrowserRuntime(sim::RunTimeline &timeline,
                    const BrowserProfile &browser, Rng &rng)
{
    for (double &factor : timeline.iterCostFactor)
        factor *= rng.lognormal(1.0, browser.runtimeNoiseSigma);

    if (browser.stallRate > 0.0) {
        const double duration_s = static_cast<double>(timeline.duration) /
                                  static_cast<double>(kSec);
        const int n = rng.poisson(browser.stallRate * duration_s);
        for (int i = 0; i < n; ++i) {
            sim::StolenInterval stall;
            stall.arrival = static_cast<TimeNs>(
                rng.uniform() * static_cast<double>(timeline.duration));
            stall.kind = sim::InterruptKind::Preemption;
            stall.duration = static_cast<TimeNs>(
                rng.lognormal(static_cast<double>(browser.stallMedian),
                              0.6));
            timeline.stolen.push_back(stall);
        }
        sim::normalizeTimeline(timeline.stolen);
        while (!timeline.stolen.empty() &&
               timeline.stolen.back().arrival >= timeline.duration)
            timeline.stolen.pop_back();
        if (!timeline.stolen.empty() &&
            timeline.stolen.back().end() > timeline.duration) {
            timeline.stolen.back().duration =
                timeline.duration - timeline.stolen.back().arrival;
        }
    }
}

} // namespace bigfish::web
