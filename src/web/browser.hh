/**
 * @file
 * Browser profiles: how each evaluated browser shapes the attack.
 *
 * The browser enters the attack through exactly three mechanisms:
 *
 *  1. The timer exposed to JavaScript (performance.now()): Chrome clamps
 *     to 0.1 ms and adds hash-based jitter; Firefox clamps to 1 ms with
 *     jitter; Safari clamps to 1 ms; Tor Browser clamps to 100 ms.
 *  2. Page-load speed: Tor's security features stretch loads by ~3x, so
 *     the paper uses 50-second traces for it (15 s elsewhere).
 *  3. Attacker-side runtime noise: the JS engine and the service-worker
 *     event loop add throughput jitter and occasional brief stalls.
 *
 * Native attacker profiles (the Python attacker of Tables 3-4 and the
 * Rust gap detector of Section 5.2) use a precise clock and negligible
 * runtime noise.
 */

#ifndef BF_WEB_BROWSER_HH
#define BF_WEB_BROWSER_HH

#include <string>

#include "base/rng.hh"
#include "base/types.hh"
#include "sim/run_timeline.hh"
#include "timers/timer.hh"

namespace bigfish::web {

/** Everything browser-specific about an attack configuration. */
struct BrowserProfile
{
    std::string name = "chrome";
    /** The timer visible to the attacker's code. */
    timers::TimerSpec timer = timers::TimerSpec::jittered(100 * kUsec);
    /** Trace length used against this browser. */
    TimeNs traceDuration = 15 * kSec;
    /** Page-load stretch factor (Tor ~3x). */
    double loadTimeScale = 1.0;
    /**
     * Multiplier on the victim-side run-to-run variation
     * (RealizationNoise). Tor's onion circuits add seconds of variable
     * latency per resource, so the *same* page produces far less
     * repeatable load timelines than it does over a direct connection —
     * a large part of why Table 1's Tor accuracy is roughly half the
     * Chrome accuracy.
     */
    double loadVariability = 1.0;
    /** Per-activity-step lognormal sigma on attacker throughput. */
    double runtimeNoiseSigma = 0.01;
    /** Rate (per second) of brief attacker stalls (event loop, GC). */
    double stallRate = 2.0;
    /** Median duration of such stalls. */
    TimeNs stallMedian = 60 * kUsec;
    /** Default measurement period length P. */
    TimeNs period = 5 * kMsec;

    /** Chrome 92: 0.1 ms timer with jitter. */
    static BrowserProfile chrome();
    /** Firefox 91: 1 ms timer with jitter. */
    static BrowserProfile firefox();
    /** Safari 14: 1 ms quantized timer. */
    static BrowserProfile safari();
    /** Tor Browser 10: 100 ms quantized timer, 50 s traces, slow loads. */
    static BrowserProfile torBrowser();
    /** Native Python attacker: precise time.time(), no browser noise. */
    static BrowserProfile nativePython();
    /** Native Rust gap detector: CLOCK_MONOTONIC via vDSO. */
    static BrowserProfile nativeRust();
};

/**
 * Applies attacker-side browser effects to a synthesized timeline:
 * multiplies per-step iteration-cost factors by runtime jitter and
 * injects brief event-loop stalls (as Preemption intervals).
 *
 * Native profiles (stallRate 0 / tiny sigma) leave the timeline
 * essentially untouched.
 */
void applyBrowserRuntime(sim::RunTimeline &timeline,
                         const BrowserProfile &browser, Rng &rng);

} // namespace bigfish::web

#endif // BF_WEB_BROWSER_HH
