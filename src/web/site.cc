#include "web/site.hh"

#include <algorithm>
#include <cmath>

namespace bigfish::web {

sim::ActivitySample
phaseRates(PhaseType type, double intensity, const SiteSignature &signature)
{
    // Rates are calibrated so that busy phases steal a few percent of
    // the attacker's core (handler time) on top of the DVFS droop,
    // matching the 10-25% counter dips visible in the paper's Figure 3.
    sim::ActivitySample s;
    switch (type) {
      case PhaseType::NetworkFetch:
        s.netRxRate = 3200.0; // Bursty resource downloads.
        s.diskRate = 60.0;
        s.softirqWork = 1.0;
        s.reschedRate = 180.0;
        s.tlbRate = 40.0;
        s.cpuLoad = 0.8;
        s.cacheOccupancy = 0.25;
        break;
      case PhaseType::ParseLayout:
        s.netRxRate = 150.0;
        s.softirqWork = 0.25;
        s.reschedRate = 280.0;
        s.tlbRate = 160.0;
        s.cpuLoad = 1.5;
        s.cacheOccupancy = 0.45;
        break;
      case PhaseType::Script:
        s.netRxRate = 200.0;
        s.softirqWork = 0.35;
        s.reschedRate = 420.0; // IPC-heavy JS + GC wakeups.
        s.tlbRate = 380.0;     // GC page-table churn.
        s.cpuLoad = 1.8;
        s.cacheOccupancy = 0.50;
        break;
      case PhaseType::Render:
        s.gfxRate = 1400.0; // Compositor / GPU fences.
        s.softirqWork = 0.25;
        s.reschedRate = 220.0;
        s.tlbRate = 60.0;
        s.cpuLoad = 1.0;
        s.cacheOccupancy = 0.35;
        break;
      case PhaseType::Media:
        s.netRxRate = 1200.0;
        s.gfxRate = 800.0;
        s.diskRate = 25.0;
        s.softirqWork = 0.6;
        s.reschedRate = 250.0;
        s.tlbRate = 70.0;
        s.cpuLoad = 0.8;
        s.cacheOccupancy = 0.30;
        break;
    }
    s.netRxRate *= intensity;
    s.gfxRate *= intensity;
    s.diskRate *= intensity;
    s.softirqWork *= intensity * signature.softirqBias;
    s.reschedRate *= intensity * signature.reschedBias;
    s.tlbRate *= intensity * signature.reschedBias;
    s.cpuLoad *= intensity;
    s.cacheOccupancy *= intensity * signature.cacheBias;
    return s;
}

sim::ActivityTimeline
realizeWorkload(const SiteSignature &signature, TimeNs duration,
                double loadTimeScale, const RealizationNoise &noise,
                Rng &rng)
{
    sim::ActivityTimeline timeline(duration);
    const double run_factor = rng.lognormal(1.0, noise.runLoadSigma);
    // Network conditions change batch sizes and wakeup pressure between
    // loads: stationary per-site statistics are only partially stable
    // run to run, so volume-style fingerprints stay noisy.
    const double run_softirq = rng.lognormal(1.0, 0.35);
    const double run_resched = rng.lognormal(1.0, 0.30);

    auto jittered_start = [&](TimeNs start) {
        const double shifted =
            static_cast<double>(start) * loadTimeScale +
            rng.normal(0.0, noise.phaseStartJitterMs) *
                static_cast<double>(kMsec);
        return static_cast<TimeNs>(std::max(0.0, shifted));
    };

    // The site's micro-rhythm: activity within a phase arrives in
    // bursts paced by the site's characteristic cadence (render-frame
    // batches, packet trains). The cadence phase is random per run and
    // the period wobbles slightly burst to burst.
    const TimeNs micro_period = std::max<TimeNs>(
        static_cast<TimeNs>(static_cast<double>(signature.microPeriod) *
                            rng.lognormal(1.0, 0.06)),
        10 * kMsec);
    const double duty = std::clamp(signature.microDuty, 0.15, 0.9);
    TimeNs micro_phase = static_cast<TimeNs>(
        rng.uniform() * static_cast<double>(micro_period));

    auto add_modulated = [&](TimeNs start, TimeNs dur,
                             const sim::ActivitySample &rates_in) {
        sim::ActivitySample rates = rates_in;
        rates.softirqWork *= run_softirq;
        rates.reschedRate *= run_resched;
        // Deposit the same total activity as an unmodulated span, but
        // concentrated into the duty-on windows of the cadence.
        sim::ActivitySample on = rates;
        const double boost = 1.0 / duty;
        on.netRxRate *= boost;
        on.gfxRate *= boost;
        on.diskRate *= boost;
        on.softirqWork *= boost;
        on.reschedRate *= boost;
        on.tlbRate *= boost;
        // CPU load and occupancy stay level-like across the phase and
        // are deposited separately below.
        on.cpuLoad = 0.0;
        on.cacheOccupancy = 0.0;
        const TimeNs on_len =
            static_cast<TimeNs>(static_cast<double>(micro_period) * duty);
        const TimeNs end = start + dur;
        TimeNs cycle =
            ((start - micro_phase) / micro_period) * micro_period +
            micro_phase;
        for (TimeNs t = cycle; t < end; t += micro_period) {
            const TimeNs lo = std::max(t, start);
            const TimeNs hi = std::min(t + on_len, end);
            if (hi > lo)
                timeline.addSpan(lo, hi - lo, on);
        }
        // Level-like components are deposited unmodulated.
        sim::ActivitySample level;
        level.cpuLoad = rates.cpuLoad;
        level.cacheOccupancy = rates.cacheOccupancy;
        timeline.addSpan(start, dur, level);
    };

    for (const ActivityPhase &phase : signature.phases) {
        const TimeNs start = jittered_start(phase.start);
        const TimeNs dur = static_cast<TimeNs>(
            static_cast<double>(phase.duration) * loadTimeScale *
            rng.lognormal(1.0, noise.phaseDurationSigma));
        double intensity =
            phase.intensity * run_factor * rng.lognormal(1.0, noise.rateSigma);
        add_modulated(start, dur,
                      phaseRates(phase.type, intensity, signature));
    }

    for (const ActivitySpike &spike : signature.spikes) {
        const TimeNs start = jittered_start(spike.at);
        const TimeNs dur = static_cast<TimeNs>(
            static_cast<double>(spike.duration) *
            rng.lognormal(1.0, 0.15));
        const double intensity = spike.intensity * run_factor *
                                 rng.lognormal(1.0, noise.rateSigma);
        add_modulated(start, dur,
                      phaseRates(spike.type, intensity, signature));
    }

    // Residual idle activity after (and between) load phases: analytics
    // beacons, ad refreshes, compositor heartbeats.
    sim::ActivitySample idle;
    idle.netRxRate = 30.0 * signature.idleIntensity * run_factor;
    idle.gfxRate = 40.0 * signature.idleIntensity * run_factor;
    idle.softirqWork = 0.05 * signature.idleIntensity;
    idle.reschedRate = 6.0 * signature.idleIntensity;
    idle.cpuLoad = 0.08 * signature.idleIntensity;
    idle.cacheOccupancy = 0.05 * signature.idleIntensity;
    timeline.addSpan(0, duration, idle);

    timeline.clampPhysical();
    return timeline;
}

} // namespace bigfish::web
