/**
 * @file
 * Supervisor: resilient orchestration of a suite of experiments.
 *
 * `bigfish run --all` at paper scale is a multi-hour batch job — the
 * same shape as the paper's five-machine collection campaigns — and a
 * single hung or crashed experiment must not take the suite (and every
 * completed artifact) down with it. The supervisor runs each registered
 * experiment under:
 *
 *  - a deterministic base::RetryPolicy for transient failures (seeded
 *    jittered backoff — two runs of the same suite make the same retry
 *    decisions);
 *  - an optional per-experiment deadline. In `--isolate` mode the
 *    deadline is *enforced*: the child process is killed when it
 *    expires. In-process, C++ offers no safe preemption, so the
 *    deadline is only recorded post-hoc (documented in DESIGN.md §9);
 *  - optional subprocess isolation (`--isolate`): each experiment runs
 *    as its own `bigfish run <name>` child, so an abort or segfault is
 *    contained and reported as `crashed` instead of killing `--all`;
 *  - `--keep-going`: later experiments still run after a failure.
 *
 * After every experiment the suite manifest is rewritten atomically
 * (base/atomic_file.hh), so a Ctrl-C or crash mid-suite still leaves a
 * complete, parseable record of everything that finished — including
 * per-experiment dropped-trace accounting, so degraded runs are visible
 * without re-reading every artifact.
 *
 * The supervisor is callback-driven (InProcessRun / ChildCommand) so it
 * can be unit-tested with synthetic experiments and `/bin/sh` children;
 * tools/bigfish wires in the registry and its own executable.
 */

#ifndef BF_CORE_SUPERVISOR_HH
#define BF_CORE_SUPERVISOR_HH

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/retry.hh"
#include "base/status.hh"

namespace bigfish::core {

/** Final state of one supervised experiment. */
enum class RunState
{
    Ok,      ///< Succeeded on the first attempt.
    Retried, ///< Succeeded after at least one retry.
    Failed,  ///< Exhausted its attempts with a recoverable failure.
    Timeout, ///< Deadline expired (enforced under --isolate).
    Crashed, ///< Child died of a signal (abort, segfault, kill).
    Skipped, ///< Never started (earlier failure, or interrupted).
};

/** Stable lower-case name ("ok", "retried", ...), for the manifest. */
const char *runStateName(RunState state);

/** The manifest record of one supervised experiment. */
struct ExperimentOutcome
{
    std::string name;
    RunState state = RunState::Skipped;
    /** Attempts actually started (0 when skipped). */
    int attempts = 0;
    /** Child exit code (isolate mode; 128+signal for signal deaths). */
    int exitCode = 0;
    /** Wall-clock seconds across all attempts. */
    double wallSeconds = 0.0;
    /** Failure detail ("" when ok). */
    std::string message;
    /** Trace accounting from the run artifact (PR 1 CollectionStats). */
    std::size_t collectedTraces = 0;
    std::size_t droppedTraces = 0;
    /** Artifact JSON path ("" when none was written). */
    std::string artifactPath;
};

/** The suite manifest: every outcome plus suite-level disposition. */
struct SuiteManifest
{
    std::vector<ExperimentOutcome> outcomes;
    /** True when the suite was cut short by SIGINT/SIGTERM. */
    bool interrupted = false;

    /** Number of outcomes in @p state. */
    std::size_t count(RunState state) const;
    /** True when every outcome is Ok or Retried. */
    bool allOk() const;
    /** Suite exit code: 130 interrupted, 1 any failure, else 0. */
    int exitCode() const;
    /** The manifest as JSON. */
    std::string toJson() const;
    /** Writes toJson() to @p path atomically. */
    [[nodiscard]] Status write(const std::string &path) const;
};

/**
 * Runs one experiment in-process. On success, fills the outcome's
 * trace accounting and artifact path. A Status error is a recoverable
 * failure (retried per policy); an abort is a crash the supervisor can
 * only contain in isolate mode.
 */
using InProcessRun =
    std::function<Status(const std::string &name, ExperimentOutcome &out)>;

/**
 * The argv (argv[0] = executable path) that runs one experiment as an
 * isolated child, plus the artifact path the child will write ("" when
 * none). Only consulted in isolate mode.
 */
struct ChildPlan
{
    std::vector<std::string> argv;
    std::string artifactPath;
};
using ChildCommand = std::function<ChildPlan(const std::string &name)>;

struct SupervisorOptions
{
    /** Run remaining experiments after a failure. */
    bool keepGoing = false;
    /** Run each experiment as an isolated subprocess. */
    bool isolate = false;
    /** Per-experiment deadline in seconds (0 = none). */
    double timeoutSeconds = 0.0;
    /** Retry schedule for transient failures. */
    RetryPolicy retry;
    /** Manifest path, rewritten atomically after every experiment
     *  ("" keeps the manifest in memory only). */
    std::string manifestPath;
    /**
     * Interrupt flag set by the caller's SIGINT/SIGTERM handler. When
     * it becomes non-zero the supervisor stops starting work, marks
     * the remainder Skipped, flushes the manifest, and reports exit
     * code 130.
     */
    const volatile std::sig_atomic_t *interrupted = nullptr;
};

/** Orchestrates a suite of experiments; see the file comment. */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorOptions options);

    /**
     * Runs @p names in order. @p in_process executes one experiment in
     * this process; @p child_command (isolate mode) describes the
     * equivalent child invocation. The returned manifest holds one
     * outcome per name, in order.
     */
    SuiteManifest run(const std::vector<std::string> &names,
                      const InProcessRun &in_process,
                      const ChildCommand &child_command) const;

  private:
    /** One experiment through its attempt/retry loop. */
    ExperimentOutcome runOne(const std::string &name,
                             const InProcessRun &in_process,
                             const ChildCommand &child_command) const;

    /** One isolated child attempt; returns the outcome state. */
    ExperimentOutcome runChildAttempt(const std::string &name,
                                      const ChildPlan &plan) const;

    bool interrupted() const;

    SupervisorOptions options_;
};

/**
 * Extracts the `"traces": {"collected": N, "dropped": M}` accounting
 * from an artifact JSON text; false when absent. Used to surface child
 * artifacts' accounting in the manifest without a JSON parser.
 */
bool parseTraceAccounting(const std::string &artifact_json,
                          std::size_t *collected, std::size_t *dropped);

} // namespace bigfish::core

#endif // BF_CORE_SUPERVISOR_HH
