/**
 * @file
 * The stage graph: typed, content-addressed pipeline phases.
 *
 * The paper's evaluation protocol is an explicit dataflow — collect
 * traces → featurize → train per fold → score per fold → aggregate —
 * and this framework makes each arrow a declared *stage* with three
 * properties by construction:
 *
 *  1. A deterministic input fingerprint. Every stage hashes its own
 *     canonical configuration text (same one-line-per-field discipline
 *     as collectionFingerprint()) together with its upstream stages'
 *     fingerprints: fp = mix64-fold(fnv64("stage=<name>\n" + canon),
 *     upstream fps). Because the composition uses input fingerprints
 *     rather than output hashes, every stage's key is computable
 *     before anything runs — which is what lets a warm run probe the
 *     cache bottom-up and skip whole upstream subgraphs (a hit on
 *     every Featurize stage means Collect never executes at all).
 *
 *  2. Uniform caching. A stage with a StageCodec stores its output in
 *     the StageCache under (codec.kind, fingerprint) and replays it
 *     bit-identically on the next run with the same fingerprint;
 *     stages without a codec (cheap or inherently local ones) simply
 *     recompute. `--resume` (checkpoint journals inside the Collect
 *     body) and `--cache-dir` compose through this one mechanism.
 *
 *  3. Framework-collected observability. Every execution records
 *     wall/CPU seconds, cache provenance (hit, miss, stored, ...) and
 *     item/drop accounting into a StageReport; the reports become the
 *     artifact's per-stage table and the `--explain` output. Pipeline
 *     code never touches a stopwatch (enforced by the bigfish-lint
 *     stage-timing rule).
 *
 * Concurrency: declare the whole graph up front on one thread, then
 * run stages from any thread — each stage id owns a distinct,
 * pre-reserved report slot, so independent stages (per-fold
 * train/score) execute concurrently on the thread pool without
 * synchronizing, and results stay bit-identical at any thread count
 * because fingerprints, seeds and aggregation order are all fixed at
 * declaration time.
 */

#ifndef BF_CORE_STAGE_HH
#define BF_CORE_STAGE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.hh"
#include "base/stopwatch.hh" // bigfish-lint: allow(stage-timing)
#include "core/stage_cache.hh"
#include "sim/perf.hh"

namespace bigfish::core {

/** Where a stage's output came from (the `--explain` provenance). */
enum class StageCacheState
{
    /** No cache directory configured for the run. */
    Disabled,
    /** The stage declares no codec; it always recomputes. */
    Uncached,
    /** Probed the cache, found nothing, computed fresh. */
    Miss,
    /** Replayed bit-identically from the cache. */
    Hit,
    /** Computed fresh and committed to the cache. */
    Stored,
    /** Computed fresh but the cache commit failed (warned, non-fatal). */
    StoreFailed,
    /** Never executed: a downstream cache hit made it unnecessary. */
    Skipped,
};

/** Stable lowercase name for @p state ("hit", "store-failed", ...). */
const char *stageCacheStateName(StageCacheState state);

/** One stage's execution record; the unit of the artifact's per-stage
 *  table and the `--explain` output. */
struct StageReport
{
    /** Unique stage instance name, e.g. "train/loop/closed/f3". */
    std::string name;
    /** Artifact phase rollup bucket: collect|featurize|train|eval. */
    std::string phase;
    /** The content-addressed input fingerprint. */
    std::uint64_t fingerprint = 0;
    /** Defaults to Skipped so never-run stages report honestly. */
    StageCacheState cache = StageCacheState::Skipped;
    /** CPU seconds of this stage's execution (thread-CPU for pool
     *  stages, process-CPU for main-thread stages). */
    double cpuSeconds = 0.0;
    /** Wall seconds; per-fold stages overlap, so wall sums across
     *  stages can exceed the run's true wall clock. */
    double wallSeconds = 0.0;
    /** Units produced (traces collected, samples featurized, ...). */
    std::size_t items = 0;
    /** Units lost (dropped traces). */
    std::size_t dropped = 0;
    /** Simulator work counters (sim/perf.hh); zero for stages that do
     *  no simulation and for cache/journal replays, exactly like
     *  cpuSeconds measures work performed rather than represented. */
    sim::PerfCounters sim;
};

/**
 * The fingerprint composition rule: hash the stage's identity and
 * canonical config text, then fold in each upstream fingerprint in
 * order. mix64 finalization after each fold keeps related inputs from
 * producing related keys.
 */
[[nodiscard]] std::uint64_t
stageFingerprint(std::string_view name, std::string_view canon,
                 std::span<const std::uint64_t> upstream);

/**
 * How a stage output of type Out crosses the cache boundary. encode
 * returning "" means "don't store" (e.g. a model that cannot
 * serialize); decode returning nullopt rejects a stale-format payload,
 * which is removed and treated as a miss.
 */
template <typename Out>
struct StageCodec
{
    /** Cache namespace, e.g. "featurized", "model", "scores". */
    std::string kind;
    std::function<std::string(const Out &)> encode;
    std::function<std::optional<Out>(const std::string &)> decode;
};

/**
 * A declared pipeline run: stage ids, fingerprints and report slots
 * are all fixed up front; execution then fills the reports in place.
 */
class StageGraph
{
  public:
    /** @p cache may be null (no --cache-dir): stages all recompute. */
    explicit StageGraph(StageCache *cache = nullptr) : cache_(cache) {}

    StageGraph(const StageGraph &) = delete;
    StageGraph &operator=(const StageGraph &) = delete;

    /**
     * Declares one stage and returns its id. @p upstream lists the ids
     * of the stages whose outputs feed this one; their fingerprints
     * (already fixed — declare dependencies first) compose into this
     * stage's fingerprint. Main thread only.
     */
    std::size_t declare(std::string name, std::string phase,
                        std::string_view canon,
                        std::span<const std::size_t> upstream);

    std::uint64_t
    fingerprint(std::size_t id) const
    {
        return reports_[id].fingerprint;
    }

    /**
     * Probes the cache for stage @p id without running anything. On a
     * hit the report records Hit plus the replay cost and the decoded
     * output is returned; on a miss the report is left untouched
     * (still Skipped) so the caller can decide what to run. Safe from
     * pool threads.
     */
    template <typename Out>
    std::optional<Out>
    fromCache(std::size_t id, const StageCodec<Out> &codec,
              bool threadCpu = false)
    {
        if (cache_ == nullptr)
            return std::nullopt;
        StageReport &report = reports_[id];
        Stopwatch wall; // bigfish-lint: allow(stage-timing)
        const double cpu_start = cpuSeconds(threadCpu);
        std::optional<std::string> payload =
            cache_->lookup(codec.kind, report.fingerprint);
        if (payload) {
            std::optional<Out> out = codec.decode(*payload);
            if (out) {
                report.cache = StageCacheState::Hit;
                report.cpuSeconds = cpuSeconds(threadCpu) - cpu_start;
                report.wallSeconds = wall.seconds();
                return out;
            }
            // CRC-intact but semantically undecodable (stale format):
            // dead weight either way.
            cache_->remove(codec.kind, report.fingerprint);
        }
        return std::nullopt;
    }

    /**
     * Executes stage @p id: probes the cache (when @p codec is
     * non-null and @p probe — pass probe=false after an explicit
     * fromCache() miss), else runs @p body, records timing and cache
     * provenance, and commits the output when cacheable. @p threadCpu
     * selects the thread-CPU clock for stages running on pool workers.
     * Errors from @p body propagate with the report still recording
     * the attempt's cost. Safe from pool threads.
     */
    template <typename Out, typename Body>
    [[nodiscard]] Result<Out>
    run(std::size_t id, const StageCodec<Out> *codec, Body &&body,
        bool probe = true, bool threadCpu = false)
    {
        if (codec != nullptr && probe) {
            std::optional<Out> cached = fromCache(id, *codec, threadCpu);
            if (cached)
                return Result<Out>(std::move(*cached));
        }
        StageReport &report = reports_[id];
        Stopwatch wall; // bigfish-lint: allow(stage-timing)
        const double cpu_start = cpuSeconds(threadCpu);
        Result<Out> out = body();
        report.cpuSeconds = cpuSeconds(threadCpu) - cpu_start;
        report.wallSeconds = wall.seconds();
        if (codec == nullptr) {
            report.cache = StageCacheState::Uncached;
            return out;
        }
        if (cache_ == nullptr) {
            report.cache = StageCacheState::Disabled;
            return out;
        }
        report.cache = StageCacheState::Miss;
        if (!out.isOk())
            return out;
        const std::string payload = codec->encode(out.value());
        if (payload.empty())
            return out;
        Status stored = cache_->put(codec->kind, report.fingerprint,
                                      payload);
        if (stored.isOk()) {
            report.cache = StageCacheState::Stored;
        } else {
            report.cache = StageCacheState::StoreFailed;
            warn("stage cache store failed for " + report.name + ": " +
                 stored.toString());
        }
        return out;
    }

    /** Records item/drop accounting for stage @p id. */
    void
    setCounts(std::size_t id, std::size_t items, std::size_t dropped)
    {
        reports_[id].items = items;
        reports_[id].dropped = dropped;
    }

    /** Records simulator work counters for stage @p id. */
    void
    setSimCounters(std::size_t id, const sim::PerfCounters &counters)
    {
        reports_[id].sim = counters;
    }

    const std::vector<StageReport> &reports() const { return reports_; }

    StageCache *cache() const { return cache_; }

  private:
    /** Now() on the stage's CPU clock: thread-CPU for pool workers
     *  (wall overlaps siblings), process-CPU for main-thread stages. */
    static double
    cpuSeconds(bool threadCpu)
    {
        // bigfish-lint: allow(stage-timing)
        return detail::posixClockSeconds(threadCpu ? CLOCK_THREAD_CPUTIME_ID
                                                   : CLOCK_PROCESS_CPUTIME_ID);
    }

    StageCache *cache_;
    std::vector<StageReport> reports_;
};

} // namespace bigfish::core

#endif // BF_CORE_STAGE_HH
