/**
 * @file
 * TraceCollector: the end-to-end trace-collection pipeline.
 *
 * One CollectionConfig describes a full experimental configuration — the
 * machine and OS (Table 1 rows, Table 3 isolation knobs), the browser
 * (timer + load behavior), the attacker kind (Figure 2a vs 2b), an
 * optional timer override (Table 4 defenses), optional noise
 * countermeasures (Table 2), and an optional FaultConfig (dropped or
 * duplicated interrupts, skewed/non-monotonic timers, attacker stalls,
 * truncated traces). TraceCollector realizes victim workloads,
 * synthesizes interrupt timelines, applies browser runtime effects,
 * defense overlays and injected faults, runs the attacker, and returns
 * labeled traces.
 *
 * Seeding is fully deterministic: trace (site, run) under the same
 * config always reproduces bit-identically, faults included.
 *
 * Error contract: per-trace collection returns Result<Trace>; a trace
 * degraded below usability (e.g. truncated to a handful of periods) is
 * an error, not a crash. The closed/open-world collectors drop such
 * traces with accounting (CollectionStats) instead of aborting the run.
 */

#ifndef BF_CORE_COLLECTOR_HH
#define BF_CORE_COLLECTOR_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "attack/attacker.hh"
#include "attack/trace.hh"
#include "base/result.hh"
#include "defense/noise.hh"
#include "sim/faults.hh"
#include "sim/machine.hh"
#include "sim/perf.hh"
#include "sim/synthesizer.hh"
#include "timers/timer.hh"
#include "web/browser.hh"
#include "web/catalog.hh"

namespace bigfish::core {

class CheckpointJournal;

/** One full experimental configuration. */
struct CollectionConfig
{
    sim::MachineConfig machine = sim::MachineConfig::linuxDesktop();
    web::BrowserProfile browser = web::BrowserProfile::chrome();
    attack::AttackerKind attacker = attack::AttackerKind::LoopCounting;
    attack::AttackerParams attackerParams;

    /** Replaces the browser's timer (Table 4 timer defenses). */
    std::optional<timers::TimerSpec> timerOverride;
    /** Period length P; 0 means "use the browser default". */
    TimeNs period = 0;

    /** Enables the spurious-interrupt countermeasure (Section 6.2). */
    bool spuriousInterruptNoise = false;
    defense::SpuriousInterruptParams spuriousParams;
    /** Enables the cache-sweep countermeasure (Shusterman et al.). */
    bool cacheSweepNoise = false;
    defense::CacheSweepParams cacheSweepParams;
    /** Runs Slack + Spotify in the background (Section 4.2). */
    bool backgroundApps = false;

    /** Run-to-run victim variation. */
    web::RealizationNoise realization;

    /**
     * Injected faults (sim/faults.hh); disabled by default. Fault
     * randomness derives from (faults.seed, site, run), so any
     * Table-1/2/3 configuration re-runs bit-identically under faults.
     */
    sim::FaultConfig faults;

    /** Master seed; everything derives from it. */
    std::uint64_t seed = 42;

    /** Effective period (override or browser default). */
    TimeNs effectivePeriod() const
    {
        return period > 0 ? period : browser.period;
    }

    /** Effective timer spec (override or browser timer). */
    timers::TimerSpec effectiveTimer() const
    {
        return timerOverride ? *timerOverride : browser.timer;
    }
};

/** Accounting of one closed/open-world collection sweep. */
struct CollectionStats
{
    std::size_t attempted = 0; ///< Traces collection was attempted for.
    std::size_t collected = 0; ///< Traces that made it into the set.
    std::size_t dropped = 0;   ///< Traces dropped as unusable.
};

/** Collects traces for one configuration. */
class TraceCollector
{
  public:
    /** Fewest periods a trace must keep to be usable by the pipeline. */
    static constexpr std::size_t kMinViablePeriods = 4;

    explicit TraceCollector(CollectionConfig config);

    const CollectionConfig &config() const { return config_; }

    /**
     * Attaches a checkpoint journal (core/checkpoint.hh): completed
     * (site, run) cells are served from the journal instead of being
     * recollected, and fresh cells are appended as they finish. Because
     * every cell is a pure function of (config, site, run), the journal
     * never changes *what* is collected — only whether the work is
     * redone — which is the bit-identical-resume contract. @p journal
     * must outlive the collection calls; nullptr detaches.
     */
    void setCheckpoint(CheckpointJournal *journal) { checkpoint_ = journal; }

    /**
     * Synthesizes the attacker-core timeline for (site, run) —
     * deterministic in (config seed, site id, run index). Exposed so the
     * kernel tracer and gap detector can observe the same ground truth
     * the attacker measured. Timeline-level faults (dropped/duplicated
     * interrupts, stalls) are already applied, so observers and the
     * attacker keep sharing one ground truth under injected faults.
     *
     * @param perf When non-null, accumulates simulator work counters
     *             (sim/perf.hh) for this synthesis.
     */
    sim::RunTimeline synthesizeTimeline(const web::SiteSignature &site,
                                        int run_index,
                                        sim::PerfCounters *perf =
                                            nullptr) const;

    /**
     * Collects one trace of @p site. Fails (without terminating) when
     * the trace comes back unusable — e.g. fault-truncated below
     * kMinViablePeriods or empty.
     */
    [[nodiscard]] Result<attack::Trace> collectOne(const web::SiteSignature &site,
                                     int run_index) const;

    /** collectOne() that fatal()s on failure (binary boundaries only). */
    attack::Trace collectOneOrDie(const web::SiteSignature &site,
                                  int run_index) const;

    /**
     * Collects one trace of @p site per attacker in @p attackers, all
     * from a single timeline synthesis. Timeline synthesis, timer
     * seeding and fault planning are attacker-independent, so each
     * returned trace is bit-identical to a separate collectOne() call
     * under a config whose only difference is `attacker` — but the
     * expensive synthesis runs once instead of attackers.size() times.
     * The config's own `attacker` field is ignored.
     */
    [[nodiscard]] std::vector<Result<attack::Trace>>
    collectOneMulti(const web::SiteSignature &site, int run_index,
                    std::span<const attack::AttackerKind> attackers,
                    sim::PerfCounters *perf = nullptr) const;

    /**
     * Closed-world dataset: @p traces_per_site traces of every catalog
     * site, labeled by site id. Unusable traces are dropped with
     * accounting in @p stats (optional); the call fails only when the
     * configuration is invalid or no trace at all survived.
     */
    [[nodiscard]] Result<attack::TraceSet>
    collectClosedWorld(const web::SiteCatalog &catalog, int traces_per_site,
                       CollectionStats *stats = nullptr) const;

    /** collectClosedWorld() that fatal()s on failure. */
    attack::TraceSet
    collectClosedWorldOrDie(const web::SiteCatalog &catalog,
                            int traces_per_site,
                            CollectionStats *stats = nullptr) const;

    /**
     * Closed-world collection for several attackers sharing every
     * synthesized timeline (see collectOneMulti). Returns one TraceSet
     * per attacker, each bit-identical to a collectClosedWorld() under
     * the corresponding single-attacker config; @p stats (optional) is
     * resized to one entry per attacker. @p perf (optional) accumulates
     * simulator work counters, summed over cells in serial order so the
     * totals are identical at any thread count; journal-replayed cells
     * contribute zero (counters measure work performed).
     */
    [[nodiscard]] Result<std::vector<attack::TraceSet>>
    collectClosedWorldMulti(const web::SiteCatalog &catalog,
                            int traces_per_site,
                            std::span<const attack::AttackerKind> attackers,
                            std::vector<CollectionStats> *stats = nullptr,
                            sim::PerfCounters *perf = nullptr) const;

    /**
     * Open-world extension: @p num_extra traces, each of a distinct
     * one-off site, all labeled @p non_sensitive_label. Unusable traces
     * are dropped with accounting in @p stats (optional).
     */
    [[nodiscard]] Result<attack::TraceSet>
    collectOpenWorld(const web::SiteCatalog &catalog, int num_extra,
                     Label non_sensitive_label,
                     CollectionStats *stats = nullptr) const;

    /** collectOpenWorld() that fatal()s on failure. */
    attack::TraceSet
    collectOpenWorldOrDie(const web::SiteCatalog &catalog, int num_extra,
                          Label non_sensitive_label,
                          CollectionStats *stats = nullptr) const;

    /** Open-world counterpart of collectClosedWorldMulti(). */
    [[nodiscard]] Result<std::vector<attack::TraceSet>>
    collectOpenWorldMulti(const web::SiteCatalog &catalog, int num_extra,
                          Label non_sensitive_label,
                          std::span<const attack::AttackerKind> attackers,
                          std::vector<CollectionStats> *stats = nullptr,
                          sim::PerfCounters *perf = nullptr) const;

  private:
    /** Per-(site, run) root randomness. */
    Rng traceRng(SiteId site_id, int run_index) const;

    /** Per-(site, run) fault-plan salt (independent of traceRng). */
    std::uint64_t faultSalt(SiteId site_id, int run_index) const;

    /**
     * Runs @p attacker over an already-synthesized timeline: fresh timer
     * from the (attacker-independent) @p timer_seed, fault wrapping,
     * attack, truncation and viability checks. collectOne() and
     * collectOneMulti() share this path, which is what makes the shared
     * timeline bit-compatible with separate single-attacker collections.
     */
    [[nodiscard]] Result<attack::Trace>
    collectForAttacker(attack::AttackerKind attacker,
                       const web::SiteSignature &site, int run_index,
                       const sim::RunTimeline &timeline,
                       const sim::FaultPlan &plan,
                       std::uint64_t timer_seed,
                       sim::PerfCounters *perf = nullptr) const;

    /**
     * Serves (world, site_key, run) from the attached journal when
     * completed earlier; otherwise collects and journals it. The
     * no-journal path is a plain collectOneMulti() call.
     */
    [[nodiscard]] std::vector<Result<attack::Trace>>
    collectCellCheckpointed(int world, SiteId site_key,
                            const web::SiteSignature &site, int run_index,
                            std::span<const attack::AttackerKind> attackers,
                            sim::PerfCounters *perf = nullptr) const;

    CollectionConfig config_;
    sim::InterruptSynthesizer synthesizer_;
    CheckpointJournal *checkpoint_ = nullptr;
};

} // namespace bigfish::core

#endif // BF_CORE_COLLECTOR_HH
