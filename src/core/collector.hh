/**
 * @file
 * TraceCollector: the end-to-end trace-collection pipeline.
 *
 * One CollectionConfig describes a full experimental configuration — the
 * machine and OS (Table 1 rows, Table 3 isolation knobs), the browser
 * (timer + load behavior), the attacker kind (Figure 2a vs 2b), an
 * optional timer override (Table 4 defenses), and optional noise
 * countermeasures (Table 2). TraceCollector realizes victim workloads,
 * synthesizes interrupt timelines, applies browser runtime effects and
 * defense overlays, runs the attacker, and returns labeled traces.
 *
 * Seeding is fully deterministic: trace (site, run) under the same
 * config always reproduces bit-identically.
 */

#ifndef BF_CORE_COLLECTOR_HH
#define BF_CORE_COLLECTOR_HH

#include <cstdint>
#include <optional>

#include "attack/attacker.hh"
#include "attack/trace.hh"
#include "defense/noise.hh"
#include "sim/machine.hh"
#include "sim/synthesizer.hh"
#include "timers/timer.hh"
#include "web/browser.hh"
#include "web/catalog.hh"

namespace bigfish::core {

/** One full experimental configuration. */
struct CollectionConfig
{
    sim::MachineConfig machine = sim::MachineConfig::linuxDesktop();
    web::BrowserProfile browser = web::BrowserProfile::chrome();
    attack::AttackerKind attacker = attack::AttackerKind::LoopCounting;
    attack::AttackerParams attackerParams;

    /** Replaces the browser's timer (Table 4 timer defenses). */
    std::optional<timers::TimerSpec> timerOverride;
    /** Period length P; 0 means "use the browser default". */
    TimeNs period = 0;

    /** Enables the spurious-interrupt countermeasure (Section 6.2). */
    bool spuriousInterruptNoise = false;
    defense::SpuriousInterruptParams spuriousParams;
    /** Enables the cache-sweep countermeasure (Shusterman et al.). */
    bool cacheSweepNoise = false;
    defense::CacheSweepParams cacheSweepParams;
    /** Runs Slack + Spotify in the background (Section 4.2). */
    bool backgroundApps = false;

    /** Run-to-run victim variation. */
    web::RealizationNoise realization;

    /** Master seed; everything derives from it. */
    std::uint64_t seed = 42;

    /** Effective period (override or browser default). */
    TimeNs effectivePeriod() const
    {
        return period > 0 ? period : browser.period;
    }

    /** Effective timer spec (override or browser timer). */
    timers::TimerSpec effectiveTimer() const
    {
        return timerOverride ? *timerOverride : browser.timer;
    }
};

/** Collects traces for one configuration. */
class TraceCollector
{
  public:
    explicit TraceCollector(CollectionConfig config);

    const CollectionConfig &config() const { return config_; }

    /**
     * Synthesizes the attacker-core timeline for (site, run) —
     * deterministic in (config seed, site id, run index). Exposed so the
     * kernel tracer and gap detector can observe the same ground truth
     * the attacker measured.
     */
    sim::RunTimeline synthesizeTimeline(const web::SiteSignature &site,
                                        int run_index) const;

    /** Collects one trace of @p site. */
    attack::Trace collectOne(const web::SiteSignature &site,
                             int run_index) const;

    /**
     * Closed-world dataset: @p traces_per_site traces of every catalog
     * site, labeled by site id.
     */
    attack::TraceSet collectClosedWorld(const web::SiteCatalog &catalog,
                                        int traces_per_site) const;

    /**
     * Open-world extension: @p num_extra traces, each of a distinct
     * one-off site, all labeled @p non_sensitive_label.
     */
    attack::TraceSet collectOpenWorld(const web::SiteCatalog &catalog,
                                      int num_extra,
                                      Label non_sensitive_label) const;

  private:
    /** Per-(site, run) root randomness. */
    Rng traceRng(SiteId site_id, int run_index) const;

    CollectionConfig config_;
    sim::InterruptSynthesizer synthesizer_;
};

} // namespace bigfish::core

#endif // BF_CORE_COLLECTOR_HH
