/**
 * @file
 * StageCache: a content-addressed store of stage outputs.
 *
 * The stage graph (core/stage.hh) makes every pipeline phase a pure
 * function of its configuration and its upstream outputs, so any
 * stage's output can be reused across runs that share its fingerprint:
 * featurized datasets (sweeps that vary only the classifier or the
 * evaluation protocol), trained fold models (ml/serialize snapshots)
 * and per-fold evaluation scores. A hit replays the payload
 * bit-identically: doubles are serialized as hexfloats ("%a"), which
 * round-trip bit-exactly through strtod, so a cached run's artifact
 * matches the uncached run's except for phase timings and cache
 * provenance.
 *
 * Entries are keyed by (kind, fingerprint): the kind names the payload
 * namespace ("featurized", "model", "scores") and the fingerprint is
 * the owning stage's input fingerprint (config ⊕ upstream
 * fingerprints, core/stage.hh). Any input change simply misses — stale
 * payloads can never leak into a non-matching run.
 *
 * Durability contract (inherited from the PR 7 feature cache this
 * generalizes): entries are committed with atomicWriteFile
 * (write-temp-fsync-rename, unique temp names), and every entry
 * carries a whole-file CRC32 trailer (base/hash.hh). A torn,
 * interleaved or bit-flipped entry is detected on lookup, removed, and
 * reported as a miss — the pipeline falls back to recomputing, never
 * to wrong data. Concurrent writers of the same key race to write
 * *identical* bytes (the pipeline is deterministic), so whichever
 * rename lands last is correct.
 */

#ifndef BF_CORE_STAGE_CACHE_HH
#define BF_CORE_STAGE_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "base/result.hh"
#include "ml/dataset.hh"
#include "ml/evaluation.hh"

namespace bigfish::core {

/** Lookup/store accounting for one StageCache instance. */
struct StageCacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    /** Entries dropped by lookup() as torn/corrupt (counted as misses too). */
    std::size_t corrupt = 0;
    std::size_t stores = 0;
    /** Entries removed by evict(). */
    std::size_t evicted = 0;
};

/**
 * Content-addressed store of stage payloads, one file per (kind, key)
 * under a cache directory. Thread-safe: fold stages probe and store
 * concurrently from pool workers.
 */
class StageCache
{
  public:
    /** Opens the cache at @p dir, creating the directory as needed. */
    [[nodiscard]] static Result<StageCache> open(const std::string &dir);

    /**
     * The cached payload for (@p kind, @p key), or nullopt on miss. A
     * present but unreadable entry (CRC failure, malformed framing,
     * kind/key mismatch) is removed and reported as a miss.
     */
    [[nodiscard]] std::optional<std::string> lookup(std::string_view kind,
                                                    std::uint64_t key);

    /** Atomically commits @p payload under (kind, key). */
    [[nodiscard]] Status put(std::string_view kind, std::uint64_t key,
                               std::string_view payload);

    /**
     * Drops one entry (used when a payload passes the CRC but fails
     * its semantic decode — dead weight either way).
     */
    void remove(std::string_view kind, std::uint64_t key);

    /**
     * Removes oldest-modified entries until at most @p maxEntries
     * remain. Returns the number removed.
     */
    std::size_t evict(std::size_t maxEntries);

    /** The entry file path for (kind, key) (tests and diagnostics). */
    std::string entryPath(std::string_view kind, std::uint64_t key) const;

    const std::string &dir() const { return dir_; }
    StageCacheStats stats() const;

    // --- Framing internals, exposed for tests -------------------------
    /** Frames @p payload with the versioned header + CRC32 trailer. */
    static std::string frame(std::string_view kind, std::uint64_t key,
                             std::string_view payload);
    /** Inverse of frame(); false on any malformation. */
    static bool unframe(const std::string &text, std::string_view kind,
                        std::uint64_t key, std::string &payload);

  private:
    explicit StageCache(std::string dir) : dir_(std::move(dir)) {}

    std::string dir_;
    StageCacheStats stats_;
    /** unique_ptr keeps the class movable (Result<StageCache>). */
    std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
};

// ---------------------------------------------------------------------
// Stage payload codecs. Canonical text forms of the payloads the
// fingerprinting pipeline caches; doubles are hexfloats, so a decoded
// payload is bit-identical to the encoded one.

/** Everything one attacker's evaluation consumes downstream of
 *  featurization (the "featurized" payload). */
struct FeaturizedEntry
{
    ml::Dataset closedWorld;
    /** Present only when the run had openWorldExtra > 0. */
    ml::Dataset openWorld;
    bool hasOpenWorld = false;
    /** Trace accounting replayed into FingerprintResult. */
    std::uint64_t droppedTraces = 0;
    std::uint64_t collectedTraces = 0;
};

std::string encodeFeaturized(const FeaturizedEntry &entry);
[[nodiscard]] std::optional<FeaturizedEntry>
decodeFeaturized(const std::string &payload);

/** One fold's raw evaluation outputs (the "scores" payload). */
std::string encodeFoldScores(const ml::FoldScores &fold);
[[nodiscard]] std::optional<ml::FoldScores>
decodeFoldScores(const std::string &payload);

} // namespace bigfish::core

#endif // BF_CORE_STAGE_CACHE_HH
