/**
 * @file
 * The experiment registry: every paper table, figure, and ablation
 * registers one ExperimentDescriptor — name, paper reference, parameter
 * schema, expected-shape numbers, and a run function producing a
 * RunArtifact — and the `bigfish` CLI, tests, and scripts all drive the
 * same registry instead of per-experiment main()s.
 *
 * Experiments live in bench/experiments/ as thin registration TUs; this
 * header also carries the shared scale plumbing (the old bench_common
 * knobs: sites/traces/open/features/folds/seed/paper-model/threads) so
 * every experiment declares the same core vocabulary.
 */

#ifndef BF_CORE_REGISTRY_HH
#define BF_CORE_REGISTRY_HH

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/result.hh"
#include "core/artifact.hh"
#include "core/pipeline.hh"
#include "spec/spec.hh"

namespace bigfish::core {

struct ExperimentDescriptor;

/** Everything a run function receives: its descriptor + resolved spec. */
struct RunContext
{
    const ExperimentDescriptor *descriptor = nullptr;
    spec::RunSpec spec;
};

/** Runs one experiment; failures propagate as Status (no OrDie). */
using ExperimentRunFn =
    std::function<Result<RunArtifact>(const RunContext &)>;

/** One registered experiment (a paper table, figure, or ablation). */
struct ExperimentDescriptor
{
    /** Registry key and CLI name, e.g. "table1_fingerprinting". */
    std::string name;
    /** One-line human title for `bigfish list`. */
    std::string title;
    /** Paper section/table this reproduces, e.g. "Table 1, §5.1". */
    std::string paperReference;
    /** Declared parameters (always includes the common scale knobs). */
    spec::ParamSchema schema;
    /**
     * Paper-expected values (the per-binary `Row` tables of old),
     * keyed by the metric name each corresponds to. One source of
     * truth: run output deltas and EXPERIMENTS.md derive from here.
     */
    std::vector<ExpectedValue> expected;
    /**
     * Extra per-experiment --smoke preset entries (raw name/value),
     * applied on top of the common smoke scale. E.g. fig6 shrinks its
     * "loads" parameter.
     */
    std::vector<std::pair<std::string, std::string>> smokeOverrides;
    ExperimentRunFn run;

    /** The expected value recorded for metric @p name, when any. */
    std::optional<double> expectedValue(const std::string &name) const;
};

/** Name-ordered collection of every registered experiment. */
class ExperimentRegistry
{
  public:
    /** Registers @p descriptor; panics on a duplicate name. */
    void add(ExperimentDescriptor descriptor);

    /** The descriptor named @p name, or nullptr. */
    const ExperimentDescriptor *find(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    std::size_t size() const { return experiments_.size(); }

    const std::map<std::string, ExperimentDescriptor> &all() const
    {
        return experiments_;
    }

  private:
    std::map<std::string, ExperimentDescriptor> experiments_;
};

// --- Shared scale vocabulary (the old bench_common knobs) ---------------

/**
 * The common scale schema every experiment starts from: sites, traces,
 * open, features, folds, seed, paper-model, threads — with the same
 * defaults and BF_* environment variables the bench binaries honored.
 */
spec::ParamSchema commonScaleSchema();

/** The common knobs decoded from a resolved spec. */
struct ExperimentScale
{
    int sites = 20;
    int tracesPerSite = 20;
    int openWorldExtra = 60;
    std::size_t featureLen = 256;
    int folds = 5;
    /** k for the top-k accuracy metric (eval-only: never affects
     *  collection, featurization or training fingerprints). */
    int topK = 5;
    std::uint64_t seed = 2022;
    bool paperModel = false;
    int threads = 0;
    /** Checkpoint/resume directory ("" disables journaling). */
    std::string resumeDir;
    /** Stage cache directory (featurized data, fold models, fold
     *  scores; "" disables caching). */
    std::string cacheDir;
    /** IO fault injection: crash after N journal records (0 = off). */
    int ioCrashAfterRecords = 0;
    /** IO fault injection: torn bytes of the crashed record. */
    int ioTornWriteBytes = 0;
};

/** Decodes the common knobs from @p run_spec (panics when missing). */
ExperimentScale scaleFromSpec(const spec::RunSpec &run_spec);

/** The --smoke preset: tiny grid for CI smoke runs. */
std::vector<std::pair<std::string, std::string>> smokeScaleOverrides();

/** The --full preset: the paper's dimensions (100×100, 10 folds). */
std::vector<std::pair<std::string, std::string>> fullScaleOverrides();

/** Builds a PipelineConfig from the scale (closed world only). */
PipelineConfig pipelineForScale(const ExperimentScale &scale);

/**
 * Builds the baseline CollectionConfig for the scale: master seed plus
 * the IO-layer fault knobs (sim/faults.hh) wired through so `--resume`
 * runs can be crash-tested from the CLI. Experiments overlay their own
 * machine/browser/defense configuration on top.
 */
CollectionConfig collectionForScale(const ExperimentScale &scale);

/** The classifier factory the scale selects (two-channel CNN-LSTM). */
ml::ClassifierFactory classifierForScale(const ExperimentScale &scale);

/**
 * Starts an artifact for @p ctx: experiment name, resolved spec,
 * expected values, thread count, and seed provenance pre-filled.
 */
RunArtifact makeArtifact(const RunContext &ctx);

/** Prints the run banner (experiment, paper reference, scale). */
void printExperimentBanner(const RunContext &ctx);

} // namespace bigfish::core

#endif // BF_CORE_REGISTRY_HH
