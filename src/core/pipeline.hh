/**
 * @file
 * FingerprintPipeline: collect → featurize → cross-validated classify.
 *
 * This is the library's highest-level entry point: given one
 * CollectionConfig (the attack setup) and one PipelineConfig (dataset
 * scale + classifier), it reproduces the paper's evaluation protocol and
 * returns Table-ready accuracy numbers for the closed-world and
 * open-world settings.
 *
 * Internally the run is a declared stage graph (core/stage.hh):
 * Collect → Featurize per attacker → per world FoldSplit →
 * TrainFold×k → ScoreFold×k → Aggregate. Every stage is
 * content-addressed, so with a cacheDir any upstream prefix whose
 * fingerprints match a previous run replays from the stage cache
 * bit-identically, and the per-stage timing/cache table comes back in
 * FingerprintResult::stages.
 *
 * Error contract: runFingerprinting() returns Result<FingerprintResult>.
 * Traces that come back unusable (fault-truncated, empty) are dropped
 * with accounting in FingerprintResult::droppedTraces rather than
 * aborting the evaluation; the run fails only when the configuration is
 * invalid or so few traces survive that cross-validation is impossible.
 */

#ifndef BF_CORE_PIPELINE_HH
#define BF_CORE_PIPELINE_HH

#include <span>
#include <vector>

#include "base/result.hh"
#include "core/collector.hh"
#include "core/stage.hh"
#include "ml/classifier.hh"
#include "ml/evaluation.hh"

namespace bigfish::core {

/** Dataset scale and classifier choice for one evaluation. */
struct PipelineConfig
{
    int numSites = 20;      ///< Paper: 100.
    int tracesPerSite = 20; ///< Paper: 100.
    /** Open-world extra one-off traces; paper: 5000. 0 disables. */
    int openWorldExtra = 0;
    /**
     * Time buckets per channel fed to the classifier (traces are
     * resampled; the dataset rows are 2 x featureLen: bucket means plus
     * sub-bucket dip depths).
     */
    std::size_t featureLen = 256;
    /** Classifier; defaults to the two-channel CNN-LSTM at bench scale. */
    ml::ClassifierFactory factory =
        ml::cnnLstmFactory(ml::CnnLstmParams::traceDefaults());
    /** Cross-validation protocol. */
    ml::EvalConfig eval;
    /** Catalog seed (same seed = same 100 websites). */
    std::uint64_t catalogSeed = 7;
    /**
     * Checkpoint/resume directory ("" disables journaling). When set,
     * completed (site, run) cells are journaled there
     * (core/checkpoint.hh) and a re-run with the same configuration
     * resumes from the journal, bit-identically.
     */
    std::string checkpointDir;
    /**
     * Stage cache directory ("" disables caching). When set, every
     * cacheable stage output — featurized datasets, trained fold
     * models, per-fold evaluation scores — is stored content-addressed
     * (core/stage_cache.hh) and a re-run reuses whatever upstream
     * prefix of the stage graph still fingerprints the same, replaying
     * it bit-identically: changing only evaluation settings skips
     * collection, featurization and (for eval-only knobs like topK)
     * training too.
     */
    std::string cacheDir;
};

/** The result of one full fingerprinting evaluation. */
struct FingerprintResult
{
    ml::EvalResult closedWorld;
    /** Present only when openWorldExtra > 0. */
    ml::EvalResult openWorld;
    bool hasOpenWorld = false;

    /** Traces dropped as unusable across both worlds (fault accounting). */
    std::size_t droppedTraces = 0;
    /** Traces that made it into the evaluation across both worlds. */
    std::size_t collectedTraces = 0;

    /**
     * The per-stage execution table: one StageReport per stage this
     * result's attacker owns (name, phase, fingerprint, cache
     * provenance, CPU/wall seconds, item/drop accounting). This
     * replaces the former ad-hoc per-phase *Seconds fields; phase
     * rollups are reduced from it by RunArtifact. In shared runs the
     * Collect stage appears only in the first attacker's table, so
     * summing per-attacker tables counts the shared collection once.
     */
    std::vector<StageReport> stages;
};

/**
 * Runs the complete evaluation for one attack configuration.
 *
 * Closed world: numSites x tracesPerSite traces, k-fold CV, top-1/top-5.
 * Open world (when enabled): the closed-world traces become "sensitive"
 * classes and openWorldExtra one-off traces form the "non-sensitive"
 * class, mirroring the paper's 101-class design.
 *
 * Degraded collection (injected faults, truncated traces) drops traces
 * with accounting instead of failing; see FingerprintResult.
 */
[[nodiscard]] Result<FingerprintResult>
runFingerprinting(const CollectionConfig &collection,
                  const PipelineConfig &pipeline);

/** runFingerprinting() that fatal()s on failure (binary boundaries). */
FingerprintResult
runFingerprintingOrDie(const CollectionConfig &collection,
                       const PipelineConfig &pipeline);

/**
 * Runs the complete evaluation for several attackers that differ ONLY in
 * attacker kind (the benchmarks compare loop-counting vs sweep-counting
 * over otherwise-identical configurations). Victim timelines are
 * synthesized once and shared across attackers, so collection costs
 * ~1/attackers.size() of separate runFingerprinting() calls while every
 * returned result is bit-identical to its single-attacker run —
 * synthesis and timer seeding never depend on the attacker.
 *
 * @p collection's own `attacker` field is ignored; results are returned
 * in @p attackers order. The shared Collect stage is reported once, in
 * the first result's stage table, so summing results does not
 * double-count it.
 */
[[nodiscard]] Result<std::vector<FingerprintResult>>
runFingerprintingShared(const CollectionConfig &collection,
                        std::span<const attack::AttackerKind> attackers,
                        const PipelineConfig &pipeline);

/** runFingerprintingShared() that fatal()s on failure. */
std::vector<FingerprintResult>
runFingerprintingSharedOrDie(
    const CollectionConfig &collection,
    std::span<const attack::AttackerKind> attackers,
    const PipelineConfig &pipeline);

/** Converts a TraceSet into an ml::Dataset of fixed-length features. */
ml::Dataset toDataset(const attack::TraceSet &traces,
                      std::size_t feature_len, int num_classes);

} // namespace bigfish::core

#endif // BF_CORE_PIPELINE_HH
