/**
 * @file
 * FingerprintPipeline: collect → featurize → cross-validated classify.
 *
 * This is the library's highest-level entry point: given one
 * CollectionConfig (the attack setup) and one PipelineConfig (dataset
 * scale + classifier), it reproduces the paper's evaluation protocol and
 * returns Table-ready accuracy numbers for the closed-world and
 * open-world settings.
 *
 * Error contract: runFingerprinting() returns Result<FingerprintResult>.
 * Traces that come back unusable (fault-truncated, empty) are dropped
 * with accounting in FingerprintResult::droppedTraces rather than
 * aborting the evaluation; the run fails only when the configuration is
 * invalid or so few traces survive that cross-validation is impossible.
 */

#ifndef BF_CORE_PIPELINE_HH
#define BF_CORE_PIPELINE_HH

#include <span>
#include <vector>

#include "base/result.hh"
#include "core/collector.hh"
#include "ml/classifier.hh"
#include "ml/evaluation.hh"

namespace bigfish::core {

/** Dataset scale and classifier choice for one evaluation. */
struct PipelineConfig
{
    int numSites = 20;      ///< Paper: 100.
    int tracesPerSite = 20; ///< Paper: 100.
    /** Open-world extra one-off traces; paper: 5000. 0 disables. */
    int openWorldExtra = 0;
    /**
     * Time buckets per channel fed to the classifier (traces are
     * resampled; the dataset rows are 2 x featureLen: bucket means plus
     * sub-bucket dip depths).
     */
    std::size_t featureLen = 256;
    /** Classifier; defaults to the two-channel CNN-LSTM at bench scale. */
    ml::ClassifierFactory factory =
        ml::cnnLstmFactory(ml::CnnLstmParams::traceDefaults());
    /** Cross-validation protocol. */
    ml::EvalConfig eval;
    /** Catalog seed (same seed = same 100 websites). */
    std::uint64_t catalogSeed = 7;
    /**
     * Checkpoint/resume directory ("" disables journaling). When set,
     * completed (site, run) cells are journaled there
     * (core/checkpoint.hh) and a re-run with the same configuration
     * resumes from the journal, bit-identically.
     */
    std::string checkpointDir;
    /**
     * Featurized-dataset cache directory ("" disables caching). When
     * set, the featurized evaluation inputs are stored content-
     * addressed (core/feature_cache.hh) and a re-run with the same
     * collection + featurization configuration skips collection and
     * featurization entirely, replaying the datasets bit-identically.
     */
    std::string cacheDir;
};

/** The result of one full fingerprinting evaluation. */
struct FingerprintResult
{
    ml::EvalResult closedWorld;
    /** Present only when openWorldExtra > 0. */
    ml::EvalResult openWorld;
    bool hasOpenWorld = false;

    /** Traces dropped as unusable across both worlds (fault accounting). */
    std::size_t droppedTraces = 0;
    /** Traces that made it into the evaluation across both worlds. */
    std::size_t collectedTraces = 0;

    /** Wall-clock seconds collecting traces (closed + open world). */
    double collectSeconds = 0.0;
    /** Wall-clock seconds featurizing trace sets into datasets. */
    double featurizeSeconds = 0.0;
    /**
     * Per-fold fit()/test-scoring *wall* seconds summed across both
     * worlds' evaluations. Fold walls overlap under parallel folds (and
     * inflate under timeshared cores), so these exceed the wall clock
     * the phases actually took; kept for historical comparability —
     * report the Cpu/Wall pairs below instead.
     */
    double trainSeconds = 0.0;
    double evalSeconds = 0.0;

    /** Process-CPU seconds of the collection phase. */
    double collectCpuSeconds = 0.0;
    /** Process-CPU seconds of the featurization phase. */
    double featurizeCpuSeconds = 0.0;
    /** Process-CPU / true wall seconds of the training (fit) phase. */
    double trainCpuSeconds = 0.0;
    double trainWallSeconds = 0.0;
    /** Process-CPU / true wall seconds of the test-scoring phase. */
    double evalCpuSeconds = 0.0;
    double evalWallSeconds = 0.0;
};

/**
 * Runs the complete evaluation for one attack configuration.
 *
 * Closed world: numSites x tracesPerSite traces, k-fold CV, top-1/top-5.
 * Open world (when enabled): the closed-world traces become "sensitive"
 * classes and openWorldExtra one-off traces form the "non-sensitive"
 * class, mirroring the paper's 101-class design.
 *
 * Degraded collection (injected faults, truncated traces) drops traces
 * with accounting instead of failing; see FingerprintResult.
 */
[[nodiscard]] Result<FingerprintResult>
runFingerprinting(const CollectionConfig &collection,
                  const PipelineConfig &pipeline);

/** runFingerprinting() that fatal()s on failure (binary boundaries). */
FingerprintResult
runFingerprintingOrDie(const CollectionConfig &collection,
                       const PipelineConfig &pipeline);

/**
 * Runs the complete evaluation for several attackers that differ ONLY in
 * attacker kind (the benchmarks compare loop-counting vs sweep-counting
 * over otherwise-identical configurations). Victim timelines are
 * synthesized once and shared across attackers, so collection costs
 * ~1/attackers.size() of separate runFingerprinting() calls while every
 * returned result is bit-identical to its single-attacker run —
 * synthesis and timer seeding never depend on the attacker.
 *
 * @p collection's own `attacker` field is ignored; results are returned
 * in @p attackers order. The shared collection wall-clock is split
 * evenly across the per-attacker collectSeconds so summing results does
 * not double-count.
 */
[[nodiscard]] Result<std::vector<FingerprintResult>>
runFingerprintingShared(const CollectionConfig &collection,
                        std::span<const attack::AttackerKind> attackers,
                        const PipelineConfig &pipeline);

/** runFingerprintingShared() that fatal()s on failure. */
std::vector<FingerprintResult>
runFingerprintingSharedOrDie(
    const CollectionConfig &collection,
    std::span<const attack::AttackerKind> attackers,
    const PipelineConfig &pipeline);

/** Converts a TraceSet into an ml::Dataset of fixed-length features. */
ml::Dataset toDataset(const attack::TraceSet &traces,
                      std::size_t feature_len, int num_classes);

} // namespace bigfish::core

#endif // BF_CORE_PIPELINE_HH
