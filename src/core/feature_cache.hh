/**
 * @file
 * FeatureCache: a content-addressed cache of featurized datasets.
 *
 * Collection and featurization are pure functions of the collection
 * configuration and the featurization parameters, so the evaluation
 * inputs — the ml::Dataset fed to cross-validation, plus the trace
 * accounting the artifact reports — can be reused across runs that
 * share those inputs (sweeps that vary only the classifier, repeated
 * `bigfish run --cache-dir=DIR` invocations, CI smokes). A cache hit
 * replays the datasets bit-identically: features are serialized as
 * hexfloats ("%a"), which round-trip bit-exactly through strtod, so a
 * cached run's artifact matches the uncached run's except for phase
 * timings.
 *
 * Entries are content-addressed like checkpoint journals
 * (core/checkpoint.hh): the key extends collectionFingerprint() with a
 * canonical featurization text (format version, featureLen, catalog
 * geometry, attacker), so any input change simply misses — stale
 * features can never leak into a non-matching run.
 *
 * Durability contract: entries are committed with atomicWriteFile
 * (write-temp-fsync-rename), and every entry carries a whole-file
 * CRC32. A torn, interleaved or bit-flipped entry is detected on
 * lookup, removed, and reported as a miss — the pipeline falls back to
 * collecting, never to wrong data. Concurrent writers of the same key
 * are racing to write *identical* bytes (the pipeline is
 * deterministic), so whichever rename lands last is correct; a tear
 * from interleaved temp writes is caught by the CRC.
 */

#ifndef BF_CORE_FEATURE_CACHE_HH
#define BF_CORE_FEATURE_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "attack/attacker.hh"
#include "base/result.hh"
#include "ml/dataset.hh"

namespace bigfish::core {

/** Lookup/store accounting for one FeatureCache instance. */
struct FeatureCacheStats
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    /** Entries dropped by lookup() as torn/corrupt (counted as misses too). */
    std::size_t corrupt = 0;
    std::size_t stores = 0;
    /** Entries removed by evict(). */
    std::size_t evicted = 0;
};

/**
 * Content-addressed store of featurized evaluation inputs, one file per
 * (collection, featurization, attacker) key under a cache directory.
 */
class FeatureCache
{
  public:
    /** Everything one attacker's evaluation consumes downstream of
     *  featurization. */
    struct Entry
    {
        ml::Dataset closedWorld;
        /** Present only when the run had openWorldExtra > 0. */
        ml::Dataset openWorld;
        bool hasOpenWorld = false;
        /** Trace accounting replayed into FingerprintResult. */
        std::uint64_t droppedTraces = 0;
        std::uint64_t collectedTraces = 0;
    };

    /** Opens the cache at @p dir, creating the directory as needed. */
    [[nodiscard]] static Result<FeatureCache> open(const std::string &dir);

    /**
     * The cached entry for @p key, or nullopt on miss. A present but
     * unreadable entry (CRC failure, malformed payload, key mismatch)
     * is removed and reported as a miss.
     */
    [[nodiscard]] std::optional<Entry> lookup(std::uint64_t key);

    /** Atomically commits @p entry under @p key (last writer wins). */
    [[nodiscard]] Status storeEntry(std::uint64_t key, const Entry &entry);

    /**
     * Removes oldest-modified entries until at most @p maxEntries
     * remain. Returns the number removed.
     */
    std::size_t evict(std::size_t maxEntries);

    /** The entry file path for @p key (for tests and diagnostics). */
    std::string entryPath(std::uint64_t key) const;

    const std::string &dir() const { return dir_; }
    const FeatureCacheStats &stats() const { return stats_; }

    // --- Serialization internals, exposed for tests -------------------
    /** Canonical text form of an entry (CRC trailer included). */
    static std::string serializeEntry(std::uint64_t key, const Entry &entry);
    /** Inverse of serializeEntry(); false on any malformation. */
    static bool parseEntry(const std::string &text, std::uint64_t key,
                           Entry &entry);

  private:
    explicit FeatureCache(std::string dir) : dir_(std::move(dir)) {}

    std::string dir_;
    FeatureCacheStats stats_;
};

/**
 * The cache key for one attacker's featurized datasets: the collection
 * fingerprint (everything trace content depends on) extended with the
 * featurization inputs. Two runs hash equal iff their featurized
 * datasets are interchangeable.
 */
[[nodiscard]] std::uint64_t
featureCacheKey(std::uint64_t collection_fingerprint,
                std::size_t feature_len, int num_sites,
                int open_world_extra, attack::AttackerKind attacker);

} // namespace bigfish::core

#endif // BF_CORE_FEATURE_CACHE_HH
