#include "core/presets.hh"

#include "base/logging.hh"

namespace bigfish::core::presets {

namespace {

sim::MachineConfig
machineFor(const std::string &os)
{
    if (os == "linux")
        return sim::MachineConfig::linuxDesktop();
    if (os == "windows")
        return sim::MachineConfig::windowsWorkstation();
    if (os == "macos")
        return sim::MachineConfig::macbook();
    fatal("unknown os preset: " + os + " (linux|windows|macos)");
}

web::BrowserProfile
browserFor(const std::string &browser)
{
    if (browser == "chrome")
        return web::BrowserProfile::chrome();
    if (browser == "firefox")
        return web::BrowserProfile::firefox();
    if (browser == "safari")
        return web::BrowserProfile::safari();
    if (browser == "tor")
        return web::BrowserProfile::torBrowser();
    fatal("unknown browser preset: " + browser +
          " (chrome|firefox|safari|tor)");
}

} // namespace

CollectionConfig
table1Row(const std::string &browser, const std::string &os,
          attack::AttackerKind attacker)
{
    // The paper's matrix: Chrome and Firefox on all three OSes; Safari
    // only on macOS; Tor Browser only on Linux.
    fatalIf(browser == "safari" && os != "macos",
            "Table 1 evaluates Safari only on macOS");
    fatalIf(browser == "tor" && os != "linux",
            "Table 1 evaluates Tor Browser only on Linux");
    CollectionConfig config;
    config.machine = machineFor(os);
    config.browser = browserFor(browser);
    config.attacker = attacker;
    return config;
}

std::vector<NamedConfig>
table1Rows()
{
    std::vector<NamedConfig> rows;
    const std::pair<const char *, const char *> matrix[] = {
        {"chrome", "linux"},   {"chrome", "windows"}, {"chrome", "macos"},
        {"firefox", "linux"},  {"firefox", "windows"},
        {"firefox", "macos"},  {"safari", "macos"},   {"tor", "linux"},
    };
    int index = 1;
    for (const auto &[browser, os] : matrix) {
        NamedConfig row;
        row.name = std::string(browser) + "/" + os;
        row.paperReference = "Table 1, row " + std::to_string(index++);
        row.config = table1Row(browser, os);
        rows.push_back(std::move(row));
    }
    return rows;
}

CollectionConfig
table2Condition(const std::string &noise, attack::AttackerKind attacker)
{
    CollectionConfig config;
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::chrome();
    config.attacker = attacker;
    if (noise == "none") {
        // Baseline.
    } else if (noise == "cache-sweep") {
        config.cacheSweepNoise = true;
    } else if (noise == "interrupt") {
        config.spuriousInterruptNoise = true;
    } else if (noise == "background") {
        config.backgroundApps = true;
    } else {
        fatal("unknown noise preset: " + noise +
              " (none|cache-sweep|interrupt|background)");
    }
    return config;
}

CollectionConfig
table3Isolation(int level)
{
    fatalIf(level < 0 || level > 4, "Table 3 levels are 0..4");
    CollectionConfig config;
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::nativePython();
    if (level >= 1)
        config.machine.frequencyScaling = false;
    if (level >= 2)
        config.machine.pinnedCores = true;
    if (level >= 3)
        config.machine.routing = sim::IrqRoutingPolicy::PinnedAway;
    if (level >= 4)
        config.machine.vmIsolation = true;
    return config;
}

CollectionConfig
table4Timer(const std::string &timer, int period_ms)
{
    fatalIf(period_ms <= 0, "period must be positive");
    CollectionConfig config;
    config.machine = sim::MachineConfig::linuxDesktop();
    config.browser = web::BrowserProfile::nativePython();
    config.period = static_cast<TimeNs>(period_ms) * kMsec;
    if (timer == "jittered") {
        config.timerOverride = timers::TimerSpec::jittered(100 * kUsec);
    } else if (timer == "quantized") {
        config.timerOverride = timers::TimerSpec::quantized(100 * kMsec);
    } else if (timer == "randomized") {
        config.timerOverride = timers::TimerSpec::randomizedDefense();
    } else {
        fatal("unknown timer preset: " + timer +
              " (jittered|quantized|randomized)");
    }
    return config;
}

} // namespace bigfish::core::presets
