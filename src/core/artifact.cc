#include "core/artifact.hh"

#include <cinttypes>
#include <cstdio>

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "spec/spec.hh"

namespace bigfish::core {

namespace {

std::string
quoteString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string
formatDouble(const char *fmt, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

std::string
hex16(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

} // namespace

RunArtifact::RunArtifact(std::string experiment, spec::RunSpec spec)
    : experiment_(std::move(experiment)), spec_(std::move(spec))
{
}

void
RunArtifact::addResult(const std::string &label,
                       const FingerprintResult &result)
{
    // The per-stage table is the source of truth; the phase buckets
    // are a rollup reduced from it. Skipped stages cost nothing and
    // roll up as zero.
    for (const StageReport &report : result.stages) {
        addPhaseSeconds(report.phase, report.cpuSeconds,
                        report.wallSeconds);
        StageReport labeled = report;
        labeled.name = label + "/" + report.name;
        stages_.push_back(std::move(labeled));
    }
    collectedTraces_ += result.collectedTraces;
    droppedTraces_ += result.droppedTraces;
    addMetric(label + "_top1", result.closedWorld.top1Mean);
    if (result.hasOpenWorld)
        addMetric(label + "_open_combined",
                  result.openWorld.openWorld.combinedAccuracy);
}

void
RunArtifact::addMetric(const std::string &name, double value)
{
    metrics_.emplace_back(name, value);
}

void
RunArtifact::addPhaseSeconds(const std::string &phase, double cpuSeconds,
                             double wallSeconds)
{
    if (phase == "collect") {
        collectCpuSeconds_ += cpuSeconds;
        collectWallSeconds_ += wallSeconds;
    } else if (phase == "featurize") {
        featurizeCpuSeconds_ += cpuSeconds;
        featurizeWallSeconds_ += wallSeconds;
    } else if (phase == "train") {
        trainCpuSeconds_ += cpuSeconds;
        trainWallSeconds_ += wallSeconds;
    } else if (phase == "eval") {
        evalCpuSeconds_ += cpuSeconds;
        evalWallSeconds_ += wallSeconds;
    } else {
        panic("unknown experiment phase: " + phase);
    }
}

void
RunArtifact::addTraceAccounting(std::size_t collected, std::size_t dropped)
{
    collectedTraces_ += collected;
    droppedTraces_ += dropped;
}

void
RunArtifact::setSeedProvenance(SeedProvenance provenance)
{
    provenance_ = std::move(provenance);
}

void
RunArtifact::setExpected(std::vector<ExpectedValue> expected)
{
    expected_ = std::move(expected);
}

std::optional<double>
RunArtifact::findMetric(const std::string &name) const
{
    for (const auto &[metric, value] : metrics_)
        if (metric == name)
            return value;
    return std::nullopt;
}

std::string
RunArtifact::explainText() const
{
    // sim_* columns attribute where cold time goes: stages that perform
    // no simulation (and cache/journal replays) report zeros.
    Table table({"stage", "phase", "fingerprint", "cache", "cpu_s",
                 "wall_s", "items", "dropped", "sim_events", "sim_irqs",
                 "sim_allocs", "sim_MB_sorted", "sim_events_per_s"});
    for (const StageReport &report : stages_) {
        const double events_per_s =
            report.cpuSeconds > 0.0
                ? static_cast<double>(report.sim.eventsSimulated) /
                      report.cpuSeconds
                : 0.0;
        table.addRow({report.name, report.phase, hex16(report.fingerprint),
                      stageCacheStateName(report.cache),
                      formatDouble("%.3f", report.cpuSeconds),
                      formatDouble("%.3f", report.wallSeconds),
                      std::to_string(report.items),
                      std::to_string(report.dropped),
                      std::to_string(report.sim.eventsSimulated),
                      std::to_string(report.sim.interruptsSynthesized),
                      std::to_string(report.sim.allocations),
                      formatDouble("%.1f",
                                   static_cast<double>(
                                       report.sim.bytesSorted) /
                                       (1024.0 * 1024.0)),
                      formatDouble("%.0f", events_per_s)});
    }
    return table.render();
}

std::string
RunArtifact::toJson() const
{
    std::string out = "{\n";
    out += "  \"schemaVersion\": " +
           std::to_string(spec::kArtifactSchemaVersion) + ",\n";
    out += "  \"experiment\": " + quoteString(experiment_) + ",\n";
    out += "  \"threads\": " + std::to_string(threads_) + ",\n";
    out += "  \"spec\": " + spec_.paramsJson("  ") + ",\n";
    out += "  \"seed_provenance\": {\"masterSeed\": " +
           std::to_string(provenance_.masterSeed) +
           ", \"catalogSeed\": " + std::to_string(provenance_.catalogSeed) +
           ", \"derivation\": " + quoteString(provenance_.derivation) +
           "},\n";
    out += "  \"expected\": {";
    bool first = true;
    for (const ExpectedValue &e : expected_) {
        if (e.name.empty())
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + quoteString(e.name) + ": " +
               formatDouble("%.6f", e.value);
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"traces\": {\"collected\": " +
           std::to_string(collectedTraces_) +
           ", \"dropped\": " + std::to_string(droppedTraces_) + "},\n";
    out += "  \"wallSeconds\": " + formatDouble("%.3f", wallSeconds_) +
           ",\n";
    out += "  \"phases\": {\"collectCpuSeconds\": " +
           formatDouble("%.3f", collectCpuSeconds_) +
           ", \"collectWallSeconds\": " +
           formatDouble("%.3f", collectWallSeconds_) +
           ", \"featurizeCpuSeconds\": " +
           formatDouble("%.3f", featurizeCpuSeconds_) +
           ", \"featurizeWallSeconds\": " +
           formatDouble("%.3f", featurizeWallSeconds_) +
           ", \"trainCpuSeconds\": " +
           formatDouble("%.3f", trainCpuSeconds_) +
           ", \"trainWallSeconds\": " +
           formatDouble("%.3f", trainWallSeconds_) +
           ", \"evalCpuSeconds\": " + formatDouble("%.3f", evalCpuSeconds_) +
           ", \"evalWallSeconds\": " +
           formatDouble("%.3f", evalWallSeconds_) + "},\n";
    // One line per stage, each carrying the *Seconds keys: timing and
    // cache provenance legitimately differ between cold and warm runs,
    // and the Seconds-line convention is what lets tooling diff
    // everything else bit-for-bit. The schema-v3 sim* counters ride on
    // the same line: the counts themselves are deterministic, but cache
    // provenance makes them cold/warm-dependent (replays report zero),
    // so they belong with the timing keys, not the diffable payload.
    out += "  \"stages\": [";
    bool first_stage = true;
    for (const StageReport &s : stages_) {
        const double events_per_s =
            s.cpuSeconds > 0.0
                ? static_cast<double>(s.sim.eventsSimulated) / s.cpuSeconds
                : 0.0;
        out += first_stage ? "\n" : ",\n";
        first_stage = false;
        out += "    {\"name\": " + quoteString(s.name) +
               ", \"phase\": " + quoteString(s.phase) +
               ", \"fingerprint\": " + quoteString(hex16(s.fingerprint)) +
               ", \"cache\": " +
               quoteString(stageCacheStateName(s.cache)) +
               ", \"cpuSeconds\": " + formatDouble("%.3f", s.cpuSeconds) +
               ", \"wallSeconds\": " + formatDouble("%.3f", s.wallSeconds) +
               ", \"items\": " + std::to_string(s.items) +
               ", \"dropped\": " + std::to_string(s.dropped) +
               ", \"simEvents\": " +
               std::to_string(s.sim.eventsSimulated) +
               ", \"simInterrupts\": " +
               std::to_string(s.sim.interruptsSynthesized) +
               ", \"simAllocations\": " +
               std::to_string(s.sim.allocations) +
               ", \"simBytesSorted\": " +
               std::to_string(s.sim.bytesSorted) +
               ", \"simEventsPerSec\": " +
               formatDouble("%.0f", events_per_s) + "}";
    }
    out += first_stage ? "],\n" : "\n  ],\n";
    out += "  \"metrics\": {";
    first = true;
    for (const auto &[name, value] : metrics_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + quoteString(name) + ": " +
               formatDouble("%.6f", value);
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

Status
RunArtifact::writeJson(const std::string &path) const
{
    return atomicWriteFile(path, toJson());
}

} // namespace bigfish::core
