#include "core/stage.hh"

#include "base/hash.hh"
#include "base/rng.hh"

namespace bigfish::core {

const char *
stageCacheStateName(StageCacheState state)
{
    switch (state) {
    case StageCacheState::Disabled:
        return "disabled";
    case StageCacheState::Uncached:
        return "uncached";
    case StageCacheState::Miss:
        return "miss";
    case StageCacheState::Hit:
        return "hit";
    case StageCacheState::Stored:
        return "stored";
    case StageCacheState::StoreFailed:
        return "store-failed";
    case StageCacheState::Skipped:
        return "skipped";
    }
    return "unknown";
}

std::uint64_t
stageFingerprint(std::string_view name, std::string_view canon,
                 std::span<const std::uint64_t> upstream)
{
    std::string text = "stage=";
    text += name;
    text += '\n';
    text += canon;
    std::uint64_t hash = mix64(fnv64(text) ^ 0x9d4c'72ab'51e8'3f06ULL);
    for (const std::uint64_t up : upstream)
        hash = mix64(hash ^ up);
    return hash;
}

std::size_t
StageGraph::declare(std::string name, std::string phase,
                    std::string_view canon,
                    std::span<const std::size_t> upstream)
{
    std::vector<std::uint64_t> upstream_fps;
    upstream_fps.reserve(upstream.size());
    for (const std::size_t id : upstream)
        upstream_fps.push_back(reports_[id].fingerprint);
    StageReport report;
    report.fingerprint = stageFingerprint(name, canon, upstream_fps);
    report.name = std::move(name);
    report.phase = std::move(phase);
    reports_.push_back(std::move(report));
    return reports_.size() - 1;
}

} // namespace bigfish::core
