#include "core/pipeline.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>

#include "base/logging.hh"
#include "base/stopwatch.hh"
#include "base/thread_pool.hh"
#include "core/checkpoint.hh"
#include "core/feature_cache.hh"
#include "stats/descriptive.hh"

namespace bigfish::core {

ml::Dataset
toDataset(const attack::TraceSet &traces, std::size_t feature_len,
          int num_classes)
{
    ml::Dataset data;
    const auto means = traces.toFeatures(feature_len);
    const auto dips = traces.toDipFeatures(feature_len);
    const auto labels = traces.labels();
    // Two channels per trace, concatenated channel-major:
    //   channel 0 — bucket means, winsorized (so single preemption-eaten
    //   periods cannot compress the trace's dynamic range) and
    //   standardized (counter values sit in a narrow band near their
    //   maximum; centered inputs are what make the gradient-based
    //   classifier train efficiently);
    //   channel 1 — sub-bucket dip depth, the fine-timescale interrupt
    //   texture that bucket averages smooth away.
    // Traces featurize independently into pre-sized slots, then append
    // in order, so the dataset is identical at any thread count.
    auto rows = parallelMap(means.size(), [&](std::size_t i) {
        std::vector<double> x = stats::zscore(stats::winsorize(means[i]));
        const auto dip = stats::zscore(dips[i]);
        x.insert(x.end(), dip.begin(), dip.end());
        return x;
    });
    data.features.reserve(rows.size());
    data.labels.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        data.add(std::move(rows[i]), labels[i]);
    data.numClasses = std::max(data.numClasses, num_classes);
    return data;
}

namespace {

/**
 * Distinct labels present in a (possibly fault-degraded) trace set —
 * dropping traces can silently empty out whole classes, which would
 * make the k-fold split degenerate.
 */
int
distinctLabels(const attack::TraceSet &traces)
{
    std::vector<Label> labels = traces.labels();
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
    return static_cast<int>(labels.size());
}

/**
 * Cross-validates one attacker's featurized datasets and fills the
 * result's evaluation + train/eval timing fields. Shared between the
 * collect path and the feature-cache replay path so both produce
 * bit-identical evaluations from identical datasets.
 */
void
evaluateDatasets(FingerprintResult &result, const PipelineConfig &pipeline,
                 const ml::Dataset &closed_data,
                 const ml::Dataset *open_data, Label non_sensitive)
{
    result.closedWorld =
        ml::crossValidate(pipeline.factory, closed_data, pipeline.eval);
    result.trainSeconds += result.closedWorld.trainSeconds;
    result.evalSeconds += result.closedWorld.evalSeconds;
    result.trainCpuSeconds += result.closedWorld.trainCpuSeconds;
    result.trainWallSeconds += result.closedWorld.trainWallSeconds;
    result.evalCpuSeconds += result.closedWorld.evalCpuSeconds;
    result.evalWallSeconds += result.closedWorld.evalWallSeconds;
    if (open_data != nullptr) {
        result.openWorld = ml::evaluateOpenWorld(
            pipeline.factory, *open_data, non_sensitive, pipeline.eval);
        result.trainSeconds += result.openWorld.trainSeconds;
        result.evalSeconds += result.openWorld.evalSeconds;
        result.trainCpuSeconds += result.openWorld.trainCpuSeconds;
        result.trainWallSeconds += result.openWorld.trainWallSeconds;
        result.evalCpuSeconds += result.openWorld.evalCpuSeconds;
        result.evalWallSeconds += result.openWorld.evalWallSeconds;
        result.hasOpenWorld = true;
    }
}

} // namespace

Result<std::vector<FingerprintResult>>
runFingerprintingShared(const CollectionConfig &collection,
                        std::span<const attack::AttackerKind> attackers,
                        const PipelineConfig &pipeline)
{
    if (attackers.empty())
        return Status(
            invalidArgumentError("need at least one attacker kind"));
    if (pipeline.numSites < 2)
        return Status(invalidArgumentError("need at least two sites"));
    if (pipeline.eval.folds < 2)
        return Status(
            invalidArgumentError("cross-validation needs >= 2 folds"));
    const Label non_sensitive = pipeline.numSites;

    // Feature cache: probe every attacker's entry before collecting
    // anything (all-or-nothing — a partial hit still has to pay the
    // shared collection, so it is treated as a miss). On a full hit the
    // cached datasets replay bit-identically and both the collection
    // and featurization phases are skipped outright.
    std::optional<FeatureCache> cache;
    std::vector<std::uint64_t> cache_keys;
    if (!pipeline.cacheDir.empty()) {
        Result<FeatureCache> opened = FeatureCache::open(pipeline.cacheDir);
        if (!opened.isOk())
            return Status(opened.status());
        cache = std::move(opened.value());
        const std::uint64_t fp = collectionFingerprint(
            collection, pipeline.catalogSeed, pipeline.numSites,
            pipeline.openWorldExtra, attackers);
        cache_keys.reserve(attackers.size());
        for (const auto kind : attackers)
            cache_keys.push_back(
                featureCacheKey(fp, pipeline.featureLen, pipeline.numSites,
                                pipeline.openWorldExtra, kind));
        std::vector<FeatureCache::Entry> cached;
        cached.reserve(attackers.size());
        for (const std::uint64_t key : cache_keys) {
            std::optional<FeatureCache::Entry> entry = cache->lookup(key);
            if (!entry)
                break;
            cached.push_back(std::move(*entry));
        }
        if (cached.size() == attackers.size()) {
            std::printf("feature cache: hit, %zu entr%s from %s; "
                        "skipping collection and featurization\n",
                        cached.size(), cached.size() == 1 ? "y" : "ies",
                        cache->dir().c_str());
            std::vector<FingerprintResult> results(attackers.size());
            for (std::size_t a = 0; a < attackers.size(); ++a) {
                FingerprintResult &result = results[a];
                const FeatureCache::Entry &entry = cached[a];
                result.droppedTraces =
                    static_cast<std::size_t>(entry.droppedTraces);
                result.collectedTraces =
                    static_cast<std::size_t>(entry.collectedTraces);
                evaluateDatasets(result, pipeline, entry.closedWorld,
                                 entry.hasOpenWorld ? &entry.openWorld
                                                    : nullptr,
                                 non_sensitive);
            }
            return results;
        }
        std::printf("feature cache: miss in %s; collecting\n",
                    cache->dir().c_str());
    }

    const web::SiteCatalog catalog(pipeline.numSites, pipeline.catalogSeed);
    TraceCollector collector(collection);

    // With a checkpoint directory configured, completed (site, run)
    // cells are journaled and a re-run under the same configuration
    // (content-addressed by fingerprint) resumes instead of
    // recollecting. The journal must outlive both collection sweeps.
    std::unique_ptr<CheckpointJournal> journal;
    if (!pipeline.checkpointDir.empty()) {
        Result<std::unique_ptr<CheckpointJournal>> opened =
            CheckpointJournal::open(
                pipeline.checkpointDir,
                collectionFingerprint(collection, pipeline.catalogSeed,
                                      pipeline.numSites,
                                      pipeline.openWorldExtra, attackers),
                collection.faults);
        if (!opened.isOk())
            return Status(opened.status());
        journal = std::move(opened.value());
        if (journal->repairStats().repaired())
            warn("checkpoint journal " + journal->path() + " repaired: " +
                 std::to_string(journal->repairStats().recordsDropped) +
                 " record(s) and " +
                 std::to_string(journal->repairStats().tailBytesDropped) +
                 " torn tail byte(s) dropped");
        if (journal->cellCount() > 0)
            std::printf("resuming: %zu completed cell(s) from %s\n",
                        journal->cellCount(), journal->path().c_str());
        collector.setCheckpoint(journal.get());
    }

    // Collect every attacker's trace sets from shared timelines, then
    // split the shared wall-clock evenly so summing per-attacker results
    // reports the collection cost once.
    std::vector<CollectionStats> closed_stats;
    Stopwatch watch;
    ProcessCpuStopwatch cpu_watch;
    Result<std::vector<attack::TraceSet>> closed_result =
        collector.collectClosedWorldMulti(catalog, pipeline.tracesPerSite,
                                          attackers, &closed_stats);
    const double share = 1.0 / static_cast<double>(attackers.size());
    double collect_share = watch.lap() * share;
    double collect_cpu_share = cpu_watch.lap() * share;
    if (!closed_result.isOk())
        return Status(closed_result.status());
    std::vector<attack::TraceSet> closed = std::move(closed_result.value());

    std::vector<attack::TraceSet> open_extra;
    std::vector<CollectionStats> open_stats(attackers.size());
    if (pipeline.openWorldExtra > 0) {
        watch.reset();
        cpu_watch.reset();
        Result<std::vector<attack::TraceSet>> extra_result =
            collector.collectOpenWorldMulti(catalog,
                                            pipeline.openWorldExtra,
                                            non_sensitive, attackers,
                                            &open_stats);
        collect_share += watch.lap() * share;
        collect_cpu_share += cpu_watch.lap() * share;
        if (!extra_result.isOk())
            return Status(extra_result.status());
        open_extra = std::move(extra_result.value());
    }

    std::vector<FingerprintResult> results(attackers.size());
    for (std::size_t a = 0; a < attackers.size(); ++a) {
        FingerprintResult &result = results[a];
        result.collectSeconds = collect_share;
        result.collectCpuSeconds = collect_cpu_share;
        result.droppedTraces += closed_stats[a].dropped;
        result.collectedTraces += closed_stats[a].collected;

        // Dropped traces must leave enough data for the evaluation
        // protocol to be meaningful; otherwise fail recoverably rather
        // than letting the CV machinery hit its own preconditions.
        if (distinctLabels(closed[a]) < 2)
            return Status(exhaustedError(
                "degraded collection left fewer than two closed-world "
                "classes (" + std::to_string(closed_stats[a].dropped) +
                " of " + std::to_string(closed_stats[a].attempted) +
                " traces dropped)"));
        if (closed[a].size() <
            static_cast<std::size_t>(pipeline.eval.folds))
            return Status(exhaustedError(
                "degraded collection left " +
                std::to_string(closed[a].size()) +
                " closed-world traces, fewer than the " +
                std::to_string(pipeline.eval.folds) + " CV folds"));

        watch.reset();
        cpu_watch.reset();
        const ml::Dataset closed_data =
            toDataset(closed[a], pipeline.featureLen, pipeline.numSites);
        result.featurizeSeconds += watch.lap();
        result.featurizeCpuSeconds += cpu_watch.lap();

        const bool has_open = pipeline.openWorldExtra > 0;
        ml::Dataset open_data;
        if (has_open) {
            // The paper's open world: closed-world traces keep their
            // site labels ("sensitive"); one extra class holds all
            // one-off "non-sensitive" traces.
            result.droppedTraces += open_stats[a].dropped;
            result.collectedTraces += open_stats[a].collected;

            attack::TraceSet open = closed[a];
            open.traces.reserve(closed[a].size() +
                                open_extra[a].traces.size());
            for (auto &trace : open_extra[a].traces)
                open.add(std::move(trace));
            watch.reset();
            cpu_watch.reset();
            open_data =
                toDataset(open, pipeline.featureLen, pipeline.numSites + 1);
            result.featurizeSeconds += watch.lap();
            result.featurizeCpuSeconds += cpu_watch.lap();
        }

        // Store before evaluating: a run killed mid-training still
        // leaves the expensive phases cached for the next attempt. A
        // failed store degrades to an uncached run, never a failed one.
        if (cache) {
            FeatureCache::Entry entry;
            entry.closedWorld = closed_data;
            entry.openWorld = open_data;
            entry.hasOpenWorld = has_open;
            entry.droppedTraces = result.droppedTraces;
            entry.collectedTraces = result.collectedTraces;
            Status stored = cache->storeEntry(cache_keys[a], entry);
            if (!stored.isOk())
                warn("feature cache store failed: " + stored.message());
        }

        evaluateDatasets(result, pipeline, closed_data,
                         has_open ? &open_data : nullptr, non_sensitive);
    }
    return results;
}

std::vector<FingerprintResult>
runFingerprintingSharedOrDie(
    const CollectionConfig &collection,
    std::span<const attack::AttackerKind> attackers,
    const PipelineConfig &pipeline)
{
    return runFingerprintingShared(collection, attackers, pipeline)
        // OrDie wrapper implementation: abort-on-error is the contract.
        // bigfish-lint: allow(ordie-outside-binary)
        .valueOrDie();
}

Result<FingerprintResult>
runFingerprinting(const CollectionConfig &collection,
                  const PipelineConfig &pipeline)
{
    const attack::AttackerKind attackers[] = {collection.attacker};
    Result<std::vector<FingerprintResult>> results =
        runFingerprintingShared(collection, attackers, pipeline);
    if (!results.isOk())
        return Status(results.status());
    return std::move(results.value()[0]);
}

FingerprintResult
runFingerprintingOrDie(const CollectionConfig &collection,
                       const PipelineConfig &pipeline)
{
    // OrDie wrapper implementation: abort-on-error is the contract.
    // bigfish-lint: allow(ordie-outside-binary)
    return runFingerprinting(collection, pipeline).valueOrDie();
}

} // namespace bigfish::core
