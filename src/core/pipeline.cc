#include "core/pipeline.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "core/checkpoint.hh"
#include "core/stage_cache.hh"
#include "stats/descriptive.hh"

namespace bigfish::core {

ml::Dataset
toDataset(const attack::TraceSet &traces, std::size_t feature_len,
          int num_classes)
{
    ml::Dataset data;
    const auto means = traces.toFeatures(feature_len);
    const auto dips = traces.toDipFeatures(feature_len);
    const auto labels = traces.labels();
    // Two channels per trace, concatenated channel-major:
    //   channel 0 — bucket means, winsorized (so single preemption-eaten
    //   periods cannot compress the trace's dynamic range) and
    //   standardized (counter values sit in a narrow band near their
    //   maximum; centered inputs are what make the gradient-based
    //   classifier train efficiently);
    //   channel 1 — sub-bucket dip depth, the fine-timescale interrupt
    //   texture that bucket averages smooth away.
    // Traces featurize independently into pre-sized slots, then append
    // in order, so the dataset is identical at any thread count.
    auto rows = parallelMap(means.size(), [&](std::size_t i) {
        std::vector<double> x = stats::zscore(stats::winsorize(means[i]));
        const auto dip = stats::zscore(dips[i]);
        x.insert(x.end(), dip.begin(), dip.end());
        return x;
    });
    data.features.reserve(rows.size());
    data.labels.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        data.add(std::move(rows[i]), labels[i]);
    data.numClasses = std::max(data.numClasses, num_classes);
    return data;
}

namespace {

/**
 * Distinct labels present in a (possibly fault-degraded) trace set —
 * dropping traces can silently empty out whole classes, which would
 * make the k-fold split degenerate.
 */
int
distinctLabels(const attack::TraceSet &traces)
{
    std::vector<Label> labels = traces.labels();
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
    return static_cast<int>(labels.size());
}

std::string
hex16(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

/** Bit-exact hexfloat text for canonical config lines. */
std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** Everything the shared collection sweep produces, per attacker. */
struct CollectOutput
{
    std::vector<attack::TraceSet> closed;
    std::vector<attack::TraceSet> openExtra;
    std::vector<CollectionStats> closedStats;
    std::vector<CollectionStats> openStats;
    /** Simulator work performed by this sweep (zero when replayed). */
    sim::PerfCounters perf;
};

/** The declared stage ids one attacker/world evaluation owns. */
struct WorldStages
{
    std::size_t split = 0;
    std::vector<std::size_t> train;
    std::vector<std::size_t> score;
    std::size_t aggregate = 0;
};

/** Canonical featurization text — any change to what toDataset()
 *  produces must bump the format line. */
std::string
featurizeCanon(const PipelineConfig &pipeline, attack::AttackerKind kind)
{
    std::ostringstream canon;
    canon << "format=bigfish-features-v1\n"
          << "featureLen=" << pipeline.featureLen << '\n'
          << "numSites=" << pipeline.numSites << '\n'
          << "openExtra=" << pipeline.openWorldExtra << '\n'
          << "attacker=" << attack::attackerKindName(kind) << '\n';
    return canon.str();
}

/**
 * The Collect stage body: shared-timeline trace collection for every
 * attacker, with checkpoint journaling/resume when a checkpointDir is
 * configured. `--resume` therefore composes with the stage cache: the
 * journal makes a *partial* collection restartable, the cache makes a
 * *finished* collection (and everything downstream) skippable.
 */
Result<CollectOutput>
collectStageBody(const CollectionConfig &collection,
                 std::span<const attack::AttackerKind> attackers,
                 const PipelineConfig &pipeline, Label non_sensitive)
{
    const web::SiteCatalog catalog(pipeline.numSites, pipeline.catalogSeed);
    TraceCollector collector(collection);

    std::unique_ptr<CheckpointJournal> journal;
    if (!pipeline.checkpointDir.empty()) {
        Result<std::unique_ptr<CheckpointJournal>> opened =
            CheckpointJournal::open(
                pipeline.checkpointDir,
                collectionFingerprint(collection, pipeline.catalogSeed,
                                      pipeline.numSites,
                                      pipeline.openWorldExtra, attackers),
                collection.faults);
        if (!opened.isOk())
            return Status(opened.status());
        journal = std::move(opened.value());
        if (journal->repairStats().repaired())
            warn("checkpoint journal " + journal->path() + " repaired: " +
                 std::to_string(journal->repairStats().recordsDropped) +
                 " record(s) and " +
                 std::to_string(journal->repairStats().tailBytesDropped) +
                 " torn tail byte(s) dropped");
        if (journal->cellCount() > 0)
            std::printf("resuming: %zu completed cell(s) from %s\n",
                        journal->cellCount(), journal->path().c_str());
        collector.setCheckpoint(journal.get());
    }

    CollectOutput out;
    Result<std::vector<attack::TraceSet>> closed_result =
        collector.collectClosedWorldMulti(catalog, pipeline.tracesPerSite,
                                          attackers, &out.closedStats,
                                          &out.perf);
    if (!closed_result.isOk())
        return Status(closed_result.status());
    out.closed = std::move(closed_result.value());

    out.openStats.resize(attackers.size());
    if (pipeline.openWorldExtra > 0) {
        Result<std::vector<attack::TraceSet>> extra_result =
            collector.collectOpenWorldMulti(catalog,
                                            pipeline.openWorldExtra,
                                            non_sensitive, attackers,
                                            &out.openStats, &out.perf);
        if (!extra_result.isOk())
            return Status(extra_result.status());
        out.openExtra = std::move(extra_result.value());
    }
    return out;
}

/**
 * The Featurize stage body for one attacker: degraded-collection
 * checks, then toDataset() for the closed world and (when enabled) the
 * merged open world, with trace accounting.
 */
Result<FeaturizedEntry>
featurizeStageBody(const CollectOutput &collected, std::size_t a,
                   const PipelineConfig &pipeline)
{
    const attack::TraceSet &closed = collected.closed[a];
    const CollectionStats &closed_stats = collected.closedStats[a];

    // Dropped traces must leave enough data for the evaluation
    // protocol to be meaningful; otherwise fail recoverably rather
    // than letting the CV machinery hit its own preconditions.
    if (distinctLabels(closed) < 2)
        return Status(exhaustedError(
            "degraded collection left fewer than two closed-world "
            "classes (" + std::to_string(closed_stats.dropped) + " of " +
            std::to_string(closed_stats.attempted) + " traces dropped)"));
    if (closed.size() < static_cast<std::size_t>(pipeline.eval.folds))
        return Status(exhaustedError(
            "degraded collection left " + std::to_string(closed.size()) +
            " closed-world traces, fewer than the " +
            std::to_string(pipeline.eval.folds) + " CV folds"));

    FeaturizedEntry entry;
    entry.droppedTraces = closed_stats.dropped;
    entry.collectedTraces = closed_stats.collected;
    entry.closedWorld =
        toDataset(closed, pipeline.featureLen, pipeline.numSites);

    entry.hasOpenWorld = pipeline.openWorldExtra > 0;
    if (entry.hasOpenWorld) {
        // The paper's open world: closed-world traces keep their site
        // labels ("sensitive"); one extra class holds all one-off
        // "non-sensitive" traces.
        entry.droppedTraces += collected.openStats[a].dropped;
        entry.collectedTraces += collected.openStats[a].collected;
        attack::TraceSet open = closed;
        open.traces.reserve(closed.size() +
                            collected.openExtra[a].traces.size());
        for (const auto &trace : collected.openExtra[a].traces)
            open.add(trace);
        entry.openWorld =
            toDataset(open, pipeline.featureLen, pipeline.numSites + 1);
    }
    return entry;
}

/**
 * Declares and executes one attacker/world evaluation: FoldSplit, then
 * TrainFold/ScoreFold per fold on the thread pool (each fold probes
 * its ScoreFold cache entry first — a hit skips training that fold
 * entirely), then Aggregate. Bit-identical at any thread count: fold
 * seeds and aggregation order are fixed at declaration time.
 */
Result<ml::EvalResult>
runWorld(StageGraph &graph, const WorldStages &stages,
         const PipelineConfig &pipeline, const ml::Dataset &data,
         std::uint64_t seed_base, bool open_world, Label non_sensitive)
{
    Result<std::vector<ml::FoldSplit>> splits = graph.run<
        std::vector<ml::FoldSplit>>(
        stages.split, nullptr,
        [&]() -> Result<std::vector<ml::FoldSplit>> {
            return ml::kFoldSplits(data.size(), pipeline.eval.folds,
                                   pipeline.eval.valFraction,
                                   pipeline.eval.seed);
        });
    if (!splits.isOk())
        return Status(splits.status());
    const std::vector<ml::FoldSplit> &fold_splits = splits.value();
    graph.setCounts(stages.split, fold_splits.size(), 0);

    // Models are cacheable only when the factory publishes a canonical
    // hyperparameter text; without one, two different classifiers could
    // share a fingerprint, so neither models nor scores may persist.
    const bool cacheable = !pipeline.factory.canon.empty();
    const StageCodec<ml::FoldScores> scores_codec{
        "scores", &encodeFoldScores, &decodeFoldScores};

    auto fold_results = parallelMap(
        fold_splits.size(), [&](std::size_t f) -> Result<ml::FoldScores> {
            // Probe the fold's final output first: a ScoreFold hit
            // makes its TrainFold unnecessary (it stays Skipped).
            if (cacheable) {
                std::optional<ml::FoldScores> cached = graph.fromCache(
                    stages.score[f], scores_codec, /*threadCpu=*/true);
                if (cached)
                    return std::move(*cached);
            }
            const std::uint64_t seed = pipeline.eval.seed + seed_base + f;
            const StageCodec<std::unique_ptr<ml::Classifier>> model_codec{
                "model",
                [](const std::unique_ptr<ml::Classifier> &model) {
                    return model->saveModel();
                },
                [&, seed](const std::string &text)
                    -> std::optional<std::unique_ptr<ml::Classifier>> {
                    auto model = pipeline.factory(
                        data.numClasses, data.featureLen(), seed);
                    if (!model->loadModel(text))
                        return std::nullopt;
                    return model;
                }};
            Result<std::unique_ptr<ml::Classifier>> model =
                graph.run<std::unique_ptr<ml::Classifier>>(
                    stages.train[f], cacheable ? &model_codec : nullptr,
                    [&]() -> Result<std::unique_ptr<ml::Classifier>> {
                        return ml::trainFoldClassifier(
                            pipeline.factory, data, fold_splits[f], seed);
                    },
                    /*probe=*/true, /*threadCpu=*/true);
            if (!model.isOk())
                return Status(model.status());
            graph.setCounts(stages.train[f], fold_splits[f].train.size(),
                            0);
            return graph.run<ml::FoldScores>(
                stages.score[f], cacheable ? &scores_codec : nullptr,
                [&]() -> Result<ml::FoldScores> {
                    return ml::scoreFold(*model.value(), data,
                                         fold_splits[f].test);
                },
                /*probe=*/false, /*threadCpu=*/true);
        });

    std::vector<ml::FoldScores> folds;
    folds.reserve(fold_results.size());
    for (std::size_t f = 0; f < fold_results.size(); ++f) {
        if (!fold_results[f].isOk())
            return Status(fold_results[f].status());
        graph.setCounts(stages.score[f],
                        fold_results[f].value().truths.size(), 0);
        folds.push_back(std::move(fold_results[f].value()));
    }

    return graph.run<ml::EvalResult>(
        stages.aggregate, nullptr, [&]() -> Result<ml::EvalResult> {
            if (open_world)
                return ml::aggregateFoldsOpenWorld(folds, non_sensitive,
                                                   pipeline.eval.topK);
            return ml::aggregateFolds(folds, pipeline.eval.topK);
        });
}

} // namespace

Result<std::vector<FingerprintResult>>
runFingerprintingShared(const CollectionConfig &collection,
                        std::span<const attack::AttackerKind> attackers,
                        const PipelineConfig &pipeline)
{
    if (attackers.empty())
        return Status(
            invalidArgumentError("need at least one attacker kind"));
    if (pipeline.numSites < 2)
        return Status(invalidArgumentError("need at least two sites"));
    if (pipeline.eval.folds < 2)
        return Status(
            invalidArgumentError("cross-validation needs >= 2 folds"));
    const Label non_sensitive = pipeline.numSites;
    const bool has_open = pipeline.openWorldExtra > 0;

    std::optional<StageCache> cache;
    if (!pipeline.cacheDir.empty()) {
        Result<StageCache> opened = StageCache::open(pipeline.cacheDir);
        if (!opened.isOk())
            return Status(opened.status());
        cache = std::move(opened.value());
    }
    StageGraph graph(cache ? &*cache : nullptr);

    // Declare the whole graph up front: every stage's fingerprint is a
    // pure function of configuration (checkpointDir/cacheDir excluded —
    // they affect where work happens, never what it computes), so a
    // warm run can probe the cache bottom-up before running anything.
    const std::uint64_t collection_fp = collectionFingerprint(
        collection, pipeline.catalogSeed, pipeline.numSites,
        pipeline.openWorldExtra, attackers);
    const std::size_t collect_id = graph.declare(
        "collect", "collect", "collection=" + hex16(collection_fp) + "\n",
        {});

    const StageCodec<FeaturizedEntry> featurized_codec{
        "featurized", &encodeFeaturized, &decodeFeaturized};
    std::vector<std::size_t> feat_ids;
    feat_ids.reserve(attackers.size());
    for (std::size_t a = 0; a < attackers.size(); ++a) {
        const std::size_t upstream[] = {collect_id};
        feat_ids.push_back(graph.declare(
            std::string("featurize/") +
                attack::attackerKindName(attackers[a]),
            "featurize", featurizeCanon(pipeline, attackers[a]), upstream));
    }

    struct AttackerStages
    {
        WorldStages closed;
        WorldStages open;
    };
    std::vector<AttackerStages> attacker_stages(attackers.size());
    for (std::size_t a = 0; a < attackers.size(); ++a) {
        const std::string who = attack::attackerKindName(attackers[a]);
        const auto declare_world = [&](const char *world,
                                       std::uint64_t seed_base) {
            WorldStages stages;
            std::ostringstream split_canon;
            split_canon << "folds=" << pipeline.eval.folds << '\n'
                        << "valFraction="
                        << hexDouble(pipeline.eval.valFraction) << '\n'
                        << "seed=" << pipeline.eval.seed << '\n'
                        << "world=" << world << '\n';
            const std::size_t split_upstream[] = {feat_ids[a]};
            stages.split = graph.declare("split/" + who + "/" + world,
                                         "eval", split_canon.str(),
                                         split_upstream);
            stages.train.reserve(pipeline.eval.folds);
            stages.score.reserve(pipeline.eval.folds);
            for (int f = 0; f < pipeline.eval.folds; ++f) {
                std::ostringstream train_canon;
                train_canon << "fold=" << f << '\n'
                            << "seed="
                            << pipeline.eval.seed + seed_base +
                                   static_cast<std::uint64_t>(f)
                            << '\n'
                            << pipeline.factory.canon;
                const std::size_t train_upstream[] = {stages.split};
                const std::string fold_tag =
                    "/" + who + "/" + world + "/f" + std::to_string(f);
                stages.train.push_back(graph.declare(
                    "train" + fold_tag, "train", train_canon.str(),
                    train_upstream));
                const std::size_t score_upstream[] = {stages.train.back()};
                stages.score.push_back(graph.declare(
                    "score" + fold_tag, "eval", "", score_upstream));
            }
            std::ostringstream agg_canon;
            agg_canon << "topK=" << pipeline.eval.topK << '\n'
                      << "world=" << world << '\n';
            stages.aggregate = graph.declare(
                "aggregate/" + who + "/" + world, "eval", agg_canon.str(),
                stages.score);
            return stages;
        };
        attacker_stages[a].closed =
            declare_world("closed", ml::kClosedWorldFoldSeedBase);
        if (has_open)
            attacker_stages[a].open =
                declare_world("open", ml::kOpenWorldFoldSeedBase);
    }

    // Probe every attacker's Featurize entry before collecting anything
    // (all-or-nothing — a partial hit still has to pay the shared
    // collection, so it is treated as a miss). On a full hit the cached
    // datasets replay bit-identically and the Collect stage never runs.
    std::vector<FeaturizedEntry> featurized;
    if (cache) {
        featurized.reserve(attackers.size());
        for (const std::size_t id : feat_ids) {
            std::optional<FeaturizedEntry> entry =
                graph.fromCache(id, featurized_codec);
            if (!entry)
                break;
            featurized.push_back(std::move(*entry));
        }
        if (featurized.size() == attackers.size())
            std::printf("stage cache: hit, %zu featurized entr%s from %s; "
                        "skipping collection and featurization\n",
                        featurized.size(),
                        featurized.size() == 1 ? "y" : "ies",
                        cache->dir().c_str());
        else
            std::printf("stage cache: featurized miss in %s; collecting\n",
                        cache->dir().c_str());
    }

    if (featurized.size() != attackers.size()) {
        featurized.clear();
        Result<CollectOutput> collected = graph.run<CollectOutput>(
            collect_id, nullptr, [&]() -> Result<CollectOutput> {
                return collectStageBody(collection, attackers, pipeline,
                                        non_sensitive);
            });
        if (!collected.isOk())
            return Status(collected.status());
        std::size_t total_collected = 0, total_dropped = 0;
        for (std::size_t a = 0; a < attackers.size(); ++a) {
            // Featurization stores before the folds evaluate: a run
            // killed mid-training still leaves the expensive upstream
            // phases cached for the next attempt. A failed store
            // degrades to an uncached run, never a failed one.
            Result<FeaturizedEntry> entry = graph.run<FeaturizedEntry>(
                feat_ids[a], &featurized_codec,
                [&]() -> Result<FeaturizedEntry> {
                    return featurizeStageBody(collected.value(), a,
                                              pipeline);
                },
                /*probe=*/false);
            if (!entry.isOk())
                return Status(entry.status());
            total_collected +=
                static_cast<std::size_t>(entry.value().collectedTraces);
            total_dropped +=
                static_cast<std::size_t>(entry.value().droppedTraces);
            featurized.push_back(std::move(entry.value()));
        }
        graph.setCounts(collect_id, total_collected, total_dropped);
        graph.setSimCounters(collect_id, collected.value().perf);
    }
    for (std::size_t a = 0; a < attackers.size(); ++a)
        graph.setCounts(
            feat_ids[a],
            static_cast<std::size_t>(featurized[a].collectedTraces),
            static_cast<std::size_t>(featurized[a].droppedTraces));

    std::vector<FingerprintResult> results(attackers.size());
    for (std::size_t a = 0; a < attackers.size(); ++a) {
        FingerprintResult &result = results[a];
        const FeaturizedEntry &entry = featurized[a];
        result.droppedTraces =
            static_cast<std::size_t>(entry.droppedTraces);
        result.collectedTraces =
            static_cast<std::size_t>(entry.collectedTraces);

        Result<ml::EvalResult> closed = runWorld(
            graph, attacker_stages[a].closed, pipeline, entry.closedWorld,
            ml::kClosedWorldFoldSeedBase, false, non_sensitive);
        if (!closed.isOk())
            return Status(closed.status());
        result.closedWorld = std::move(closed.value());

        if (has_open) {
            Result<ml::EvalResult> open = runWorld(
                graph, attacker_stages[a].open, pipeline, entry.openWorld,
                ml::kOpenWorldFoldSeedBase, true, non_sensitive);
            if (!open.isOk())
                return Status(open.status());
            result.openWorld = std::move(open.value());
            result.hasOpenWorld = true;
        }
    }

    // Distribute the stage table: the shared Collect stage goes to the
    // first attacker only, so summing per-attacker tables counts it
    // once; everything else is owned by exactly one attacker.
    const auto &reports = graph.reports();
    for (std::size_t a = 0; a < attackers.size(); ++a) {
        FingerprintResult &result = results[a];
        if (a == 0)
            result.stages.push_back(reports[collect_id]);
        result.stages.push_back(reports[feat_ids[a]]);
        const auto append_world = [&](const WorldStages &stages) {
            result.stages.push_back(reports[stages.split]);
            for (std::size_t f = 0; f < stages.train.size(); ++f) {
                result.stages.push_back(reports[stages.train[f]]);
                result.stages.push_back(reports[stages.score[f]]);
            }
            result.stages.push_back(reports[stages.aggregate]);
        };
        append_world(attacker_stages[a].closed);
        if (has_open)
            append_world(attacker_stages[a].open);
    }
    return results;
}

std::vector<FingerprintResult>
runFingerprintingSharedOrDie(
    const CollectionConfig &collection,
    std::span<const attack::AttackerKind> attackers,
    const PipelineConfig &pipeline)
{
    return runFingerprintingShared(collection, attackers, pipeline)
        // OrDie wrapper implementation: abort-on-error is the contract.
        // bigfish-lint: allow(ordie-outside-binary)
        .valueOrDie();
}

Result<FingerprintResult>
runFingerprinting(const CollectionConfig &collection,
                  const PipelineConfig &pipeline)
{
    const attack::AttackerKind attackers[] = {collection.attacker};
    Result<std::vector<FingerprintResult>> results =
        runFingerprintingShared(collection, attackers, pipeline);
    if (!results.isOk())
        return Status(results.status());
    return std::move(results.value()[0]);
}

FingerprintResult
runFingerprintingOrDie(const CollectionConfig &collection,
                       const PipelineConfig &pipeline)
{
    // OrDie wrapper implementation: abort-on-error is the contract.
    // bigfish-lint: allow(ordie-outside-binary)
    return runFingerprinting(collection, pipeline).valueOrDie();
}

} // namespace bigfish::core
