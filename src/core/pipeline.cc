#include "core/pipeline.hh"

#include "base/logging.hh"
#include "stats/descriptive.hh"

namespace bigfish::core {

ml::Dataset
toDataset(const attack::TraceSet &traces, std::size_t feature_len,
          int num_classes)
{
    ml::Dataset data;
    const auto means = traces.toFeatures(feature_len);
    const auto dips = traces.toDipFeatures(feature_len);
    const auto labels = traces.labels();
    // Two channels per trace, concatenated channel-major:
    //   channel 0 — bucket means, winsorized (so single preemption-eaten
    //   periods cannot compress the trace's dynamic range) and
    //   standardized (counter values sit in a narrow band near their
    //   maximum; centered inputs are what make the gradient-based
    //   classifier train efficiently);
    //   channel 1 — sub-bucket dip depth, the fine-timescale interrupt
    //   texture that bucket averages smooth away.
    for (std::size_t i = 0; i < means.size(); ++i) {
        std::vector<double> x =
            stats::zscore(stats::winsorize(means[i]));
        const auto dip = stats::zscore(dips[i]);
        x.insert(x.end(), dip.begin(), dip.end());
        data.add(std::move(x), labels[i]);
    }
    data.numClasses = std::max(data.numClasses, num_classes);
    return data;
}

FingerprintResult
runFingerprinting(const CollectionConfig &collection,
                  const PipelineConfig &pipeline)
{
    fatalIf(pipeline.numSites < 2, "need at least two sites");
    const web::SiteCatalog catalog(pipeline.numSites, pipeline.catalogSeed);
    const TraceCollector collector(collection);

    FingerprintResult result;

    attack::TraceSet closed =
        collector.collectClosedWorld(catalog, pipeline.tracesPerSite);
    const ml::Dataset closed_data =
        toDataset(closed, pipeline.featureLen, pipeline.numSites);
    result.closedWorld =
        ml::crossValidate(pipeline.factory, closed_data, pipeline.eval);

    if (pipeline.openWorldExtra > 0) {
        // The paper's open world: closed-world traces keep their site
        // labels ("sensitive"); one extra class holds all one-off
        // "non-sensitive" traces.
        const Label non_sensitive = pipeline.numSites;
        attack::TraceSet open = closed;
        attack::TraceSet extra = collector.collectOpenWorld(
            catalog, pipeline.openWorldExtra, non_sensitive);
        for (auto &trace : extra.traces)
            open.add(std::move(trace));
        const ml::Dataset open_data =
            toDataset(open, pipeline.featureLen, pipeline.numSites + 1);
        result.openWorld = ml::evaluateOpenWorld(
            pipeline.factory, open_data, non_sensitive, pipeline.eval);
        result.hasOpenWorld = true;
    }
    return result;
}

} // namespace bigfish::core
