#include "core/pipeline.hh"

#include <algorithm>

#include "base/logging.hh"
#include "stats/descriptive.hh"

namespace bigfish::core {

ml::Dataset
toDataset(const attack::TraceSet &traces, std::size_t feature_len,
          int num_classes)
{
    ml::Dataset data;
    const auto means = traces.toFeatures(feature_len);
    const auto dips = traces.toDipFeatures(feature_len);
    const auto labels = traces.labels();
    // Two channels per trace, concatenated channel-major:
    //   channel 0 — bucket means, winsorized (so single preemption-eaten
    //   periods cannot compress the trace's dynamic range) and
    //   standardized (counter values sit in a narrow band near their
    //   maximum; centered inputs are what make the gradient-based
    //   classifier train efficiently);
    //   channel 1 — sub-bucket dip depth, the fine-timescale interrupt
    //   texture that bucket averages smooth away.
    for (std::size_t i = 0; i < means.size(); ++i) {
        std::vector<double> x =
            stats::zscore(stats::winsorize(means[i]));
        const auto dip = stats::zscore(dips[i]);
        x.insert(x.end(), dip.begin(), dip.end());
        data.add(std::move(x), labels[i]);
    }
    data.numClasses = std::max(data.numClasses, num_classes);
    return data;
}

namespace {

/**
 * Distinct labels present in a (possibly fault-degraded) trace set —
 * dropping traces can silently empty out whole classes, which would
 * make the k-fold split degenerate.
 */
int
distinctLabels(const attack::TraceSet &traces)
{
    std::vector<Label> labels = traces.labels();
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
    return static_cast<int>(labels.size());
}

} // namespace

Result<FingerprintResult>
runFingerprinting(const CollectionConfig &collection,
                  const PipelineConfig &pipeline)
{
    if (pipeline.numSites < 2)
        return Status(invalidArgumentError("need at least two sites"));
    if (pipeline.eval.folds < 2)
        return Status(
            invalidArgumentError("cross-validation needs >= 2 folds"));
    const web::SiteCatalog catalog(pipeline.numSites, pipeline.catalogSeed);
    const TraceCollector collector(collection);

    FingerprintResult result;

    CollectionStats closed_stats;
    Result<attack::TraceSet> closed_result = collector.collectClosedWorld(
        catalog, pipeline.tracesPerSite, &closed_stats);
    if (!closed_result.isOk())
        return Status(closed_result.status());
    attack::TraceSet closed = std::move(closed_result.value());
    result.droppedTraces += closed_stats.dropped;
    result.collectedTraces += closed_stats.collected;

    // Dropped traces must leave enough data for the evaluation protocol
    // to be meaningful; otherwise fail recoverably rather than letting
    // the CV machinery hit its own preconditions.
    if (distinctLabels(closed) < 2)
        return Status(exhaustedError(
            "degraded collection left fewer than two closed-world "
            "classes (" + std::to_string(closed_stats.dropped) +
            " of " + std::to_string(closed_stats.attempted) +
            " traces dropped)"));
    if (closed.size() < static_cast<std::size_t>(pipeline.eval.folds))
        return Status(exhaustedError(
            "degraded collection left " + std::to_string(closed.size()) +
            " closed-world traces, fewer than the " +
            std::to_string(pipeline.eval.folds) + " CV folds"));

    const ml::Dataset closed_data =
        toDataset(closed, pipeline.featureLen, pipeline.numSites);
    result.closedWorld =
        ml::crossValidate(pipeline.factory, closed_data, pipeline.eval);

    if (pipeline.openWorldExtra > 0) {
        // The paper's open world: closed-world traces keep their site
        // labels ("sensitive"); one extra class holds all one-off
        // "non-sensitive" traces.
        const Label non_sensitive = pipeline.numSites;
        CollectionStats open_stats;
        Result<attack::TraceSet> extra_result = collector.collectOpenWorld(
            catalog, pipeline.openWorldExtra, non_sensitive, &open_stats);
        if (!extra_result.isOk())
            return Status(extra_result.status());
        result.droppedTraces += open_stats.dropped;
        result.collectedTraces += open_stats.collected;

        attack::TraceSet open = closed;
        for (auto &trace : extra_result.value().traces)
            open.add(std::move(trace));
        const ml::Dataset open_data =
            toDataset(open, pipeline.featureLen, pipeline.numSites + 1);
        result.openWorld = ml::evaluateOpenWorld(
            pipeline.factory, open_data, non_sensitive, pipeline.eval);
        result.hasOpenWorld = true;
    }
    return result;
}

FingerprintResult
runFingerprintingOrDie(const CollectionConfig &collection,
                       const PipelineConfig &pipeline)
{
    return runFingerprinting(collection, pipeline).valueOrDie();
}

} // namespace bigfish::core
