#include "core/feature_cache.hh"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/atomic_file.hh"
#include "base/logging.hh"
#include "base/rng.hh"

namespace bigfish::core {

namespace {

namespace fs = std::filesystem;

// CRC32 (IEEE 802.3) — same framing discipline as the checkpoint
// journal: the trailer protects the whole payload, so torn or
// interleaved writes surface as a clean miss instead of wrong data.
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

std::uint32_t
crc32(const std::string &data)
{
    std::uint32_t crc = 0xffffffffu;
    for (const char byte : data)
        crc = crcTable()[(crc ^ static_cast<unsigned char>(byte)) & 0xffu] ^
              (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint64_t
fnv64(const std::string &text)
{
    std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x0000'0100'0000'01b3ULL;
    }
    return hash;
}

std::string
hex16(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

constexpr char kHeaderPrefix[] = "# bigfish-feature-cache v1 key=";
constexpr char kEntrySuffix[] = ".bfc";

/** Serializes one dataset section: a shape line then one row per
 *  sample, features as bit-exact hexfloats. */
void
writeDataset(std::ostringstream &out, const char *name,
             const ml::Dataset &data)
{
    out << name << ' ' << data.features.size() << ' ' << data.featureLen()
        << ' ' << data.numClasses << '\n';
    char buf[48];
    for (std::size_t i = 0; i < data.features.size(); ++i) {
        out << "row " << data.labels[i];
        for (const double v : data.features[i]) {
            std::snprintf(buf, sizeof(buf), "%a", v);
            out << ' ' << buf;
        }
        out << '\n';
    }
}

/** Parses the section written by writeDataset(); false on mismatch. */
bool
readDataset(std::istringstream &in, const char *name, ml::Dataset &data)
{
    std::string line;
    if (!std::getline(in, line))
        return false;
    std::istringstream header(line);
    std::string tag;
    std::size_t rows = 0, cols = 0;
    int classes = 0;
    if (!(header >> tag >> rows >> cols >> classes) || tag != name)
        return false;
    data.features.clear();
    data.labels.clear();
    data.numClasses = classes;
    data.features.reserve(rows);
    data.labels.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        if (!std::getline(in, line))
            return false;
        if (line.rfind("row ", 0) != 0)
            return false;
        const char *cursor = line.c_str() + 4;
        char *end = nullptr;
        const long label = std::strtol(cursor, &end, 10);
        if (end == cursor)
            return false;
        cursor = end;
        std::vector<double> x(cols);
        for (std::size_t j = 0; j < cols; ++j) {
            x[j] = std::strtod(cursor, &end);
            if (end == cursor)
                return false;
            cursor = end;
        }
        data.add(std::move(x), static_cast<Label>(label));
    }
    return true;
}

} // namespace

std::uint64_t
featureCacheKey(std::uint64_t collection_fingerprint,
                std::size_t feature_len, int num_sites,
                int open_world_extra, attack::AttackerKind attacker)
{
    // Canonical featurization text, same one-line-per-field discipline
    // as collectionFingerprint(): any change to what toDataset()
    // produces must bump the format line.
    std::ostringstream canon;
    canon << "format=bigfish-features-v1\n"
          << "featureLen=" << feature_len << '\n'
          << "numSites=" << num_sites << '\n'
          << "openExtra=" << open_world_extra << '\n'
          << "attacker=" << attack::attackerKindName(attacker) << '\n';
    return mix64(collection_fingerprint ^ fnv64(canon.str()) ^
                 0x6b3e'88f1'0c5d'a927ULL);
}

Result<FeatureCache>
FeatureCache::open(const std::string &dir)
{
    Status created = createDirectories(dir);
    if (!created.isOk())
        return created;
    return FeatureCache(dir);
}

std::string
FeatureCache::entryPath(std::uint64_t key) const
{
    return dir_ + "/" + hex16(key) + kEntrySuffix;
}

std::string
FeatureCache::serializeEntry(std::uint64_t key, const Entry &entry)
{
    std::ostringstream out;
    out << kHeaderPrefix << hex16(key) << '\n'
        << "meta dropped=" << entry.droppedTraces
        << " collected=" << entry.collectedTraces
        << " open=" << (entry.hasOpenWorld ? 1 : 0) << '\n';
    writeDataset(out, "closed", entry.closedWorld);
    if (entry.hasOpenWorld)
        writeDataset(out, "open", entry.openWorld);
    std::string payload = out.str();
    char trailer[32];
    std::snprintf(trailer, sizeof(trailer), "@crc %08x\n", crc32(payload));
    payload += trailer;
    return payload;
}

bool
FeatureCache::parseEntry(const std::string &text, std::uint64_t key,
                         Entry &entry)
{
    // Split off and verify the CRC trailer first: everything else
    // assumes an intact payload.
    const std::size_t trailer = text.rfind("@crc ");
    if (trailer == std::string::npos || trailer == 0 ||
        text[trailer - 1] != '\n')
        return false;
    unsigned long crc = 0;
    if (std::sscanf(text.c_str() + trailer, "@crc %lx", &crc) != 1)
        return false;
    const std::string payload = text.substr(0, trailer);
    if (crc32(payload) != static_cast<std::uint32_t>(crc))
        return false;

    std::istringstream in(payload);
    std::string line;
    if (!std::getline(in, line) ||
        line != std::string(kHeaderPrefix) + hex16(key))
        return false;
    if (!std::getline(in, line))
        return false;
    unsigned long long dropped = 0, collected = 0;
    int open = 0;
    if (std::sscanf(line.c_str(), "meta dropped=%llu collected=%llu open=%d",
                    &dropped, &collected, &open) != 3)
        return false;
    entry.droppedTraces = dropped;
    entry.collectedTraces = collected;
    entry.hasOpenWorld = open != 0;
    if (!readDataset(in, "closed", entry.closedWorld))
        return false;
    if (entry.hasOpenWorld && !readDataset(in, "open", entry.openWorld))
        return false;
    return true;
}

std::optional<FeatureCache::Entry>
FeatureCache::lookup(std::uint64_t key)
{
    const std::string path = entryPath(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        ++stats_.misses;
        return std::nullopt;
    }
    std::ostringstream content;
    content << in.rdbuf();
    Entry entry;
    if (!parseEntry(content.str(), key, entry)) {
        // A torn or corrupt entry is dead weight: drop it so the next
        // run re-stores a clean one, and fall back to collecting.
        std::error_code ec;
        fs::remove(path, ec);
        warn("feature cache entry " + path +
             " failed validation; removed and treated as a miss");
        ++stats_.corrupt;
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.hits;
    return entry;
}

Status
FeatureCache::storeEntry(std::uint64_t key, const Entry &entry)
{
    Status written =
        atomicWriteFile(entryPath(key), serializeEntry(key, entry));
    if (written.isOk())
        ++stats_.stores;
    return written;
}

std::size_t
FeatureCache::evict(std::size_t maxEntries)
{
    std::vector<std::pair<fs::file_time_type, fs::path>> entries;
    std::error_code ec;
    for (const auto &item : fs::directory_iterator(dir_, ec)) {
        if (!item.is_regular_file(ec))
            continue;
        if (item.path().extension() != kEntrySuffix)
            continue;
        entries.emplace_back(fs::last_write_time(item.path(), ec),
                             item.path());
    }
    if (entries.size() <= maxEntries)
        return 0;
    // Oldest-modified first; ties broken by path so eviction order is
    // stable under equal timestamps.
    std::sort(entries.begin(), entries.end());
    const std::size_t excess = entries.size() - maxEntries;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < excess; ++i)
        if (fs::remove(entries[i].second, ec))
            ++removed;
    stats_.evicted += removed;
    return removed;
}

} // namespace bigfish::core
