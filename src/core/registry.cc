#include "core/registry.hh"

#include <cstdio>
#include <limits>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace bigfish::core {

std::optional<double>
ExperimentDescriptor::expectedValue(const std::string &metric_name) const
{
    for (const ExpectedValue &e : expected)
        if (e.name == metric_name)
            return e.value;
    return std::nullopt;
}

void
ExperimentRegistry::add(ExperimentDescriptor descriptor)
{
    panicIf(descriptor.name.empty(),
            "experiment registered with an empty name");
    panicIf(!descriptor.run,
            "experiment '" + descriptor.name + "' has no run function");
    const auto [it, inserted] =
        experiments_.emplace(descriptor.name, std::move(descriptor));
    panicIf(!inserted,
            "experiment '" + it->first + "' registered twice");
}

const ExperimentDescriptor *
ExperimentRegistry::find(const std::string &name) const
{
    const auto it = experiments_.find(name);
    return it == experiments_.end() ? nullptr : &it->second;
}

std::vector<std::string>
ExperimentRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(experiments_.size());
    for (const auto &[name, descriptor] : experiments_)
        out.push_back(name);
    return out;
}

spec::ParamSchema
commonScaleSchema()
{
    spec::ParamSchema schema;
    schema
        .addInt("sites", "BF_SITES", 20, 2, 1000000,
                "closed-world sites (paper 100)")
        .addInt("traces", "BF_TRACES", 20, 1, 1000000,
                "traces per site (paper 100)")
        .addInt("open", "BF_OPEN", 60, 0, 10000000,
                "open-world one-off traces (paper 5000)")
        .addInt("features", "BF_FEATURES", 256, 8, 1000000,
                "classifier input length")
        .addInt("folds", "BF_FOLDS", 5, 2, 1000,
                "cross-validation folds (paper 10)")
        .addInt("topk", "BF_TOPK", 5, 1, 1000,
                "k for the top-k accuracy metric (eval-only knob)")
        .addInt("seed", "BF_SEED", 2022, 0,
                std::numeric_limits<long long>::max(), "master seed")
        .addBool("paper-model", "", false,
                 "use the paper's exact CNN-LSTM hyperparameters")
        .addInt("threads", "", 0, 0, 4096,
                "worker threads (0 = BF_THREADS, else hardware)")
        .addString("resume", "BF_RESUME", "",
                   "checkpoint/resume directory (\"\" disables)")
        .addString("cache-dir", "BF_CACHE_DIR", "",
                   "stage cache directory: featurized data, fold models "
                   "and fold scores (\"\" disables)")
        .addInt("io-crash-after", "BF_IO_CRASH_AFTER", 0, 0, 1000000000,
                "fault injection: crash after N checkpoint records")
        .addInt("io-torn-bytes", "BF_IO_TORN_BYTES", 0, 0, 1000000000,
                "fault injection: torn bytes of the crashed record");
    return schema;
}

ExperimentScale
scaleFromSpec(const spec::RunSpec &run_spec)
{
    ExperimentScale scale;
    scale.sites = static_cast<int>(run_spec.getInt("sites"));
    scale.tracesPerSite = static_cast<int>(run_spec.getInt("traces"));
    scale.openWorldExtra = static_cast<int>(run_spec.getInt("open"));
    scale.featureLen =
        static_cast<std::size_t>(run_spec.getInt("features"));
    scale.folds = static_cast<int>(run_spec.getInt("folds"));
    scale.topK = static_cast<int>(run_spec.getInt("topk"));
    scale.seed = static_cast<std::uint64_t>(run_spec.getInt("seed"));
    scale.paperModel = run_spec.getBool("paper-model");
    scale.threads = static_cast<int>(run_spec.getInt("threads"));
    scale.resumeDir = run_spec.getString("resume");
    scale.cacheDir = run_spec.getString("cache-dir");
    scale.ioCrashAfterRecords =
        static_cast<int>(run_spec.getInt("io-crash-after"));
    scale.ioTornWriteBytes =
        static_cast<int>(run_spec.getInt("io-torn-bytes"));
    return scale;
}

std::vector<std::pair<std::string, std::string>>
smokeScaleOverrides()
{
    return {{"sites", "4"},
            {"traces", "3"},
            {"open", "8"},
            {"features", "32"},
            {"folds", "2"}};
}

std::vector<std::pair<std::string, std::string>>
fullScaleOverrides()
{
    return {{"sites", "100"},
            {"traces", "100"},
            {"open", "5000"},
            {"folds", "10"}};
}

ml::ClassifierFactory
classifierForScale(const ExperimentScale &scale)
{
    ml::CnnLstmParams params = scale.paperModel
                                   ? ml::CnnLstmParams::paperScale()
                                   : ml::CnnLstmParams::traceDefaults();
    // The fingerprinting pipeline always emits the two-channel
    // (mean + dip-depth) featurization.
    params.inputChannels = 2;
    return ml::cnnLstmFactory(params);
}

PipelineConfig
pipelineForScale(const ExperimentScale &scale)
{
    PipelineConfig pipeline;
    pipeline.numSites = scale.sites;
    pipeline.tracesPerSite = scale.tracesPerSite;
    pipeline.featureLen = scale.featureLen;
    pipeline.eval.folds = scale.folds;
    pipeline.eval.seed = scale.seed;
    pipeline.eval.topK = scale.topK;
    pipeline.factory = classifierForScale(scale);
    pipeline.checkpointDir = scale.resumeDir;
    pipeline.cacheDir = scale.cacheDir;
    return pipeline;
}

CollectionConfig
collectionForScale(const ExperimentScale &scale)
{
    CollectionConfig config;
    config.seed = scale.seed;
    config.faults.ioCrashAfterRecords = scale.ioCrashAfterRecords;
    config.faults.ioTornWriteBytes = scale.ioTornWriteBytes;
    return config;
}

RunArtifact
makeArtifact(const RunContext &ctx)
{
    panicIf(ctx.descriptor == nullptr,
            "RunContext has no experiment descriptor");
    RunArtifact artifact(ctx.descriptor->name, ctx.spec);
    artifact.setExpected(ctx.descriptor->expected);
    artifact.setThreads(globalThreadCount());
    SeedProvenance provenance;
    provenance.masterSeed =
        static_cast<std::uint64_t>(ctx.spec.getInt("seed"));
    provenance.catalogSeed = PipelineConfig{}.catalogSeed;
    provenance.derivation =
        "all streams derive from masterSeed via per-cell splitmix64 "
        "(site catalog fixed at catalogSeed)";
    artifact.setSeedProvenance(std::move(provenance));
    return artifact;
}

void
printExperimentBanner(const RunContext &ctx)
{
    panicIf(ctx.descriptor == nullptr,
            "RunContext has no experiment descriptor");
    const ExperimentScale scale = scaleFromSpec(ctx.spec);
    std::printf("================================================------\n");
    std::printf("%s — %s\n", ctx.descriptor->name.c_str(),
                ctx.descriptor->title.c_str());
    std::printf("reproduces: %s\n", ctx.descriptor->paperReference.c_str());
    std::printf("scale: %d sites x %d traces, %zu features, %d folds, "
                "seed %llu%s\n",
                scale.sites, scale.tracesPerSite, scale.featureLen,
                scale.folds,
                static_cast<unsigned long long>(scale.seed),
                scale.paperModel ? ", paper-scale model" : "");
    std::printf("(paper scale: 100 sites x 100 traces, 10 folds; run with "
                "--full)\n");
    std::printf("threads: %d (--threads=N or BF_THREADS to change)\n",
                globalThreadCount());
    std::printf("================================================------\n");
}

} // namespace bigfish::core
