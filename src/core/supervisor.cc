#include "core/supervisor.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/atomic_file.hh"
#include "base/logging.hh"

namespace bigfish::core {

namespace {

std::string
quoteString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string
formatSeconds(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/**
 * Sleeps ~@p seconds in short slices, returning early (false) when the
 * interrupt flag fires — a Ctrl-C during a backoff delay must not hang
 * the suite for the rest of the delay.
 */
bool
interruptibleSleep(double seconds,
                   const volatile std::sig_atomic_t *interrupted)
{
    double remaining = seconds;
    while (remaining > 0.0) {
        if (interrupted != nullptr && *interrupted != 0)
            return false;
        const double slice = remaining < 0.05 ? remaining : 0.05;
        timespec ts;
        ts.tv_sec = static_cast<time_t>(slice);
        ts.tv_nsec =
            static_cast<long>((slice - static_cast<double>(ts.tv_sec)) * 1e9);
        ::nanosleep(&ts, nullptr);
        remaining -= slice;
    }
    return interrupted == nullptr || *interrupted == 0;
}

/** Reads a whole file; empty optional-equivalent "" when unreadable. */
std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

} // namespace

const char *
runStateName(RunState state)
{
    switch (state) {
      case RunState::Ok:
        return "ok";
      case RunState::Retried:
        return "retried";
      case RunState::Failed:
        return "failed";
      case RunState::Timeout:
        return "timeout";
      case RunState::Crashed:
        return "crashed";
      case RunState::Skipped:
        return "skipped";
    }
    return "unknown";
}

std::size_t
SuiteManifest::count(RunState state) const
{
    std::size_t n = 0;
    for (const ExperimentOutcome &outcome : outcomes)
        if (outcome.state == state)
            ++n;
    return n;
}

bool
SuiteManifest::allOk() const
{
    for (const ExperimentOutcome &outcome : outcomes)
        if (outcome.state != RunState::Ok &&
            outcome.state != RunState::Retried)
            return false;
    return true;
}

int
SuiteManifest::exitCode() const
{
    if (interrupted)
        return 130;
    return allOk() ? 0 : 1;
}

std::string
SuiteManifest::toJson() const
{
    std::string out = "{\n";
    out += "  \"suite\": {\"total\": " + std::to_string(outcomes.size());
    for (const RunState state :
         {RunState::Ok, RunState::Retried, RunState::Failed,
          RunState::Timeout, RunState::Crashed, RunState::Skipped}) {
        out += std::string(", \"") + runStateName(state) +
               "\": " + std::to_string(count(state));
    }
    out += std::string(", \"interrupted\": ") +
           (interrupted ? "true" : "false");
    out += ", \"exitCode\": " + std::to_string(exitCode()) + "},\n";
    out += "  \"experiments\": [";
    bool first = true;
    for (const ExperimentOutcome &o : outcomes) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"name\": " + quoteString(o.name) +
               ", \"state\": \"" + runStateName(o.state) +
               "\", \"attempts\": " + std::to_string(o.attempts) +
               ", \"exitCode\": " + std::to_string(o.exitCode) +
               ", \"wallSeconds\": " + formatSeconds(o.wallSeconds) +
               ", \"traces\": {\"collected\": " +
               std::to_string(o.collectedTraces) +
               ", \"dropped\": " + std::to_string(o.droppedTraces) +
               "}, \"artifact\": " + quoteString(o.artifactPath) +
               ", \"message\": " + quoteString(o.message) + "}";
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

Status
SuiteManifest::write(const std::string &path) const
{
    return atomicWriteFile(path, toJson());
}

bool
parseTraceAccounting(const std::string &artifact_json,
                     std::size_t *collected, std::size_t *dropped)
{
    const std::size_t at = artifact_json.find("\"traces\": {");
    if (at == std::string::npos)
        return false;
    unsigned long long c = 0, d = 0;
    if (std::sscanf(artifact_json.c_str() + at,
                    "\"traces\": {\"collected\": %llu, \"dropped\": %llu",
                    &c, &d) != 2)
        return false;
    if (collected != nullptr)
        *collected = static_cast<std::size_t>(c);
    if (dropped != nullptr)
        *dropped = static_cast<std::size_t>(d);
    return true;
}

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options))
{
}

bool
Supervisor::interrupted() const
{
    return options_.interrupted != nullptr && *options_.interrupted != 0;
}

ExperimentOutcome
Supervisor::runChildAttempt(const std::string &name,
                            const ChildPlan &plan) const
{
    ExperimentOutcome outcome;
    outcome.name = name;
    if (plan.argv.empty()) {
        outcome.state = RunState::Failed;
        outcome.message = "isolate mode: empty child command";
        return outcome;
    }

    std::vector<char *> argv;
    argv.reserve(plan.argv.size() + 1);
    for (const std::string &arg : plan.argv)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        outcome.state = RunState::Failed;
        outcome.message =
            std::string("fork failed: ") + std::strerror(errno);
        return outcome;
    }
    if (pid == 0) {
        ::execvp(argv[0], argv.data());
        // Exec failure: report like a shell would and die without
        // running the parent's atexit machinery.
        std::fprintf(stderr, "bigfish: cannot exec %s: %s\n", argv[0],
                     std::strerror(errno));
        ::_exit(127);
    }

    // Deadline watchdog: poll the child, kill it when the deadline
    // expires, and forward interrupts. This is supervisor wall-clock
    // code — explicitly allowlisted in tools/lint/bigfish-lint.toml;
    // deadlines are operational bounds, never values feeding results.
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    bool sent_term = false;
    Clock::time_point term_at{};
    for (;;) {
        int status = 0;
        const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
        if (reaped == pid) {
            if (WIFSIGNALED(status)) {
                const int sig = WTERMSIG(status);
                outcome.state = sig == SIGKILL && !sent_term &&
                                        options_.timeoutSeconds > 0.0
                                    ? RunState::Timeout
                                    : RunState::Crashed;
                outcome.exitCode = 128 + sig;
                outcome.message =
                    std::string("killed by signal ") + std::to_string(sig) +
                    " (" + ::strsignal(sig) + ")";
            } else {
                const int code = WEXITSTATUS(status);
                outcome.exitCode = code;
                if (code == 0) {
                    outcome.state = RunState::Ok;
                } else {
                    outcome.state = RunState::Failed;
                    outcome.message = code == 127
                                          ? "child failed to exec"
                                          : "child exited with code " +
                                                std::to_string(code);
                }
            }
            return outcome;
        }
        if (reaped < 0 && errno != EINTR) {
            outcome.state = RunState::Failed;
            outcome.message =
                std::string("waitpid failed: ") + std::strerror(errno);
            return outcome;
        }

        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (interrupted() && !sent_term) {
            ::kill(pid, SIGTERM);
            sent_term = true;
            term_at = Clock::now();
        }
        if (sent_term &&
            std::chrono::duration<double>(Clock::now() - term_at).count() >
                2.0) {
            // The child ignored SIGTERM's grace period.
            ::kill(pid, SIGKILL);
        }
        if (!sent_term && options_.timeoutSeconds > 0.0 &&
            elapsed > options_.timeoutSeconds) {
            ::kill(pid, SIGKILL);
            // The next waitpid round reaps it; WTERMSIG==SIGKILL with
            // no SIGTERM sent and a deadline set decodes as Timeout.
        }
        timespec ts{0, 10 * 1000 * 1000}; // 10 ms poll.
        ::nanosleep(&ts, nullptr);
    }
}

ExperimentOutcome
Supervisor::runOne(const std::string &name, const InProcessRun &in_process,
                   const ChildCommand &child_command) const
{
    ExperimentOutcome outcome;
    outcome.name = name;

    ChildPlan plan;
    if (options_.isolate)
        plan = child_command(name);

    using Clock = std::chrono::steady_clock;
    const Clock::time_point suite_start = Clock::now();
    const std::uint64_t salt = retrySalt(name);

    for (int attempt = 1;; ++attempt) {
        outcome.attempts = attempt;
        if (options_.isolate) {
            ExperimentOutcome tried = runChildAttempt(name, plan);
            tried.attempts = attempt;
            tried.artifactPath = plan.artifactPath;
            outcome = tried;
            if (outcome.state == RunState::Ok) {
                if (!plan.artifactPath.empty() &&
                    !parseTraceAccounting(
                        readFileOrEmpty(plan.artifactPath),
                        &outcome.collectedTraces, &outcome.droppedTraces))
                    warnOnce("supervisor/artifact-accounting",
                             "cannot read trace accounting from " +
                                 plan.artifactPath);
            }
        } else {
            outcome.message.clear();
            outcome.exitCode = 0;
            const Status run = in_process(name, outcome);
            if (run.isOk()) {
                outcome.state = RunState::Ok;
            } else {
                outcome.state = RunState::Failed;
                outcome.message = run.toString();
                outcome.exitCode = 1;
                // Retry decisions key off the structured error class.
                if (!options_.retry.shouldRetry(run, attempt)) {
                    break;
                }
                outcome.wallSeconds = std::chrono::duration<double>(
                                          Clock::now() - suite_start)
                                          .count();
                if (!interruptibleSleep(
                        options_.retry.delaySeconds(attempt, salt),
                        options_.interrupted))
                    break;
                continue;
            }
        }

        if (outcome.state == RunState::Ok) {
            if (attempt > 1)
                outcome.state = RunState::Retried;
            break;
        }

        // Isolated children: crashes, timeouts and plain failures (exit
        // 1) are transient from the suite's point of view — the retry
        // plus a persistent --resume journal makes forward progress
        // even through a deterministic mid-collection crash. Usage
        // errors (exit 2) and exec failures (127) are permanent.
        const bool retryable_state = outcome.state == RunState::Crashed ||
                                     outcome.state == RunState::Timeout ||
                                     (outcome.state == RunState::Failed &&
                                      outcome.exitCode == 1);
        if (!options_.isolate || !retryable_state ||
            attempt >= options_.retry.maxAttempts || interrupted())
            break;
        if (!interruptibleSleep(options_.retry.delaySeconds(attempt, salt),
                                options_.interrupted))
            break;
    }

    outcome.wallSeconds =
        std::chrono::duration<double>(Clock::now() - suite_start).count();
    if (!options_.isolate && options_.timeoutSeconds > 0.0 &&
        outcome.wallSeconds > options_.timeoutSeconds &&
        (outcome.state == RunState::Ok ||
         outcome.state == RunState::Retried)) {
        // In-process mode cannot preempt a running experiment; record
        // the deadline miss without failing the completed work.
        outcome.message = "deadline of " +
                          formatSeconds(options_.timeoutSeconds) +
                          "s exceeded (completed anyway; --isolate "
                          "enforces deadlines)";
    }
    return outcome;
}

SuiteManifest
Supervisor::run(const std::vector<std::string> &names,
                const InProcessRun &in_process,
                const ChildCommand &child_command) const
{
    SuiteManifest manifest;
    manifest.outcomes.reserve(names.size());

    const auto flush = [&] {
        if (options_.manifestPath.empty())
            return;
        const Status written = manifest.write(options_.manifestPath);
        if (!written.isOk())
            warnOnce("supervisor/manifest-write",
                     "cannot write suite manifest: " + written.toString());
    };

    bool bail = false;
    for (const std::string &name : names) {
        if (interrupted())
            manifest.interrupted = true;
        if (manifest.interrupted || bail) {
            ExperimentOutcome skipped;
            skipped.name = name;
            skipped.state = RunState::Skipped;
            skipped.message = manifest.interrupted
                                  ? "interrupted"
                                  : "earlier failure (no --keep-going)";
            manifest.outcomes.push_back(std::move(skipped));
            continue;
        }

        ExperimentOutcome outcome =
            runOne(name, in_process, child_command);
        if (interrupted())
            manifest.interrupted = true;
        const bool failed = outcome.state != RunState::Ok &&
                            outcome.state != RunState::Retried;
        manifest.outcomes.push_back(std::move(outcome));
        flush();
        if (failed && !options_.keepGoing)
            bail = true;
    }
    flush();
    return manifest;
}

} // namespace bigfish::core
