/**
 * @file
 * RunArtifact: the structured result of one experiment run.
 *
 * This generalizes the old bench `BenchReport` into a value type any
 * caller can inspect: headline metrics (in insertion order), per-phase
 * CPU and wall-clock buckets (collect/featurize/train/eval — reported
 * separately because fold-level wall sums exceed the true wall time
 * under parallel folds or timeshared cores), the fully-resolved
 * spec::RunSpec that produced the run, seed provenance, and the paper's
 * expected-shape numbers from the experiment descriptor. Serialized to
 * JSON it embeds the resolved spec, so feeding the artifact file back
 * through `bigfish run --spec=<artifact.json>` replays the run
 * bit-for-bit.
 */

#ifndef BF_CORE_ARTIFACT_HH
#define BF_CORE_ARTIFACT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/status.hh"
#include "core/pipeline.hh"
#include "spec/spec.hh"

namespace bigfish::core {

/** One paper-expected value an experiment reproduces ("shape check"). */
struct ExpectedValue
{
    std::string name; ///< Metric name it corresponds to (may be "").
    double value = 0.0;
};

/** Where every random stream in the run derives from. */
struct SeedProvenance
{
    /** The user-facing master seed (spec parameter "seed"). */
    std::uint64_t masterSeed = 0;
    /** Site-catalog seed (fixed: same catalog across experiments). */
    std::uint64_t catalogSeed = 0;
    /** Human-readable derivation note for downstream tooling. */
    std::string derivation;
};

/** The structured output of one experiment run. */
class RunArtifact
{
  public:
    RunArtifact() = default;
    RunArtifact(std::string experiment, spec::RunSpec spec);

    const std::string &experiment() const { return experiment_; }
    const spec::RunSpec &spec() const { return spec_; }

    /**
     * Appends @p result's per-stage table (stage names prefixed with
     * "<label>/"), reduces it into the phase buckets, and appends the
     * standard metrics: `<label>_top1` always, `<label>_open_combined`
     * when the run had an open world. (Same naming as the old
     * BenchReport, so metric streams stay comparable.)
     */
    void addResult(const std::string &label,
                   const FingerprintResult &result);

    /** Appends one headline metric (insertion order is preserved). */
    void addMetric(const std::string &name, double value);

    /**
     * Adds CPU and wall seconds to one phase bucket ("collect",
     * "featurize", "train" or "eval"); panics on an unknown phase.
     */
    void addPhaseSeconds(const std::string &phase, double cpuSeconds,
                         double wallSeconds);

    void setWallSeconds(double seconds) { wallSeconds_ = seconds; }
    void setThreads(int threads) { threads_ = threads; }
    void setSeedProvenance(SeedProvenance provenance);
    void setExpected(std::vector<ExpectedValue> expected);

    const std::vector<std::pair<std::string, double>> &metrics() const
    {
        return metrics_;
    }

    /** The first metric named @p name, when present. */
    std::optional<double> findMetric(const std::string &name) const;

    /** Adds to the dropped/collected trace accounting directly. */
    void addTraceAccounting(std::size_t collected, std::size_t dropped);

    /** Traces that made it into the evaluation (fault accounting). */
    std::size_t collectedTraces() const { return collectedTraces_; }
    /** Traces dropped as unusable (fault accounting). */
    std::size_t droppedTraces() const { return droppedTraces_; }

    double collectCpuSeconds() const { return collectCpuSeconds_; }
    double collectWallSeconds() const { return collectWallSeconds_; }
    double featurizeCpuSeconds() const { return featurizeCpuSeconds_; }
    double featurizeWallSeconds() const { return featurizeWallSeconds_; }
    double trainCpuSeconds() const { return trainCpuSeconds_; }
    double trainWallSeconds() const { return trainWallSeconds_; }
    double evalCpuSeconds() const { return evalCpuSeconds_; }
    double evalWallSeconds() const { return evalWallSeconds_; }
    double wallSeconds() const { return wallSeconds_; }
    int threads() const { return threads_; }
    const SeedProvenance &seedProvenance() const { return provenance_; }
    const std::vector<ExpectedValue> &expected() const { return expected_; }

    /** The accumulated per-stage table (label-prefixed stage names). */
    const std::vector<StageReport> &stages() const { return stages_; }

    /**
     * Human-readable per-stage table for `bigfish run --explain`:
     * stage name, phase, input fingerprint, cache provenance and
     * timing/accounting columns.
     */
    std::string explainText() const;

    /**
     * The artifact as JSON. Metrics print with six decimals and phases
     * with three — the old bench report's formats — and the resolved
     * spec is embedded under "spec" (the replayable part).
     */
    std::string toJson() const;

    /**
     * Writes toJson() to @p path atomically (write-temp-fsync-rename,
     * base/atomic_file.hh): a kill at any instant leaves either no
     * artifact or a complete one, never a torn prefix.
     */
    [[nodiscard]] Status writeJson(const std::string &path) const;

  private:
    std::string experiment_;
    spec::RunSpec spec_;
    SeedProvenance provenance_;
    std::vector<ExpectedValue> expected_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<StageReport> stages_;
    double collectCpuSeconds_ = 0.0;
    double collectWallSeconds_ = 0.0;
    double featurizeCpuSeconds_ = 0.0;
    double featurizeWallSeconds_ = 0.0;
    double trainCpuSeconds_ = 0.0;
    double trainWallSeconds_ = 0.0;
    double evalCpuSeconds_ = 0.0;
    double evalWallSeconds_ = 0.0;
    double wallSeconds_ = 0.0;
    int threads_ = 0;
    std::size_t collectedTraces_ = 0;
    std::size_t droppedTraces_ = 0;
};

} // namespace bigfish::core

#endif // BF_CORE_ARTIFACT_HH
