#include "core/stage_cache.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "base/atomic_file.hh"
#include "base/hash.hh"
#include "base/logging.hh"

namespace bigfish::core {

namespace {

namespace fs = std::filesystem;

std::string
hex16(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

constexpr char kHeaderPrefix[] = "# bigfish-stage-cache v1 kind=";
constexpr char kEntrySuffix[] = ".bfc";

/** Serializes one dataset section: a shape line then one row per
 *  sample, features as bit-exact hexfloats. */
void
writeDataset(std::ostringstream &out, const char *name,
             const ml::Dataset &data)
{
    out << name << ' ' << data.features.size() << ' ' << data.featureLen()
        << ' ' << data.numClasses << '\n';
    char buf[48];
    for (std::size_t i = 0; i < data.features.size(); ++i) {
        out << "row " << data.labels[i];
        for (const double v : data.features[i]) {
            std::snprintf(buf, sizeof(buf), "%a", v);
            out << ' ' << buf;
        }
        out << '\n';
    }
}

/** Parses the section written by writeDataset(); false on mismatch. */
bool
readDataset(std::istringstream &in, const char *name, ml::Dataset &data)
{
    std::string line;
    if (!std::getline(in, line))
        return false;
    std::istringstream header(line);
    std::string tag;
    std::size_t rows = 0, cols = 0;
    int classes = 0;
    if (!(header >> tag >> rows >> cols >> classes) || tag != name)
        return false;
    data.features.clear();
    data.labels.clear();
    data.numClasses = classes;
    data.features.reserve(rows);
    data.labels.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        if (!std::getline(in, line))
            return false;
        if (line.rfind("row ", 0) != 0)
            return false;
        const char *cursor = line.c_str() + 4;
        char *end = nullptr;
        const long label = std::strtol(cursor, &end, 10);
        if (end == cursor)
            return false;
        cursor = end;
        std::vector<double> x(cols);
        for (std::size_t j = 0; j < cols; ++j) {
            x[j] = std::strtod(cursor, &end);
            if (end == cursor)
                return false;
            cursor = end;
        }
        data.add(std::move(x), static_cast<Label>(label));
    }
    return true;
}

/** One hexfloat-encoded vector<double> line: "<tag> <n> <%a>...". */
void
writeDoubleRow(std::ostringstream &out, const char *tag,
               const std::vector<double> &values)
{
    out << tag << ' ' << values.size();
    char buf[48];
    for (const double v : values) {
        std::snprintf(buf, sizeof(buf), "%a", v);
        out << ' ' << buf;
    }
    out << '\n';
}

bool
readDoubleRow(std::istringstream &in, const char *tag,
              std::vector<double> &values)
{
    std::string line;
    if (!std::getline(in, line))
        return false;
    const std::string prefix = std::string(tag) + ' ';
    if (line.rfind(prefix, 0) != 0)
        return false;
    const char *cursor = line.c_str() + prefix.size();
    char *end = nullptr;
    const long n = std::strtol(cursor, &end, 10);
    if (end == cursor || n < 0)
        return false;
    cursor = end;
    values.assign(static_cast<std::size_t>(n), 0.0);
    for (long j = 0; j < n; ++j) {
        values[static_cast<std::size_t>(j)] = std::strtod(cursor, &end);
        if (end == cursor)
            return false;
        cursor = end;
    }
    return true;
}

/** One integer-label line: "<tag> <n> <label>...". */
void
writeLabelRow(std::ostringstream &out, const char *tag,
              const std::vector<Label> &labels)
{
    out << tag << ' ' << labels.size();
    for (const Label l : labels)
        out << ' ' << l;
    out << '\n';
}

bool
readLabelRow(std::istringstream &in, const char *tag,
             std::vector<Label> &labels)
{
    std::string line;
    if (!std::getline(in, line))
        return false;
    const std::string prefix = std::string(tag) + ' ';
    if (line.rfind(prefix, 0) != 0)
        return false;
    const char *cursor = line.c_str() + prefix.size();
    char *end = nullptr;
    const long n = std::strtol(cursor, &end, 10);
    if (end == cursor || n < 0)
        return false;
    cursor = end;
    labels.assign(static_cast<std::size_t>(n), Label{});
    for (long j = 0; j < n; ++j) {
        const long v = std::strtol(cursor, &end, 10);
        if (end == cursor)
            return false;
        labels[static_cast<std::size_t>(j)] = static_cast<Label>(v);
        cursor = end;
    }
    return true;
}

} // namespace

Result<StageCache>
StageCache::open(const std::string &dir)
{
    Status created = createDirectories(dir);
    if (!created.isOk())
        return created;
    return StageCache(dir);
}

std::string
StageCache::entryPath(std::string_view kind, std::uint64_t key) const
{
    return dir_ + "/" + std::string(kind) + "-" + hex16(key) + kEntrySuffix;
}

std::string
StageCache::frame(std::string_view kind, std::uint64_t key,
                  std::string_view payload)
{
    std::string framed = kHeaderPrefix;
    framed += kind;
    framed += " key=";
    framed += hex16(key);
    framed += '\n';
    framed += payload;
    char trailer[32];
    std::snprintf(trailer, sizeof(trailer), "@crc %08x\n", crc32(framed));
    framed += trailer;
    return framed;
}

bool
StageCache::unframe(const std::string &text, std::string_view kind,
                    std::uint64_t key, std::string &payload)
{
    // Split off and verify the CRC trailer first: everything else
    // assumes an intact payload.
    const std::size_t trailer = text.rfind("@crc ");
    if (trailer == std::string::npos || trailer == 0 ||
        text[trailer - 1] != '\n')
        return false;
    unsigned long crc = 0;
    if (std::sscanf(text.c_str() + trailer, "@crc %lx", &crc) != 1)
        return false;
    const std::string framed = text.substr(0, trailer);
    if (crc32(framed) != static_cast<std::uint32_t>(crc))
        return false;

    const std::string header =
        std::string(kHeaderPrefix) + std::string(kind) + " key=" + hex16(key);
    const std::size_t newline = framed.find('\n');
    if (newline == std::string::npos || framed.substr(0, newline) != header)
        return false;
    payload = framed.substr(newline + 1);
    return true;
}

std::optional<std::string>
StageCache::lookup(std::string_view kind, std::uint64_t key)
{
    const std::string path = entryPath(kind, key);
    std::string content;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            const std::lock_guard<std::mutex> lock(*mutex_);
            ++stats_.misses;
            return std::nullopt;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        content = buffer.str();
    }
    std::string payload;
    if (!unframe(content, kind, key, payload)) {
        // A torn or corrupt entry is dead weight: drop it so the next
        // run re-stores a clean one, and fall back to recomputing.
        std::error_code ec;
        fs::remove(path, ec);
        warn("stage cache entry " + path +
             " failed validation; removed and treated as a miss");
        const std::lock_guard<std::mutex> lock(*mutex_);
        ++stats_.corrupt;
        ++stats_.misses;
        return std::nullopt;
    }
    // Touch-on-hit: evict() ranks entries by mtime, so a hit must
    // refresh the entry or a long-lived cache would evict its hottest
    // entries first (they are the oldest-written ones). Best-effort —
    // a read-only cache dir still serves hits, it just ages.
    std::error_code touch_ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), touch_ec);
    {
        const std::lock_guard<std::mutex> lock(*mutex_);
        ++stats_.hits;
    }
    return payload;
}

Status
StageCache::put(std::string_view kind, std::uint64_t key,
                  std::string_view payload)
{
    Status written =
        atomicWriteFile(entryPath(kind, key), frame(kind, key, payload));
    if (written.isOk()) {
        const std::lock_guard<std::mutex> lock(*mutex_);
        ++stats_.stores;
    }
    return written;
}

void
StageCache::remove(std::string_view kind, std::uint64_t key)
{
    std::error_code ec;
    fs::remove(entryPath(kind, key), ec);
}

std::size_t
StageCache::evict(std::size_t maxEntries)
{
    std::vector<std::pair<fs::file_time_type, fs::path>> entries;
    std::error_code ec;
    for (const auto &item : fs::directory_iterator(dir_, ec)) {
        if (!item.is_regular_file(ec))
            continue;
        if (item.path().extension() != kEntrySuffix)
            continue;
        entries.emplace_back(fs::last_write_time(item.path(), ec),
                             item.path());
    }
    if (entries.size() <= maxEntries)
        return 0;
    // Oldest-modified first; lookup() touches entries on hit, so mtime
    // order is least-recently-*used* order, not least-recently-written.
    // Ties broken by path so eviction order is stable under equal
    // timestamps.
    std::sort(entries.begin(), entries.end());
    const std::size_t excess = entries.size() - maxEntries;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < excess; ++i)
        if (fs::remove(entries[i].second, ec))
            ++removed;
    const std::lock_guard<std::mutex> lock(*mutex_);
    stats_.evicted += removed;
    return removed;
}

StageCacheStats
StageCache::stats() const
{
    const std::lock_guard<std::mutex> lock(*mutex_);
    return stats_;
}

std::string
encodeFeaturized(const FeaturizedEntry &entry)
{
    std::ostringstream out;
    out << "meta dropped=" << entry.droppedTraces
        << " collected=" << entry.collectedTraces
        << " open=" << (entry.hasOpenWorld ? 1 : 0) << '\n';
    writeDataset(out, "closed", entry.closedWorld);
    if (entry.hasOpenWorld)
        writeDataset(out, "open", entry.openWorld);
    return out.str();
}

std::optional<FeaturizedEntry>
decodeFeaturized(const std::string &payload)
{
    std::istringstream in(payload);
    std::string line;
    if (!std::getline(in, line))
        return std::nullopt;
    unsigned long long dropped = 0, collected = 0;
    int open = 0;
    if (std::sscanf(line.c_str(), "meta dropped=%llu collected=%llu open=%d",
                    &dropped, &collected, &open) != 3)
        return std::nullopt;
    FeaturizedEntry entry;
    entry.droppedTraces = dropped;
    entry.collectedTraces = collected;
    entry.hasOpenWorld = open != 0;
    if (!readDataset(in, "closed", entry.closedWorld))
        return std::nullopt;
    if (entry.hasOpenWorld && !readDataset(in, "open", entry.openWorld))
        return std::nullopt;
    return entry;
}

std::string
encodeFoldScores(const ml::FoldScores &fold)
{
    std::ostringstream out;
    out << "scores " << fold.scores.size() << '\n';
    for (const auto &row : fold.scores)
        writeDoubleRow(out, "s", row);
    writeLabelRow(out, "truths", fold.truths);
    writeLabelRow(out, "predictions", fold.predictions);
    return out.str();
}

std::optional<ml::FoldScores>
decodeFoldScores(const std::string &payload)
{
    std::istringstream in(payload);
    std::string line;
    if (!std::getline(in, line))
        return std::nullopt;
    unsigned long long rows = 0;
    if (std::sscanf(line.c_str(), "scores %llu", &rows) != 1)
        return std::nullopt;
    ml::FoldScores fold;
    fold.scores.resize(rows);
    for (auto &row : fold.scores)
        if (!readDoubleRow(in, "s", row))
            return std::nullopt;
    if (!readLabelRow(in, "truths", fold.truths))
        return std::nullopt;
    if (!readLabelRow(in, "predictions", fold.predictions))
        return std::nullopt;
    if (fold.truths.size() != fold.scores.size() ||
        fold.predictions.size() != fold.scores.size())
        return std::nullopt;
    return fold;
}

} // namespace bigfish::core
