#include "core/collector.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "core/checkpoint.hh"

namespace bigfish::core {

TraceCollector::TraceCollector(CollectionConfig config)
    : config_(std::move(config)), synthesizer_(config_.machine)
{
}

Rng
TraceCollector::traceRng(SiteId site_id, int run_index) const
{
    return Rng(mix64(config_.seed) ^
               mix64(static_cast<std::uint64_t>(site_id) * 1000003ULL +
                     static_cast<std::uint64_t>(run_index) + 17ULL));
}

std::uint64_t
TraceCollector::faultSalt(SiteId site_id, int run_index) const
{
    return mix64(static_cast<std::uint64_t>(site_id) * 2654435761ULL +
                 static_cast<std::uint64_t>(run_index) + 101ULL);
}

sim::RunTimeline
TraceCollector::synthesizeTimeline(const web::SiteSignature &site,
                                   int run_index,
                                   sim::PerfCounters *perf) const
{
    Rng rng = traceRng(site.id, run_index);
    Rng workload_rng = rng.fork(1);
    Rng synth_rng = rng.fork(2);
    Rng browser_rng = rng.fork(3);
    Rng defense_rng = rng.fork(4);

    // The browser's connection path scales how repeatable loads are
    // (Tor circuits make the same page load very differently each time).
    web::RealizationNoise noise = config_.realization;
    noise.phaseStartJitterMs *= config_.browser.loadVariability;
    noise.phaseDurationSigma *= config_.browser.loadVariability;
    noise.rateSigma *= config_.browser.loadVariability;
    noise.runLoadSigma *= config_.browser.loadVariability;

    sim::ActivityTimeline activity = web::realizeWorkload(
        site, config_.browser.traceDuration, config_.browser.loadTimeScale,
        noise, workload_rng);

    if (config_.spuriousInterruptNoise) {
        activity.superimpose(defense::spuriousInterruptOverlay(
            activity.duration(), config_.spuriousParams, defense_rng));
    }
    if (config_.cacheSweepNoise) {
        activity.superimpose(defense::cacheSweepOverlay(
            activity.duration(), config_.cacheSweepParams));
    }
    if (config_.backgroundApps) {
        activity.superimpose(defense::backgroundAppsOverlay(
            activity.duration(), defense_rng));
    }
    activity.clampPhysical();

    sim::RunTimeline timeline =
        synthesizer_.synthesize(activity, synth_rng, perf);
    web::applyBrowserRuntime(timeline, config_.browser, browser_rng);

    // Injected delivery faults and stalls mutate the shared ground
    // truth, so the kernel tracer / gap detector observe the same
    // faulted schedule the attacker measured.
    if (config_.faults.enabled()) {
        const sim::FaultPlan plan(config_.faults,
                                  faultSalt(site.id, run_index));
        plan.applyToTimeline(timeline);
    }
    return timeline;
}

Result<attack::Trace>
TraceCollector::collectForAttacker(attack::AttackerKind attacker,
                                   const web::SiteSignature &site,
                                   int run_index,
                                   const sim::RunTimeline &timeline,
                                   const sim::FaultPlan &plan,
                                   std::uint64_t timer_seed,
                                   sim::PerfCounters *perf) const
{
    auto timer = config_.effectiveTimer().make(timer_seed);
    if (plan.enabled())
        timer = plan.wrapTimer(std::move(timer));

    Result<attack::Trace> collected = attack::collectTrace(
        attacker, config_.attackerParams, config_.machine, timeline,
        *timer, config_.effectivePeriod(), timer_seed ^ 0x5eedULL);
    if (!collected.isOk())
        return collected;
    attack::Trace trace = std::move(collected.value());
    trace.siteId = site.id;
    trace.label = site.id;
    if (perf != nullptr) {
        // One simulated event per attacker measurement period, counted
        // before truncation faults trim the record: the work happened.
        perf->eventsSimulated +=
            static_cast<long long>(trace.counts.size());
        perf->allocations += 2; // counts + wallTimes materialization
    }

    if (plan.enabled()) {
        // Truncation faults cut the recorded suffix (victim navigated
        // away, tab killed); the counts/wallTimes stay aligned.
        const std::size_t keep = plan.truncatedLength(trace.counts.size());
        if (keep < trace.counts.size()) {
            trace.counts.resize(keep);
            if (trace.wallTimes.size() > keep)
                trace.wallTimes.resize(keep);
        }
    }

    if (trace.counts.size() < kMinViablePeriods) {
        return Status(dataError(
            "trace of site " + std::to_string(site.id) + " run " +
            std::to_string(run_index) + " has " +
            std::to_string(trace.counts.size()) + " periods (< " +
            std::to_string(kMinViablePeriods) + " required)"));
    }
    for (double c : trace.counts) {
        if (!std::isfinite(c))
            return Status(dataError(
                "trace of site " + std::to_string(site.id) + " run " +
                std::to_string(run_index) + " has non-finite counts"));
    }
    return trace;
}

Result<attack::Trace>
TraceCollector::collectOne(const web::SiteSignature &site,
                           int run_index) const
{
    if (config_.effectivePeriod() <= 0)
        return Status(invalidArgumentError(
            "collection period must be positive (browser default and "
            "override are both unset)"));
    const sim::RunTimeline timeline = synthesizeTimeline(site, run_index);
    const auto timer_seed =
        mix64(config_.seed ^ 0x71e4aeedULL) ^
        mix64(static_cast<std::uint64_t>(site.id) * 7919ULL +
              static_cast<std::uint64_t>(run_index));
    const sim::FaultPlan plan(config_.faults,
                              faultSalt(site.id, run_index));
    return collectForAttacker(config_.attacker, site, run_index, timeline,
                              plan, timer_seed);
}

std::vector<Result<attack::Trace>>
TraceCollector::collectOneMulti(
    const web::SiteSignature &site, int run_index,
    std::span<const attack::AttackerKind> attackers,
    sim::PerfCounters *perf) const
{
    std::vector<Result<attack::Trace>> out;
    out.reserve(attackers.size());
    if (config_.effectivePeriod() <= 0) {
        for (std::size_t i = 0; i < attackers.size(); ++i)
            out.emplace_back(Status(invalidArgumentError(
                "collection period must be positive (browser default and "
                "override are both unset)")));
        return out;
    }
    // Everything up to the attack itself — victim workload, timeline
    // synthesis, browser runtime, fault plan, timer seed — depends only
    // on (config seed, site, run). Synthesize once and run each attacker
    // over the shared ground truth with its own freshly seeded timer.
    const sim::RunTimeline timeline =
        synthesizeTimeline(site, run_index, perf);
    const auto timer_seed =
        mix64(config_.seed ^ 0x71e4aeedULL) ^
        mix64(static_cast<std::uint64_t>(site.id) * 7919ULL +
              static_cast<std::uint64_t>(run_index));
    const sim::FaultPlan plan(config_.faults,
                              faultSalt(site.id, run_index));
    for (attack::AttackerKind attacker : attackers)
        out.push_back(collectForAttacker(attacker, site, run_index,
                                         timeline, plan, timer_seed, perf));
    return out;
}

std::vector<Result<attack::Trace>>
TraceCollector::collectCellCheckpointed(
    int world, SiteId site_key, const web::SiteSignature &site,
    int run_index, std::span<const attack::AttackerKind> attackers,
    sim::PerfCounters *perf) const
{
    if (checkpoint_ != nullptr) {
        auto cached = checkpoint_->lookup(world, site_key, run_index);
        // A cell journaled under a different attacker set cannot occur
        // (the fingerprint keys the attacker list), but stay defensive:
        // a size mismatch falls through to a fresh collection.
        // Replayed cells deliberately add nothing to *perf: the counters
        // measure work performed, exactly like cpuSeconds.
        if (cached.has_value() && cached->size() == attackers.size())
            return std::move(*cached);
    }
    auto cell = collectOneMulti(site, run_index, attackers, perf);
    if (checkpoint_ != nullptr) {
        // A journal that stops accepting records (disk full, journal
        // file deleted) only costs resumability, never the run itself.
        const Status appended =
            checkpoint_->appendCell(world, site_key, run_index, cell);
        if (!appended.isOk())
            warnOnce("collector/checkpoint-append",
                     "checkpoint append failed (run continues without "
                     "resumability): " +
                         appended.toString());
    }
    return cell;
}

attack::Trace
TraceCollector::collectOneOrDie(const web::SiteSignature &site,
                                int run_index) const
{
    // OrDie wrapper implementation: abort-on-error is the contract.
    // bigfish-lint: allow(ordie-outside-binary)
    return collectOne(site, run_index).valueOrDie();
}

Result<attack::TraceSet>
TraceCollector::collectClosedWorld(const web::SiteCatalog &catalog,
                                   int traces_per_site,
                                   CollectionStats *stats) const
{
    const attack::AttackerKind attackers[] = {config_.attacker};
    std::vector<CollectionStats> multi_stats;
    Result<std::vector<attack::TraceSet>> sets = collectClosedWorldMulti(
        catalog, traces_per_site, attackers,
        stats != nullptr ? &multi_stats : nullptr);
    if (!sets.isOk())
        return Status(sets.status());
    if (stats != nullptr)
        *stats = multi_stats[0];
    return std::move(sets.value()[0]);
}

Result<std::vector<attack::TraceSet>>
TraceCollector::collectClosedWorldMulti(
    const web::SiteCatalog &catalog, int traces_per_site,
    std::span<const attack::AttackerKind> attackers,
    std::vector<CollectionStats> *stats, sim::PerfCounters *perf) const
{
    if (traces_per_site <= 0)
        return Status(
            invalidArgumentError("traces_per_site must be positive"));
    if (attackers.empty())
        return Status(
            invalidArgumentError("need at least one attacker kind"));
    const std::size_t cells =
        static_cast<std::size_t>(catalog.size()) *
        static_cast<std::size_t>(traces_per_site);

    // Every (site, run) cell derives its randomness from the config seed
    // alone, so the cells are independent and collect in parallel; each
    // result lands in its own pre-sized slot. The accounting pass below
    // walks the slots in serial order, so the produced TraceSets, the
    // dropped-trace stats and the summed perf counters are identical at
    // any thread count.
    auto results = parallelMap(cells, [&](std::size_t idx) {
        const SiteId id = static_cast<SiteId>(
            idx / static_cast<std::size_t>(traces_per_site));
        const int run = static_cast<int>(
            idx % static_cast<std::size_t>(traces_per_site));
        sim::PerfCounters cell_perf;
        auto traces = collectCellCheckpointed(
            kCheckpointClosedWorld, id, catalog.site(id), run, attackers,
            perf != nullptr ? &cell_perf : nullptr);
        return std::make_pair(std::move(traces), cell_perf);
    });
    std::vector<CollectionStats> local(attackers.size());
    std::vector<attack::TraceSet> sets(attackers.size());
    for (attack::TraceSet &set : sets)
        set.traces.reserve(cells);
    for (auto &result : results) {
        auto &cell = result.first;
        if (perf != nullptr)
            *perf += result.second;
        for (std::size_t a = 0; a < attackers.size(); ++a) {
            ++local[a].attempted;
            if (!cell[a].isOk()) {
                ++local[a].dropped;
                warnOnce("collector/dropped-trace",
                         "dropping unusable trace(s); first: " +
                             cell[a].status().toString());
                continue;
            }
            ++local[a].collected;
            sets[a].add(std::move(cell[a].value()));
        }
    }
    if (stats != nullptr)
        *stats = local;
    for (std::size_t a = 0; a < attackers.size(); ++a) {
        if (sets[a].traces.empty())
            return Status(exhaustedError(
                "closed-world collection dropped all " +
                std::to_string(local[a].attempted) + " traces"));
    }
    return sets;
}

attack::TraceSet
TraceCollector::collectClosedWorldOrDie(const web::SiteCatalog &catalog,
                                        int traces_per_site,
                                        CollectionStats *stats) const
{
    // OrDie wrapper implementation: abort-on-error is the contract.
    // bigfish-lint: allow(ordie-outside-binary)
    return collectClosedWorld(catalog, traces_per_site, stats).valueOrDie();
}

Result<attack::TraceSet>
TraceCollector::collectOpenWorld(const web::SiteCatalog &catalog,
                                 int num_extra, Label non_sensitive_label,
                                 CollectionStats *stats) const
{
    const attack::AttackerKind attackers[] = {config_.attacker};
    std::vector<CollectionStats> multi_stats;
    Result<std::vector<attack::TraceSet>> sets = collectOpenWorldMulti(
        catalog, num_extra, non_sensitive_label, attackers,
        stats != nullptr ? &multi_stats : nullptr);
    if (!sets.isOk())
        return Status(sets.status());
    if (stats != nullptr)
        *stats = multi_stats[0];
    return std::move(sets.value()[0]);
}

Result<std::vector<attack::TraceSet>>
TraceCollector::collectOpenWorldMulti(
    const web::SiteCatalog &catalog, int num_extra,
    Label non_sensitive_label,
    std::span<const attack::AttackerKind> attackers,
    std::vector<CollectionStats> *stats, sim::PerfCounters *perf) const
{
    if (attackers.empty())
        return Status(
            invalidArgumentError("need at least one attacker kind"));
    const std::size_t cells =
        static_cast<std::size_t>(std::max(num_extra, 0));
    // Each open-world trace visits a distinct one-off site (the paper's
    // 5,000 unique non-sensitive pages); the cells are independent, so
    // they collect in parallel with the same slot-then-account scheme as
    // the closed world.
    // The journal keys open-world cells by extension index (not the
    // one-off site id), which is stable across catalog id schemes.
    auto results = parallelMap(cells, [&](std::size_t i) {
        sim::PerfCounters cell_perf;
        auto traces = collectCellCheckpointed(
            kCheckpointOpenWorld, static_cast<SiteId>(i),
            catalog.openWorldSite(static_cast<int>(i)), 0, attackers,
            perf != nullptr ? &cell_perf : nullptr);
        return std::make_pair(std::move(traces), cell_perf);
    });
    std::vector<CollectionStats> local(attackers.size());
    std::vector<attack::TraceSet> sets(attackers.size());
    for (attack::TraceSet &set : sets)
        set.traces.reserve(cells);
    for (auto &result : results) {
        auto &cell = result.first;
        if (perf != nullptr)
            *perf += result.second;
        for (std::size_t a = 0; a < attackers.size(); ++a) {
            ++local[a].attempted;
            if (!cell[a].isOk()) {
                ++local[a].dropped;
                warnOnce("collector/dropped-trace",
                         "dropping unusable trace(s); first: " +
                             cell[a].status().toString());
                continue;
            }
            ++local[a].collected;
            cell[a].value().label = non_sensitive_label;
            sets[a].add(std::move(cell[a].value()));
        }
    }
    if (stats != nullptr)
        *stats = local;
    for (std::size_t a = 0; a < attackers.size(); ++a) {
        if (num_extra > 0 && sets[a].traces.empty())
            return Status(exhaustedError(
                "open-world collection dropped all " +
                std::to_string(local[a].attempted) + " traces"));
    }
    return sets;
}

attack::TraceSet
TraceCollector::collectOpenWorldOrDie(const web::SiteCatalog &catalog,
                                      int num_extra,
                                      Label non_sensitive_label,
                                      CollectionStats *stats) const
{
    return collectOpenWorld(catalog, num_extra, non_sensitive_label, stats)
        // OrDie wrapper implementation: abort-on-error is the contract.
        // bigfish-lint: allow(ordie-outside-binary)
        .valueOrDie();
}

} // namespace bigfish::core
