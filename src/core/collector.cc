#include "core/collector.hh"

#include <cmath>

#include "base/logging.hh"

namespace bigfish::core {

TraceCollector::TraceCollector(CollectionConfig config)
    : config_(std::move(config)), synthesizer_(config_.machine)
{
}

Rng
TraceCollector::traceRng(SiteId site_id, int run_index) const
{
    return Rng(mix64(config_.seed) ^
               mix64(static_cast<std::uint64_t>(site_id) * 1000003ULL +
                     static_cast<std::uint64_t>(run_index) + 17ULL));
}

std::uint64_t
TraceCollector::faultSalt(SiteId site_id, int run_index) const
{
    return mix64(static_cast<std::uint64_t>(site_id) * 2654435761ULL +
                 static_cast<std::uint64_t>(run_index) + 101ULL);
}

sim::RunTimeline
TraceCollector::synthesizeTimeline(const web::SiteSignature &site,
                                   int run_index) const
{
    Rng rng = traceRng(site.id, run_index);
    Rng workload_rng = rng.fork(1);
    Rng synth_rng = rng.fork(2);
    Rng browser_rng = rng.fork(3);
    Rng defense_rng = rng.fork(4);

    // The browser's connection path scales how repeatable loads are
    // (Tor circuits make the same page load very differently each time).
    web::RealizationNoise noise = config_.realization;
    noise.phaseStartJitterMs *= config_.browser.loadVariability;
    noise.phaseDurationSigma *= config_.browser.loadVariability;
    noise.rateSigma *= config_.browser.loadVariability;
    noise.runLoadSigma *= config_.browser.loadVariability;

    sim::ActivityTimeline activity = web::realizeWorkload(
        site, config_.browser.traceDuration, config_.browser.loadTimeScale,
        noise, workload_rng);

    if (config_.spuriousInterruptNoise) {
        activity.superimpose(defense::spuriousInterruptOverlay(
            activity.duration(), config_.spuriousParams, defense_rng));
    }
    if (config_.cacheSweepNoise) {
        activity.superimpose(defense::cacheSweepOverlay(
            activity.duration(), config_.cacheSweepParams));
    }
    if (config_.backgroundApps) {
        activity.superimpose(defense::backgroundAppsOverlay(
            activity.duration(), defense_rng));
    }
    activity.clampPhysical();

    sim::RunTimeline timeline = synthesizer_.synthesize(activity, synth_rng);
    web::applyBrowserRuntime(timeline, config_.browser, browser_rng);

    // Injected delivery faults and stalls mutate the shared ground
    // truth, so the kernel tracer / gap detector observe the same
    // faulted schedule the attacker measured.
    if (config_.faults.enabled()) {
        const sim::FaultPlan plan(config_.faults,
                                  faultSalt(site.id, run_index));
        plan.applyToTimeline(timeline);
    }
    return timeline;
}

Result<attack::Trace>
TraceCollector::collectOne(const web::SiteSignature &site,
                           int run_index) const
{
    const TimeNs period = config_.effectivePeriod();
    if (period <= 0)
        return Status(invalidArgumentError(
            "collection period must be positive (browser default and "
            "override are both unset)"));

    const sim::RunTimeline timeline = synthesizeTimeline(site, run_index);
    const auto timer_seed =
        mix64(config_.seed ^ 0x71e4aeedULL) ^
        mix64(static_cast<std::uint64_t>(site.id) * 7919ULL +
              static_cast<std::uint64_t>(run_index));
    auto timer = config_.effectiveTimer().make(timer_seed);

    const sim::FaultPlan plan(config_.faults,
                              faultSalt(site.id, run_index));
    if (plan.enabled())
        timer = plan.wrapTimer(std::move(timer));

    Result<attack::Trace> collected = attack::collectTrace(
        config_.attacker, config_.attackerParams, config_.machine, timeline,
        *timer, period, timer_seed ^ 0x5eedULL);
    if (!collected.isOk())
        return collected;
    attack::Trace trace = std::move(collected.value());
    trace.siteId = site.id;
    trace.label = site.id;

    if (plan.enabled()) {
        // Truncation faults cut the recorded suffix (victim navigated
        // away, tab killed); the counts/wallTimes stay aligned.
        const std::size_t keep = plan.truncatedLength(trace.counts.size());
        if (keep < trace.counts.size()) {
            trace.counts.resize(keep);
            if (trace.wallTimes.size() > keep)
                trace.wallTimes.resize(keep);
        }
    }

    if (trace.counts.size() < kMinViablePeriods) {
        return Status(dataError(
            "trace of site " + std::to_string(site.id) + " run " +
            std::to_string(run_index) + " has " +
            std::to_string(trace.counts.size()) + " periods (< " +
            std::to_string(kMinViablePeriods) + " required)"));
    }
    for (double c : trace.counts) {
        if (!std::isfinite(c))
            return Status(dataError(
                "trace of site " + std::to_string(site.id) + " run " +
                std::to_string(run_index) + " has non-finite counts"));
    }
    return trace;
}

attack::Trace
TraceCollector::collectOneOrDie(const web::SiteSignature &site,
                                int run_index) const
{
    return collectOne(site, run_index).valueOrDie();
}

Result<attack::TraceSet>
TraceCollector::collectClosedWorld(const web::SiteCatalog &catalog,
                                   int traces_per_site,
                                   CollectionStats *stats) const
{
    if (traces_per_site <= 0)
        return Status(
            invalidArgumentError("traces_per_site must be positive"));
    CollectionStats local;
    attack::TraceSet set;
    set.traces.reserve(static_cast<std::size_t>(catalog.size()) *
                       traces_per_site);
    for (SiteId id = 0; id < catalog.size(); ++id) {
        for (int run = 0; run < traces_per_site; ++run) {
            ++local.attempted;
            Result<attack::Trace> trace = collectOne(catalog.site(id), run);
            if (!trace.isOk()) {
                ++local.dropped;
                warnOnce("collector/dropped-trace",
                         "dropping unusable trace(s); first: " +
                             trace.status().toString());
                continue;
            }
            ++local.collected;
            set.add(std::move(trace.value()));
        }
    }
    if (stats != nullptr)
        *stats = local;
    if (set.traces.empty())
        return Status(exhaustedError(
            "closed-world collection dropped all " +
            std::to_string(local.attempted) + " traces"));
    return set;
}

attack::TraceSet
TraceCollector::collectClosedWorldOrDie(const web::SiteCatalog &catalog,
                                        int traces_per_site,
                                        CollectionStats *stats) const
{
    return collectClosedWorld(catalog, traces_per_site, stats).valueOrDie();
}

Result<attack::TraceSet>
TraceCollector::collectOpenWorld(const web::SiteCatalog &catalog,
                                 int num_extra, Label non_sensitive_label,
                                 CollectionStats *stats) const
{
    CollectionStats local;
    attack::TraceSet set;
    set.traces.reserve(static_cast<std::size_t>(std::max(num_extra, 0)));
    for (int i = 0; i < num_extra; ++i) {
        // Each open-world trace visits a distinct one-off site (the
        // paper's 5,000 unique non-sensitive pages).
        ++local.attempted;
        Result<attack::Trace> trace =
            collectOne(catalog.openWorldSite(i), 0);
        if (!trace.isOk()) {
            ++local.dropped;
            warnOnce("collector/dropped-trace",
                     "dropping unusable trace(s); first: " +
                         trace.status().toString());
            continue;
        }
        ++local.collected;
        trace.value().label = non_sensitive_label;
        set.add(std::move(trace.value()));
    }
    if (stats != nullptr)
        *stats = local;
    if (num_extra > 0 && set.traces.empty())
        return Status(exhaustedError(
            "open-world collection dropped all " +
            std::to_string(local.attempted) + " traces"));
    return set;
}

attack::TraceSet
TraceCollector::collectOpenWorldOrDie(const web::SiteCatalog &catalog,
                                      int num_extra,
                                      Label non_sensitive_label,
                                      CollectionStats *stats) const
{
    return collectOpenWorld(catalog, num_extra, non_sensitive_label, stats)
        .valueOrDie();
}

} // namespace bigfish::core
