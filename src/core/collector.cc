#include "core/collector.hh"

#include "base/logging.hh"

namespace bigfish::core {

TraceCollector::TraceCollector(CollectionConfig config)
    : config_(std::move(config)), synthesizer_(config_.machine)
{
}

Rng
TraceCollector::traceRng(SiteId site_id, int run_index) const
{
    return Rng(mix64(config_.seed) ^
               mix64(static_cast<std::uint64_t>(site_id) * 1000003ULL +
                     static_cast<std::uint64_t>(run_index) + 17ULL));
}

sim::RunTimeline
TraceCollector::synthesizeTimeline(const web::SiteSignature &site,
                                   int run_index) const
{
    Rng rng = traceRng(site.id, run_index);
    Rng workload_rng = rng.fork(1);
    Rng synth_rng = rng.fork(2);
    Rng browser_rng = rng.fork(3);
    Rng defense_rng = rng.fork(4);

    // The browser's connection path scales how repeatable loads are
    // (Tor circuits make the same page load very differently each time).
    web::RealizationNoise noise = config_.realization;
    noise.phaseStartJitterMs *= config_.browser.loadVariability;
    noise.phaseDurationSigma *= config_.browser.loadVariability;
    noise.rateSigma *= config_.browser.loadVariability;
    noise.runLoadSigma *= config_.browser.loadVariability;

    sim::ActivityTimeline activity = web::realizeWorkload(
        site, config_.browser.traceDuration, config_.browser.loadTimeScale,
        noise, workload_rng);

    if (config_.spuriousInterruptNoise) {
        activity.superimpose(defense::spuriousInterruptOverlay(
            activity.duration(), config_.spuriousParams, defense_rng));
    }
    if (config_.cacheSweepNoise) {
        activity.superimpose(defense::cacheSweepOverlay(
            activity.duration(), config_.cacheSweepParams));
    }
    if (config_.backgroundApps) {
        activity.superimpose(defense::backgroundAppsOverlay(
            activity.duration(), defense_rng));
    }
    activity.clampPhysical();

    sim::RunTimeline timeline = synthesizer_.synthesize(activity, synth_rng);
    web::applyBrowserRuntime(timeline, config_.browser, browser_rng);
    return timeline;
}

attack::Trace
TraceCollector::collectOne(const web::SiteSignature &site,
                           int run_index) const
{
    const sim::RunTimeline timeline = synthesizeTimeline(site, run_index);
    const auto timer_seed =
        mix64(config_.seed ^ 0x71e4aeedULL) ^
        mix64(static_cast<std::uint64_t>(site.id) * 7919ULL +
              static_cast<std::uint64_t>(run_index));
    auto timer = config_.effectiveTimer().make(timer_seed);

    attack::Trace trace = attack::collectTrace(
        config_.attacker, config_.attackerParams, config_.machine, timeline,
        *timer, config_.effectivePeriod(), timer_seed ^ 0x5eedULL);
    trace.siteId = site.id;
    trace.label = site.id;
    return trace;
}

attack::TraceSet
TraceCollector::collectClosedWorld(const web::SiteCatalog &catalog,
                                   int traces_per_site) const
{
    fatalIf(traces_per_site <= 0, "traces_per_site must be positive");
    attack::TraceSet set;
    set.traces.reserve(static_cast<std::size_t>(catalog.size()) *
                       traces_per_site);
    for (SiteId id = 0; id < catalog.size(); ++id)
        for (int run = 0; run < traces_per_site; ++run)
            set.add(collectOne(catalog.site(id), run));
    return set;
}

attack::TraceSet
TraceCollector::collectOpenWorld(const web::SiteCatalog &catalog,
                                 int num_extra,
                                 Label non_sensitive_label) const
{
    attack::TraceSet set;
    set.traces.reserve(static_cast<std::size_t>(num_extra));
    for (int i = 0; i < num_extra; ++i) {
        // Each open-world trace visits a distinct one-off site (the
        // paper's 5,000 unique non-sensitive pages).
        attack::Trace trace = collectOne(catalog.openWorldSite(i), 0);
        trace.label = non_sensitive_label;
        set.add(std::move(trace));
    }
    return set;
}

} // namespace bigfish::core
