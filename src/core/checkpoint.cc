#include "core/checkpoint.hh"

#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/atomic_file.hh"
#include "base/hash.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "core/collector.hh"

namespace bigfish::core {

namespace {

// CRC32 (base/hash.hh) frames every journal record so torn writes and
// flipped bytes are detected on replay.

// ---------------------------------------------------------------------
// Canonical text serialization. Doubles are written as hexfloats
// ("%a"), which round-trip bit-exactly through strtod — the property
// the bit-identical-resume contract rests on.

std::string
hexDouble(double value)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", value);
    return buf;
}

std::string
hex16(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, value);
    return buf;
}

constexpr char kHeaderPrefix[] = "# bigfish-checkpoint v1 fp=";
constexpr char kFramePrefix[] = "@rec ";

/** One-line-per-field canonical form of a config, for fingerprinting. */
struct Canonical
{
    std::string text;

    void
    add(const char *key, const std::string &value)
    {
        text += key;
        text += '=';
        text += value;
        text += '\n';
    }
    void add(const char *key, double v) { add(key, hexDouble(v)); }
    void add(const char *key, bool v) { add(key, std::string(v ? "1" : "0")); }
    void
    add(const char *key, std::int64_t v)
    {
        add(key, std::to_string(v));
    }
    void add(const char *key, int v) { add(key, std::int64_t(v)); }
    void
    add(const char *key, std::uint64_t v)
    {
        add(key, hex16(v));
    }
};

void
addTimerSpec(Canonical &canon, const char *prefix,
             const timers::TimerSpec &spec)
{
    const std::string p(prefix);
    canon.add((p + ".kind").c_str(), static_cast<int>(spec.kind));
    canon.add((p + ".resolution").c_str(),
              static_cast<std::int64_t>(spec.resolution));
    canon.add((p + ".rand.resolution").c_str(),
              static_cast<std::int64_t>(spec.randomized.resolution));
    canon.add((p + ".rand.alphaLo").c_str(), spec.randomized.alphaLo);
    canon.add((p + ".rand.alphaHi").c_str(), spec.randomized.alphaHi);
    canon.add((p + ".rand.betaLo").c_str(), spec.randomized.betaLo);
    canon.add((p + ".rand.betaHi").c_str(), spec.randomized.betaHi);
    canon.add((p + ".rand.threshold").c_str(),
              static_cast<std::int64_t>(spec.randomized.threshold));
}

} // namespace

std::uint64_t
collectionFingerprint(const CollectionConfig &config,
                      std::uint64_t catalog_seed, int num_sites,
                      int open_world_extra,
                      std::span<const attack::AttackerKind> attackers)
{
    Canonical canon;
    canon.add("format", std::string("bigfish-collection-v1"));
    canon.add("catalog.seed", catalog_seed);
    canon.add("catalog.sites", num_sites);
    canon.add("catalog.openExtra", open_world_extra);
    for (const auto kind : attackers)
        canon.add("attacker", attack::attackerKindName(kind));

    const sim::MachineConfig &m = config.machine;
    canon.add("machine.numCores", m.numCores);
    canon.add("machine.attackerCore", m.attackerCore);
    canon.add("machine.os.name", m.os.name);
    canon.add("machine.os.tickHz", m.os.tickHz);
    canon.add("machine.os.handlerScale", m.os.handlerScale);
    canon.add("machine.os.softirqShare", m.os.softirqShare);
    canon.add("machine.os.backgroundIrqRate", m.os.backgroundIrqRate);
    canon.add("machine.os.backgroundReschedRate",
              m.os.backgroundReschedRate);
    canon.add("machine.os.untraceableStallRate", m.os.untraceableStallRate);
    canon.add("machine.os.housekeepingBurstRate",
              m.os.housekeepingBurstRate);
    canon.add("machine.os.housekeepingIntensity",
              m.os.housekeepingIntensity);
    canon.add("machine.frequencyScaling", m.frequencyScaling);
    canon.add("machine.frequencyLoadDip", m.frequencyLoadDip);
    canon.add("machine.frequencyWalkSigma", m.frequencyWalkSigma);
    canon.add("machine.frequencyWalkTau",
              static_cast<std::int64_t>(m.frequencyWalkTau));
    canon.add("machine.pinnedCores", m.pinnedCores);
    canon.add("machine.routing", static_cast<int>(m.routing));
    canon.add("machine.vmIsolation", m.vmIsolation);
    for (int kind = 0; kind < sim::kNumInterruptKinds; ++kind) {
        const auto params = m.handlerCosts.params(
            static_cast<sim::InterruptKind>(kind));
        const std::string key = "machine.handler." + std::to_string(kind);
        canon.add((key + ".median").c_str(),
                  static_cast<std::int64_t>(params.median));
        canon.add((key + ".sigma").c_str(), params.sigma);
    }
    canon.add("machine.contextSwitchNs",
              static_cast<std::int64_t>(m.handlerCosts.contextSwitchNs));
    canon.add("machine.vmAmplification", m.handlerCosts.vmAmplification);
    canon.add("machine.vmExitNs",
              static_cast<std::int64_t>(m.handlerCosts.vmExitNs));
    canon.add("machine.timesliceNs",
              static_cast<std::int64_t>(m.timesliceNs));
    canon.add("machine.llcBytes", static_cast<std::int64_t>(m.llcBytes));
    canon.add("machine.lineBytes", m.lineBytes);
    canon.add("machine.sweepHitNsPerLine", m.sweepHitNsPerLine);
    canon.add("machine.sweepMissExtraNsPerLine", m.sweepMissExtraNsPerLine);

    const web::BrowserProfile &b = config.browser;
    canon.add("browser.name", b.name);
    addTimerSpec(canon, "browser.timer", b.timer);
    canon.add("browser.traceDuration",
              static_cast<std::int64_t>(b.traceDuration));
    canon.add("browser.loadTimeScale", b.loadTimeScale);
    canon.add("browser.loadVariability", b.loadVariability);
    canon.add("browser.runtimeNoiseSigma", b.runtimeNoiseSigma);
    canon.add("browser.stallRate", b.stallRate);
    canon.add("browser.stallMedian",
              static_cast<std::int64_t>(b.stallMedian));
    canon.add("browser.period", static_cast<std::int64_t>(b.period));

    canon.add("attackerParams.loopIterNs", config.attackerParams.loopIterNs);
    canon.add("attackerParams.sweepOverheadNs",
              config.attackerParams.sweepOverheadNs);
    canon.add("attackerParams.sweepObservedOccupancy",
              config.attackerParams.sweepObservedOccupancy);
    canon.add("attackerParams.sweepCostSigma",
              config.attackerParams.sweepCostSigma);

    canon.add("timerOverride", config.timerOverride.has_value());
    if (config.timerOverride)
        addTimerSpec(canon, "timerOverride", *config.timerOverride);
    canon.add("period", static_cast<std::int64_t>(config.period));

    canon.add("spuriousInterruptNoise", config.spuriousInterruptNoise);
    canon.add("spurious.burstsPerSecond",
              config.spuriousParams.burstsPerSecond);
    canon.add("spurious.burstMean",
              static_cast<std::int64_t>(config.spuriousParams.burstMean));
    canon.add("spurious.burstNetRate", config.spuriousParams.burstNetRate);
    canon.add("spurious.burstReschedRate",
              config.spuriousParams.burstReschedRate);
    canon.add("spurious.burstSoftirqWork",
              config.spuriousParams.burstSoftirqWork);
    canon.add("spurious.baselineNetRate",
              config.spuriousParams.baselineNetRate);
    canon.add("cacheSweepNoise", config.cacheSweepNoise);
    canon.add("cacheSweep.sweepOccupancy",
              config.cacheSweepParams.sweepOccupancy);
    canon.add("cacheSweep.sweepCpuLoad", config.cacheSweepParams.sweepCpuLoad);
    canon.add("cacheSweep.sweepReschedRate",
              config.cacheSweepParams.sweepReschedRate);
    canon.add("backgroundApps", config.backgroundApps);

    canon.add("realization.phaseStartJitterMs",
              config.realization.phaseStartJitterMs);
    canon.add("realization.phaseDurationSigma",
              config.realization.phaseDurationSigma);
    canon.add("realization.rateSigma", config.realization.rateSigma);
    canon.add("realization.runLoadSigma", config.realization.runLoadSigma);

    // Signal faults change trace content, so they key the journal; the
    // IO faults (ioCrashAfterRecords/ioTornWriteBytes/ioCorruptRecordProb)
    // only perturb persistence and are deliberately left out — a resumed
    // run with the crash fault removed must find its own progress.
    const sim::FaultConfig &f = config.faults;
    canon.add("faults.dropInterruptProb", f.dropInterruptProb);
    canon.add("faults.duplicateInterruptProb", f.duplicateInterruptProb);
    canon.add("faults.duplicateDelay",
              static_cast<std::int64_t>(f.duplicateDelay));
    canon.add("faults.timerSkewPpm", f.timerSkewPpm);
    canon.add("faults.timerBackstepProb", f.timerBackstepProb);
    canon.add("faults.timerBackstepMax",
              static_cast<std::int64_t>(f.timerBackstepMax));
    canon.add("faults.timerBackstepQuantum",
              static_cast<std::int64_t>(f.timerBackstepQuantum));
    canon.add("faults.stallsPerSecond", f.stallsPerSecond);
    canon.add("faults.stallMedian", static_cast<std::int64_t>(f.stallMedian));
    canon.add("faults.stallSigma", f.stallSigma);
    canon.add("faults.truncateProb", f.truncateProb);
    canon.add("faults.truncateKeepMin", f.truncateKeepMin);
    canon.add("faults.truncateKeepMax", f.truncateKeepMax);
    canon.add("faults.seed", f.seed);

    canon.add("seed", config.seed);
    return mix64(fnv64(canon.text) ^ 0x2f5a'1c3e'9b87'd641ULL);
}

// ---------------------------------------------------------------------
// Record serialization.

namespace {

/** Journal lines are one record each; newlines in messages would tear
 *  the framing, so they are flattened (messages are for humans only). */
std::string
flattenMessage(std::string message)
{
    for (char &c : message)
        if (c == '\n' || c == '\r')
            c = ' ';
    return message;
}

} // namespace

std::string
CheckpointJournal::serializeCell(int world, SiteId site, int run,
                                 const StoredCell &cell)
{
    std::ostringstream out;
    out << "cell " << world << ' ' << site << ' ' << run << ' '
        << cell.size() << '\n';
    for (const StoredEntry &entry : cell) {
        if (!entry.ok) {
            out << "drop " << static_cast<int>(entry.code) << ' '
                << flattenMessage(entry.message) << '\n';
            continue;
        }
        const attack::Trace &t = entry.trace;
        out << "ok " << t.siteId << ' ' << t.label << ' ' << t.period << ' '
            << t.attacker << ' ' << t.counts.size();
        for (const double c : t.counts)
            out << ' ' << hexDouble(c);
        out << ' ' << t.wallTimes.size();
        for (const TimeNs w : t.wallTimes)
            out << ' ' << w;
        out << '\n';
    }
    return out.str();
}

bool
CheckpointJournal::parseCell(const std::string &payload, CellKey &key,
                             StoredCell &cell)
{
    std::istringstream in(payload);
    std::string tag;
    int world = 0, site = 0, run = 0;
    std::size_t entries = 0;
    if (!(in >> tag >> world >> site >> run >> entries) || tag != "cell")
        return false;
    if (entries > 1024)
        return false;
    in.ignore(); // The newline after the cell header.
    cell.clear();
    for (std::size_t i = 0; i < entries; ++i) {
        std::string line;
        if (!std::getline(in, line))
            return false;
        std::istringstream fields(line);
        StoredEntry entry;
        if (!(fields >> tag))
            return false;
        if (tag == "drop") {
            int code = 0;
            if (!(fields >> code))
                return false;
            if (code <= 0 ||
                code > static_cast<int>(ErrorCode::Exhausted))
                return false;
            entry.ok = false;
            entry.code = static_cast<ErrorCode>(code);
            std::getline(fields, entry.message);
            if (!entry.message.empty() && entry.message.front() == ' ')
                entry.message.erase(0, 1);
        } else if (tag == "ok") {
            entry.ok = true;
            attack::Trace &t = entry.trace;
            std::size_t counts = 0;
            long long period = 0;
            if (!(fields >> t.siteId >> t.label >> period >> t.attacker >>
                  counts))
                return false;
            t.period = period;
            t.counts.reserve(counts);
            for (std::size_t c = 0; c < counts; ++c) {
                std::string token;
                if (!(fields >> token))
                    return false;
                char *end = nullptr;
                const double value = std::strtod(token.c_str(), &end);
                if (end == nullptr || *end != '\0')
                    return false;
                t.counts.push_back(value);
            }
            std::size_t walls = 0;
            if (!(fields >> walls))
                return false;
            t.wallTimes.reserve(walls);
            for (std::size_t w = 0; w < walls; ++w) {
                long long wall = 0;
                if (!(fields >> wall))
                    return false;
                t.wallTimes.push_back(wall);
            }
        } else {
            return false;
        }
        cell.push_back(std::move(entry));
    }
    key = CellKey(world, site, run);
    return true;
}

std::string
CheckpointJournal::frameRecord(const std::string &payload)
{
    char header[48];
    std::snprintf(header, sizeof(header), "%s%zu %08x\n", kFramePrefix,
                  payload.size(), crc32(payload));
    return std::string(header) + payload;
}

std::string
CheckpointJournal::headerLine() const
{
    return std::string(kHeaderPrefix) + hex16(fingerprint_) + "\n";
}

Result<std::unique_ptr<CheckpointJournal>>
CheckpointJournal::open(const std::string &dir, std::uint64_t fingerprint,
                        const sim::FaultConfig &faults)
{
    const Status made = createDirectories(dir);
    if (!made.isOk())
        return made;

    std::unique_ptr<CheckpointJournal> journal(new CheckpointJournal());
    journal->fingerprint_ = fingerprint;
    journal->faults_ = faults;
    journal->path_ = dir + "/ckpt-" + hex16(fingerprint) + ".journal";

    // Replay any existing progress, repairing torn tails and dropping
    // CRC-failed records.
    std::string content;
    bool existed = false;
    {
        std::ifstream in(journal->path_, std::ios::binary);
        if (in) {
            existed = true;
            std::ostringstream buffer;
            buffer << in.rdbuf();
            content = buffer.str();
        }
    }
    if (existed) {
        const std::string header = journal->headerLine();
        if (content.rfind(header, 0) != 0) {
            // Foreign or pre-v1 content: discard it all, start fresh.
            journal->stats_.tailBytesDropped = content.size();
        } else {
            std::size_t pos = header.size();
            while (pos < content.size()) {
                const std::size_t record_start = pos;
                const std::size_t eol = content.find('\n', pos);
                std::size_t length = 0;
                unsigned crc = 0;
                bool framed = false;
                if (eol != std::string::npos) {
                    const std::string frame =
                        content.substr(pos, eol - pos);
                    framed = std::sscanf(frame.c_str(), "@rec %zu %x",
                                         &length, &crc) == 2 &&
                             frame.rfind(kFramePrefix, 0) == 0;
                }
                if (!framed) {
                    // Torn frame header: everything from here is tail.
                    journal->stats_.tailBytesDropped =
                        content.size() - record_start;
                    break;
                }
                const std::size_t payload_start = eol + 1;
                if (payload_start + length > content.size()) {
                    // Torn payload at EOF.
                    journal->stats_.tailBytesDropped =
                        content.size() - record_start;
                    break;
                }
                const std::string payload =
                    content.substr(payload_start, length);
                pos = payload_start + length;
                if (crc32(payload) != crc) {
                    ++journal->stats_.recordsDropped;
                    continue;
                }
                CellKey key;
                StoredCell cell;
                if (!parseCell(payload, key, cell)) {
                    ++journal->stats_.recordsDropped;
                    continue;
                }
                // First record wins; duplicates are bit-identical by
                // construction anyway.
                journal->cells_.emplace(key, std::move(cell));
            }
        }
        journal->stats_.cellsLoaded = journal->cells_.size();
    }

    // Commit the (possibly repaired) journal atomically before any
    // append: a compaction that itself tears must never replace a good
    // journal, hence tmp+rename. The commit is keyed on the header being
    // intact, not on mere existence: a file truncated to zero bytes
    // exists, needed no record repair, and yet must get a fresh header
    // before appends resume or the next open() discards everything.
    const bool header_intact =
        existed && content.rfind(journal->headerLine(), 0) == 0;
    if (!header_intact || journal->stats_.repaired()) {
        std::string canonical = journal->headerLine();
        for (const auto &[key, cell] : journal->cells_)
            canonical += frameRecord(serializeCell(
                std::get<0>(key), std::get<1>(key), std::get<2>(key), cell));
        const Status committed = atomicWriteFile(journal->path_, canonical);
        if (!committed.isOk())
            return committed;
    }

    journal->file_ = std::fopen(journal->path_.c_str(), "ab");
    if (journal->file_ == nullptr)
        return ioError("cannot open checkpoint journal " + journal->path_ +
                       " for append");
    return journal;
}

CheckpointJournal::~CheckpointJournal()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

std::size_t
CheckpointJournal::cellCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.size();
}

std::optional<std::vector<Result<attack::Trace>>>
CheckpointJournal::lookup(int world, SiteId site, int run) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cells_.find(CellKey(world, site, run));
    if (it == cells_.end())
        return std::nullopt;
    std::vector<Result<attack::Trace>> cell;
    cell.reserve(it->second.size());
    for (const StoredEntry &entry : it->second) {
        if (entry.ok)
            cell.emplace_back(entry.trace);
        else
            cell.emplace_back(Status(entry.code, entry.message));
    }
    return cell;
}

Status
CheckpointJournal::appendCell(int world, SiteId site, int run,
                          const std::vector<Result<attack::Trace>> &cell)
{
    StoredCell stored;
    stored.reserve(cell.size());
    for (const Result<attack::Trace> &entry : cell) {
        StoredEntry e;
        if (entry.isOk()) {
            e.ok = true;
            e.trace = entry.value();
        } else {
            e.ok = false;
            e.code = entry.status().code();
            e.message = entry.status().message();
        }
        stored.push_back(std::move(e));
    }
    std::string framed = frameRecord(serializeCell(world, site, run, stored));

    std::lock_guard<std::mutex> lock(mutex_);
    if (file_ == nullptr)
        return ioError("checkpoint journal " + path_ + " is not open");

    // --- Injected IO faults (deterministic in faults.seed + index).
    if (faults_.ioCrashAfterRecords > 0 &&
        appended_ >= static_cast<std::size_t>(faults_.ioCrashAfterRecords)) {
        // Simulated kill -9 mid-append: persist only a torn prefix of
        // the in-flight record, then die without unwinding.
        const std::size_t torn = std::min(
            framed.size(),
            static_cast<std::size_t>(std::max(faults_.ioTornWriteBytes, 0)));
        if (torn > 0) {
            std::fwrite(framed.data(), 1, torn, file_);
            std::fflush(file_);
        }
        panic("fault injection: simulated crash after " +
              std::to_string(appended_) + " checkpoint records (journal " +
              path_ + ")");
    }
    if (faults_.ioCorruptRecordProb > 0.0) {
        const std::uint64_t word =
            mix64(mix64(faults_.seed ^ 0x8d1c'42a7'55e0'3b96ULL) ^
                  mix64(static_cast<std::uint64_t>(appended_)));
        const double uniform = static_cast<double>(word >> 11) * 0x1.0p-53;
        if (uniform < faults_.ioCorruptRecordProb) {
            // Flip one payload byte *after* the CRC was computed; the
            // reader must detect and drop exactly this record.
            const std::size_t header = framed.find('\n') + 1;
            const std::size_t span = framed.size() - header;
            if (span > 0)
                framed[header + (mix64(word) % span)] ^= 0x01;
        }
    }

    if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size())
        return ioError("short append to checkpoint journal " + path_);
    // fflush hands the record to the kernel: a kill -9 of this process
    // can then no longer lose it (page cache survives process death).
    if (std::fflush(file_) != 0)
        return ioError("cannot flush checkpoint journal " + path_);
    ++appended_;
    cells_.emplace(CellKey(world, site, run), std::move(stored));
    return Status::ok();
}

} // namespace bigfish::core
