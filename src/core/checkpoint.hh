/**
 * @file
 * CheckpointJournal: append-only collection progress for `--resume`.
 *
 * A full-scale collection campaign is hours of work whose unit of
 * progress is one (site, run) cell — and because every cell is a pure
 * function of (CollectionConfig, site, run), a cell collected before a
 * crash is bit-identical to the same cell collected after a restart.
 * The journal exploits that: each completed cell (every attacker's
 * Result<Trace>, including the *dropped* ones — accounting must survive
 * a resume too) is appended as one CRC-framed record, flushed
 * immediately so a kill -9 loses at most the record in flight.
 *
 * Journals are content-addressed: the filename embeds a fingerprint
 * hash of every collection input that trace content depends on
 * (collectionFingerprint), so a resumed run with a changed seed, fault
 * plan or browser simply opens a different, empty journal — stale
 * progress can never leak into a non-matching run.
 *
 * Recovery contract: on open, the journal replays valid records, drops
 * anything after the first torn/CRC-failed frame boundary it cannot
 * resynchronize past, and commits the repaired journal atomically
 * (tmp+rename, base/atomic_file.hh) before appending resumes. Resumed
 * collection therefore provably produces bit-identical artifacts to an
 * uninterrupted run — the property tests/robustness_test.cc pins by
 * truncating a journal at every byte offset.
 *
 * IO-layer faults (sim::FaultConfig::ioCrashAfterRecords,
 * ioTornWriteBytes, ioCorruptRecordProb) act here, corrupting or
 * aborting persistence without ever touching trace content.
 */

#ifndef BF_CORE_CHECKPOINT_HH
#define BF_CORE_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "attack/attacker.hh"
#include "attack/trace.hh"
#include "base/result.hh"
#include "sim/faults.hh"

namespace bigfish::core {

struct CollectionConfig;

/** The two collection worlds a journal record can belong to. */
constexpr int kCheckpointClosedWorld = 0;
constexpr int kCheckpointOpenWorld = 1;

/** What open() found (and repaired) in an existing journal. */
struct CheckpointRepairStats
{
    std::size_t cellsLoaded = 0;    ///< Valid cells replayed.
    std::size_t recordsDropped = 0; ///< CRC-failed or malformed records.
    std::size_t tailBytesDropped = 0; ///< Torn bytes discarded at EOF.

    /** True when the journal needed repair on open. */
    bool repaired() const
    {
        return recordsDropped > 0 || tailBytesDropped > 0;
    }
};

/**
 * Append-only per-(world, site, run) collection checkpoint journal.
 * Thread-safe: appendCell() and lookup() may race from the collection
 * worker pool.
 */
class CheckpointJournal
{
  public:
    /**
     * Opens (creating @p dir as needed) the journal for @p fingerprint,
     * replaying and repairing any existing progress. @p faults supplies
     * the IO-layer fault plan; pass sim::FaultConfig::none() outside
     * fault-injection runs.
     */
    [[nodiscard]] static Result<std::unique_ptr<CheckpointJournal>>
    open(const std::string &dir, std::uint64_t fingerprint,
         const sim::FaultConfig &faults);

    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /** The journal file path. */
    const std::string &path() const { return path_; }

    /** Repair/replay accounting from open(). */
    const CheckpointRepairStats &repairStats() const { return stats_; }

    /** Number of completed cells currently journaled. */
    std::size_t cellCount() const;

    /**
     * The journaled cell (one Result<Trace> per attacker, dropped
     * traces reconstructed as their original error Status), or nullopt
     * when (world, site, run) has not been completed.
     */
    [[nodiscard]] std::optional<std::vector<Result<attack::Trace>>>
    lookup(int world, SiteId site, int run) const;

    /**
     * Appends one completed cell and flushes it to the OS so a kill -9
     * immediately afterwards cannot lose it. Subject to the configured
     * IO faults: may deterministically corrupt the record on disk or
     * hard-crash the process mid-write.
     */
    [[nodiscard]] Status appendCell(int world, SiteId site, int run,
                                const std::vector<Result<attack::Trace>> &cell);

  private:
    /** One journaled attacker slot: a trace or its drop reason. */
    struct StoredEntry
    {
        bool ok = false;
        attack::Trace trace;
        ErrorCode code = ErrorCode::Ok;
        std::string message;
    };
    using StoredCell = std::vector<StoredEntry>;
    using CellKey = std::tuple<int, SiteId, int>;

    CheckpointJournal() = default;

    /** The "# bigfish-checkpoint v1 fp=<hex>" first line. */
    std::string headerLine() const;
    /** One cell as the line-oriented record payload. */
    static std::string serializeCell(int world, SiteId site, int run,
                                     const StoredCell &cell);
    /** Inverse of serializeCell(); false on malformed payload. */
    static bool parseCell(const std::string &payload, CellKey &key,
                          StoredCell &cell);
    /** Wraps a payload in its "@rec <len> <crc>" frame. */
    static std::string frameRecord(const std::string &payload);

    std::string path_;
    std::uint64_t fingerprint_ = 0;
    sim::FaultConfig faults_;
    CheckpointRepairStats stats_;
    mutable std::mutex mutex_;
    std::map<CellKey, StoredCell> cells_;
    FILE *file_ = nullptr;
    /** Records appended by *this* process (drives the crash fault). */
    std::size_t appended_ = 0;
};

/**
 * Deterministic fingerprint of everything a collected trace's content
 * depends on: the full CollectionConfig (signal faults included, IO
 * faults excluded — they never alter content), the catalog geometry and
 * the attacker set. Two configurations hash equal iff their journals
 * are interchangeable.
 */
[[nodiscard]] std::uint64_t
collectionFingerprint(const CollectionConfig &config,
                      std::uint64_t catalog_seed, int num_sites,
                      int open_world_extra,
                      std::span<const attack::AttackerKind> attackers);

} // namespace bigfish::core

#endif // BF_CORE_CHECKPOINT_HH
