/**
 * @file
 * Named experiment presets: the exact CollectionConfigs behind every
 * row of the paper's tables, as a programmatic API.
 *
 * The benchmark harnesses print tables; these presets let library users
 * reproduce any single row (or build new experiments relative to one)
 * without copying configuration out of bench code:
 *
 * @code
 * auto config = core::presets::table1Row("chrome", "linux");
 * auto result = core::runFingerprinting(config, pipeline);
 * @endcode
 */

#ifndef BF_CORE_PRESETS_HH
#define BF_CORE_PRESETS_HH

#include <string>
#include <vector>

#include "core/collector.hh"

namespace bigfish::core::presets {

/** A named configuration with its paper reference. */
struct NamedConfig
{
    std::string name;           ///< e.g. "chrome/linux".
    std::string paperReference; ///< e.g. "Table 1, row 1".
    CollectionConfig config;
};

/**
 * Table 1 row: browser in {"chrome", "firefox", "safari", "tor"},
 * os in {"linux", "windows", "macos"}. fatal() on combinations the
 * paper does not evaluate (e.g. Safari on Windows).
 */
CollectionConfig table1Row(const std::string &browser,
                           const std::string &os,
                           attack::AttackerKind attacker =
                               attack::AttackerKind::LoopCounting);

/** All eight Table 1 browser x OS combinations, in paper order. */
std::vector<NamedConfig> table1Rows();

/**
 * Table 2 condition: noise in {"none", "cache-sweep", "interrupt",
 * "background"} for the given attacker, on the paper's Chrome/Linux
 * machine.
 */
CollectionConfig table2Condition(const std::string &noise,
                                 attack::AttackerKind attacker);

/**
 * Table 3 isolation level 0-4 (cumulative):
 * 0 default, 1 +no DVFS, 2 +pinned cores, 3 +IRQs removed, 4 +VMs.
 */
CollectionConfig table3Isolation(int level);

/**
 * Table 4 timer row: timer in {"jittered", "quantized", "randomized"}
 * with the attacker period P in milliseconds.
 */
CollectionConfig table4Timer(const std::string &timer, int period_ms);

} // namespace bigfish::core::presets

#endif // BF_CORE_PRESETS_HH
