#include "ml/network.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "ml/kernels.hh"

namespace bigfish::ml {

Sequential &
Sequential::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
    return *this;
}

Matrix
Sequential::forward(const Matrix &in, bool train)
{
    Matrix x = in;
    for (auto &layer : layers_)
        x = layer->forward(x, train);
    return x;
}

Matrix
Sequential::backward(const Matrix &grad_out)
{
    Matrix g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

bool
Sequential::supportsBatch() const
{
    for (const auto &layer : layers_)
        if (!layer->supportsBatch())
            return false;
    return true;
}

Matrix
Sequential::forwardBatch(const Matrix &in, std::size_t samples, bool train)
{
    Matrix x = in;
    for (auto &layer : layers_)
        x = layer->forwardBatch(x, samples, train);
    return x;
}

Matrix
Sequential::backwardBatch(const Matrix &grad_out, std::size_t samples)
{
    Matrix g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backwardBatch(g, samples);
    return g;
}

std::vector<Matrix *>
Sequential::params()
{
    std::vector<Matrix *> out;
    for (auto &layer : layers_)
        for (Matrix *p : layer->params())
            out.push_back(p);
    return out;
}

std::vector<Matrix *>
Sequential::grads()
{
    std::vector<Matrix *> out;
    for (auto &layer : layers_)
        for (Matrix *g : layer->grads())
            out.push_back(g);
    return out;
}

void
Sequential::zeroGrads()
{
    for (auto &layer : layers_)
        layer->zeroGrads();
}

std::size_t
Sequential::numParameters()
{
    std::size_t total = 0;
    for (Matrix *p : params())
        total += p->size();
    return total;
}

std::vector<double>
SoftmaxCrossEntropy::probabilities(const Matrix &logits)
{
    panicIf(logits.cols() != 1, "softmax expects a column vector");
    std::vector<double> probs(logits.rows());
    float max_logit = logits(0, 0);
    for (std::size_t i = 1; i < logits.rows(); ++i)
        max_logit = std::max(max_logit, logits(i, 0));
    double sum = 0.0;
    for (std::size_t i = 0; i < logits.rows(); ++i) {
        probs[i] = std::exp(static_cast<double>(logits(i, 0) - max_logit));
        sum += probs[i];
    }
    for (double &p : probs)
        p /= sum;
    return probs;
}

double
SoftmaxCrossEntropy::loss(const Matrix &logits, Label truth)
{
    const auto probs = probabilities(logits);
    panicIf(truth < 0 || truth >= static_cast<Label>(probs.size()),
            "loss label out of range");
    return -std::log(std::max(probs[truth], 1e-12));
}

Matrix
SoftmaxCrossEntropy::gradient(const Matrix &logits, Label truth)
{
    const auto probs = probabilities(logits);
    Matrix grad(logits.rows(), 1);
    for (std::size_t i = 0; i < logits.rows(); ++i)
        grad(i, 0) = static_cast<float>(probs[i]);
    grad(truth, 0) -= 1.0f;
    return grad;
}

double
SoftmaxCrossEntropy::lossAndGradient(const Matrix &logits, Label truth,
                                     Matrix &grad)
{
    const auto probs = probabilities(logits);
    panicIf(truth < 0 || truth >= static_cast<Label>(probs.size()),
            "loss label out of range");
    grad.resize(logits.rows(), 1);
    for (std::size_t i = 0; i < logits.rows(); ++i)
        grad(i, 0) = static_cast<float>(probs[i]);
    grad(truth, 0) -= 1.0f;
    return -std::log(std::max(probs[truth], 1e-12));
}

double
SoftmaxCrossEntropy::lossAndGradientBatch(const Matrix &logits,
                                          const std::vector<Label> &truths,
                                          Matrix &grad)
{
    const std::size_t classes = logits.rows();
    const std::size_t batch = logits.cols();
    panicIf(truths.size() != batch, "batched loss label count mismatch");
    grad.resize(classes, batch);
    double total = 0.0;
    for (std::size_t s = 0; s < batch; ++s) {
        const Label truth = truths[s];
        panicIf(truth < 0 || truth >= static_cast<Label>(classes),
                "loss label out of range");
        float max_logit = logits(0, s);
        for (std::size_t i = 1; i < classes; ++i)
            max_logit = std::max(max_logit, logits(i, s));
        double sum = 0.0;
        for (std::size_t i = 0; i < classes; ++i) {
            const double e =
                std::exp(static_cast<double>(logits(i, s) - max_logit));
            grad(i, s) = static_cast<float>(e);
            sum += e;
        }
        const double inv = 1.0 / sum;
        for (std::size_t i = 0; i < classes; ++i)
            grad(i, s) = static_cast<float>(grad(i, s) * inv);
        total -= std::log(std::max(
            static_cast<double>(grad(static_cast<std::size_t>(truth), s)),
            1e-12));
        grad(static_cast<std::size_t>(truth), s) -= 1.0f;
    }
    return total;
}

bool
allFinite(const std::vector<Matrix *> &tensors)
{
    for (const Matrix *t : tensors)
        for (std::size_t i = 0; i < t->size(); ++i)
            if (!std::isfinite(t->data()[i]))
                return false;
    return true;
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
}

bool
Adam::stepIfFinite(const std::vector<Matrix *> &params,
                   const std::vector<Matrix *> &grads, double scale)
{
    if (!allFinite(grads))
        return false;
    step(params, grads, scale);
    return true;
}

void
Adam::step(const std::vector<Matrix *> &params,
           const std::vector<Matrix *> &grads, double scale)
{
    panicIf(params.size() != grads.size(), "Adam params/grads mismatch");
    if (m_.empty()) {
        m_.resize(params.size());
        v_.resize(params.size());
        for (std::size_t i = 0; i < params.size(); ++i) {
            m_[i].assign(params[i]->size(), 0.0f);
            v_[i].assign(params[i]->size(), 0.0f);
        }
    }
    ++t_;
    // Per-step scalars stay in double (pow over t accumulates error in
    // float); the per-parameter loop runs through the SIMD kernel
    // layer in float — the moments are stored as float anyway, so
    // double intermediates only added cost, not meaningful precision.
    kernels::AdamConsts consts;
    consts.beta1 = static_cast<float>(beta1_);
    consts.beta2 = static_cast<float>(beta2_);
    consts.oneMinusBeta1 = 1.0f - consts.beta1;
    consts.oneMinusBeta2 = 1.0f - consts.beta2;
    consts.invBiasCorrection1 =
        static_cast<float>(1.0 / (1.0 - std::pow(beta1_, t_)));
    consts.invBiasCorrection2 =
        static_cast<float>(1.0 / (1.0 - std::pow(beta2_, t_)));
    consts.learningRate = static_cast<float>(lr_);
    consts.epsilon = static_cast<float>(eps_);
    consts.gradScale = static_cast<float>(scale);
    for (std::size_t i = 0; i < params.size(); ++i) {
        panicIf(params[i]->size() != grads[i]->size(),
                "Adam tensor size mismatch");
        kernels::adamStep(params[i]->data(), grads[i]->data(),
                          m_[i].data(), v_[i].data(), params[i]->size(),
                          consts);
    }
}

} // namespace bigfish::ml
