#include "ml/network.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

Sequential &
Sequential::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
    return *this;
}

Matrix
Sequential::forward(const Matrix &in, bool train)
{
    Matrix x = in;
    for (auto &layer : layers_)
        x = layer->forward(x, train);
    return x;
}

Matrix
Sequential::backward(const Matrix &grad_out)
{
    Matrix g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Matrix *>
Sequential::params()
{
    std::vector<Matrix *> out;
    for (auto &layer : layers_)
        for (Matrix *p : layer->params())
            out.push_back(p);
    return out;
}

std::vector<Matrix *>
Sequential::grads()
{
    std::vector<Matrix *> out;
    for (auto &layer : layers_)
        for (Matrix *g : layer->grads())
            out.push_back(g);
    return out;
}

void
Sequential::zeroGrads()
{
    for (auto &layer : layers_)
        layer->zeroGrads();
}

std::size_t
Sequential::numParameters()
{
    std::size_t total = 0;
    for (Matrix *p : params())
        total += p->size();
    return total;
}

std::vector<double>
SoftmaxCrossEntropy::probabilities(const Matrix &logits)
{
    panicIf(logits.cols() != 1, "softmax expects a column vector");
    std::vector<double> probs(logits.rows());
    float max_logit = logits(0, 0);
    for (std::size_t i = 1; i < logits.rows(); ++i)
        max_logit = std::max(max_logit, logits(i, 0));
    double sum = 0.0;
    for (std::size_t i = 0; i < logits.rows(); ++i) {
        probs[i] = std::exp(static_cast<double>(logits(i, 0) - max_logit));
        sum += probs[i];
    }
    for (double &p : probs)
        p /= sum;
    return probs;
}

double
SoftmaxCrossEntropy::loss(const Matrix &logits, Label truth)
{
    const auto probs = probabilities(logits);
    panicIf(truth < 0 || truth >= static_cast<Label>(probs.size()),
            "loss label out of range");
    return -std::log(std::max(probs[truth], 1e-12));
}

Matrix
SoftmaxCrossEntropy::gradient(const Matrix &logits, Label truth)
{
    const auto probs = probabilities(logits);
    Matrix grad(logits.rows(), 1);
    for (std::size_t i = 0; i < logits.rows(); ++i)
        grad(i, 0) = static_cast<float>(probs[i]);
    grad(truth, 0) -= 1.0f;
    return grad;
}

bool
allFinite(const std::vector<Matrix *> &tensors)
{
    for (const Matrix *t : tensors)
        for (std::size_t i = 0; i < t->size(); ++i)
            if (!std::isfinite(t->data()[i]))
                return false;
    return true;
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
{
}

bool
Adam::stepIfFinite(const std::vector<Matrix *> &params,
                   const std::vector<Matrix *> &grads, double scale)
{
    if (!allFinite(grads))
        return false;
    step(params, grads, scale);
    return true;
}

void
Adam::step(const std::vector<Matrix *> &params,
           const std::vector<Matrix *> &grads, double scale)
{
    panicIf(params.size() != grads.size(), "Adam params/grads mismatch");
    if (m_.empty()) {
        m_.resize(params.size());
        v_.resize(params.size());
        for (std::size_t i = 0; i < params.size(); ++i) {
            m_[i].assign(params[i]->size(), 0.0f);
            v_[i].assign(params[i]->size(), 0.0f);
        }
    }
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, t_);
    const double bc2 = 1.0 - std::pow(beta2_, t_);
    for (std::size_t i = 0; i < params.size(); ++i) {
        float *p = params[i]->data();
        const float *g = grads[i]->data();
        panicIf(params[i]->size() != grads[i]->size(),
                "Adam tensor size mismatch");
        for (std::size_t j = 0; j < params[i]->size(); ++j) {
            const double gj = static_cast<double>(g[j]) * scale;
            m_[i][j] = static_cast<float>(beta1_ * m_[i][j] +
                                          (1.0 - beta1_) * gj);
            v_[i][j] = static_cast<float>(beta2_ * v_[i][j] +
                                          (1.0 - beta2_) * gj * gj);
            const double mhat = m_[i][j] / bc1;
            const double vhat = v_[i][j] / bc2;
            p[j] -= static_cast<float>(lr_ * mhat /
                                       (std::sqrt(vhat) + eps_));
        }
    }
}

} // namespace bigfish::ml
