#include "ml/serialize.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace bigfish::ml {

namespace {

constexpr const char *kHeader = "# bigfish-weights v1";

} // namespace

void
saveWeights(std::ostream &out, Sequential &net)
{
    const auto params = net.params();
    out << kHeader << "\n" << params.size() << "\n";
    out.precision(9);
    for (const Matrix *p : params) {
        out << p->rows() << ' ' << p->cols();
        for (std::size_t i = 0; i < p->size(); ++i)
            out << ' ' << p->data()[i];
        out << "\n";
    }
}

void
saveWeights(const std::string &path, Sequential &net)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open " + path + " for writing");
    saveWeights(out, net);
    out.flush();
    fatalIf(!out, "write to " + path + " failed");
}

void
loadWeights(std::istream &in, Sequential &net)
{
    std::string header;
    fatalIf(!std::getline(in, header) || header != kHeader,
            "not a bigfish-weights v1 stream");
    std::size_t count = 0;
    fatalIf(!(in >> count), "weight stream missing tensor count");
    const auto params = net.params();
    fatalIf(count != params.size(),
            "weight file has " + std::to_string(count) +
                " tensors but the network has " +
                std::to_string(params.size()));
    for (Matrix *p : params) {
        std::size_t rows = 0, cols = 0;
        fatalIf(!(in >> rows >> cols), "weight stream truncated");
        fatalIf(rows != p->rows() || cols != p->cols(),
                "weight tensor shape mismatch: file " +
                    std::to_string(rows) + "x" + std::to_string(cols) +
                    ", network " + std::to_string(p->rows()) + "x" +
                    std::to_string(p->cols()));
        for (std::size_t i = 0; i < p->size(); ++i)
            fatalIf(!(in >> p->data()[i]), "weight stream truncated");
    }
}

void
loadWeights(const std::string &path, Sequential &net)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open " + path + " for reading");
    loadWeights(in, net);
}

} // namespace bigfish::ml
