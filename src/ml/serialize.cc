#include "ml/serialize.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "base/atomic_file.hh"
#include "base/logging.hh"

namespace bigfish::ml {

namespace {

constexpr const char *kHeader = "# bigfish-weights v1";

} // namespace

Status
saveWeights(std::ostream &out, Sequential &net)
{
    const auto params = net.params();
    out << kHeader << "\n" << params.size() << "\n";
    out.precision(9);
    for (const Matrix *p : params) {
        out << p->rows() << ' ' << p->cols();
        for (std::size_t i = 0; i < p->size(); ++i)
            out << ' ' << p->data()[i];
        out << "\n";
    }
    if (!out)
        return ioError("weight stream write failed");
    return Status::ok();
}

Status
saveWeights(const std::string &path, Sequential &net)
{
    // Serialize to memory, then commit atomically (tmp+fsync+rename):
    // a crash mid-save must never leave a torn checkpoint where a good
    // one used to be.
    std::ostringstream out;
    BF_RETURN_IF_ERROR(saveWeights(out, net));
    return atomicWriteFile(path, out.str());
}

void
saveWeightsOrDie(const std::string &path, Sequential &net)
{
    const Status status = saveWeights(path, net);
    fatalIf(!status.isOk(), status.toString());
}

void
saveWeightsOrDie(std::ostream &out, Sequential &net)
{
    const Status status = saveWeights(out, net);
    fatalIf(!status.isOk(), status.toString());
}

Status
loadWeights(std::istream &in, Sequential &net)
{
    std::string header;
    if (!std::getline(in, header) || header != kHeader)
        return parseError(std::string("not a bigfish-weights v1 stream: "
                                      "expected header \"") +
                          kHeader + "\", found \"" +
                          header.substr(0, 60) + "\"");
    std::size_t count = 0;
    if (!(in >> count))
        return parseError("weight stream missing tensor count");
    const auto params = net.params();
    if (count != params.size())
        return shapeMismatchError(
            "weight file has " + std::to_string(count) +
            " tensors but the network has " +
            std::to_string(params.size()));
    for (std::size_t t = 0; t < params.size(); ++t) {
        Matrix *p = params[t];
        std::size_t rows = 0, cols = 0;
        if (!(in >> rows >> cols))
            return parseError("weight stream truncated at tensor " +
                              std::to_string(t));
        if (rows != p->rows() || cols != p->cols())
            return shapeMismatchError(
                "weight tensor " + std::to_string(t) +
                " shape mismatch: file " + std::to_string(rows) + "x" +
                std::to_string(cols) + ", network " +
                std::to_string(p->rows()) + "x" +
                std::to_string(p->cols()));
        for (std::size_t i = 0; i < p->size(); ++i) {
            if (!(in >> p->data()[i]))
                return parseError("weight stream truncated inside tensor " +
                                  std::to_string(t));
            if (!std::isfinite(p->data()[i]))
                return dataError("non-finite weight in tensor " +
                                 std::to_string(t));
        }
    }
    return Status::ok();
}

Status
loadWeights(const std::string &path, Sequential &net)
{
    std::ifstream in(path);
    if (!in)
        return ioError("cannot open " + path + " for reading");
    return loadWeights(in, net);
}

void
loadWeightsOrDie(const std::string &path, Sequential &net)
{
    const Status status = loadWeights(path, net);
    fatalIf(!status.isOk(), status.toString());
}

void
loadWeightsOrDie(std::istream &in, Sequential &net)
{
    const Status status = loadWeights(in, net);
    fatalIf(!status.isOk(), status.toString());
}

} // namespace bigfish::ml
