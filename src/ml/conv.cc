#include "ml/conv.hh"

#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, Rng &rng)
    : inChannels_(in_channels), outChannels_(out_channels), kernel_(kernel),
      stride_(stride), w_(out_channels, in_channels * kernel),
      b_(out_channels, 1), gw_(out_channels, in_channels * kernel),
      gb_(out_channels, 1)
{
    fatalIf(kernel == 0 || stride == 0, "Conv1D kernel/stride must be > 0");
    w_.randomize(rng, std::sqrt(2.0 / static_cast<double>(
                                          in_channels * kernel)));
}

std::size_t
Conv1D::outLength(std::size_t in_t) const
{
    if (in_t < kernel_)
        return 1; // Degenerate inputs are treated as a single window.
    return (in_t - kernel_) / stride_ + 1;
}

Matrix
Conv1D::forward(const Matrix &in, bool)
{
    panicIf(in.rows() != inChannels_, "Conv1D channel mismatch");
    input_ = in;
    const std::size_t in_t = in.cols();
    const std::size_t out_t = outLength(in_t);
    Matrix out(outChannels_, out_t);
    for (std::size_t t = 0; t < out_t; ++t) {
        const std::size_t base = t * stride_;
        for (std::size_t o = 0; o < outChannels_; ++o) {
            float acc = b_(o, 0);
            for (std::size_t c = 0; c < inChannels_; ++c) {
                for (std::size_t k = 0; k < kernel_; ++k) {
                    const std::size_t src =
                        std::min(base + k, in_t - 1); // Clamp degenerate.
                    acc += w_(o, c * kernel_ + k) * in(c, src);
                }
            }
            out(o, t) = acc;
        }
    }
    return out;
}

Matrix
Conv1D::backward(const Matrix &grad_out)
{
    const std::size_t in_t = input_.cols();
    const std::size_t out_t = grad_out.cols();
    panicIf(grad_out.rows() != outChannels_,
            "Conv1D backward channel mismatch");
    Matrix grad_in(inChannels_, in_t);
    for (std::size_t t = 0; t < out_t; ++t) {
        const std::size_t base = t * stride_;
        for (std::size_t o = 0; o < outChannels_; ++o) {
            const float g = grad_out(o, t);
            if (g == 0.0f)
                continue;
            gb_(o, 0) += g;
            for (std::size_t c = 0; c < inChannels_; ++c) {
                for (std::size_t k = 0; k < kernel_; ++k) {
                    const std::size_t src = std::min(base + k, in_t - 1);
                    gw_(o, c * kernel_ + k) += g * input_(c, src);
                    grad_in(c, src) += g * w_(o, c * kernel_ + k);
                }
            }
        }
    }
    return grad_in;
}

} // namespace bigfish::ml
