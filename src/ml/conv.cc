#include "ml/conv.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, Rng &rng)
    : inChannels_(in_channels), outChannels_(out_channels), kernel_(kernel),
      stride_(stride), w_(out_channels, in_channels * kernel),
      b_(out_channels, 1), gw_(out_channels, in_channels * kernel),
      gb_(out_channels, 1)
{
    fatalIf(kernel == 0 || stride == 0, "Conv1D kernel/stride must be > 0");
    w_.randomize(rng, std::sqrt(2.0 / static_cast<double>(
                                          in_channels * kernel)));
}

std::size_t
Conv1D::outLength(std::size_t in_t) const
{
    if (in_t < kernel_)
        return 1; // Degenerate inputs are treated as a single window.
    return (in_t - kernel_) / stride_ + 1;
}

void
Conv1D::packPatches(const Matrix &in, std::size_t samples,
                    std::size_t out_t)
{
    const std::size_t all_t = in.cols();
    const std::size_t in_t = all_t / samples;
    patches_.resize(inChannels_ * kernel_, samples * out_t);
    float *__restrict p = patches_.data();
    const float *__restrict x = in.data();
    for (std::size_t c = 0; c < inChannels_; ++c) {
        const float *__restrict xrow = x + c * all_t;
        for (std::size_t k = 0; k < kernel_; ++k) {
            float *__restrict prow =
                p + (c * kernel_ + k) * samples * out_t;
            for (std::size_t s = 0; s < samples; ++s) {
                const float *__restrict xs = xrow + s * in_t;
                float *__restrict ps = prow + s * out_t;
                if (in_t >= kernel_) {
                    // Non-degenerate: (out_t-1)*stride + kernel - 1 <
                    // in_t by construction, so no clamp is needed and
                    // the strided gather vectorizes.
                    const float *__restrict xk = xs + k;
                    for (std::size_t t = 0; t < out_t; ++t)
                        ps[t] = xk[t * stride_];
                } else {
                    for (std::size_t t = 0; t < out_t; ++t) {
                        const std::size_t src = std::min(
                            t * stride_ + k, in_t - 1); // Clamp.
                        ps[t] = xs[src];
                    }
                }
            }
        }
    }
}

Matrix
Conv1D::forward(const Matrix &in, bool train)
{
    return forwardBatch(in, 1, train);
}

Matrix
Conv1D::forwardBatch(const Matrix &in, std::size_t samples, bool)
{
    panicIf(in.rows() != inChannels_, "Conv1D channel mismatch");
    panicIf(samples == 0 || in.cols() == 0 || in.cols() % samples != 0,
            "Conv1D batch column count mismatch");
    inCols_ = in.cols();
    samples_ = samples;
    const std::size_t out_t = outLength(in.cols() / samples);
    packPatches(in, samples, out_t);
    // out = W * patches + b: one fused GEMM instead of the naive
    // quadruple loop (and one GEMM for the whole minibatch when
    // samples > 1).
    return matmulBias(w_, patches_, b_);
}

Matrix
Conv1D::backward(const Matrix &grad_out)
{
    return backwardBatch(grad_out, 1);
}

Matrix
Conv1D::backwardBatch(const Matrix &grad_out, std::size_t samples)
{
    const std::size_t all_in_t = inCols_;
    const std::size_t out_cols = grad_out.cols();
    panicIf(grad_out.rows() != outChannels_,
            "Conv1D backward channel mismatch");
    panicIf(samples != samples_ || out_cols != patches_.cols(),
            "Conv1D backward called without matching forward");
    const std::size_t in_t = all_in_t / samples;
    const std::size_t out_t = out_cols / samples;

    // dW += dOut * patches^T, db += row-sums of dOut — both GEMM-shaped.
    accumulateMatmulTransB(gw_, grad_out, patches_);
    {
        const float *__restrict g = grad_out.data();
        float *__restrict gb = gb_.data();
        for (std::size_t o = 0; o < outChannels_; ++o) {
            float acc = 0.0f;
            const float *__restrict grow = g + o * out_cols;
            for (std::size_t t = 0; t < out_cols; ++t)
                acc += grow[t];
            gb[o] += acc;
        }
    }

    // dPatches = W^T * dOut, then scatter-add windows back onto the
    // (channels x time) input grid (the col2im step), sample by sample.
    const Matrix dpatches = matmulTransA(w_, grad_out);
    Matrix grad_in(inChannels_, all_in_t);
    float *__restrict gi = grad_in.data();
    const float *__restrict dp = dpatches.data();
    for (std::size_t c = 0; c < inChannels_; ++c) {
        float *__restrict girow = gi + c * all_in_t;
        for (std::size_t k = 0; k < kernel_; ++k) {
            const float *__restrict dprow =
                dp + (c * kernel_ + k) * out_cols;
            for (std::size_t s = 0; s < samples; ++s) {
                float *__restrict gs = girow + s * in_t;
                const float *__restrict ds = dprow + s * out_t;
                if (in_t >= kernel_) {
                    // Same bound as packPatches: in-range by
                    // construction, so the scatter needs no clamp.
                    float *__restrict gk = gs + k;
                    for (std::size_t t = 0; t < out_t; ++t)
                        gk[t * stride_] += ds[t];
                } else {
                    for (std::size_t t = 0; t < out_t; ++t) {
                        const std::size_t src =
                            std::min(t * stride_ + k, in_t - 1);
                        gs[src] += ds[t];
                    }
                }
            }
        }
    }
    return grad_in;
}

} // namespace bigfish::ml
