/**
 * @file
 * Model weight persistence.
 *
 * The attack's offline phase trains a classifier on the attacker's own
 * machine; the online phase only needs inference. Persisting weights
 * lets the two phases run in different processes, mirroring the paper's
 * train-once / attack-many workflow.
 *
 * The format is a small text container (version line, tensor count,
 * then one "rows cols v0 v1 ..." line per tensor). It deliberately
 * stores only the *parameter tensors* in layer order; the loader
 * validates that shapes match the freshly constructed architecture, so
 * a weight file can never be silently applied to the wrong model.
 */

#ifndef BF_ML_SERIALIZE_HH
#define BF_ML_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "ml/network.hh"

namespace bigfish::ml {

/** Writes every parameter tensor of @p net to the stream. */
void saveWeights(std::ostream &out, Sequential &net);

/** Writes weights to a file; fatal() on I/O failure. */
void saveWeights(const std::string &path, Sequential &net);

/**
 * Loads weights into an already-constructed network.
 * fatal() if the stream is malformed or any tensor shape differs from
 * the network's current parameters.
 */
void loadWeights(std::istream &in, Sequential &net);

/** Reads weights from a file; fatal() on I/O failure. */
void loadWeights(const std::string &path, Sequential &net);

} // namespace bigfish::ml

#endif // BF_ML_SERIALIZE_HH
