/**
 * @file
 * Model weight persistence.
 *
 * The attack's offline phase trains a classifier on the attacker's own
 * machine; the online phase only needs inference. Persisting weights
 * lets the two phases run in different processes, mirroring the paper's
 * train-once / attack-many workflow.
 *
 * The format is a small text container (version line, tensor count,
 * then one "rows cols v0 v1 ..." line per tensor). It deliberately
 * stores only the *parameter tensors* in layer order; the loader
 * validates that shapes match the freshly constructed architecture, so
 * a weight file can never be silently applied to the wrong model.
 *
 * Error contract: load/save return Status instead of terminating — a
 * truncated or mismatched checkpoint is an expected operating condition
 * for a long-running service. On any load error the destination network
 * should be considered partially written; reconstruct it before retrying.
 * The ...OrDie() wrappers keep example binaries one-liners.
 */

#ifndef BF_ML_SERIALIZE_HH
#define BF_ML_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "base/status.hh"
#include "ml/network.hh"

namespace bigfish::ml {

/** Writes every parameter tensor of @p net to the stream. */
[[nodiscard]] Status saveWeights(std::ostream &out, Sequential &net);

/** Writes weights to a file. */
[[nodiscard]] Status saveWeights(const std::string &path, Sequential &net);

/** saveWeights() that fatal()s on failure (binary boundaries only). */
void saveWeightsOrDie(const std::string &path, Sequential &net);
void saveWeightsOrDie(std::ostream &out, Sequential &net);

/**
 * Loads weights into an already-constructed network. Fails if the
 * stream is malformed or truncated, any tensor shape differs from the
 * network's current parameters, or a stored value is non-finite.
 */
[[nodiscard]] Status loadWeights(std::istream &in, Sequential &net);

/** Reads weights from a file. */
[[nodiscard]] Status loadWeights(const std::string &path, Sequential &net);

/** loadWeights() that fatal()s on failure (binary boundaries only). */
void loadWeightsOrDie(const std::string &path, Sequential &net);
void loadWeightsOrDie(std::istream &in, Sequential &net);

} // namespace bigfish::ml

#endif // BF_ML_SERIALIZE_HH
