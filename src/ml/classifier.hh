/**
 * @file
 * Classifiers: the paper's CNN-LSTM model plus two classical baselines.
 *
 * The CNN-LSTM follows the paper's footnote 2: two pairs of Conv1D
 * (stride 3, ReLU) + MaxPool1D(4), an LSTM, a dropout layer, and a dense
 * softmax classification layer, trained with Adam (lr = 0.001) and early
 * stopping on validation accuracy. Layer widths are configurable: the
 * paper's sizes (256 filters, 32 LSTM units, dropout 0.7) are available,
 * while the benchmark defaults use narrower layers so the full harness
 * runs on one laptop core in minutes.
 */

#ifndef BF_ML_CLASSIFIER_HH
#define BF_ML_CLASSIFIER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ml/dataset.hh"
#include "ml/network.hh"

namespace bigfish::ml {

/** Per-epoch training diagnostics. */
struct EpochStats
{
    double trainLoss = 0.0;   ///< Mean cross-entropy over the epoch.
    double valAccuracy = 0.0; ///< Validation accuracy after the epoch.
};

/** Common interface of all classifiers. */
class Classifier
{
  public:
    virtual ~Classifier() = default;

    /**
     * Trains on @p train, using @p validation for early stopping where
     * applicable.
     */
    virtual void fit(const Dataset &train, const Dataset &validation) = 0;

    /** Class scores (higher = more likely) for one sample. */
    virtual std::vector<double>
    predictScores(const std::vector<double> &x) const = 0;

    /** Argmax prediction. */
    Label predict(const std::vector<double> &x) const;

    /**
     * Serialized trained state, or "" when the model does not support
     * persistence (kNN memorizes its training set). The text restores
     * bit-identical predictions through loadModel() on a freshly
     * constructed model of the same architecture — which is what lets
     * the stage cache replay trained fold models across runs.
     */
    virtual std::string saveModel() const { return {}; }

    /** Restores state written by saveModel(); false on any mismatch. */
    virtual bool loadModel(const std::string &) { return false; }
};

/**
 * Factory producing a fresh untrained classifier (one per CV fold),
 * paired with the canonical hyperparameter text that content-addresses
 * the models it trains. Two factories with equal canon (and equal
 * data/seed inputs) must produce interchangeable trained models; a
 * factory with an empty canon opts its models out of caching (the
 * stage graph cannot tell its configurations apart).
 */
struct ClassifierFactory
{
    using MakeFn = std::function<std::unique_ptr<Classifier>(
        int num_classes, std::size_t feature_len, std::uint64_t seed)>;

    ClassifierFactory() = default;

    /** Wraps a callable; ad-hoc lambdas (tests, sweeps) get an empty
     *  canon and therefore uncached models. */
    template <typename Fn,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<Fn>, ClassifierFactory> &&
                  std::is_invocable_r_v<std::unique_ptr<Classifier>, Fn,
                                        int, std::size_t, std::uint64_t>>>
    ClassifierFactory(Fn fn, std::string canon_text = {})
        : make(std::move(fn)), canon(std::move(canon_text))
    {
    }

    std::unique_ptr<Classifier>
    operator()(int num_classes, std::size_t feature_len,
               std::uint64_t seed) const
    {
        return make(num_classes, feature_len, seed);
    }

    explicit operator bool() const { return static_cast<bool>(make); }

    MakeFn make;
    /** One-line-per-field hyperparameter text (stage fingerprints). */
    std::string canon;
};

/** Hyperparameters of the CNN-LSTM model. */
struct CnnLstmParams
{
    std::size_t convFilters = 32;  ///< Paper: 256.
    std::size_t convKernel = 8;
    std::size_t convStride = 3;    ///< Paper: 3.
    std::size_t poolSize = 4;      ///< Paper: 4.
    std::size_t lstmUnits = 32;    ///< Paper: 32.
    double dropout = 0.3;          ///< Paper: 0.7 (tuned for bench scale).
    double learningRate = 2e-3;    ///< Paper: 0.001 (tuned for bench scale).
    int maxEpochs = 60;
    int batchSize = 16;
    int patience = 10;             ///< Early-stopping patience (epochs).
    /**
     * Input channels. The fingerprinting pipeline feeds two channels
     * per time bucket (bucket mean + sub-bucket dip depth); plain
     * single-series inputs use 1. The feature vector handed to fit()/
     * predictScores() is the channel-major concatenation.
     */
    std::size_t inputChannels = 1;

    /** The paper's exact published hyperparameters. */
    static CnnLstmParams paperScale();

    /** Bench defaults for the two-channel trace featurization. */
    static CnnLstmParams traceDefaults();
};

/** The paper's deep classifier. */
class CnnLstmClassifier : public Classifier
{
  public:
    /**
     * @param num_classes Output classes.
     * @param feature_len Input trace length.
     * @param params Hyperparameters.
     * @param seed Weight-init / shuffling seed.
     */
    CnnLstmClassifier(int num_classes, std::size_t feature_len,
                      CnnLstmParams params, std::uint64_t seed);

    void fit(const Dataset &train, const Dataset &validation) override;
    std::vector<double>
    predictScores(const std::vector<double> &x) const override;
    std::string saveModel() const override;
    bool loadModel(const std::string &text) override;

    /** Accuracy on a dataset (used for validation-based early stopping). */
    double accuracy(const Dataset &data) const;

    /** The underlying network (for weight persistence / diagnostics). */
    Sequential &network() { return net_; }

    /** Per-epoch loss/validation-accuracy curve of the last fit(). */
    const std::vector<EpochStats> &history() const { return history_; }

    /**
     * Batches skipped during the last fit() because their loss or
     * gradients were non-finite (NaN-poisoned inputs, exploding
     * gradients). Training recovers by leaving the parameters untouched
     * for that batch instead of silently diverging.
     */
    std::size_t skippedBatches() const { return skippedBatches_; }

  private:
    /** Converts a feature vector into the network's (1 x T) input. */
    Matrix toInput(const std::vector<double> &x) const;

    /** Fraction of @p inputs predicted as the matching @p labels. */
    double accuracyOn(const std::vector<Matrix> &inputs,
                      const std::vector<Label> &labels) const;

    std::vector<EpochStats> history_;
    std::size_t skippedBatches_ = 0;

    int numClasses_;
    std::size_t featureLen_;
    CnnLstmParams params_;
    std::uint64_t seed_;
    mutable Sequential net_;
};

/** Multinomial logistic regression on the raw trace features. */
class SoftmaxRegressionClassifier : public Classifier
{
  public:
    SoftmaxRegressionClassifier(int num_classes, std::size_t feature_len,
                                std::uint64_t seed, double lr = 0.05,
                                int epochs = 120, double l2 = 1e-4);

    void fit(const Dataset &train, const Dataset &validation) override;
    std::vector<double>
    predictScores(const std::vector<double> &x) const override;
    std::string saveModel() const override;
    bool loadModel(const std::string &text) override;

  private:
    int numClasses_;
    std::size_t featureLen_;
    std::uint64_t seed_;
    double lr_;
    int epochs_;
    double l2_;
    std::vector<std::vector<double>> w_; ///< (classes x features+1).
};

/** Hyperparameters of the MLP baseline. */
struct MlpParams
{
    std::size_t hidden = 128;
    double dropout = 0.3;
    double learningRate = 1e-3;
    int maxEpochs = 60;
    int batchSize = 16;
    int patience = 8;
};

/**
 * A two-layer perceptron baseline: Dense -> ReLU -> Dropout -> Dense.
 * Sits between softmax regression and the CNN-LSTM in capacity; used by
 * the classifier ablation to show the temporal front-end matters.
 */
class MlpClassifier : public Classifier
{
  public:
    MlpClassifier(int num_classes, std::size_t feature_len,
                  MlpParams params, std::uint64_t seed);

    void fit(const Dataset &train, const Dataset &validation) override;
    std::vector<double>
    predictScores(const std::vector<double> &x) const override;
    std::string saveModel() const override;
    bool loadModel(const std::string &text) override;

    /** Accuracy on a dataset (early stopping / diagnostics). */
    double accuracy(const Dataset &data) const;

    /** The underlying network (for weight persistence). */
    Sequential &network() { return net_; }

    /** Batches skipped in the last fit() due to non-finite gradients. */
    std::size_t skippedBatches() const { return skippedBatches_; }

  private:
    Matrix toInput(const std::vector<double> &x) const;

    std::size_t skippedBatches_ = 0;
    int numClasses_;
    std::size_t featureLen_;
    MlpParams params_;
    std::uint64_t seed_;
    mutable Sequential net_;
};

/** k-nearest-neighbours on Euclidean trace distance. */
class KnnClassifier : public Classifier
{
  public:
    KnnClassifier(int num_classes, int k = 5);

    void fit(const Dataset &train, const Dataset &validation) override;
    std::vector<double>
    predictScores(const std::vector<double> &x) const override;

  private:
    int numClasses_;
    int k_;
    Dataset memory_;
};

/** Factory for the CNN-LSTM with given hyperparameters. */
ClassifierFactory cnnLstmFactory(CnnLstmParams params = {});

/** Factory for the softmax-regression baseline. */
ClassifierFactory softmaxRegressionFactory();

/** Factory for the MLP baseline. */
ClassifierFactory mlpFactory(MlpParams params = {});

/** Factory for the kNN baseline. */
ClassifierFactory knnFactory(int k = 5);

} // namespace bigfish::ml

#endif // BF_ML_CLASSIFIER_HH
