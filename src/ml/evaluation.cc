#include "ml/evaluation.hh"

#include "base/logging.hh"
#include "base/stopwatch.hh"
#include "base/thread_pool.hh"
#include "stats/descriptive.hh"

namespace bigfish::ml {

namespace {

/** Everything one fold produces; folds train concurrently, so each owns
 *  its buffers outright instead of sharing scratch space. */
struct FoldOutput
{
    std::vector<std::vector<double>> scores;
    std::vector<Label> truths;
    std::vector<Label> predictions;
    double fitSeconds = 0.0;
    double scoreSeconds = 0.0;
    double fitCpuSeconds = 0.0;
    double scoreCpuSeconds = 0.0;
};

/** Trains on one fold and returns test scores plus truth labels. */
FoldOutput
runFold(const ClassifierFactory &factory, const Dataset &data,
        const FoldSplit &split, std::uint64_t seed)
{
    FoldOutput out;
    auto model = factory(data.numClasses, data.featureLen(), seed);

    // Wall time per fold overlaps other folds' wall time; the
    // thread-CPU clock meters only this fold's work and drives the
    // train/eval apportionment in accumulateTimings().
    Stopwatch watch;
    ThreadCpuStopwatch cpu;
    model->fit(data.subset(split.train), data.subset(split.validation));
    out.fitSeconds = watch.lap();
    out.fitCpuSeconds = cpu.lap();

    out.scores.reserve(split.test.size());
    out.truths.reserve(split.test.size());
    out.predictions.reserve(split.test.size());
    for (std::size_t i : split.test) {
        out.scores.push_back(model->predictScores(data.features[i]));
        out.truths.push_back(data.labels[i]);
        out.predictions.push_back(model->predict(data.features[i]));
    }
    out.scoreSeconds = watch.lap();
    out.scoreCpuSeconds = cpu.lap();
    return out;
}

/**
 * Runs every fold (concurrently when the global pool has threads; each
 * fold's RNG stream depends only on its seed, so fold results are
 * identical at any thread count) and aggregates in fold order.
 */
std::vector<FoldOutput>
runFolds(const ClassifierFactory &factory, const Dataset &data,
         const std::vector<FoldSplit> &splits, std::uint64_t seed_base)
{
    return parallelMap(splits.size(), [&](std::size_t f) {
        return runFold(factory, data, splits[f], seed_base + f);
    });
}

/**
 * Fills every timing field of @p result from the per-fold stopwatches
 * plus the whole-CV wall/CPU measurements. The legacy fold-wall sums
 * stay as trainSeconds/evalSeconds; the honest totals (cv_wall,
 * cv_cpu) are apportioned between train and eval by the folds'
 * thread-CPU shares, which is well-defined at any fold parallelism.
 */
void
accumulateTimings(EvalResult &result, const std::vector<FoldOutput> &folds,
                  double cv_wall, double cv_cpu)
{
    double fit_cpu = 0.0, score_cpu = 0.0;
    for (const FoldOutput &fold : folds) {
        result.trainSeconds += fold.fitSeconds;
        result.evalSeconds += fold.scoreSeconds;
        fit_cpu += fold.fitCpuSeconds;
        score_cpu += fold.scoreCpuSeconds;
    }
    const double total_cpu = fit_cpu + score_cpu;
    const double fit_share = total_cpu > 0.0 ? fit_cpu / total_cpu : 1.0;
    result.trainCpuSeconds = cv_cpu * fit_share;
    result.evalCpuSeconds = cv_cpu - result.trainCpuSeconds;
    result.trainWallSeconds = cv_wall * fit_share;
    result.evalWallSeconds = cv_wall - result.trainWallSeconds;
}

} // namespace

EvalResult
crossValidate(const ClassifierFactory &factory, const Dataset &data,
              const EvalConfig &config)
{
    fatalIf(data.size() == 0, "cannot evaluate an empty dataset");
    const auto splits = kFoldSplits(data.size(), config.folds,
                                    config.valFraction, config.seed);
    EvalResult result;
    Stopwatch wall;
    ProcessCpuStopwatch cpu;
    const auto folds = runFolds(factory, data, splits, config.seed + 1000);
    accumulateTimings(result, folds, wall.seconds(), cpu.seconds());
    for (const FoldOutput &fold : folds) {
        result.foldTop1.push_back(
            stats::topKAccuracy(fold.scores, fold.truths, 1));
        result.foldTop5.push_back(
            stats::topKAccuracy(fold.scores, fold.truths, 5));
    }
    result.top1Mean = stats::mean(result.foldTop1);
    result.top1Std = stats::sampleStddev(result.foldTop1);
    result.top5Mean = stats::mean(result.foldTop5);
    result.top5Std = stats::sampleStddev(result.foldTop5);
    return result;
}

EvalResult
evaluateOpenWorld(const ClassifierFactory &factory, const Dataset &data,
                  Label nonSensitiveLabel, const EvalConfig &config)
{
    fatalIf(data.size() == 0, "cannot evaluate an empty dataset");
    const auto splits = kFoldSplits(data.size(), config.folds,
                                    config.valFraction, config.seed);
    EvalResult result;
    std::vector<double> sensitive, non_sensitive, combined;
    Stopwatch wall;
    ProcessCpuStopwatch cpu;
    const auto folds = runFolds(factory, data, splits, config.seed + 2000);
    accumulateTimings(result, folds, wall.seconds(), cpu.seconds());
    for (const FoldOutput &fold : folds) {
        result.foldTop1.push_back(
            stats::topKAccuracy(fold.scores, fold.truths, 1));
        result.foldTop5.push_back(
            stats::topKAccuracy(fold.scores, fold.truths, 5));
        const auto metrics = stats::openWorldMetrics(
            fold.truths, fold.predictions, nonSensitiveLabel);
        sensitive.push_back(metrics.sensitiveAccuracy);
        non_sensitive.push_back(metrics.nonSensitiveAccuracy);
        combined.push_back(metrics.combinedAccuracy);
    }
    result.top1Mean = stats::mean(result.foldTop1);
    result.top1Std = stats::sampleStddev(result.foldTop1);
    result.top5Mean = stats::mean(result.foldTop5);
    result.top5Std = stats::sampleStddev(result.foldTop5);
    result.openWorld.sensitiveAccuracy = stats::mean(sensitive);
    result.openWorld.nonSensitiveAccuracy = stats::mean(non_sensitive);
    result.openWorld.combinedAccuracy = stats::mean(combined);
    result.openWorldSensitiveStd = stats::sampleStddev(sensitive);
    result.openWorldCombinedStd = stats::sampleStddev(combined);
    return result;
}

} // namespace bigfish::ml
