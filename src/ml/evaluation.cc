#include "ml/evaluation.hh"

#include "base/logging.hh"
#include "stats/descriptive.hh"

namespace bigfish::ml {

namespace {

/** Trains on one fold and returns test scores plus truth labels. */
void
runFold(const ClassifierFactory &factory, const Dataset &data,
        const FoldSplit &split, std::uint64_t seed,
        std::vector<std::vector<double>> &scores, std::vector<Label> &truths,
        std::vector<Label> &predictions)
{
    auto model = factory(data.numClasses, data.featureLen(), seed);
    model->fit(data.subset(split.train), data.subset(split.validation));
    scores.clear();
    truths.clear();
    predictions.clear();
    for (std::size_t i : split.test) {
        scores.push_back(model->predictScores(data.features[i]));
        truths.push_back(data.labels[i]);
        predictions.push_back(model->predict(data.features[i]));
    }
}

} // namespace

EvalResult
crossValidate(const ClassifierFactory &factory, const Dataset &data,
              const EvalConfig &config)
{
    fatalIf(data.size() == 0, "cannot evaluate an empty dataset");
    const auto splits = kFoldSplits(data.size(), config.folds,
                                    config.valFraction, config.seed);
    EvalResult result;
    std::vector<std::vector<double>> scores;
    std::vector<Label> truths, predictions;
    for (std::size_t f = 0; f < splits.size(); ++f) {
        runFold(factory, data, splits[f], config.seed + 1000 + f, scores,
                truths, predictions);
        result.foldTop1.push_back(stats::topKAccuracy(scores, truths, 1));
        result.foldTop5.push_back(stats::topKAccuracy(scores, truths, 5));
    }
    result.top1Mean = stats::mean(result.foldTop1);
    result.top1Std = stats::sampleStddev(result.foldTop1);
    result.top5Mean = stats::mean(result.foldTop5);
    result.top5Std = stats::sampleStddev(result.foldTop5);
    return result;
}

EvalResult
evaluateOpenWorld(const ClassifierFactory &factory, const Dataset &data,
                  Label nonSensitiveLabel, const EvalConfig &config)
{
    fatalIf(data.size() == 0, "cannot evaluate an empty dataset");
    const auto splits = kFoldSplits(data.size(), config.folds,
                                    config.valFraction, config.seed);
    EvalResult result;
    std::vector<double> sensitive, non_sensitive, combined;
    std::vector<std::vector<double>> scores;
    std::vector<Label> truths, predictions;
    for (std::size_t f = 0; f < splits.size(); ++f) {
        runFold(factory, data, splits[f], config.seed + 2000 + f, scores,
                truths, predictions);
        result.foldTop1.push_back(stats::topKAccuracy(scores, truths, 1));
        result.foldTop5.push_back(stats::topKAccuracy(scores, truths, 5));
        const auto metrics =
            stats::openWorldMetrics(truths, predictions, nonSensitiveLabel);
        sensitive.push_back(metrics.sensitiveAccuracy);
        non_sensitive.push_back(metrics.nonSensitiveAccuracy);
        combined.push_back(metrics.combinedAccuracy);
    }
    result.top1Mean = stats::mean(result.foldTop1);
    result.top1Std = stats::sampleStddev(result.foldTop1);
    result.top5Mean = stats::mean(result.foldTop5);
    result.top5Std = stats::sampleStddev(result.foldTop5);
    result.openWorld.sensitiveAccuracy = stats::mean(sensitive);
    result.openWorld.nonSensitiveAccuracy = stats::mean(non_sensitive);
    result.openWorld.combinedAccuracy = stats::mean(combined);
    result.openWorldSensitiveStd = stats::sampleStddev(sensitive);
    result.openWorldCombinedStd = stats::sampleStddev(combined);
    return result;
}

} // namespace bigfish::ml
