#include "ml/evaluation.hh"

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "stats/descriptive.hh"

namespace bigfish::ml {

namespace {

/**
 * Runs every fold (concurrently when the global pool has threads; each
 * fold's RNG stream depends only on its seed, so fold results are
 * identical at any thread count) and gathers in fold order.
 */
std::vector<FoldScores>
runFolds(const ClassifierFactory &factory, const Dataset &data,
         const std::vector<FoldSplit> &splits, std::uint64_t seed_base)
{
    return parallelMap(splits.size(), [&](std::size_t f) {
        const auto model =
            trainFoldClassifier(factory, data, splits[f], seed_base + f);
        return scoreFold(*model, data, splits[f].test);
    });
}

} // namespace

std::unique_ptr<Classifier>
trainFoldClassifier(const ClassifierFactory &factory, const Dataset &data,
                    const FoldSplit &split, std::uint64_t seed)
{
    auto model = factory(data.numClasses, data.featureLen(), seed);
    model->fit(data.subset(split.train), data.subset(split.validation));
    return model;
}

FoldScores
scoreFold(const Classifier &model, const Dataset &data,
          const std::vector<std::size_t> &test)
{
    FoldScores out;
    out.scores.reserve(test.size());
    out.truths.reserve(test.size());
    out.predictions.reserve(test.size());
    for (std::size_t i : test) {
        out.scores.push_back(model.predictScores(data.features[i]));
        out.truths.push_back(data.labels[i]);
        out.predictions.push_back(model.predict(data.features[i]));
    }
    return out;
}

EvalResult
aggregateFolds(const std::vector<FoldScores> &folds, int topK)
{
    EvalResult result;
    result.topK = topK;
    for (const FoldScores &fold : folds) {
        result.foldTop1.push_back(
            stats::topKAccuracy(fold.scores, fold.truths, 1));
        result.foldTopK.push_back(
            stats::topKAccuracy(fold.scores, fold.truths, topK));
    }
    result.top1Mean = stats::mean(result.foldTop1);
    result.top1Std = stats::sampleStddev(result.foldTop1);
    result.topKMean = stats::mean(result.foldTopK);
    result.topKStd = stats::sampleStddev(result.foldTopK);
    return result;
}

EvalResult
aggregateFoldsOpenWorld(const std::vector<FoldScores> &folds,
                        Label nonSensitiveLabel, int topK)
{
    EvalResult result = aggregateFolds(folds, topK);
    std::vector<double> sensitive, non_sensitive, combined;
    for (const FoldScores &fold : folds) {
        const auto metrics = stats::openWorldMetrics(
            fold.truths, fold.predictions, nonSensitiveLabel);
        sensitive.push_back(metrics.sensitiveAccuracy);
        non_sensitive.push_back(metrics.nonSensitiveAccuracy);
        combined.push_back(metrics.combinedAccuracy);
    }
    result.openWorld.sensitiveAccuracy = stats::mean(sensitive);
    result.openWorld.nonSensitiveAccuracy = stats::mean(non_sensitive);
    result.openWorld.combinedAccuracy = stats::mean(combined);
    result.openWorldSensitiveStd = stats::sampleStddev(sensitive);
    result.openWorldCombinedStd = stats::sampleStddev(combined);
    return result;
}

EvalResult
crossValidate(const ClassifierFactory &factory, const Dataset &data,
              const EvalConfig &config)
{
    fatalIf(data.size() == 0, "cannot evaluate an empty dataset");
    const auto splits = kFoldSplits(data.size(), config.folds,
                                    config.valFraction, config.seed);
    const auto folds =
        runFolds(factory, data, splits,
                 config.seed + kClosedWorldFoldSeedBase);
    return aggregateFolds(folds, config.topK);
}

EvalResult
evaluateOpenWorld(const ClassifierFactory &factory, const Dataset &data,
                  Label nonSensitiveLabel, const EvalConfig &config)
{
    fatalIf(data.size() == 0, "cannot evaluate an empty dataset");
    const auto splits = kFoldSplits(data.size(), config.folds,
                                    config.valFraction, config.seed);
    const auto folds =
        runFolds(factory, data, splits,
                 config.seed + kOpenWorldFoldSeedBase);
    return aggregateFoldsOpenWorld(folds, nonSensitiveLabel, config.topK);
}

} // namespace bigfish::ml
