#include "ml/lstm.hh"

#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

namespace {

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng)
    : input_(input_size), hidden_(hidden_size),
      wx_(4 * hidden_size, input_size), wh_(4 * hidden_size, hidden_size),
      b_(4 * hidden_size, 1), gwx_(4 * hidden_size, input_size),
      gwh_(4 * hidden_size, hidden_size), gb_(4 * hidden_size, 1)
{
    const double scale =
        std::sqrt(1.0 / static_cast<double>(hidden_size + input_size));
    wx_.randomize(rng, scale);
    wh_.randomize(rng, scale);
    // Forget-gate bias starts positive so early training retains memory.
    for (std::size_t h = 0; h < hidden_; ++h)
        b_(hidden_ + h, 0) = 1.0f;
}

Matrix
Lstm::forward(const Matrix &in, bool)
{
    panicIf(in.rows() != input_, "Lstm input feature mismatch");
    inSeq_ = in;
    samples_ = 1;
    const std::size_t steps = in.cols();
    gates_.resize(steps);
    cells_.resize(steps);
    hiddens_.resize(steps);

    // Input-side pre-activations for every step in one fused GEMM:
    // ZX = Wx * X + b, so the sequential loop only pays the recurrent
    // product.
    const Matrix zx = matmulBias(wx_, in, b_);
    const float *__restrict zxd = zx.data();

    Matrix h(hidden_, 1);
    Matrix c(hidden_, 1);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix &z = gates_[t];
        z.resize(4 * hidden_, 1);
        // z = ZX[:, t] + Wh * h
        const Matrix zr = gemv(wh_, h);
        float *__restrict zd = z.data();
        const float *__restrict zrd = zr.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r)
            zd[r] = zxd[r * steps + t] + zrd[r];

        float *__restrict cd = c.data();
        float *__restrict hd = h.data();
        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float i_g = sigmoid(zd[hI]);
            const float f_g = sigmoid(zd[hidden_ + hI]);
            const float g_g = std::tanh(zd[2 * hidden_ + hI]);
            const float o_g = sigmoid(zd[3 * hidden_ + hI]);
            // Cache post-activation gate values for BPTT.
            zd[hI] = i_g;
            zd[hidden_ + hI] = f_g;
            zd[2 * hidden_ + hI] = g_g;
            zd[3 * hidden_ + hI] = o_g;
            const float c_new = f_g * cd[hI] + i_g * g_g;
            cd[hI] = c_new;
            hd[hI] = o_g * std::tanh(c_new);
        }
        cells_[t] = c;
        hiddens_[t] = h;
    }
    return h;
}

Matrix
Lstm::forwardBatch(const Matrix &in, std::size_t samples, bool)
{
    panicIf(in.rows() != input_, "Lstm input feature mismatch");
    panicIf(samples == 0 || in.cols() % samples != 0,
            "Lstm batch column count mismatch");
    inSeq_ = in;
    samples_ = samples;
    const std::size_t steps = in.cols() / samples;
    gates_.resize(steps);
    cells_.resize(steps);
    hiddens_.resize(steps);

    // Input-side pre-activations for the whole batch and every step in
    // one fused GEMM; the sequential loop only pays one (4H x H)x(H x B)
    // recurrent product per step instead of B matrix-vector products.
    const Matrix zx = matmulBias(wx_, in, b_);
    const float *__restrict zxd = zx.data();
    const std::size_t zx_cols = in.cols();

    Matrix h(hidden_, samples);
    Matrix c(hidden_, samples);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix &z = gates_[t];
        z.resize(4 * hidden_, samples);
        // z[:, s] = ZX[:, s*steps + t] + (Wh * h)[:, s]
        const Matrix zr = matmul(wh_, h);
        float *__restrict zd = z.data();
        const float *__restrict zrd = zr.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            const float *__restrict zxrow = zxd + r * zx_cols + t;
            float *__restrict zrow = zd + r * samples;
            const float *__restrict zrrow = zrd + r * samples;
            for (std::size_t s = 0; s < samples; ++s)
                zrow[s] = zxrow[s * steps] + zrrow[s];
        }

        float *__restrict cd = c.data();
        float *__restrict hd = h.data();
        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            float *__restrict zi = zd + hI * samples;
            float *__restrict zf = zd + (hidden_ + hI) * samples;
            float *__restrict zg = zd + (2 * hidden_ + hI) * samples;
            float *__restrict zo = zd + (3 * hidden_ + hI) * samples;
            float *__restrict crow = cd + hI * samples;
            float *__restrict hrow = hd + hI * samples;
            for (std::size_t s = 0; s < samples; ++s) {
                const float i_g = sigmoid(zi[s]);
                const float f_g = sigmoid(zf[s]);
                const float g_g = std::tanh(zg[s]);
                const float o_g = sigmoid(zo[s]);
                // Cache post-activation gate values for BPTT.
                zi[s] = i_g;
                zf[s] = f_g;
                zg[s] = g_g;
                zo[s] = o_g;
                const float c_new = f_g * crow[s] + i_g * g_g;
                crow[s] = c_new;
                hrow[s] = o_g * std::tanh(c_new);
            }
        }
        cells_[t] = c;
        hiddens_[t] = h;
    }
    return h;
}

Matrix
Lstm::backwardBatch(const Matrix &grad_out, std::size_t samples)
{
    panicIf(samples != samples_, "Lstm batched backward sample mismatch");
    const std::size_t steps = inSeq_.cols() / samples;
    panicIf(grad_out.rows() != hidden_ || grad_out.cols() != samples,
            "Lstm batched backward shape mismatch");

    // Pre-activation gate gradients for every (sample, step) column,
    // laid out to match inSeq_ so the parameter gradients are three
    // batched GEMMs over the whole minibatch.
    Matrix dzAll(4 * hidden_, samples * steps);
    // Column s*steps + t holds h_{t-1} of sample s (zeros for t = 0).
    Matrix hprev(hidden_, samples * steps);
    for (std::size_t t = 1; t < steps; ++t) {
        const Matrix &hp = hiddens_[t - 1];
        for (std::size_t k = 0; k < hidden_; ++k)
            for (std::size_t s = 0; s < samples; ++s)
                hprev(k, s * steps + t) = hp(k, s);
    }

    Matrix dh = grad_out;         // dLoss/dh_t, accumulated backwards.
    Matrix dc(hidden_, samples);  // dLoss/dc_t carried across steps.
    Matrix dz(4 * hidden_, samples);

    for (std::size_t ti = steps; ti-- > 0;) {
        const Matrix &z = gates_[ti];
        const Matrix &c = cells_[ti];
        const Matrix *c_prev = ti > 0 ? &cells_[ti - 1] : nullptr;
        const float *__restrict zd = z.data();
        const float *__restrict cdat = c.data();
        float *__restrict dhd = dh.data();
        float *__restrict dcd = dc.data();
        float *__restrict dzd = dz.data();

        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float *__restrict zi = zd + hI * samples;
            const float *__restrict zf = zd + (hidden_ + hI) * samples;
            const float *__restrict zg = zd + (2 * hidden_ + hI) * samples;
            const float *__restrict zo = zd + (3 * hidden_ + hI) * samples;
            const float *__restrict crow = cdat + hI * samples;
            const float *__restrict cprow =
                c_prev ? c_prev->data() + hI * samples : nullptr;
            float *__restrict dhrow = dhd + hI * samples;
            float *__restrict dcrow = dcd + hI * samples;
            float *__restrict dzi = dzd + hI * samples;
            float *__restrict dzf = dzd + (hidden_ + hI) * samples;
            float *__restrict dzg = dzd + (2 * hidden_ + hI) * samples;
            float *__restrict dzo = dzd + (3 * hidden_ + hI) * samples;
            for (std::size_t s = 0; s < samples; ++s) {
                const float i_g = zi[s];
                const float f_g = zf[s];
                const float g_g = zg[s];
                const float o_g = zo[s];
                const float tanh_c = std::tanh(crow[s]);
                const float dh_v = dhrow[s];

                const float do_v = dh_v * tanh_c;
                const float dc_v =
                    dcrow[s] + dh_v * o_g * (1.0f - tanh_c * tanh_c);

                const float di_v = dc_v * g_g;
                const float dg_v = dc_v * i_g;
                const float cp = cprow ? cprow[s] : 0.0f;
                const float df_v = dc_v * cp;

                dzi[s] = di_v * i_g * (1.0f - i_g);
                dzf[s] = df_v * f_g * (1.0f - f_g);
                dzg[s] = dg_v * (1.0f - g_g * g_g);
                dzo[s] = do_v * o_g * (1.0f - o_g);

                dcrow[s] = dc_v * f_g; // Carried to step t-1.
            }
        }

        float *__restrict dza = dzAll.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            const float *__restrict src = dzd + r * samples;
            float *__restrict dst = dza + r * samples * steps + ti;
            for (std::size_t s = 0; s < samples; ++s)
                dst[s * steps] = src[s];
        }

        // dLoss/dh_{t-1} via the recurrent weights: dh = Wh^T * dz.
        if (ti > 0)
            dh = matmulTransA(wh_, dz);
    }

    // Batched parameter gradients, one GEMM each for the whole batch:
    //   dWx += dZ * X^T,  dWh += dZ * Hprev^T,  db += rowsum(dZ),
    //   dX   = Wx^T * dZ.
    accumulateMatmulTransB(gwx_, dzAll, inSeq_);
    accumulateMatmulTransB(gwh_, dzAll, hprev);
    {
        const float *__restrict dzc = dzAll.data();
        float *__restrict gbd = gb_.data();
        const std::size_t cols = samples * steps;
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            float acc = 0.0f;
            const float *__restrict row = dzc + r * cols;
            for (std::size_t t = 0; t < cols; ++t)
                acc += row[t];
            gbd[r] += acc;
        }
    }
    return matmulTransA(wx_, dzAll);
}

Matrix
Lstm::backward(const Matrix &grad_out)
{
    const std::size_t steps = inSeq_.cols();
    panicIf(grad_out.rows() != hidden_ || grad_out.cols() != 1,
            "Lstm backward shape mismatch");

    // Pre-activation gate gradients for every step, accumulated during
    // the reverse sweep and turned into parameter gradients with three
    // batched GEMMs afterwards.
    Matrix dzAll(4 * hidden_, steps);
    // Column t holds h_{t-1} (zeros for t = 0).
    Matrix hprev(hidden_, steps);
    for (std::size_t t = 1; t < steps; ++t)
        for (std::size_t k = 0; k < hidden_; ++k)
            hprev(k, t) = hiddens_[t - 1](k, 0);

    Matrix dh = grad_out;       // dLoss/dh_t, accumulated backwards.
    Matrix dc(hidden_, 1);      // dLoss/dc_t carried across steps.
    std::vector<float> dz(4 * hidden_, 0.0f);

    for (std::size_t ti = steps; ti-- > 0;) {
        const Matrix &z = gates_[ti];
        const Matrix &c = cells_[ti];
        const Matrix *c_prev = ti > 0 ? &cells_[ti - 1] : nullptr;
        const float *__restrict zd = z.data();
        const float *__restrict cdat = c.data();
        float *__restrict dhd = dh.data();
        float *__restrict dcd = dc.data();

        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float i_g = zd[hI];
            const float f_g = zd[hidden_ + hI];
            const float g_g = zd[2 * hidden_ + hI];
            const float o_g = zd[3 * hidden_ + hI];
            const float tanh_c = std::tanh(cdat[hI]);
            const float dh_v = dhd[hI];

            const float do_v = dh_v * tanh_c;
            float dc_v = dcd[hI] + dh_v * o_g * (1.0f - tanh_c * tanh_c);

            const float di_v = dc_v * g_g;
            const float dg_v = dc_v * i_g;
            const float cp = c_prev ? c_prev->data()[hI] : 0.0f;
            const float df_v = dc_v * cp;

            dz[hI] = di_v * i_g * (1.0f - i_g);
            dz[hidden_ + hI] = df_v * f_g * (1.0f - f_g);
            dz[2 * hidden_ + hI] = dg_v * (1.0f - g_g * g_g);
            dz[3 * hidden_ + hI] = do_v * o_g * (1.0f - o_g);

            dcd[hI] = dc_v * f_g; // Carried to step t-1.
        }

        float *__restrict dzc = dzAll.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r)
            dzc[r * steps + ti] = dz[r];

        // dLoss/dh_{t-1} via the recurrent weights: dh = Wh^T * dz.
        if (ti > 0) {
            for (std::size_t k = 0; k < hidden_; ++k)
                dhd[k] = 0.0f;
            const float *__restrict whd = wh_.data();
            for (std::size_t r = 0; r < 4 * hidden_; ++r) {
                const float dz_v = dz[r];
                if (dz_v == 0.0f)
                    continue;
                const float *__restrict whrow = whd + r * hidden_;
                for (std::size_t k = 0; k < hidden_; ++k)
                    dhd[k] += dz_v * whrow[k];
            }
        }
    }

    // Batched parameter gradients (identical math to the per-step
    // accumulation, reordered into cache-friendly GEMMs):
    //   dWx += dZ * X^T,  dWh += dZ * Hprev^T,  db += rowsum(dZ),
    //   dX   = Wx^T * dZ.
    accumulateMatmulTransB(gwx_, dzAll, inSeq_);
    accumulateMatmulTransB(gwh_, dzAll, hprev);
    {
        const float *__restrict dzd = dzAll.data();
        float *__restrict gbd = gb_.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            float acc = 0.0f;
            const float *__restrict row = dzd + r * steps;
            for (std::size_t t = 0; t < steps; ++t)
                acc += row[t];
            gbd[r] += acc;
        }
    }
    return matmulTransA(wx_, dzAll);
}

} // namespace bigfish::ml
