#include "ml/lstm.hh"

#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

namespace {

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng)
    : input_(input_size), hidden_(hidden_size),
      wx_(4 * hidden_size, input_size), wh_(4 * hidden_size, hidden_size),
      b_(4 * hidden_size, 1), gwx_(4 * hidden_size, input_size),
      gwh_(4 * hidden_size, hidden_size), gb_(4 * hidden_size, 1)
{
    const double scale =
        std::sqrt(1.0 / static_cast<double>(hidden_size + input_size));
    wx_.randomize(rng, scale);
    wh_.randomize(rng, scale);
    // Forget-gate bias starts positive so early training retains memory.
    for (std::size_t h = 0; h < hidden_; ++h)
        b_(hidden_ + h, 0) = 1.0f;
}

Matrix
Lstm::forward(const Matrix &in, bool)
{
    panicIf(in.rows() != input_, "Lstm input feature mismatch");
    inSeq_ = in;
    const std::size_t steps = in.cols();
    gates_.assign(steps, Matrix(4 * hidden_, 1));
    cells_.assign(steps, Matrix(hidden_, 1));
    hiddens_.assign(steps, Matrix(hidden_, 1));

    Matrix h(hidden_, 1);
    Matrix c(hidden_, 1);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix &z = gates_[t];
        // z = Wx * x_t + Wh * h + b
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            float acc = b_(r, 0);
            for (std::size_t k = 0; k < input_; ++k)
                acc += wx_(r, k) * in(k, t);
            for (std::size_t k = 0; k < hidden_; ++k)
                acc += wh_(r, k) * h(k, 0);
            z(r, 0) = acc;
        }
        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float i_g = sigmoid(z(hI, 0));
            const float f_g = sigmoid(z(hidden_ + hI, 0));
            const float g_g = std::tanh(z(2 * hidden_ + hI, 0));
            const float o_g = sigmoid(z(3 * hidden_ + hI, 0));
            // Cache post-activation gate values for BPTT.
            z(hI, 0) = i_g;
            z(hidden_ + hI, 0) = f_g;
            z(2 * hidden_ + hI, 0) = g_g;
            z(3 * hidden_ + hI, 0) = o_g;
            const float c_new = f_g * c(hI, 0) + i_g * g_g;
            c(hI, 0) = c_new;
            h(hI, 0) = o_g * std::tanh(c_new);
        }
        cells_[t] = c;
        hiddens_[t] = h;
    }
    return h;
}

Matrix
Lstm::backward(const Matrix &grad_out)
{
    const std::size_t steps = inSeq_.cols();
    panicIf(grad_out.rows() != hidden_ || grad_out.cols() != 1,
            "Lstm backward shape mismatch");

    Matrix grad_in(input_, steps);
    Matrix dh = grad_out;       // dLoss/dh_t, accumulated backwards.
    Matrix dc(hidden_, 1);      // dLoss/dc_t carried across steps.
    Matrix dz(4 * hidden_, 1);  // Pre-activation gate gradients.

    for (std::size_t ti = steps; ti-- > 0;) {
        const Matrix &z = gates_[ti];
        const Matrix &c = cells_[ti];
        const Matrix *c_prev = ti > 0 ? &cells_[ti - 1] : nullptr;
        const Matrix *h_prev = ti > 0 ? &hiddens_[ti - 1] : nullptr;

        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float i_g = z(hI, 0);
            const float f_g = z(hidden_ + hI, 0);
            const float g_g = z(2 * hidden_ + hI, 0);
            const float o_g = z(3 * hidden_ + hI, 0);
            const float tanh_c = std::tanh(c(hI, 0));
            const float dh_v = dh(hI, 0);

            const float do_v = dh_v * tanh_c;
            float dc_v = dc(hI, 0) + dh_v * o_g * (1.0f - tanh_c * tanh_c);

            const float di_v = dc_v * g_g;
            const float dg_v = dc_v * i_g;
            const float cp = c_prev ? (*c_prev)(hI, 0) : 0.0f;
            const float df_v = dc_v * cp;

            dz(hI, 0) = di_v * i_g * (1.0f - i_g);
            dz(hidden_ + hI, 0) = df_v * f_g * (1.0f - f_g);
            dz(2 * hidden_ + hI, 0) = dg_v * (1.0f - g_g * g_g);
            dz(3 * hidden_ + hI, 0) = do_v * o_g * (1.0f - o_g);

            dc(hI, 0) = dc_v * f_g; // Carried to step t-1.
        }

        // Parameter gradients and input gradient for this step.
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            const float dz_v = dz(r, 0);
            if (dz_v == 0.0f)
                continue;
            gb_(r, 0) += dz_v;
            for (std::size_t k = 0; k < input_; ++k) {
                gwx_(r, k) += dz_v * inSeq_(k, ti);
                grad_in(k, ti) += dz_v * wx_(r, k);
            }
            if (h_prev)
                for (std::size_t k = 0; k < hidden_; ++k)
                    gwh_(r, k) += dz_v * (*h_prev)(k, 0);
        }

        // dLoss/dh_{t-1} via the recurrent weights.
        if (ti > 0) {
            for (std::size_t k = 0; k < hidden_; ++k) {
                float acc = 0.0f;
                for (std::size_t r = 0; r < 4 * hidden_; ++r)
                    acc += wh_(r, k) * dz(r, 0);
                dh(k, 0) = acc;
            }
        }
    }
    return grad_in;
}

} // namespace bigfish::ml
