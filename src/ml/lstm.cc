#include "ml/lstm.hh"

#include <cmath>

#include "base/logging.hh"
#include "ml/kernels.hh"

namespace bigfish::ml {

// Gate math runs through the fused SIMD kernels. The (4H x B) gate
// matrices store the four gate blocks as contiguous row bands (i, f,
// g, o), and the cell/hidden matrices use the same (H x B) layout, so
// one kernel call covers a whole step's gates regardless of batch
// shape.

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng)
    : input_(input_size), hidden_(hidden_size),
      wx_(4 * hidden_size, input_size), wh_(4 * hidden_size, hidden_size),
      b_(4 * hidden_size, 1), gwx_(4 * hidden_size, input_size),
      gwh_(4 * hidden_size, hidden_size), gb_(4 * hidden_size, 1)
{
    const double scale =
        std::sqrt(1.0 / static_cast<double>(hidden_size + input_size));
    wx_.randomize(rng, scale);
    wh_.randomize(rng, scale);
    // Forget-gate bias starts positive so early training retains memory.
    for (std::size_t h = 0; h < hidden_; ++h)
        b_(hidden_ + h, 0) = 1.0f;
}

Matrix
Lstm::forward(const Matrix &in, bool)
{
    panicIf(in.rows() != input_, "Lstm input feature mismatch");
    inSeq_ = in;
    samples_ = 1;
    const std::size_t steps = in.cols();
    gates_.resize(steps);
    cells_.resize(steps);
    hiddens_.resize(steps);

    // Input-side pre-activations for every step in one fused GEMM:
    // ZX = Wx * X + b, so the sequential loop only pays the recurrent
    // product.
    const Matrix zx = matmulBias(wx_, in, b_);
    const float *__restrict zxd = zx.data();

    Matrix h(hidden_, 1);
    Matrix c(hidden_, 1);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix &z = gates_[t];
        z.resize(4 * hidden_, 1);
        // z = ZX[:, t] + Wh * h
        const Matrix zr = gemv(wh_, h);
        float *__restrict zd = z.data();
        const float *__restrict zrd = zr.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r)
            zd[r] = zxd[r * steps + t] + zrd[r];

        // Fused gate activation + state update; caches post-activation
        // gate values in z for BPTT.
        kernels::lstmGatesForward(zd, zd + hidden_, zd + 2 * hidden_,
                                  zd + 3 * hidden_, c.data(), h.data(),
                                  hidden_);
        cells_[t] = c;
        hiddens_[t] = h;
    }
    return h;
}

Matrix
Lstm::forwardBatch(const Matrix &in, std::size_t samples, bool)
{
    panicIf(in.rows() != input_, "Lstm input feature mismatch");
    panicIf(samples == 0 || in.cols() % samples != 0,
            "Lstm batch column count mismatch");
    inSeq_ = in;
    samples_ = samples;
    const std::size_t steps = in.cols() / samples;
    gates_.resize(steps);
    cells_.resize(steps);
    hiddens_.resize(steps);

    // Input-side pre-activations for the whole batch and every step in
    // one fused GEMM; the sequential loop only pays one (4H x H)x(H x B)
    // recurrent product per step instead of B matrix-vector products.
    const Matrix zx = matmulBias(wx_, in, b_);
    const float *__restrict zxd = zx.data();
    const std::size_t zx_cols = in.cols();

    Matrix h(hidden_, samples);
    Matrix c(hidden_, samples);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix &z = gates_[t];
        z.resize(4 * hidden_, samples);
        // z[:, s] = ZX[:, s*steps + t] + (Wh * h)[:, s]
        const Matrix zr = matmul(wh_, h);
        float *__restrict zd = z.data();
        const float *__restrict zrd = zr.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            const float *__restrict zxrow = zxd + r * zx_cols + t;
            float *__restrict zrow = zd + r * samples;
            const float *__restrict zrrow = zrd + r * samples;
            for (std::size_t s = 0; s < samples; ++s)
                zrow[s] = zxrow[s * steps] + zrrow[s];
        }

        // The four gate bands of z and the full (H x B) state matrices
        // are each contiguous, so the whole step fuses into one kernel
        // call over hidden_ * samples lanes (caches post-activation
        // gate values in z for BPTT).
        const std::size_t lanes = hidden_ * samples;
        kernels::lstmGatesForward(zd, zd + lanes, zd + 2 * lanes,
                                  zd + 3 * lanes, c.data(), h.data(),
                                  lanes);
        cells_[t] = c;
        hiddens_[t] = h;
    }
    return h;
}

Matrix
Lstm::backwardBatch(const Matrix &grad_out, std::size_t samples)
{
    panicIf(samples != samples_, "Lstm batched backward sample mismatch");
    const std::size_t steps = inSeq_.cols() / samples;
    panicIf(grad_out.rows() != hidden_ || grad_out.cols() != samples,
            "Lstm batched backward shape mismatch");

    // Pre-activation gate gradients for every (sample, step) column,
    // laid out to match inSeq_ so the parameter gradients are three
    // batched GEMMs over the whole minibatch.
    Matrix dzAll(4 * hidden_, samples * steps);
    // Column s*steps + t holds h_{t-1} of sample s (zeros for t = 0).
    Matrix hprev(hidden_, samples * steps);
    for (std::size_t t = 1; t < steps; ++t) {
        const Matrix &hp = hiddens_[t - 1];
        for (std::size_t k = 0; k < hidden_; ++k)
            for (std::size_t s = 0; s < samples; ++s)
                hprev(k, s * steps + t) = hp(k, s);
    }

    Matrix dh = grad_out;         // dLoss/dh_t, accumulated backwards.
    Matrix dc(hidden_, samples);  // dLoss/dc_t carried across steps.
    Matrix dz(4 * hidden_, samples);

    for (std::size_t ti = steps; ti-- > 0;) {
        const Matrix &z = gates_[ti];
        const Matrix &c = cells_[ti];
        const Matrix *c_prev = ti > 0 ? &cells_[ti - 1] : nullptr;
        const float *__restrict zd = z.data();
        float *__restrict dzd = dz.data();

        // One fused gate-gradient kernel call over the whole step: the
        // gate bands of z/dz and the (H x B) state matrices are each
        // contiguous. Updates dc in place (carried to step t-1).
        const std::size_t lanes = hidden_ * samples;
        kernels::lstmGatesBackward(
            zd, zd + lanes, zd + 2 * lanes, zd + 3 * lanes, c.data(),
            c_prev != nullptr ? c_prev->data() : nullptr, dh.data(),
            dc.data(), dzd, dzd + lanes, dzd + 2 * lanes,
            dzd + 3 * lanes, lanes);

        float *__restrict dza = dzAll.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            const float *__restrict src = dzd + r * samples;
            float *__restrict dst = dza + r * samples * steps + ti;
            for (std::size_t s = 0; s < samples; ++s)
                dst[s * steps] = src[s];
        }

        // dLoss/dh_{t-1} via the recurrent weights: dh = Wh^T * dz.
        if (ti > 0)
            dh = matmulTransA(wh_, dz);
    }

    // Batched parameter gradients, one GEMM each for the whole batch:
    //   dWx += dZ * X^T,  dWh += dZ * Hprev^T,  db += rowsum(dZ),
    //   dX   = Wx^T * dZ.
    accumulateMatmulTransB(gwx_, dzAll, inSeq_);
    accumulateMatmulTransB(gwh_, dzAll, hprev);
    {
        const float *__restrict dzc = dzAll.data();
        float *__restrict gbd = gb_.data();
        const std::size_t cols = samples * steps;
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            float acc = 0.0f;
            const float *__restrict row = dzc + r * cols;
            for (std::size_t t = 0; t < cols; ++t)
                acc += row[t];
            gbd[r] += acc;
        }
    }
    return matmulTransA(wx_, dzAll);
}

Matrix
Lstm::backward(const Matrix &grad_out)
{
    const std::size_t steps = inSeq_.cols();
    panicIf(grad_out.rows() != hidden_ || grad_out.cols() != 1,
            "Lstm backward shape mismatch");

    // Pre-activation gate gradients for every step, accumulated during
    // the reverse sweep and turned into parameter gradients with three
    // batched GEMMs afterwards.
    Matrix dzAll(4 * hidden_, steps);
    // Column t holds h_{t-1} (zeros for t = 0).
    Matrix hprev(hidden_, steps);
    for (std::size_t t = 1; t < steps; ++t)
        for (std::size_t k = 0; k < hidden_; ++k)
            hprev(k, t) = hiddens_[t - 1](k, 0);

    Matrix dh = grad_out;       // dLoss/dh_t, accumulated backwards.
    Matrix dc(hidden_, 1);      // dLoss/dc_t carried across steps.
    std::vector<float> dz(4 * hidden_, 0.0f);

    for (std::size_t ti = steps; ti-- > 0;) {
        const Matrix &z = gates_[ti];
        const Matrix &c = cells_[ti];
        const Matrix *c_prev = ti > 0 ? &cells_[ti - 1] : nullptr;
        const float *__restrict zd = z.data();
        float *__restrict dhd = dh.data();

        // Fused gate-gradient kernel over the step's hidden units;
        // updates dc in place (carried to step t-1).
        kernels::lstmGatesBackward(
            zd, zd + hidden_, zd + 2 * hidden_, zd + 3 * hidden_,
            c.data(), c_prev != nullptr ? c_prev->data() : nullptr,
            dhd, dc.data(), dz.data(), dz.data() + hidden_,
            dz.data() + 2 * hidden_, dz.data() + 3 * hidden_, hidden_);

        float *__restrict dzc = dzAll.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r)
            dzc[r * steps + ti] = dz[r];

        // dLoss/dh_{t-1} via the recurrent weights: dh = Wh^T * dz.
        if (ti > 0) {
            for (std::size_t k = 0; k < hidden_; ++k)
                dhd[k] = 0.0f;
            const float *__restrict whd = wh_.data();
            for (std::size_t r = 0; r < 4 * hidden_; ++r) {
                const float dz_v = dz[r];
                if (dz_v == 0.0f)
                    continue;
                const float *__restrict whrow = whd + r * hidden_;
                for (std::size_t k = 0; k < hidden_; ++k)
                    dhd[k] += dz_v * whrow[k];
            }
        }
    }

    // Batched parameter gradients (identical math to the per-step
    // accumulation, reordered into cache-friendly GEMMs):
    //   dWx += dZ * X^T,  dWh += dZ * Hprev^T,  db += rowsum(dZ),
    //   dX   = Wx^T * dZ.
    accumulateMatmulTransB(gwx_, dzAll, inSeq_);
    accumulateMatmulTransB(gwh_, dzAll, hprev);
    {
        const float *__restrict dzd = dzAll.data();
        float *__restrict gbd = gb_.data();
        for (std::size_t r = 0; r < 4 * hidden_; ++r) {
            float acc = 0.0f;
            const float *__restrict row = dzd + r * steps;
            for (std::size_t t = 0; t < steps; ++t)
                acc += row[t];
            gbd[r] += acc;
        }
    }
    return matmulTransA(wx_, dzAll);
}

} // namespace bigfish::ml
