/**
 * @file
 * Gated Recurrent Unit layer — an alternative recurrent backbone to the
 * paper's LSTM (used by the classifier ablations; later work in this
 * literature frequently swaps LSTM for GRU at equal accuracy and lower
 * cost: 3 gates instead of 4 and no separate cell state).
 *
 * Input is a (features x time) matrix; output is the final hidden state
 * (hidden x 1). Backward implements full BPTT and is verified by
 * finite differences in the test suite.
 */

#ifndef BF_ML_GRU_HH
#define BF_ML_GRU_HH

#include "ml/layer.hh"

namespace bigfish::ml {

/** Single-layer GRU returning its final hidden state. */
class Gru : public Layer
{
  public:
    /**
     * @param input_size Features per timestep.
     * @param hidden_size Number of units.
     * @param rng Weight initialization stream.
     */
    Gru(std::size_t input_size, std::size_t hidden_size, Rng &rng);

    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    std::vector<Matrix *> params() override { return {&wx_, &wh_, &b_}; }
    std::vector<Matrix *> grads() override { return {&gwx_, &gwh_, &gb_}; }
    std::string name() const override { return "gru"; }

    std::size_t hiddenSize() const { return hidden_; }

  private:
    std::size_t input_, hidden_;
    /** Gate weights stacked [r; z; n]: (3H x input), (3H x H), (3H x 1). */
    Matrix wx_, wh_, b_;
    Matrix gwx_, gwh_, gb_;

    // Per-timestep caches for BPTT.
    Matrix inSeq_;
    std::vector<Matrix> gates_;   ///< Post-activation r, z, n per step.
    std::vector<Matrix> hiddens_; ///< Hidden states per step.
    std::vector<Matrix> hPre_;    ///< Wh * h_{t-1} rows for the n gate.
};

} // namespace bigfish::ml

#endif // BF_ML_GRU_HH
