#include "ml/gru.hh"

#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

namespace {

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

Gru::Gru(std::size_t input_size, std::size_t hidden_size, Rng &rng)
    : input_(input_size), hidden_(hidden_size),
      wx_(3 * hidden_size, input_size), wh_(3 * hidden_size, hidden_size),
      b_(3 * hidden_size, 1), gwx_(3 * hidden_size, input_size),
      gwh_(3 * hidden_size, hidden_size), gb_(3 * hidden_size, 1)
{
    const double scale =
        std::sqrt(1.0 / static_cast<double>(hidden_size + input_size));
    wx_.randomize(rng, scale);
    wh_.randomize(rng, scale);
}

Matrix
Gru::forward(const Matrix &in, bool)
{
    panicIf(in.rows() != input_, "Gru input feature mismatch");
    inSeq_ = in;
    const std::size_t steps = in.cols();
    gates_.assign(steps, Matrix(3 * hidden_, 1));
    hiddens_.assign(steps, Matrix(hidden_, 1));
    hPre_.assign(steps, Matrix(hidden_, 1));

    Matrix h(hidden_, 1);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix &g = gates_[t];
        Matrix &hcand = hPre_[t];
        // Pre-activations: r and z rows get Wx x + Wh h + b directly;
        // the candidate's recurrent product is cached separately so the
        // reset gate can modulate it.
        for (std::size_t row = 0; row < 3 * hidden_; ++row) {
            float acc = b_(row, 0);
            for (std::size_t k = 0; k < input_; ++k)
                acc += wx_(row, k) * in(k, t);
            if (row < 2 * hidden_) {
                for (std::size_t k = 0; k < hidden_; ++k)
                    acc += wh_(row, k) * h(k, 0);
            }
            g(row, 0) = acc;
        }
        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            float rec = 0.0f;
            for (std::size_t k = 0; k < hidden_; ++k)
                rec += wh_(2 * hidden_ + hI, k) * h(k, 0);
            hcand(hI, 0) = rec;
        }
        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float r = sigmoid(g(hI, 0));
            const float z = sigmoid(g(hidden_ + hI, 0));
            const float n =
                std::tanh(g(2 * hidden_ + hI, 0) + r * hcand(hI, 0));
            g(hI, 0) = r;
            g(hidden_ + hI, 0) = z;
            g(2 * hidden_ + hI, 0) = n;
            h(hI, 0) = (1.0f - z) * n + z * h(hI, 0);
        }
        hiddens_[t] = h;
    }
    return h;
}

Matrix
Gru::backward(const Matrix &grad_out)
{
    const std::size_t steps = inSeq_.cols();
    panicIf(grad_out.rows() != hidden_ || grad_out.cols() != 1,
            "Gru backward shape mismatch");

    Matrix grad_in(input_, steps);
    Matrix dh = grad_out;
    Matrix dpre(3 * hidden_, 1);

    for (std::size_t ti = steps; ti-- > 0;) {
        const Matrix &g = gates_[ti];
        const Matrix &hcand = hPre_[ti];
        const Matrix *h_prev = ti > 0 ? &hiddens_[ti - 1] : nullptr;

        Matrix dh_prev(hidden_, 1);
        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float r = g(hI, 0);
            const float z = g(hidden_ + hI, 0);
            const float n = g(2 * hidden_ + hI, 0);
            const float hp = h_prev ? (*h_prev)(hI, 0) : 0.0f;
            const float dh_v = dh(hI, 0);

            const float dz = dh_v * (hp - n);
            const float dn = dh_v * (1.0f - z);
            dh_prev(hI, 0) += dh_v * z;

            const float dn_pre = dn * (1.0f - n * n);
            const float dr = dn_pre * hcand(hI, 0);
            // d(hcand) = dn_pre * r, handled via gwh/n rows below.
            dpre(hI, 0) = dr * r * (1.0f - r);
            dpre(hidden_ + hI, 0) = dz * z * (1.0f - z);
            dpre(2 * hidden_ + hI, 0) = dn_pre;
        }

        for (std::size_t row = 0; row < 3 * hidden_; ++row) {
            const float d = dpre(row, 0);
            if (d == 0.0f)
                continue;
            gb_(row, 0) += d;
            for (std::size_t k = 0; k < input_; ++k) {
                gwx_(row, k) += d * inSeq_(k, ti);
                grad_in(k, ti) += d * wx_(row, k);
            }
        }
        if (h_prev) {
            // r and z recurrent weights see h_prev directly; the n rows
            // see it through the reset gate.
            for (std::size_t row = 0; row < 2 * hidden_; ++row) {
                const float d = dpre(row, 0);
                if (d == 0.0f)
                    continue;
                for (std::size_t k = 0; k < hidden_; ++k) {
                    gwh_(row, k) += d * (*h_prev)(k, 0);
                    dh_prev(k, 0) += d * wh_(row, k);
                }
            }
            for (std::size_t hI = 0; hI < hidden_; ++hI) {
                const float dhcand =
                    dpre(2 * hidden_ + hI, 0) * g(hI, 0);
                if (dhcand == 0.0f)
                    continue;
                for (std::size_t k = 0; k < hidden_; ++k) {
                    gwh_(2 * hidden_ + hI, k) += dhcand * (*h_prev)(k, 0);
                    dh_prev(k, 0) += dhcand * wh_(2 * hidden_ + hI, k);
                }
            }
        }
        dh = dh_prev;
    }
    return grad_in;
}

} // namespace bigfish::ml
