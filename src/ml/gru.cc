#include "ml/gru.hh"

#include <cmath>

#include "base/logging.hh"
#include "ml/kernels.hh"

namespace bigfish::ml {

// Gate activations use the kernel layer's scalar transcendentals
// (kernels::sigmoidScalar / tanhScalar): the gate reads here are
// strided (zx is laid out step-major), so the win is not
// vectorization but determinism — the polynomial approximations are
// Tag-independent and match the LSTM's vector lanes bit for bit,
// keeping artifacts invariant under BF_SIMD.

Gru::Gru(std::size_t input_size, std::size_t hidden_size, Rng &rng)
    : input_(input_size), hidden_(hidden_size),
      wx_(3 * hidden_size, input_size), wh_(3 * hidden_size, hidden_size),
      b_(3 * hidden_size, 1), gwx_(3 * hidden_size, input_size),
      gwh_(3 * hidden_size, hidden_size), gb_(3 * hidden_size, 1)
{
    const double scale =
        std::sqrt(1.0 / static_cast<double>(hidden_size + input_size));
    wx_.randomize(rng, scale);
    wh_.randomize(rng, scale);
}

Matrix
Gru::forward(const Matrix &in, bool)
{
    panicIf(in.rows() != input_, "Gru input feature mismatch");
    inSeq_ = in;
    const std::size_t steps = in.cols();
    gates_.resize(steps);
    hiddens_.resize(steps);
    hPre_.resize(steps);

    // Input-side pre-activations for every step in one fused GEMM; the
    // sequential loop then only pays the recurrent product per step.
    const Matrix zx = matmulBias(wx_, in, b_);
    const float *__restrict zxd = zx.data();

    Matrix h(hidden_, 1);
    for (std::size_t t = 0; t < steps; ++t) {
        Matrix &g = gates_[t];
        Matrix &hcand = hPre_[t];
        g.resize(3 * hidden_, 1);
        hcand.resize(hidden_, 1);

        // whh = Wh * h covers all three gate blocks; the candidate's
        // recurrent rows are cached separately so the reset gate can
        // modulate them.
        const Matrix whh = gemv(wh_, h);
        const float *__restrict whhd = whh.data();
        float *__restrict gd = g.data();
        float *__restrict hcd = hcand.data();
        float *__restrict hd = h.data();
        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float r =
                kernels::sigmoidScalar(zxd[hI * steps + t] + whhd[hI]);
            const float z =
                kernels::sigmoidScalar(zxd[(hidden_ + hI) * steps + t] +
                                       whhd[hidden_ + hI]);
            const float rec = whhd[2 * hidden_ + hI];
            const float n = kernels::tanhScalar(
                zxd[(2 * hidden_ + hI) * steps + t] + r * rec);
            // Cache post-activation gate values (and the raw candidate
            // recurrent product) for BPTT.
            gd[hI] = r;
            gd[hidden_ + hI] = z;
            gd[2 * hidden_ + hI] = n;
            hcd[hI] = rec;
            hd[hI] = (1.0f - z) * n + z * hd[hI];
        }
        hiddens_[t] = h;
    }
    return h;
}

Matrix
Gru::backward(const Matrix &grad_out)
{
    const std::size_t steps = inSeq_.cols();
    panicIf(grad_out.rows() != hidden_ || grad_out.cols() != 1,
            "Gru backward shape mismatch");

    // dPre holds pre-activation gate gradients [dr; dz; dn] per step;
    // dRec holds what each step's recurrent product receives: the r and z
    // rows verbatim plus d(hcand) = dn * r for the candidate rows. The
    // parameter gradients then batch into three GEMMs after the sweep.
    Matrix dpreAll(3 * hidden_, steps);
    Matrix drecAll(3 * hidden_, steps);
    // Column t holds h_{t-1} (zeros for t = 0).
    Matrix hprev(hidden_, steps);
    for (std::size_t t = 1; t < steps; ++t)
        for (std::size_t k = 0; k < hidden_; ++k)
            hprev(k, t) = hiddens_[t - 1](k, 0);

    Matrix dh = grad_out;
    std::vector<float> dpre(3 * hidden_, 0.0f);
    std::vector<float> drec(3 * hidden_, 0.0f);

    for (std::size_t ti = steps; ti-- > 0;) {
        const Matrix &g = gates_[ti];
        const Matrix &hcand = hPre_[ti];
        const float *__restrict gd = g.data();
        const float *__restrict hcd = hcand.data();
        const float *__restrict hpd = hprev.data();
        float *__restrict dhd = dh.data();

        for (std::size_t hI = 0; hI < hidden_; ++hI) {
            const float r = gd[hI];
            const float z = gd[hidden_ + hI];
            const float n = gd[2 * hidden_ + hI];
            const float hp = hpd[hI * steps + ti];
            const float dh_v = dhd[hI];

            const float dz = dh_v * (hp - n);
            const float dn = dh_v * (1.0f - z);
            dhd[hI] = dh_v * z; // Direct carry; recurrent part added below.

            const float dn_pre = dn * (1.0f - n * n);
            const float dr = dn_pre * hcd[hI];
            dpre[hI] = dr * r * (1.0f - r);
            dpre[hidden_ + hI] = dz * z * (1.0f - z);
            dpre[2 * hidden_ + hI] = dn_pre;
            drec[hI] = dpre[hI];
            drec[hidden_ + hI] = dpre[hidden_ + hI];
            drec[2 * hidden_ + hI] = dn_pre * r;
        }

        float *__restrict dpc = dpreAll.data();
        float *__restrict drc = drecAll.data();
        for (std::size_t r = 0; r < 3 * hidden_; ++r) {
            dpc[r * steps + ti] = dpre[r];
            drc[r * steps + ti] = drec[r];
        }

        // dLoss/dh_{t-1} through the recurrent weights: dh += Wh^T * drec.
        if (ti > 0) {
            const float *__restrict whd = wh_.data();
            for (std::size_t r = 0; r < 3 * hidden_; ++r) {
                const float d = drec[r];
                if (d == 0.0f)
                    continue;
                const float *__restrict whrow = whd + r * hidden_;
                for (std::size_t k = 0; k < hidden_; ++k)
                    dhd[k] += d * whrow[k];
            }
        }
    }

    // Batched parameter gradients (same math as per-step accumulation):
    //   dWx += dPre * X^T,  dWh += dRec * Hprev^T,  db += rowsum(dPre),
    //   dX   = Wx^T * dPre.
    accumulateMatmulTransB(gwx_, dpreAll, inSeq_);
    accumulateMatmulTransB(gwh_, drecAll, hprev);
    {
        const float *__restrict dpd = dpreAll.data();
        float *__restrict gbd = gb_.data();
        for (std::size_t r = 0; r < 3 * hidden_; ++r) {
            float acc = 0.0f;
            const float *__restrict row = dpd + r * steps;
            for (std::size_t t = 0; t < steps; ++t)
                acc += row[t];
            gbd[r] += acc;
        }
    }
    return matmulTransA(wx_, dpreAll);
}

} // namespace bigfish::ml
