#include "ml/dataset.hh"

#include <algorithm>
#include <numeric>

#include "base/logging.hh"

namespace bigfish::ml {

void
Dataset::add(std::vector<double> x, Label y)
{
    panicIf(!features.empty() && x.size() != featureLen(),
            "Dataset feature length mismatch");
    features.push_back(std::move(x));
    labels.push_back(y);
    numClasses = std::max(numClasses, y + 1);
}

Dataset
Dataset::subset(const std::vector<std::size_t> &indices) const
{
    Dataset out;
    out.numClasses = numClasses;
    out.features.reserve(indices.size());
    out.labels.reserve(indices.size());
    for (std::size_t i : indices) {
        panicIf(i >= size(), "Dataset subset index out of range");
        out.features.push_back(features[i]);
        out.labels.push_back(labels[i]);
    }
    return out;
}

std::vector<FoldSplit>
kFoldSplits(std::size_t n, int folds, double valFraction, std::uint64_t seed)
{
    fatalIf(folds < 2, "k-fold needs at least 2 folds");
    fatalIf(n < static_cast<std::size_t>(folds),
            "k-fold needs at least one sample per fold");

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed);
    std::shuffle(order.begin(), order.end(), rng.engine());

    std::vector<FoldSplit> splits(folds);
    for (int f = 0; f < folds; ++f) {
        const std::size_t lo = n * f / folds;
        const std::size_t hi = n * (f + 1) / folds;
        FoldSplit &split = splits[f];
        split.test.reserve(hi - lo);
        std::vector<std::size_t> rest;
        rest.reserve(n - (hi - lo));
        for (std::size_t i = 0; i < n; ++i) {
            if (i >= lo && i < hi)
                split.test.push_back(order[i]);
            else
                rest.push_back(order[i]);
        }
        const std::size_t val_count = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(rest.size()) * valFraction));
        split.validation.reserve(val_count);
        split.train.reserve(rest.size() - val_count);
        for (std::size_t i = 0; i < rest.size(); ++i) {
            if (i < val_count)
                split.validation.push_back(rest[i]);
            else
                split.train.push_back(rest[i]);
        }
    }
    return splits;
}

} // namespace bigfish::ml
