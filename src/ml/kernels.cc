/**
 * @file
 * The three ISA paths behind ml/kernels.hh.
 *
 * Every public kernel dispatches on bf::simd::active() to one of three
 * implementations (AVX2 / SSE2 / portable scalar) that are bit-identical
 * by construction — see the determinism contract in kernels.hh and
 * DESIGN.md §10. The rules this file lives by:
 *
 *  - Reductions hold a fixed 8-lane virtual accumulator. AVX2 keeps it
 *    in one __m256; SSE2 keeps lanes 0-3 / 4-7 in two __m128; the
 *    scalar path keeps float acc[8]. All three funnel through the one
 *    canonical combine tree (simd::hsum128Pair) and add the n%8 tail
 *    serially afterwards.
 *  - Elementwise math uses one fixed expression tree per element, only
 *    IEEE-exact operations (+ - * / sqrt min max), and never a fused
 *    multiply-add: no FMA intrinsics appear below, and this TU builds
 *    with -ffp-contract=off so the compiler cannot introduce one.
 *  - exp/sigmoid/tanh are Cephes-derived polynomials whose scalar
 *    spelling performs exactly the operations the vector paths perform
 *    lane-wise (including min/max NaN semantics and nearest-even
 *    integer rounding), so a tail element equals its vector lane.
 */

#include "ml/kernels.hh"

#include <cmath>
#include <cstdint>
#include <cstring>

#include "base/simd.hh"

namespace bigfish::ml::kernels {

namespace {

inline std::uint32_t
floatBits(float x)
{
    std::uint32_t b;
    std::memcpy(&b, &x, sizeof(b));
    return b;
}

inline float
bitsFloat(std::uint32_t b)
{
    float x;
    std::memcpy(&x, &b, sizeof(x));
    return x;
}

// --- Polynomial constants (Cephes expf/tanhf), shared by all paths ---

// The exp clamp stays at +-88 (not Cephes' 88.376...) so the 2^n
// exponent bit-trick below never needs n = 128: at x = 88 the integer
// part is 127, the largest finite biased exponent. Beyond the clamp
// sigmoid/tanh are saturated anyway.
constexpr float kExpHi = 88.0f;
constexpr float kExpLo = -88.0f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;

constexpr float kTanhCut = 0.625f;
constexpr float kTanhC0 = -5.70498872745e-3f;
constexpr float kTanhC1 = 2.06390887954e-2f;
constexpr float kTanhC2 = -5.37397155531e-2f;
constexpr float kTanhC3 = 1.33314422036e-1f;
constexpr float kTanhC4 = -3.33332819422e-1f;

// ====================== portable scalar path ======================
//
// Each scalar transcendental is written as the exact lane-wise
// operation sequence of the vector paths: the clamp ternaries mirror
// minps/maxps operand order (second operand wins on NaN), nearbyintf
// mirrors cvtps2dq's nearest-even rounding, and sign handling uses the
// same bit operations as andps/xorps.

inline float
expOne(float x)
{
    x = x < kExpHi ? x : kExpHi; // minps(x, hi)
    x = x > kExpLo ? x : kExpLo; // maxps(x, lo)
    const float t = x * kLog2e;
    const float fn = std::nearbyintf(t);
    const int n = static_cast<int>(fn);
    float r = x - fn * kLn2Hi;
    r = r - fn * kLn2Lo;
    const float z = r * r;
    float p = kExpC0;
    p = p * r + kExpC1;
    p = p * r + kExpC2;
    p = p * r + kExpC3;
    p = p * r + kExpC4;
    p = p * r + kExpC5;
    const float y = (p * z + r) + 1.0f;
    // 2^n via exponent bits; n is in [-127, 127] thanks to the clamp
    // (n = -127 yields zero, correctly flushing exp(-88) ~ 6e-39).
    const float s =
        bitsFloat(static_cast<std::uint32_t>(n + 127) << 23);
    return y * s;
}

inline float
sigmoidOne(float x)
{
    const float nx = bitsFloat(floatBits(x) ^ 0x80000000u); // xorps
    const float e = expOne(nx);
    return 1.0f / (1.0f + e);
}

inline float
tanhOne(float x)
{
    const std::uint32_t bits = floatBits(x);
    const std::uint32_t sign = bits & 0x80000000u;
    const float ax = bitsFloat(bits & 0x7fffffffu);
    if (ax < kTanhCut) {
        const float z2 = x * x;
        float p = kTanhC0;
        p = p * z2 + kTanhC1;
        p = p * z2 + kTanhC2;
        p = p * z2 + kTanhC3;
        p = p * z2 + kTanhC4;
        return (p * z2) * x + x;
    }
    const float e = expOne(ax + ax);
    const float y = 1.0f - 2.0f / (e + 1.0f);
    return bitsFloat(floatBits(y) ^ sign);
}

float
scalarDot(const float *a, const float *b, std::size_t n)
{
    float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        for (int l = 0; l < 8; ++l)
            acc[l] += a[i + l] * b[i + l];
    float tail = 0.0f;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    // The canonical combine tree (simd::hsum128Pair in vector form).
    return (((acc[0] + acc[4]) + (acc[2] + acc[6])) +
            ((acc[1] + acc[5]) + (acc[3] + acc[7]))) +
           tail;
}

void
scalarDotTile4x2(float *c, const float *a, const float *b,
                 std::size_t i0, std::size_t j0, std::size_t k,
                 std::size_t n)
{
    const float *ar[4] = {a + (i0 + 0) * k, a + (i0 + 1) * k,
                          a + (i0 + 2) * k, a + (i0 + 3) * k};
    const float *bc[2] = {b + (j0 + 0) * k, b + (j0 + 1) * k};
    float acc[4][2][8] = {};
    std::size_t t = 0;
    for (; t + 8 <= k; t += 8)
        for (int r = 0; r < 4; ++r)
            for (int cc = 0; cc < 2; ++cc)
                for (int l = 0; l < 8; ++l)
                    acc[r][cc][l] += ar[r][t + l] * bc[cc][t + l];
    for (int r = 0; r < 4; ++r) {
        for (int cc = 0; cc < 2; ++cc) {
            const float *l = acc[r][cc];
            float tail = 0.0f;
            for (std::size_t tt = t; tt < k; ++tt)
                tail += ar[r][tt] * bc[cc][tt];
            // Identical to scalarDot(ar[r], bc[cc], k) by construction.
            const float s = (((l[0] + l[4]) + (l[2] + l[6])) +
                             ((l[1] + l[5]) + (l[3] + l[7]))) +
                            tail;
            c[(i0 + static_cast<std::size_t>(r)) * n + j0 +
              static_cast<std::size_t>(cc)] += s;
        }
    }
}

void
scalarAxpy(float *y, const float *x, float a, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        y[j] = y[j] + a * x[j];
}

void
scalarAxpy4(float *y, const float *x0, const float *x1, const float *x2,
            const float *x3, float a0, float a1, float a2, float a3,
            std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j) {
        const float t01 = a0 * x0[j] + a1 * x1[j];
        const float t23 = a2 * x2[j] + a3 * x3[j];
        y[j] = y[j] + (t01 + t23);
    }
}

// flatten: the per-4-k axpy4 bodies inline into the panel loop — at the
// small n the training gemms run (batch-width panels), the ten-argument
// call per k-group otherwise costs as much as the vector work itself.
__attribute__((flatten)) void
scalarGemmRowPanel(float *y, const float *a, std::size_t astride,
                   const float *b, std::size_t k0, std::size_t k1,
                   std::size_t n)
{
    std::size_t kk = k0;
    for (; kk + 4 <= k1; kk += 4) {
        const float *b0 = b + kk * n;
        scalarAxpy4(y, b0, b0 + n, b0 + 2 * n, b0 + 3 * n,
                    a[kk * astride], a[(kk + 1) * astride],
                    a[(kk + 2) * astride], a[(kk + 3) * astride], n);
    }
    for (; kk < k1; ++kk)
        scalarAxpy(y, b + kk * n, a[kk * astride], n);
}

void
scalarRelu(float *d, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        d[i] = d[i] > 0.0f ? d[i] : 0.0f; // maxps(d, 0)
}

void
scalarSigmoid(float *d, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        d[i] = sigmoidOne(d[i]);
}

void
scalarTanh(float *d, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        d[i] = tanhOne(d[i]);
}

void
scalarLstmForward(float *zi, float *zf, float *zg, float *zo, float *c,
                  float *h, std::size_t n)
{
    for (std::size_t s = 0; s < n; ++s) {
        const float i_g = sigmoidOne(zi[s]);
        const float f_g = sigmoidOne(zf[s]);
        const float g_g = tanhOne(zg[s]);
        const float o_g = sigmoidOne(zo[s]);
        zi[s] = i_g;
        zf[s] = f_g;
        zg[s] = g_g;
        zo[s] = o_g;
        const float c_new = f_g * c[s] + i_g * g_g;
        c[s] = c_new;
        h[s] = o_g * tanhOne(c_new);
    }
}

void
scalarLstmBackward(const float *zi, const float *zf, const float *zg,
                   const float *zo, const float *c, const float *cprev,
                   const float *dh, float *dc, float *dzi, float *dzf,
                   float *dzg, float *dzo, std::size_t n)
{
    for (std::size_t s = 0; s < n; ++s) {
        const float i_g = zi[s];
        const float f_g = zf[s];
        const float g_g = zg[s];
        const float o_g = zo[s];
        const float tanh_c = tanhOne(c[s]);
        const float dh_v = dh[s];

        const float do_v = dh_v * tanh_c;
        const float dc_v =
            dc[s] + (dh_v * o_g) * (1.0f - tanh_c * tanh_c);

        const float di_v = dc_v * g_g;
        const float dg_v = dc_v * i_g;
        const float cp = cprev != nullptr ? cprev[s] : 0.0f;
        const float df_v = dc_v * cp;

        dzi[s] = (di_v * i_g) * (1.0f - i_g);
        dzf[s] = (df_v * f_g) * (1.0f - f_g);
        dzg[s] = dg_v * (1.0f - g_g * g_g);
        dzo[s] = (do_v * o_g) * (1.0f - o_g);

        dc[s] = dc_v * f_g; // Carried to step t-1.
    }
}

void
scalarAdam(float *p, const float *g, float *m, float *v, std::size_t n,
           const AdamConsts &k)
{
    for (std::size_t j = 0; j < n; ++j) {
        const float gj = g[j] * k.gradScale;
        const float mj = k.beta1 * m[j] + k.oneMinusBeta1 * gj;
        const float g2 = gj * gj;
        const float vj = k.beta2 * v[j] + k.oneMinusBeta2 * g2;
        m[j] = mj;
        v[j] = vj;
        const float num = k.learningRate * (mj * k.invBiasCorrection1);
        const float den =
            std::sqrt(vj * k.invBiasCorrection2) + k.epsilon;
        p[j] = p[j] - num / den;
    }
}

#if defined(BF_SIMD_X86)

// Function-level target attributes keep the TU's baseline flags
// ISA-agnostic: each path compiles for exactly the ISA it dispatches
// to, so a non-AVX2 build machine still produces every path.
#define BF_K_SSE2 __attribute__((target("sse2")))
#define BF_K_AVX2 __attribute__((target("avx2")))

// ====================== SSE2 path ======================

BF_K_SSE2 inline __m128
expPs128(__m128 x)
{
    x = _mm_min_ps(x, _mm_set1_ps(kExpHi));
    x = _mm_max_ps(x, _mm_set1_ps(kExpLo));
    const __m128 t = _mm_mul_ps(x, _mm_set1_ps(kLog2e));
    const __m128i ni = _mm_cvtps_epi32(t); // nearest-even
    const __m128 fn = _mm_cvtepi32_ps(ni);
    __m128 r = _mm_sub_ps(x, _mm_mul_ps(fn, _mm_set1_ps(kLn2Hi)));
    r = _mm_sub_ps(r, _mm_mul_ps(fn, _mm_set1_ps(kLn2Lo)));
    const __m128 z = _mm_mul_ps(r, r);
    __m128 p = _mm_set1_ps(kExpC0);
    p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(kExpC1));
    p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(kExpC2));
    p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(kExpC3));
    p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(kExpC4));
    p = _mm_add_ps(_mm_mul_ps(p, r), _mm_set1_ps(kExpC5));
    const __m128 y = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(p, z), r), _mm_set1_ps(1.0f));
    const __m128i ebits =
        _mm_slli_epi32(_mm_add_epi32(ni, _mm_set1_epi32(127)), 23);
    return _mm_mul_ps(y, _mm_castsi128_ps(ebits));
}

BF_K_SSE2 inline __m128
sigmoidPs128(__m128 x)
{
    const __m128 nx = _mm_xor_ps(x, _mm_set1_ps(-0.0f));
    const __m128 e = expPs128(nx);
    const __m128 one = _mm_set1_ps(1.0f);
    return _mm_div_ps(one, _mm_add_ps(one, e));
}

BF_K_SSE2 inline __m128
tanhPs128(__m128 x)
{
    const __m128 signMask = _mm_set1_ps(-0.0f);
    const __m128 sign = _mm_and_ps(x, signMask);
    const __m128 ax = _mm_andnot_ps(signMask, x);
    // Small branch: odd polynomial in x.
    const __m128 z2 = _mm_mul_ps(x, x);
    __m128 p = _mm_set1_ps(kTanhC0);
    p = _mm_add_ps(_mm_mul_ps(p, z2), _mm_set1_ps(kTanhC1));
    p = _mm_add_ps(_mm_mul_ps(p, z2), _mm_set1_ps(kTanhC2));
    p = _mm_add_ps(_mm_mul_ps(p, z2), _mm_set1_ps(kTanhC3));
    p = _mm_add_ps(_mm_mul_ps(p, z2), _mm_set1_ps(kTanhC4));
    const __m128 small =
        _mm_add_ps(_mm_mul_ps(_mm_mul_ps(p, z2), x), x);
    // Large branch: 1 - 2/(exp(2|x|)+1), sign restored via xor.
    const __m128 one = _mm_set1_ps(1.0f);
    const __m128 e = expPs128(_mm_add_ps(ax, ax));
    const __m128 large = _mm_xor_ps(
        _mm_sub_ps(one,
                   _mm_div_ps(_mm_set1_ps(2.0f), _mm_add_ps(e, one))),
        sign);
    const __m128 mask = _mm_cmplt_ps(ax, _mm_set1_ps(kTanhCut));
    return _mm_or_ps(_mm_and_ps(mask, small),
                     _mm_andnot_ps(mask, large));
}

BF_K_SSE2 float
sse2Dot(const float *a, const float *b, std::size_t n)
{
    __m128 lo = _mm_setzero_ps(); // virtual lanes 0-3
    __m128 hi = _mm_setzero_ps(); // virtual lanes 4-7
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        lo = _mm_add_ps(
            lo, _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
        hi = _mm_add_ps(hi, _mm_mul_ps(_mm_loadu_ps(a + i + 4),
                                       _mm_loadu_ps(b + i + 4)));
    }
    float tail = 0.0f;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    return simd::hsum128Pair(lo, hi) + tail;
}

BF_K_SSE2 void
sse2DotTile4x2(float *c, const float *a, const float *b, std::size_t i0,
               std::size_t j0, std::size_t k, std::size_t n)
{
    const float *ar[4] = {a + (i0 + 0) * k, a + (i0 + 1) * k,
                          a + (i0 + 2) * k, a + (i0 + 3) * k};
    const float *bc[2] = {b + (j0 + 0) * k, b + (j0 + 1) * k};
    __m128 accLo[4][2];
    __m128 accHi[4][2];
    for (int r = 0; r < 4; ++r)
        for (int cc = 0; cc < 2; ++cc) {
            accLo[r][cc] = _mm_setzero_ps();
            accHi[r][cc] = _mm_setzero_ps();
        }
    std::size_t t = 0;
    for (; t + 8 <= k; t += 8) {
        const __m128 b0l = _mm_loadu_ps(bc[0] + t);
        const __m128 b0h = _mm_loadu_ps(bc[0] + t + 4);
        const __m128 b1l = _mm_loadu_ps(bc[1] + t);
        const __m128 b1h = _mm_loadu_ps(bc[1] + t + 4);
        for (int r = 0; r < 4; ++r) {
            const __m128 al = _mm_loadu_ps(ar[r] + t);
            const __m128 ah = _mm_loadu_ps(ar[r] + t + 4);
            accLo[r][0] = _mm_add_ps(accLo[r][0], _mm_mul_ps(al, b0l));
            accHi[r][0] = _mm_add_ps(accHi[r][0], _mm_mul_ps(ah, b0h));
            accLo[r][1] = _mm_add_ps(accLo[r][1], _mm_mul_ps(al, b1l));
            accHi[r][1] = _mm_add_ps(accHi[r][1], _mm_mul_ps(ah, b1h));
        }
    }
    for (int r = 0; r < 4; ++r) {
        for (int cc = 0; cc < 2; ++cc) {
            float tail = 0.0f;
            for (std::size_t tt = t; tt < k; ++tt)
                tail += ar[r][tt] * bc[cc][tt];
            const float s =
                simd::hsum128Pair(accLo[r][cc], accHi[r][cc]) + tail;
            c[(i0 + static_cast<std::size_t>(r)) * n + j0 +
              static_cast<std::size_t>(cc)] += s;
        }
    }
}

BF_K_SSE2 void
sse2Axpy(float *y, const float *x, float a, std::size_t n)
{
    const __m128 va = _mm_set1_ps(a);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128 vy = _mm_add_ps(
            _mm_loadu_ps(y + j),
            _mm_mul_ps(va, _mm_loadu_ps(x + j)));
        _mm_storeu_ps(y + j, vy);
    }
    for (; j < n; ++j)
        y[j] = y[j] + a * x[j];
}

BF_K_SSE2 void
sse2Axpy4(float *y, const float *x0, const float *x1, const float *x2,
          const float *x3, float a0, float a1, float a2, float a3,
          std::size_t n)
{
    const __m128 v0 = _mm_set1_ps(a0);
    const __m128 v1 = _mm_set1_ps(a1);
    const __m128 v2 = _mm_set1_ps(a2);
    const __m128 v3 = _mm_set1_ps(a3);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128 t01 =
            _mm_add_ps(_mm_mul_ps(v0, _mm_loadu_ps(x0 + j)),
                       _mm_mul_ps(v1, _mm_loadu_ps(x1 + j)));
        const __m128 t23 =
            _mm_add_ps(_mm_mul_ps(v2, _mm_loadu_ps(x2 + j)),
                       _mm_mul_ps(v3, _mm_loadu_ps(x3 + j)));
        _mm_storeu_ps(y + j, _mm_add_ps(_mm_loadu_ps(y + j),
                                        _mm_add_ps(t01, t23)));
    }
    for (; j < n; ++j) {
        const float t01 = a0 * x0[j] + a1 * x1[j];
        const float t23 = a2 * x2[j] + a3 * x3[j];
        y[j] = y[j] + (t01 + t23);
    }
}

BF_K_SSE2 __attribute__((flatten)) void
sse2GemmRowPanel(float *y, const float *a, std::size_t astride,
                 const float *b, std::size_t k0, std::size_t k1,
                 std::size_t n)
{
    std::size_t kk = k0;
    for (; kk + 4 <= k1; kk += 4) {
        const float *b0 = b + kk * n;
        sse2Axpy4(y, b0, b0 + n, b0 + 2 * n, b0 + 3 * n,
                  a[kk * astride], a[(kk + 1) * astride],
                  a[(kk + 2) * astride], a[(kk + 3) * astride], n);
    }
    for (; kk < k1; ++kk)
        sse2Axpy(y, b + kk * n, a[kk * astride], n);
}

BF_K_SSE2 void
sse2Relu(float *d, std::size_t n)
{
    const __m128 zero = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(d + i, _mm_max_ps(_mm_loadu_ps(d + i), zero));
    for (; i < n; ++i)
        d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

BF_K_SSE2 void
sse2Sigmoid(float *d, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(d + i, sigmoidPs128(_mm_loadu_ps(d + i)));
    for (; i < n; ++i)
        d[i] = sigmoidOne(d[i]);
}

BF_K_SSE2 void
sse2Tanh(float *d, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(d + i, tanhPs128(_mm_loadu_ps(d + i)));
    for (; i < n; ++i)
        d[i] = tanhOne(d[i]);
}

BF_K_SSE2 void
sse2LstmForward(float *zi, float *zf, float *zg, float *zo, float *c,
                float *h, std::size_t n)
{
    std::size_t s = 0;
    for (; s + 4 <= n; s += 4) {
        const __m128 i_g = sigmoidPs128(_mm_loadu_ps(zi + s));
        const __m128 f_g = sigmoidPs128(_mm_loadu_ps(zf + s));
        const __m128 g_g = tanhPs128(_mm_loadu_ps(zg + s));
        const __m128 o_g = sigmoidPs128(_mm_loadu_ps(zo + s));
        _mm_storeu_ps(zi + s, i_g);
        _mm_storeu_ps(zf + s, f_g);
        _mm_storeu_ps(zg + s, g_g);
        _mm_storeu_ps(zo + s, o_g);
        const __m128 c_new =
            _mm_add_ps(_mm_mul_ps(f_g, _mm_loadu_ps(c + s)),
                       _mm_mul_ps(i_g, g_g));
        _mm_storeu_ps(c + s, c_new);
        _mm_storeu_ps(h + s, _mm_mul_ps(o_g, tanhPs128(c_new)));
    }
    scalarLstmForward(zi + s, zf + s, zg + s, zo + s, c + s, h + s,
                      n - s);
}

BF_K_SSE2 void
sse2LstmBackward(const float *zi, const float *zf, const float *zg,
                 const float *zo, const float *c, const float *cprev,
                 const float *dh, float *dc, float *dzi, float *dzf,
                 float *dzg, float *dzo, std::size_t n)
{
    const __m128 one = _mm_set1_ps(1.0f);
    std::size_t s = 0;
    for (; s + 4 <= n; s += 4) {
        const __m128 i_g = _mm_loadu_ps(zi + s);
        const __m128 f_g = _mm_loadu_ps(zf + s);
        const __m128 g_g = _mm_loadu_ps(zg + s);
        const __m128 o_g = _mm_loadu_ps(zo + s);
        const __m128 tanh_c = tanhPs128(_mm_loadu_ps(c + s));
        const __m128 dh_v = _mm_loadu_ps(dh + s);

        const __m128 do_v = _mm_mul_ps(dh_v, tanh_c);
        const __m128 dc_v = _mm_add_ps(
            _mm_loadu_ps(dc + s),
            _mm_mul_ps(_mm_mul_ps(dh_v, o_g),
                       _mm_sub_ps(one, _mm_mul_ps(tanh_c, tanh_c))));

        const __m128 di_v = _mm_mul_ps(dc_v, g_g);
        const __m128 dg_v = _mm_mul_ps(dc_v, i_g);
        const __m128 cp = cprev != nullptr ? _mm_loadu_ps(cprev + s)
                                           : _mm_setzero_ps();
        const __m128 df_v = _mm_mul_ps(dc_v, cp);

        _mm_storeu_ps(dzi + s,
                      _mm_mul_ps(_mm_mul_ps(di_v, i_g),
                                 _mm_sub_ps(one, i_g)));
        _mm_storeu_ps(dzf + s,
                      _mm_mul_ps(_mm_mul_ps(df_v, f_g),
                                 _mm_sub_ps(one, f_g)));
        _mm_storeu_ps(
            dzg + s,
            _mm_mul_ps(dg_v,
                       _mm_sub_ps(one, _mm_mul_ps(g_g, g_g))));
        _mm_storeu_ps(dzo + s,
                      _mm_mul_ps(_mm_mul_ps(do_v, o_g),
                                 _mm_sub_ps(one, o_g)));

        _mm_storeu_ps(dc + s, _mm_mul_ps(dc_v, f_g));
    }
    scalarLstmBackward(zi + s, zf + s, zg + s, zo + s, c + s,
                       cprev != nullptr ? cprev + s : nullptr, dh + s,
                       dc + s, dzi + s, dzf + s, dzg + s, dzo + s,
                       n - s);
}

BF_K_SSE2 void
sse2Adam(float *p, const float *g, float *m, float *v, std::size_t n,
         const AdamConsts &k)
{
    const __m128 b1 = _mm_set1_ps(k.beta1);
    const __m128 b2 = _mm_set1_ps(k.beta2);
    const __m128 c1 = _mm_set1_ps(k.oneMinusBeta1);
    const __m128 c2 = _mm_set1_ps(k.oneMinusBeta2);
    const __m128 bc1 = _mm_set1_ps(k.invBiasCorrection1);
    const __m128 bc2 = _mm_set1_ps(k.invBiasCorrection2);
    const __m128 lr = _mm_set1_ps(k.learningRate);
    const __m128 eps = _mm_set1_ps(k.epsilon);
    const __m128 scale = _mm_set1_ps(k.gradScale);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128 gj = _mm_mul_ps(_mm_loadu_ps(g + j), scale);
        const __m128 mj = _mm_add_ps(
            _mm_mul_ps(b1, _mm_loadu_ps(m + j)), _mm_mul_ps(c1, gj));
        const __m128 g2 = _mm_mul_ps(gj, gj);
        const __m128 vj = _mm_add_ps(
            _mm_mul_ps(b2, _mm_loadu_ps(v + j)), _mm_mul_ps(c2, g2));
        _mm_storeu_ps(m + j, mj);
        _mm_storeu_ps(v + j, vj);
        const __m128 num = _mm_mul_ps(lr, _mm_mul_ps(mj, bc1));
        const __m128 den = _mm_add_ps(
            _mm_sqrt_ps(_mm_mul_ps(vj, bc2)), eps);
        _mm_storeu_ps(p + j, _mm_sub_ps(_mm_loadu_ps(p + j),
                                        _mm_div_ps(num, den)));
    }
    if (j < n)
        scalarAdam(p + j, g + j, m + j, v + j, n - j, k);
}

// ====================== AVX2 path ======================

BF_K_AVX2 inline __m256
expPs256(__m256 x)
{
    x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
    x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
    const __m256 t = _mm256_mul_ps(x, _mm256_set1_ps(kLog2e));
    const __m256i ni = _mm256_cvtps_epi32(t); // nearest-even
    const __m256 fn = _mm256_cvtepi32_ps(ni);
    __m256 r =
        _mm256_sub_ps(x, _mm256_mul_ps(fn, _mm256_set1_ps(kLn2Hi)));
    r = _mm256_sub_ps(r, _mm256_mul_ps(fn, _mm256_set1_ps(kLn2Lo)));
    const __m256 z = _mm256_mul_ps(r, r);
    __m256 p = _mm256_set1_ps(kExpC0);
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC1));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC2));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC3));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC4));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(kExpC5));
    const __m256 y = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(p, z), r), _mm256_set1_ps(1.0f));
    const __m256i ebits = _mm256_slli_epi32(
        _mm256_add_epi32(ni, _mm256_set1_epi32(127)), 23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(ebits));
}

BF_K_AVX2 inline __m256
sigmoidPs256(__m256 x)
{
    const __m256 nx = _mm256_xor_ps(x, _mm256_set1_ps(-0.0f));
    const __m256 e = expPs256(nx);
    const __m256 one = _mm256_set1_ps(1.0f);
    return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

BF_K_AVX2 inline __m256
tanhPs256(__m256 x)
{
    const __m256 signMask = _mm256_set1_ps(-0.0f);
    const __m256 sign = _mm256_and_ps(x, signMask);
    const __m256 ax = _mm256_andnot_ps(signMask, x);
    const __m256 z2 = _mm256_mul_ps(x, x);
    __m256 p = _mm256_set1_ps(kTanhC0);
    p = _mm256_add_ps(_mm256_mul_ps(p, z2), _mm256_set1_ps(kTanhC1));
    p = _mm256_add_ps(_mm256_mul_ps(p, z2), _mm256_set1_ps(kTanhC2));
    p = _mm256_add_ps(_mm256_mul_ps(p, z2), _mm256_set1_ps(kTanhC3));
    p = _mm256_add_ps(_mm256_mul_ps(p, z2), _mm256_set1_ps(kTanhC4));
    const __m256 small =
        _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, z2), x), x);
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 e = expPs256(_mm256_add_ps(ax, ax));
    const __m256 large = _mm256_xor_ps(
        _mm256_sub_ps(
            one, _mm256_div_ps(_mm256_set1_ps(2.0f),
                               _mm256_add_ps(e, one))),
        sign);
    const __m256 mask =
        _mm256_cmp_ps(ax, _mm256_set1_ps(kTanhCut), _CMP_LT_OQ);
    return _mm256_or_ps(_mm256_and_ps(mask, small),
                        _mm256_andnot_ps(mask, large));
}

BF_K_AVX2 float
avx2Dot(const float *a, const float *b, std::size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
    float tail = 0.0f;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    return simd::hsum8(acc) + tail;
}

BF_K_AVX2 void
avx2DotTile4x2(float *c, const float *a, const float *b, std::size_t i0,
               std::size_t j0, std::size_t k, std::size_t n)
{
    const float *ar[4] = {a + (i0 + 0) * k, a + (i0 + 1) * k,
                          a + (i0 + 2) * k, a + (i0 + 3) * k};
    const float *bc[2] = {b + (j0 + 0) * k, b + (j0 + 1) * k};
    __m256 acc[4][2];
    for (int r = 0; r < 4; ++r)
        for (int cc = 0; cc < 2; ++cc)
            acc[r][cc] = _mm256_setzero_ps();
    std::size_t t = 0;
    for (; t + 8 <= k; t += 8) {
        const __m256 vb0 = _mm256_loadu_ps(bc[0] + t);
        const __m256 vb1 = _mm256_loadu_ps(bc[1] + t);
        for (int r = 0; r < 4; ++r) {
            const __m256 va = _mm256_loadu_ps(ar[r] + t);
            acc[r][0] =
                _mm256_add_ps(acc[r][0], _mm256_mul_ps(va, vb0));
            acc[r][1] =
                _mm256_add_ps(acc[r][1], _mm256_mul_ps(va, vb1));
        }
    }
    for (int r = 0; r < 4; ++r) {
        for (int cc = 0; cc < 2; ++cc) {
            float tail = 0.0f;
            for (std::size_t tt = t; tt < k; ++tt)
                tail += ar[r][tt] * bc[cc][tt];
            const float s = simd::hsum8(acc[r][cc]) + tail;
            c[(i0 + static_cast<std::size_t>(r)) * n + j0 +
              static_cast<std::size_t>(cc)] += s;
        }
    }
}

BF_K_AVX2 void
avx2Axpy(float *y, const float *x, float a, std::size_t n)
{
    const __m256 va = _mm256_set1_ps(a);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 vy = _mm256_add_ps(
            _mm256_loadu_ps(y + j),
            _mm256_mul_ps(va, _mm256_loadu_ps(x + j)));
        _mm256_storeu_ps(y + j, vy);
    }
    for (; j < n; ++j)
        y[j] = y[j] + a * x[j];
}

BF_K_AVX2 void
avx2Axpy4(float *y, const float *x0, const float *x1, const float *x2,
          const float *x3, float a0, float a1, float a2, float a3,
          std::size_t n)
{
    const __m256 v0 = _mm256_set1_ps(a0);
    const __m256 v1 = _mm256_set1_ps(a1);
    const __m256 v2 = _mm256_set1_ps(a2);
    const __m256 v3 = _mm256_set1_ps(a3);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 t01 =
            _mm256_add_ps(_mm256_mul_ps(v0, _mm256_loadu_ps(x0 + j)),
                          _mm256_mul_ps(v1, _mm256_loadu_ps(x1 + j)));
        const __m256 t23 =
            _mm256_add_ps(_mm256_mul_ps(v2, _mm256_loadu_ps(x2 + j)),
                          _mm256_mul_ps(v3, _mm256_loadu_ps(x3 + j)));
        _mm256_storeu_ps(y + j,
                         _mm256_add_ps(_mm256_loadu_ps(y + j),
                                       _mm256_add_ps(t01, t23)));
    }
    for (; j < n; ++j) {
        const float t01 = a0 * x0[j] + a1 * x1[j];
        const float t23 = a2 * x2[j] + a3 * x3[j];
        y[j] = y[j] + (t01 + t23);
    }
}

BF_K_AVX2 __attribute__((flatten)) void
avx2GemmRowPanel(float *y, const float *a, std::size_t astride,
                 const float *b, std::size_t k0, std::size_t k1,
                 std::size_t n)
{
    std::size_t kk = k0;
    for (; kk + 4 <= k1; kk += 4) {
        const float *b0 = b + kk * n;
        avx2Axpy4(y, b0, b0 + n, b0 + 2 * n, b0 + 3 * n,
                  a[kk * astride], a[(kk + 1) * astride],
                  a[(kk + 2) * astride], a[(kk + 3) * astride], n);
    }
    for (; kk < k1; ++kk)
        avx2Axpy(y, b + kk * n, a[kk * astride], n);
}

BF_K_AVX2 void
avx2Relu(float *d, std::size_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(d + i,
                         _mm256_max_ps(_mm256_loadu_ps(d + i), zero));
    for (; i < n; ++i)
        d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

BF_K_AVX2 void
avx2Sigmoid(float *d, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(d + i, sigmoidPs256(_mm256_loadu_ps(d + i)));
    for (; i < n; ++i)
        d[i] = sigmoidOne(d[i]);
}

BF_K_AVX2 void
avx2Tanh(float *d, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(d + i, tanhPs256(_mm256_loadu_ps(d + i)));
    for (; i < n; ++i)
        d[i] = tanhOne(d[i]);
}

BF_K_AVX2 void
avx2LstmForward(float *zi, float *zf, float *zg, float *zo, float *c,
                float *h, std::size_t n)
{
    std::size_t s = 0;
    for (; s + 8 <= n; s += 8) {
        const __m256 i_g = sigmoidPs256(_mm256_loadu_ps(zi + s));
        const __m256 f_g = sigmoidPs256(_mm256_loadu_ps(zf + s));
        const __m256 g_g = tanhPs256(_mm256_loadu_ps(zg + s));
        const __m256 o_g = sigmoidPs256(_mm256_loadu_ps(zo + s));
        _mm256_storeu_ps(zi + s, i_g);
        _mm256_storeu_ps(zf + s, f_g);
        _mm256_storeu_ps(zg + s, g_g);
        _mm256_storeu_ps(zo + s, o_g);
        const __m256 c_new =
            _mm256_add_ps(_mm256_mul_ps(f_g, _mm256_loadu_ps(c + s)),
                          _mm256_mul_ps(i_g, g_g));
        _mm256_storeu_ps(c + s, c_new);
        _mm256_storeu_ps(h + s, _mm256_mul_ps(o_g, tanhPs256(c_new)));
    }
    scalarLstmForward(zi + s, zf + s, zg + s, zo + s, c + s, h + s,
                      n - s);
}

BF_K_AVX2 void
avx2LstmBackward(const float *zi, const float *zf, const float *zg,
                 const float *zo, const float *c, const float *cprev,
                 const float *dh, float *dc, float *dzi, float *dzf,
                 float *dzg, float *dzo, std::size_t n)
{
    const __m256 one = _mm256_set1_ps(1.0f);
    std::size_t s = 0;
    for (; s + 8 <= n; s += 8) {
        const __m256 i_g = _mm256_loadu_ps(zi + s);
        const __m256 f_g = _mm256_loadu_ps(zf + s);
        const __m256 g_g = _mm256_loadu_ps(zg + s);
        const __m256 o_g = _mm256_loadu_ps(zo + s);
        const __m256 tanh_c = tanhPs256(_mm256_loadu_ps(c + s));
        const __m256 dh_v = _mm256_loadu_ps(dh + s);

        const __m256 do_v = _mm256_mul_ps(dh_v, tanh_c);
        const __m256 dc_v = _mm256_add_ps(
            _mm256_loadu_ps(dc + s),
            _mm256_mul_ps(
                _mm256_mul_ps(dh_v, o_g),
                _mm256_sub_ps(one, _mm256_mul_ps(tanh_c, tanh_c))));

        const __m256 di_v = _mm256_mul_ps(dc_v, g_g);
        const __m256 dg_v = _mm256_mul_ps(dc_v, i_g);
        const __m256 cp = cprev != nullptr ? _mm256_loadu_ps(cprev + s)
                                           : _mm256_setzero_ps();
        const __m256 df_v = _mm256_mul_ps(dc_v, cp);

        _mm256_storeu_ps(dzi + s,
                         _mm256_mul_ps(_mm256_mul_ps(di_v, i_g),
                                       _mm256_sub_ps(one, i_g)));
        _mm256_storeu_ps(dzf + s,
                         _mm256_mul_ps(_mm256_mul_ps(df_v, f_g),
                                       _mm256_sub_ps(one, f_g)));
        _mm256_storeu_ps(
            dzg + s,
            _mm256_mul_ps(
                dg_v, _mm256_sub_ps(one, _mm256_mul_ps(g_g, g_g))));
        _mm256_storeu_ps(dzo + s,
                         _mm256_mul_ps(_mm256_mul_ps(do_v, o_g),
                                       _mm256_sub_ps(one, o_g)));

        _mm256_storeu_ps(dc + s, _mm256_mul_ps(dc_v, f_g));
    }
    scalarLstmBackward(zi + s, zf + s, zg + s, zo + s, c + s,
                       cprev != nullptr ? cprev + s : nullptr, dh + s,
                       dc + s, dzi + s, dzf + s, dzg + s, dzo + s,
                       n - s);
}

BF_K_AVX2 void
avx2Adam(float *p, const float *g, float *m, float *v, std::size_t n,
         const AdamConsts &k)
{
    const __m256 b1 = _mm256_set1_ps(k.beta1);
    const __m256 b2 = _mm256_set1_ps(k.beta2);
    const __m256 c1 = _mm256_set1_ps(k.oneMinusBeta1);
    const __m256 c2 = _mm256_set1_ps(k.oneMinusBeta2);
    const __m256 bc1 = _mm256_set1_ps(k.invBiasCorrection1);
    const __m256 bc2 = _mm256_set1_ps(k.invBiasCorrection2);
    const __m256 lr = _mm256_set1_ps(k.learningRate);
    const __m256 eps = _mm256_set1_ps(k.epsilon);
    const __m256 scale = _mm256_set1_ps(k.gradScale);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 gj =
            _mm256_mul_ps(_mm256_loadu_ps(g + j), scale);
        const __m256 mj =
            _mm256_add_ps(_mm256_mul_ps(b1, _mm256_loadu_ps(m + j)),
                          _mm256_mul_ps(c1, gj));
        const __m256 g2 = _mm256_mul_ps(gj, gj);
        const __m256 vj =
            _mm256_add_ps(_mm256_mul_ps(b2, _mm256_loadu_ps(v + j)),
                          _mm256_mul_ps(c2, g2));
        _mm256_storeu_ps(m + j, mj);
        _mm256_storeu_ps(v + j, vj);
        const __m256 num = _mm256_mul_ps(lr, _mm256_mul_ps(mj, bc1));
        const __m256 den = _mm256_add_ps(
            _mm256_sqrt_ps(_mm256_mul_ps(vj, bc2)), eps);
        _mm256_storeu_ps(p + j,
                         _mm256_sub_ps(_mm256_loadu_ps(p + j),
                                       _mm256_div_ps(num, den)));
    }
    if (j < n)
        scalarAdam(p + j, g + j, m + j, v + j, n - j, k);
}

#endif // BF_SIMD_X86

} // namespace

// ====================== public dispatchers ======================

float
dot(const float *a, const float *b, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        return avx2Dot(a, b, n);
    case simd::Tag::Sse2:
        return sse2Dot(a, b, n);
    case simd::Tag::Scalar:
        break;
    }
#endif
    return scalarDot(a, b, n);
}

void
dotTile4x2(float *c, const float *a, const float *b, std::size_t i0,
           std::size_t j0, std::size_t k, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2DotTile4x2(c, a, b, i0, j0, k, n);
        return;
    case simd::Tag::Sse2:
        sse2DotTile4x2(c, a, b, i0, j0, k, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarDotTile4x2(c, a, b, i0, j0, k, n);
}

void
axpy(float *y, const float *x, float a, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2Axpy(y, x, a, n);
        return;
    case simd::Tag::Sse2:
        sse2Axpy(y, x, a, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarAxpy(y, x, a, n);
}

void
axpy4(float *y, const float *x0, const float *x1, const float *x2,
      const float *x3, float a0, float a1, float a2, float a3,
      std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2Axpy4(y, x0, x1, x2, x3, a0, a1, a2, a3, n);
        return;
    case simd::Tag::Sse2:
        sse2Axpy4(y, x0, x1, x2, x3, a0, a1, a2, a3, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarAxpy4(y, x0, x1, x2, x3, a0, a1, a2, a3, n);
}

void
gemmRowPanel(float *y, const float *a, std::size_t astride,
             const float *b, std::size_t k0, std::size_t k1,
             std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2GemmRowPanel(y, a, astride, b, k0, k1, n);
        return;
    case simd::Tag::Sse2:
        sse2GemmRowPanel(y, a, astride, b, k0, k1, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarGemmRowPanel(y, a, astride, b, k0, k1, n);
}

void
relu(float *d, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2Relu(d, n);
        return;
    case simd::Tag::Sse2:
        sse2Relu(d, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarRelu(d, n);
}

void
sigmoid(float *d, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2Sigmoid(d, n);
        return;
    case simd::Tag::Sse2:
        sse2Sigmoid(d, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarSigmoid(d, n);
}

void
tanh(float *d, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2Tanh(d, n);
        return;
    case simd::Tag::Sse2:
        sse2Tanh(d, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarTanh(d, n);
}

// The scalar transcendentals are deliberately Tag-independent: callers
// with strided access (GRU's gate loop) use them per element and must
// get the same bits at every BF_SIMD setting — which they do, because
// the vector lanes compute exactly this operation sequence.

float
sigmoidScalar(float x)
{
    return sigmoidOne(x);
}

float
tanhScalar(float x)
{
    return tanhOne(x);
}

float
expScalar(float x)
{
    return expOne(x);
}

void
lstmGatesForward(float *zi, float *zf, float *zg, float *zo, float *c,
                 float *h, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2LstmForward(zi, zf, zg, zo, c, h, n);
        return;
    case simd::Tag::Sse2:
        sse2LstmForward(zi, zf, zg, zo, c, h, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarLstmForward(zi, zf, zg, zo, c, h, n);
}

void
lstmGatesBackward(const float *zi, const float *zf, const float *zg,
                  const float *zo, const float *c, const float *cprev,
                  const float *dh, float *dc, float *dzi, float *dzf,
                  float *dzg, float *dzo, std::size_t n)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2LstmBackward(zi, zf, zg, zo, c, cprev, dh, dc, dzi, dzf,
                         dzg, dzo, n);
        return;
    case simd::Tag::Sse2:
        sse2LstmBackward(zi, zf, zg, zo, c, cprev, dh, dc, dzi, dzf,
                         dzg, dzo, n);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarLstmBackward(zi, zf, zg, zo, c, cprev, dh, dc, dzi, dzf, dzg,
                       dzo, n);
}

void
adamStep(float *p, const float *g, float *m, float *v, std::size_t n,
         const AdamConsts &consts)
{
#if defined(BF_SIMD_X86)
    switch (simd::active()) {
    case simd::Tag::Avx2:
        avx2Adam(p, g, m, v, n, consts);
        return;
    case simd::Tag::Sse2:
        sse2Adam(p, g, m, v, n, consts);
        return;
    case simd::Tag::Scalar:
        break;
    }
#endif
    scalarAdam(p, g, m, v, n, consts);
}

} // namespace bigfish::ml::kernels
