/**
 * @file
 * The vectorized kernel layer behind the ML hot loops.
 *
 * Every floating-point inner loop that dominates training — GEMM
 * primitives, LSTM/GRU gate math, the Adam update, activations — lives
 * here with three runtime-dispatched implementations (AVX2, SSE2,
 * portable scalar) behind bf::simd::Tag (base/simd.hh). The callers
 * (ml/matrix.cc, lstm/gru, network) keep their loop *structure* and
 * delegate the arithmetic, so blocking/threading decisions stay where
 * they were while the flops dispatch to the best ISA.
 *
 * Determinism contract (DESIGN.md §10), load-bearing for checkpoint
 * fingerprints and `--resume` replay:
 *
 *  - Reductions (dot, dotTile4x2) accumulate into a fixed 8-lane
 *    virtual accumulator: lane l sums a[i+l]*b[i+l] for i = 0, 8, 16…,
 *    the lanes combine through one canonical tree
 *    (((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))), and the n%8 tail is
 *    added serially afterwards. Scalar and SSE2 emulate exactly the
 *    lanes AVX2 holds in one register, so every Tag returns the same
 *    bits.
 *  - Elementwise kernels evaluate one fixed expression tree per
 *    element using IEEE-exact operations only (+ - * / sqrt); no
 *    fused multiply-add anywhere (this file's TU builds with
 *    -ffp-contract=off so the compiler cannot introduce one).
 *  - sigmoid/tanh are polynomial approximations (Cephes-derived
 *    expf/tanhf, ~2 ulp) evaluated in the same operation order on
 *    every path — std::exp/std::tanh vary by libm version and cannot
 *    be vectorized reproducibly.
 */

#ifndef BF_ML_KERNELS_HH
#define BF_ML_KERNELS_HH

#include <cstddef>

namespace bigfish::ml::kernels {

// --- Reductions (fixed 8-lane virtual accumulator) ---------------------

/** Dot product of two contiguous float spans. */
float dot(const float *a, const float *b, std::size_t n);

/**
 * 4x2 register tile of C += A * B^T: rows i0..i0+3 of @p a against
 * rows j0..j0+1 of @p b, each output element accumulated exactly like
 * dot() of the same operand rows (same lanes, same tree), so tiling is
 * a bandwidth optimization with no numeric effect. @p k is the shared
 * row length, @p n the row stride of C.
 */
void dotTile4x2(float *c, const float *a, const float *b, std::size_t i0,
                std::size_t j0, std::size_t k, std::size_t n);

// --- Elementwise GEMM helpers ------------------------------------------

/** y[j] += a * x[j]. */
void axpy(float *y, const float *x, float a, std::size_t n);

/**
 * Four fused axpys: y[j] += (a0*x0[j] + a1*x1[j]) + (a2*x2[j] +
 * a3*x3[j]) — the k-unrolled inner update of the row-major GEMM.
 */
void axpy4(float *y, const float *x0, const float *x1, const float *x2,
           const float *x3, float a0, float a1, float a2, float a3,
           std::size_t n);

/**
 * One output row of the k-blocked row-major GEMM:
 *   y[j] += sum over kk in [k0,k1) of a[kk*astride] * b[kk*n + j]
 * evaluated as exactly the axpy4-per-4-k / axpy-remainder sequence the
 * GEMM loops used to issue call by call — hoisted into the kernel
 * layer so ISA dispatch happens once per row panel, not once per four
 * k's (the per-call switch dominated small-k GEMMs). @p astride is 1
 * for row-major A, the row stride of A for the A^T walk.
 */
void gemmRowPanel(float *y, const float *a, std::size_t astride,
                  const float *b, std::size_t k0, std::size_t k1,
                  std::size_t n);

/** d[i] = max(d[i], 0). */
void relu(float *d, std::size_t n);

// --- Activations (polynomial, bit-identical across Tags) ---------------

/** d[i] = 1 / (1 + exp(-d[i])), in place. */
void sigmoid(float *d, std::size_t n);

/** d[i] = tanh(d[i]), in place. */
void tanh(float *d, std::size_t n);

/** The scalar path's sigmoid for one value (GRU's strided gate loop). */
float sigmoidScalar(float x);

/** The scalar path's tanh for one value. */
float tanhScalar(float x);

/** The scalar path's exp for one value (exposed for property tests). */
float expScalar(float x);

// --- Fused recurrent gate math -----------------------------------------

/**
 * One LSTM step's gate fusion over @p n contiguous lanes (lane =
 * sample in the batched layout, hidden unit in the single-sample
 * layout): activates the four pre-activation blocks in place (caching
 * them for BPTT), then updates cell and hidden state:
 *
 *   i=sig(zi) f=sig(zf) g=tanh(zg) o=sig(zo)
 *   c = f*c + i*g;  h = o * tanh(c)
 */
void lstmGatesForward(float *zi, float *zf, float *zg, float *zo,
                      float *c, float *h, std::size_t n);

/**
 * The matching BPTT gate-gradient fusion: given the cached
 * post-activation gates, cell states and incoming dh/dc, writes the
 * four pre-activation gradients and updates dc in place (dh is
 * consumed). @p cprev may be null (t = 0 ⇒ c_{t-1} = 0).
 */
void lstmGatesBackward(const float *zi, const float *zf, const float *zg,
                       const float *zo, const float *c,
                       const float *cprev, const float *dh, float *dc,
                       float *dzi, float *dzf, float *dzg, float *dzo,
                       std::size_t n);

// --- Optimizer ----------------------------------------------------------

/** The scalar hyperparameters one Adam step needs. */
struct AdamConsts
{
    float beta1, beta2;       ///< Moment decays.
    float oneMinusBeta1;      ///< 1 - beta1.
    float oneMinusBeta2;      ///< 1 - beta2.
    float invBiasCorrection1; ///< 1 / (1 - beta1^t).
    float invBiasCorrection2; ///< 1 / (1 - beta2^t).
    float learningRate;
    float epsilon;
    float gradScale; ///< Multiplier applied to gradients (1/batch).
};

/**
 * One elementwise Adam update over @p n parameters:
 *   g' = g*scale; m = b1*m + (1-b1)*g'; v = b2*v + (1-b2)*g'*g';
 *   p -= lr * (m*invBc1) / (sqrt(v*invBc2) + eps)
 */
void adamStep(float *p, const float *g, float *m, float *v, std::size_t n,
              const AdamConsts &consts);

} // namespace bigfish::ml::kernels

#endif // BF_ML_KERNELS_HH
