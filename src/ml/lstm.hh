/**
 * @file
 * Long Short-Term Memory layer (the paper's classifier backbone: an
 * LSTM with 32 units and sigmoid recurrent activations over the
 * conv/pool front-end's output sequence).
 *
 * Input is a (features x time) matrix; the layer runs the standard LSTM
 * recurrence left to right and outputs the final hidden state as a
 * (hidden x 1) vector. Backward implements full backpropagation through
 * time, verified against finite differences in the test suite.
 */

#ifndef BF_ML_LSTM_HH
#define BF_ML_LSTM_HH

#include "ml/layer.hh"

namespace bigfish::ml {

/** Single-layer LSTM returning its final hidden state. */
class Lstm : public Layer
{
  public:
    /**
     * @param input_size Features per timestep.
     * @param hidden_size Number of LSTM units (paper: 32).
     * @param rng Weight initialization stream.
     */
    Lstm(std::size_t input_size, std::size_t hidden_size, Rng &rng);

    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    bool supportsBatch() const override { return true; }
    Matrix forwardBatch(const Matrix &in, std::size_t samples,
                        bool train) override;
    Matrix backwardBatch(const Matrix &grad_out,
                         std::size_t samples) override;
    std::vector<Matrix *> params() override { return {&wx_, &wh_, &b_}; }
    std::vector<Matrix *> grads() override { return {&gwx_, &gwh_, &gb_}; }
    std::string name() const override { return "lstm"; }

    std::size_t hiddenSize() const { return hidden_; }

  private:
    std::size_t input_, hidden_;
    /** Gate weights stacked [i; f; g; o]: (4H x input), (4H x H), (4H x 1). */
    Matrix wx_, wh_, b_;
    Matrix gwx_, gwh_, gb_;

    // Per-timestep caches for BPTT. On the batched path the per-step
    // matrices carry one column per sample (4H x B / H x B) and inSeq_
    // holds the whole (input x B*T) batch.
    Matrix inSeq_;
    std::size_t samples_ = 1;
    std::vector<Matrix> gates_; ///< Post-activation gates per step (4H x B).
    std::vector<Matrix> cells_; ///< Cell states per step (H x B).
    std::vector<Matrix> hiddens_; ///< Hidden states per step (H x B).
};

} // namespace bigfish::ml

#endif // BF_ML_LSTM_HH
