/**
 * @file
 * Cross-validated evaluation (the paper's measurement protocol).
 *
 * Closed world: standard k-fold CV reporting mean +/- std of top-1 and
 * top-K accuracy across folds (Table 1 left, Tables 3-4; the paper
 * reports K = 5).
 *
 * Open world: same protocol over a dataset whose last class is the
 * catch-all "non-sensitive" label; additionally reports sensitive /
 * non-sensitive / combined accuracy (Table 1 right).
 *
 * The protocol decomposes into the stage-graph primitives the
 * fingerprinting pipeline schedules and caches individually:
 * trainFoldClassifier() (one model per fold), scoreFold() (raw scores,
 * truths and predictions on the fold's test split) and
 * aggregateFolds() / aggregateFoldsOpenWorld() (fold outputs → an
 * EvalResult). crossValidate() and evaluateOpenWorld() remain as the
 * one-call composition for direct library use; both paths produce
 * bit-identical results because fold seeds and aggregation order are
 * fixed by the same constants.
 */

#ifndef BF_ML_EVALUATION_HH
#define BF_ML_EVALUATION_HH

#include <cstdint>
#include <memory>

#include "ml/classifier.hh"
#include "ml/dataset.hh"
#include "stats/confusion.hh"

namespace bigfish::ml {

/** Aggregated cross-validation results. */
struct EvalResult
{
    double top1Mean = 0.0;
    double top1Std = 0.0;
    double topKMean = 0.0;
    double topKStd = 0.0;
    /** The K the topK* fields were computed with (paper: 5). */
    int topK = 5;

    /** Per-fold top-1 accuracies (for significance testing). */
    std::vector<double> foldTop1;
    /** Per-fold top-K accuracies. */
    std::vector<double> foldTopK;

    /** Open-world metrics (valid when evaluateOpenWorld was used). */
    stats::OpenWorldMetrics openWorld;
    double openWorldSensitiveStd = 0.0;
    double openWorldCombinedStd = 0.0;
};

/** Evaluation protocol parameters. */
struct EvalConfig
{
    int folds = 10;           ///< Paper: 10-fold CV.
    double valFraction = 0.1; ///< Paper: 9% validation of the 90% remainder.
    std::uint64_t seed = 1;
    /**
     * K of the secondary top-K accuracy (paper: 5). Purely an
     * aggregation knob: changing it reuses every cached collect /
     * featurize / train / score stage and recomputes only the final
     * aggregation.
     */
    int topK = 5;
};

/** Fold-seed offsets: fold f trains with seed = config.seed + base + f.
 *  Fixed constants — changing either silently changes every result. */
inline constexpr std::uint64_t kClosedWorldFoldSeedBase = 1000;
inline constexpr std::uint64_t kOpenWorldFoldSeedBase = 2000;

/** Everything one fold's scoring produces; folds train concurrently,
 *  so each owns its buffers outright. */
struct FoldScores
{
    std::vector<std::vector<double>> scores;
    std::vector<Label> truths;
    std::vector<Label> predictions;
};

/** Trains one fold's classifier (fit on train, early-stop on
 *  validation). The TrainFold stage body. */
std::unique_ptr<Classifier>
trainFoldClassifier(const ClassifierFactory &factory, const Dataset &data,
                    const FoldSplit &split, std::uint64_t seed);

/** Scores @p model on the given test indices. The ScoreFold stage
 *  body. */
FoldScores scoreFold(const Classifier &model, const Dataset &data,
                     const std::vector<std::size_t> &test);

/** Aggregates fold outputs into closed-world metrics (fold order is
 *  significant: results are reduced in index order). */
EvalResult aggregateFolds(const std::vector<FoldScores> &folds, int topK);

/** Open-world aggregation: adds sensitive / non-sensitive / combined
 *  accuracy means and stds over folds. */
EvalResult aggregateFoldsOpenWorld(const std::vector<FoldScores> &folds,
                                   Label nonSensitiveLabel, int topK);

/**
 * Runs k-fold cross validation of @p factory over @p data.
 */
EvalResult crossValidate(const ClassifierFactory &factory,
                         const Dataset &data, const EvalConfig &config);

/**
 * Open-world variant: @p nonSensitiveLabel marks the catch-all class;
 * sensitive/non-sensitive/combined accuracies are averaged over folds.
 */
EvalResult evaluateOpenWorld(const ClassifierFactory &factory,
                             const Dataset &data, Label nonSensitiveLabel,
                             const EvalConfig &config);

} // namespace bigfish::ml

#endif // BF_ML_EVALUATION_HH
