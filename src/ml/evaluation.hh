/**
 * @file
 * Cross-validated evaluation (the paper's measurement protocol).
 *
 * Closed world: standard k-fold CV reporting mean +/- std of top-1 and
 * top-5 accuracy across folds (Table 1 left, Tables 3-4).
 *
 * Open world: same protocol over a dataset whose last class is the
 * catch-all "non-sensitive" label; additionally reports sensitive /
 * non-sensitive / combined accuracy (Table 1 right).
 */

#ifndef BF_ML_EVALUATION_HH
#define BF_ML_EVALUATION_HH

#include <cstdint>

#include "ml/classifier.hh"
#include "ml/dataset.hh"
#include "stats/confusion.hh"

namespace bigfish::ml {

/** Aggregated cross-validation results. */
struct EvalResult
{
    double top1Mean = 0.0;
    double top1Std = 0.0;
    double top5Mean = 0.0;
    double top5Std = 0.0;

    /** Per-fold top-1 accuracies (for significance testing). */
    std::vector<double> foldTop1;
    /** Per-fold top-5 accuracies. */
    std::vector<double> foldTop5;

    /** Open-world metrics (valid when evaluateOpenWorld was used). */
    stats::OpenWorldMetrics openWorld;
    double openWorldSensitiveStd = 0.0;
    double openWorldCombinedStd = 0.0;

    /**
     * Seconds spent in fit() summed over folds, and seconds spent
     * scoring the test splits summed over folds. Sums of per-fold
     * *wall* durations, so with parallel folds (or timeshared cores)
     * they exceed the wall clock the cross-validation actually took —
     * report the explicit Cpu/Wall fields below instead; these two
     * stay for comparability with historical metric streams.
     */
    double trainSeconds = 0.0;
    double evalSeconds = 0.0;

    /**
     * Unambiguous phase costs: process-CPU seconds and wall-clock
     * seconds of the whole cross-validation, apportioned between the
     * train (fit) and eval (test-scoring) phases by each fold's
     * thread-CPU share. trainWallSeconds + evalWallSeconds equals the
     * CV's true wall time regardless of fold parallelism.
     */
    double trainCpuSeconds = 0.0;
    double trainWallSeconds = 0.0;
    double evalCpuSeconds = 0.0;
    double evalWallSeconds = 0.0;
};

/** Evaluation protocol parameters. */
struct EvalConfig
{
    int folds = 10;           ///< Paper: 10-fold CV.
    double valFraction = 0.1; ///< Paper: 9% validation of the 90% remainder.
    std::uint64_t seed = 1;
};

/**
 * Runs k-fold cross validation of @p factory over @p data.
 */
EvalResult crossValidate(const ClassifierFactory &factory,
                         const Dataset &data, const EvalConfig &config);

/**
 * Open-world variant: @p nonSensitiveLabel marks the catch-all class;
 * sensitive/non-sensitive/combined accuracies are averaged over folds.
 */
EvalResult evaluateOpenWorld(const ClassifierFactory &factory,
                             const Dataset &data, Label nonSensitiveLabel,
                             const EvalConfig &config);

} // namespace bigfish::ml

#endif // BF_ML_EVALUATION_HH
