#include "ml/matrix.hh"

#include <algorithm>

#include "base/logging.hh"

namespace bigfish::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    panicIf(data_.size() != rows * cols, "Matrix data size mismatch");
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::randomize(Rng &rng, double stddev)
{
    for (float &v : data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    panicIf(rows_ != other.rows_ || cols_ != other.cols_,
            "Matrix += shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(float value)
{
    for (float &v : data_)
        v *= value;
    return *this;
}

Matrix
Matrix::flattened() const
{
    Matrix out(data_.size(), 1, data_);
    return out;
}

double
Matrix::sum() const
{
    double total = 0.0;
    for (float v : data_)
        total += v;
    return total;
}

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.rows(), "matmul inner dimension mismatch");
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const float aik = a(i, k);
            if (aik == 0.0f)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += aik * b(k, j);
        }
    }
    return c;
}

Matrix
matmulTransA(const Matrix &a, const Matrix &b)
{
    panicIf(a.rows() != b.rows(), "matmulTransA dimension mismatch");
    Matrix c(a.cols(), b.cols());
    for (std::size_t k = 0; k < a.rows(); ++k) {
        for (std::size_t i = 0; i < a.cols(); ++i) {
            const float aki = a(k, i);
            if (aki == 0.0f)
                continue;
            for (std::size_t j = 0; j < b.cols(); ++j)
                c(i, j) += aki * b(k, j);
        }
    }
    return c;
}

Matrix
matmulTransB(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.cols(), "matmulTransB dimension mismatch");
    Matrix c(a.rows(), b.rows());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.rows(); ++j) {
            float sum = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                sum += a(i, k) * b(j, k);
            c(i, j) = sum;
        }
    }
    return c;
}

} // namespace bigfish::ml
