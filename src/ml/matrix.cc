#include "ml/matrix.hh"

#include <algorithm>
#include <span>

#include "base/logging.hh"
#include "base/thread_pool.hh"

namespace bigfish::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data))
{
    panicIf(data_.size() != rows * cols, "Matrix data size mismatch");
}

void
Matrix::resize(std::size_t rows, std::size_t cols, bool zeroed)
{
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
    if (zeroed)
        zero();
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::randomize(Rng &rng, double stddev)
{
    for (float &v : data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    panicIf(rows_ != other.rows_ || cols_ != other.cols_,
            "Matrix += shape mismatch");
    // Size-checked spans: the compiler sees two distinct extents-checked
    // ranges and vectorizes without aliasing stalls.
    std::span<float> dst(data_);
    std::span<const float> src(other.data_);
    panicIf(dst.size() != src.size(), "Matrix += size mismatch");
    float *__restrict d = dst.data();
    const float *__restrict s = src.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        d[i] += s[i];
    return *this;
}

Matrix &
Matrix::operator*=(float value)
{
    std::span<float> dst(data_);
    float *__restrict d = dst.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        d[i] *= value;
    return *this;
}

Matrix
Matrix::flattened() const
{
    Matrix out(data_.size(), 1, data_);
    return out;
}

double
Matrix::sum() const
{
    double total = 0.0;
    for (float v : data_)
        total += v;
    return total;
}

namespace {

/**
 * Kernel tuning constants. KC blocks the inner (k) dimension so the
 * active B panel stays cache-resident across output rows; the parallel
 * threshold keeps small layers on the calling thread where fan-out
 * overhead would dominate.
 */
constexpr std::size_t kBlockK = 240;
constexpr double kParallelMinFlops = 1 << 19;

/** y += a * x over n contiguous floats (vectorizable axpy). */
inline void
axpy(float *__restrict y, const float *__restrict x, float a,
     std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        y[j] += a * x[j];
}

/**
 * Dot product with eight explicit accumulators so the compiler can keep
 * partial sums in vector lanes without reassociating a single serial
 * reduction. The combination order is fixed, so results are identical
 * on every call regardless of threading.
 */
inline float
dotRestrict(const float *__restrict a, const float *__restrict b,
            std::size_t n)
{
    float acc[8] = {0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        for (int lane = 0; lane < 8; ++lane)
            acc[lane] += a[i + lane] * b[i + lane];
    float tail = 0.0f;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    return (((acc[0] + acc[4]) + (acc[1] + acc[5])) +
            ((acc[2] + acc[6]) + (acc[3] + acc[7]))) +
           tail;
}

/**
 * Splits [0, rows) into contiguous row ranges run on the global pool
 * when the kernel is large enough to amortize fan-out. Each output row
 * is produced entirely by one range, so the arithmetic per row — and
 * therefore the result — is independent of the chunking. Templated on
 * the callable so the serial path (every small training-step GEMM)
 * inlines the kernel body instead of calling through std::function.
 */
template <typename Fn>
void
forRowChunks(std::size_t rows, double flops, Fn &&fn)
{
    if (rows < 2 || flops < kParallelMinFlops) {
        fn(0, rows);
        return;
    }
    ThreadPool &pool = globalPool();
    const std::size_t threads =
        static_cast<std::size_t>(pool.threadCount());
    if (threads <= 1) {
        fn(0, rows);
        return;
    }
    const std::size_t chunks = std::min(rows, threads * 2);
    pool.parallelFor(chunks, [&](std::size_t c) {
        fn(rows * c / chunks, rows * (c + 1) / chunks);
    });
}

/**
 * C[r0:r1) += A * B for row-major operands, k-blocked i-k-j order with
 * an optional fused row-bias initialization. The k loop is unrolled
 * four wide so each load/store of a C element amortizes four FMAs —
 * the axpy-per-k form is store-bandwidth-bound, not FLOP-bound.
 */
void
gemmAccRows(float *__restrict c, const float *__restrict a,
            const float *__restrict b, std::size_t r0, std::size_t r1,
            std::size_t k, std::size_t n, const float *__restrict bias)
{
    if (bias != nullptr) {
        for (std::size_t i = r0; i < r1; ++i) {
            float *__restrict crow = c + i * n;
            const float bi = bias[i];
            for (std::size_t j = 0; j < n; ++j)
                crow[j] = bi;
        }
    }
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::size_t k1 = std::min(k, k0 + kBlockK);
        for (std::size_t i = r0; i < r1; ++i) {
            float *__restrict crow = c + i * n;
            const float *__restrict arow = a + i * k;
            std::size_t kk = k0;
            for (; kk + 4 <= k1; kk += 4) {
                const float a0 = arow[kk + 0];
                const float a1 = arow[kk + 1];
                const float a2 = arow[kk + 2];
                const float a3 = arow[kk + 3];
                const float *__restrict b0 = b + kk * n;
                const float *__restrict b1 = b0 + n;
                const float *__restrict b2 = b1 + n;
                const float *__restrict b3 = b2 + n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] +
                               a3 * b3[j];
            }
            for (; kk < k1; ++kk)
                axpy(crow, b + kk * n, arow[kk], n);
        }
    }
}

/**
 * C[r0:r1) += A * B^T: rows of both operands are contiguous dots.
 *
 * k == 1 is the rank-1 outer-product case (dW += dOut * x^T with a
 * single column, the shape every backward pass hits for the conv2 /
 * LSTM / Dense weight gradients); per-element dots there would pay the
 * full accumulator setup for one multiply, so it runs as a contiguous
 * axpy per output row instead.
 */
/**
 * 4x2 register tile of C += A * B^T: four A rows against two B rows in
 * one sweep over k, sixteen accumulator lanes per C element. One dot per
 * C element reads both operand rows once per element (load-bound, ~2
 * loads per FMA); the tile reuses each loaded lane four or two times,
 * which is what moves the weight-gradient GEMMs from ~3.5 to >15 GF/s.
 * Accumulator combination order is fixed, so the result only depends
 * on the (i, j, k) extents, never on threading.
 */
inline void
gemmTransBTile4x2(float *__restrict c, const float *__restrict a,
                  const float *__restrict b, std::size_t i0,
                  std::size_t j0, std::size_t k, std::size_t n)
{
    float acc[4][2][16] = {};
    std::size_t kk = 0;
    for (; kk + 16 <= k; kk += 16) {
        const float *__restrict a0 = a + (i0 + 0) * k + kk;
        const float *__restrict a1 = a + (i0 + 1) * k + kk;
        const float *__restrict a2 = a + (i0 + 2) * k + kk;
        const float *__restrict a3 = a + (i0 + 3) * k + kk;
        const float *__restrict b0 = b + (j0 + 0) * k + kk;
        const float *__restrict b1 = b + (j0 + 1) * k + kk;
        for (int l = 0; l < 16; ++l) {
            acc[0][0][l] += a0[l] * b0[l];
            acc[0][1][l] += a0[l] * b1[l];
            acc[1][0][l] += a1[l] * b0[l];
            acc[1][1][l] += a1[l] * b1[l];
            acc[2][0][l] += a2[l] * b0[l];
            acc[2][1][l] += a2[l] * b1[l];
            acc[3][0][l] += a3[l] * b0[l];
            acc[3][1][l] += a3[l] * b1[l];
        }
    }
    for (int r = 0; r < 4; ++r) {
        for (int col = 0; col < 2; ++col) {
            const float *__restrict lanes = acc[r][col];
            float sum = 0.0f;
            for (int l = 0; l < 16; ++l)
                sum += lanes[l];
            const float *__restrict arow = a + (i0 + r) * k;
            const float *__restrict brow = b + (j0 + col) * k;
            for (std::size_t t = kk; t < k; ++t)
                sum += arow[t] * brow[t];
            c[(i0 + r) * n + (j0 + col)] += sum;
        }
    }
}

void
gemmTransBAccRows(float *__restrict c, const float *__restrict a,
                  const float *__restrict b, std::size_t r0,
                  std::size_t r1, std::size_t k, std::size_t n)
{
    if (k == 1) {
        for (std::size_t i = r0; i < r1; ++i)
            axpy(c + i * n, b, a[i], n);
        return;
    }
    std::size_t i = r0;
    for (; i + 4 <= r1; i += 4) {
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2)
            gemmTransBTile4x2(c, a, b, i, j, k, n);
        for (; j < n; ++j)
            for (std::size_t r = 0; r < 4; ++r)
                c[(i + r) * n + j] +=
                    dotRestrict(a + (i + r) * k, b + j * k, k);
    }
    for (; i < r1; ++i) {
        const float *__restrict arow = a + i * k;
        float *__restrict crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] += dotRestrict(arow, b + j * k, k);
    }
}

/**
 * C[r0:r1) += A^T * B where C has a.cols() rows; k unrolled as above.
 *
 * The n == 1 case (dX = W^T * dOut with a single column, the other
 * common backward shape) is dispatched by accumulateMatmulTransA to
 * gemmTransAVec below instead: running it here would touch A with
 * stride a_cols per element.
 */
void
gemmTransAAccRows(float *__restrict c, const float *__restrict a,
                  const float *__restrict b, std::size_t r0,
                  std::size_t r1, std::size_t a_rows, std::size_t a_cols,
                  std::size_t n)
{
    for (std::size_t k0 = 0; k0 < a_rows; k0 += kBlockK) {
        const std::size_t k1 = std::min(a_rows, k0 + kBlockK);
        for (std::size_t i = r0; i < r1; ++i) {
            float *__restrict crow = c + i * n;
            std::size_t kk = k0;
            for (; kk + 4 <= k1; kk += 4) {
                const float a0 = a[(kk + 0) * a_cols + i];
                const float a1 = a[(kk + 1) * a_cols + i];
                const float a2 = a[(kk + 2) * a_cols + i];
                const float a3 = a[(kk + 3) * a_cols + i];
                const float *__restrict b0 = b + kk * n;
                const float *__restrict b1 = b0 + n;
                const float *__restrict b2 = b1 + n;
                const float *__restrict b3 = b2 + n;
                for (std::size_t j = 0; j < n; ++j)
                    crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] +
                               a3 * b3[j];
            }
            for (; kk < k1; ++kk)
                axpy(crow, b + kk * n, a[kk * a_cols + i], n);
        }
    }
}

/**
 * c += A^T * b for a single column b: accumulates b[r] * row r of A
 * into c, so every access is contiguous. Always runs serially (all
 * rows write the same output vector), which also keeps the summation
 * order — and therefore the bits — identical at every thread count.
 */
void
gemmTransAVec(float *__restrict c, const float *__restrict a,
              const float *__restrict b, std::size_t a_rows,
              std::size_t a_cols)
{
    for (std::size_t r = 0; r < a_rows; ++r)
        axpy(c, a + r * a_cols, b[r], a_cols);
}

double
gemmFlops(std::size_t m, std::size_t k, std::size_t n)
{
    return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n);
}

} // namespace

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.rows(), "matmul inner dimension mismatch");
    if (b.cols() == 1)
        return gemv(a, b);
    Matrix c(a.rows(), b.cols());
    forRowChunks(a.rows(), gemmFlops(a.rows(), a.cols(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmAccRows(c.data(), a.data(), b.data(), r0, r1,
                                 a.cols(), b.cols(), nullptr);
                 });
    return c;
}

Matrix
matmulBias(const Matrix &a, const Matrix &b, const Matrix &bias)
{
    panicIf(a.cols() != b.rows(), "matmulBias inner dimension mismatch");
    panicIf(bias.rows() != a.rows() || bias.cols() != 1,
            "matmulBias bias must be (rows x 1)");
    if (b.cols() == 1)
        return gemvBias(a, b, bias);
    Matrix c(a.rows(), b.cols());
    forRowChunks(a.rows(), gemmFlops(a.rows(), a.cols(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmAccRows(c.data(), a.data(), b.data(), r0, r1,
                                 a.cols(), b.cols(), bias.data());
                 });
    return c;
}

Matrix
matmulTransA(const Matrix &a, const Matrix &b)
{
    panicIf(a.rows() != b.rows(), "matmulTransA dimension mismatch");
    Matrix c(a.cols(), b.cols());
    accumulateMatmulTransA(c, a, b);
    return c;
}

Matrix
matmulTransB(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.cols(), "matmulTransB dimension mismatch");
    Matrix c(a.rows(), b.rows());
    accumulateMatmulTransB(c, a, b);
    return c;
}

void
accumulateMatmul(Matrix &c, const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.rows(), "accumulateMatmul dimension mismatch");
    panicIf(c.rows() != a.rows() || c.cols() != b.cols(),
            "accumulateMatmul output shape mismatch");
    forRowChunks(a.rows(), gemmFlops(a.rows(), a.cols(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmAccRows(c.data(), a.data(), b.data(), r0, r1,
                                 a.cols(), b.cols(), nullptr);
                 });
}

void
accumulateMatmulTransA(Matrix &c, const Matrix &a, const Matrix &b)
{
    panicIf(a.rows() != b.rows(),
            "accumulateMatmulTransA dimension mismatch");
    panicIf(c.rows() != a.cols() || c.cols() != b.cols(),
            "accumulateMatmulTransA output shape mismatch");
    if (b.cols() == 1) {
        gemmTransAVec(c.data(), a.data(), b.data(), a.rows(), a.cols());
        return;
    }
    forRowChunks(a.cols(), gemmFlops(a.cols(), a.rows(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmTransAAccRows(c.data(), a.data(), b.data(), r0,
                                       r1, a.rows(), a.cols(), b.cols());
                 });
}

void
accumulateMatmulTransB(Matrix &c, const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.cols(),
            "accumulateMatmulTransB dimension mismatch");
    panicIf(c.rows() != a.rows() || c.cols() != b.rows(),
            "accumulateMatmulTransB output shape mismatch");
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    if (k > 1 && k <= 32 && n >= 16) {
        // Short-k dots waste their accumulator setup; materialize B^T
        // (small: n*k floats) once and run the wide-row kernel instead.
        // The transpose happens before any fan-out, so parallel row
        // chunks only ever read it.
        static thread_local std::vector<float> scratch;
        scratch.resize(k * n);
        const float *__restrict bd = b.data();
        float *__restrict bt = scratch.data();
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t kk = 0; kk < k; ++kk)
                bt[kk * n + j] = bd[j * k + kk];
        forRowChunks(a.rows(), gemmFlops(a.rows(), k, n),
                     [&](std::size_t r0, std::size_t r1) {
                         gemmAccRows(c.data(), a.data(), scratch.data(),
                                     r0, r1, k, n, nullptr);
                     });
        return;
    }
    forRowChunks(a.rows(), gemmFlops(a.rows(), k, n),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmTransBAccRows(c.data(), a.data(), b.data(), r0,
                                       r1, k, n);
                 });
}

Matrix
gemv(const Matrix &a, const Matrix &x)
{
    panicIf(x.cols() != 1, "gemv expects a column vector");
    panicIf(a.cols() != x.rows(), "gemv dimension mismatch");
    Matrix y(a.rows(), 1);
    const float *__restrict ad = a.data();
    const float *__restrict xd = x.data();
    float *__restrict yd = y.data();
    const std::size_t k = a.cols();
    forRowChunks(a.rows(), gemmFlops(a.rows(), k, 1),
                 [&](std::size_t r0, std::size_t r1) {
                     for (std::size_t i = r0; i < r1; ++i)
                         yd[i] = dotRestrict(ad + i * k, xd, k);
                 });
    return y;
}

Matrix
gemvBias(const Matrix &a, const Matrix &x, const Matrix &b)
{
    panicIf(x.cols() != 1, "gemvBias expects a column vector");
    panicIf(a.cols() != x.rows(), "gemvBias dimension mismatch");
    panicIf(b.rows() != a.rows() || b.cols() != 1,
            "gemvBias bias must be (rows x 1)");
    Matrix y(a.rows(), 1);
    const float *__restrict ad = a.data();
    const float *__restrict xd = x.data();
    const float *__restrict bd = b.data();
    float *__restrict yd = y.data();
    const std::size_t k = a.cols();
    forRowChunks(a.rows(), gemmFlops(a.rows(), k, 1),
                 [&](std::size_t r0, std::size_t r1) {
                     for (std::size_t i = r0; i < r1; ++i)
                         yd[i] = bd[i] + dotRestrict(ad + i * k, xd, k);
                 });
    return y;
}

void
reluInPlace(Matrix &m)
{
    float *__restrict d = m.data();
    const std::size_t n = m.size();
    for (std::size_t i = 0; i < n; ++i)
        d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

Matrix
matmulReference(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.rows(),
            "matmulReference inner dimension mismatch");
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            float sum = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                sum += a(i, k) * b(k, j);
            c(i, j) = sum;
        }
    }
    return c;
}

} // namespace bigfish::ml
