#include "ml/matrix.hh"

#include <algorithm>
#include <span>

#include "base/logging.hh"
#include "base/thread_pool.hh"
#include "ml/kernels.hh"

namespace bigfish::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(data.begin(), data.end())
{
    panicIf(data_.size() != rows * cols, "Matrix data size mismatch");
}

void
Matrix::resize(std::size_t rows, std::size_t cols, bool zeroed)
{
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
    if (zeroed)
        zero();
}

void
Matrix::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::randomize(Rng &rng, double stddev)
{
    for (float &v : data_)
        v = static_cast<float>(rng.normal(0.0, stddev));
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    panicIf(rows_ != other.rows_ || cols_ != other.cols_,
            "Matrix += shape mismatch");
    // Size-checked spans: the compiler sees two distinct extents-checked
    // ranges and vectorizes without aliasing stalls.
    std::span<float> dst(data_);
    std::span<const float> src(other.data_);
    panicIf(dst.size() != src.size(), "Matrix += size mismatch");
    float *__restrict d = dst.data();
    const float *__restrict s = src.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        d[i] += s[i];
    return *this;
}

Matrix &
Matrix::operator*=(float value)
{
    std::span<float> dst(data_);
    float *__restrict d = dst.data();
    for (std::size_t i = 0; i < dst.size(); ++i)
        d[i] *= value;
    return *this;
}

Matrix
Matrix::flattened() const
{
    Matrix out;
    out.rows_ = data_.size();
    out.cols_ = 1;
    out.data_ = data_;
    return out;
}

double
Matrix::sum() const
{
    double total = 0.0;
    for (float v : data_)
        total += v;
    return total;
}

namespace {

/**
 * Kernel tuning constants. KC blocks the inner (k) dimension so the
 * active B panel stays cache-resident across output rows; the parallel
 * threshold keeps small layers on the calling thread where fan-out
 * overhead would dominate.
 */
constexpr std::size_t kBlockK = 240;
constexpr double kParallelMinFlops = 1 << 19;

// All floating-point arithmetic below delegates to the runtime-
// dispatched SIMD kernel layer; this file keeps only the blocking,
// chunking and threading structure. kernels::dot's fixed 8-lane
// accumulation makes every reduction independent of both the dispatch
// ISA and the thread count.

/**
 * Splits [0, rows) into contiguous row ranges run on the global pool
 * when the kernel is large enough to amortize fan-out. Each output row
 * is produced entirely by one range, so the arithmetic per row — and
 * therefore the result — is independent of the chunking. Templated on
 * the callable so the serial path (every small training-step GEMM)
 * inlines the kernel body instead of calling through std::function.
 */
template <typename Fn>
void
forRowChunks(std::size_t rows, double flops, Fn &&fn)
{
    if (rows < 2 || flops < kParallelMinFlops) {
        fn(0, rows);
        return;
    }
    ThreadPool &pool = globalPool();
    const std::size_t threads =
        static_cast<std::size_t>(pool.threadCount());
    if (threads <= 1) {
        fn(0, rows);
        return;
    }
    const std::size_t chunks = std::min(rows, threads * 2);
    pool.parallelFor(chunks, [&](std::size_t c) {
        fn(rows * c / chunks, rows * (c + 1) / chunks);
    });
}

/**
 * C[r0:r1) += A * B for row-major operands, k-blocked i-k-j order with
 * an optional fused row-bias initialization. The k loop is unrolled
 * four wide so each load/store of a C element amortizes four FMAs —
 * the axpy-per-k form is store-bandwidth-bound, not FLOP-bound.
 */
void
gemmAccRows(float *__restrict c, const float *__restrict a,
            const float *__restrict b, std::size_t r0, std::size_t r1,
            std::size_t k, std::size_t n, const float *__restrict bias)
{
    if (bias != nullptr) {
        for (std::size_t i = r0; i < r1; ++i) {
            float *__restrict crow = c + i * n;
            const float bi = bias[i];
            for (std::size_t j = 0; j < n; ++j)
                crow[j] = bi;
        }
    }
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::size_t k1 = std::min(k, k0 + kBlockK);
        // One dispatched kernel call per output row: the panel runs the
        // axpy4-per-4-k / axpy-remainder sequence inside the kernel
        // layer, so the ISA switch is paid once per row, not per 4 k's.
        for (std::size_t i = r0; i < r1; ++i)
            kernels::gemmRowPanel(c + i * n, a + i * k, 1, b, k0, k1, n);
    }
}

/**
 * C[r0:r1) += A * B^T: rows of both operands are contiguous dots,
 * dispatched through the kernel layer's 4x2 register tile where the
 * extents allow (kernels::dotTile4x2 accumulates every C element
 * exactly like kernels::dot of the same operand rows, so the tile/dot
 * split below is a pure bandwidth optimization with no numeric
 * effect — at any chunk boundary, thread count, or ISA).
 *
 * k == 1 is the rank-1 outer-product case (dW += dOut * x^T with a
 * single column, the shape every backward pass hits for the conv2 /
 * LSTM / Dense weight gradients); per-element dots there would pay the
 * full accumulator setup for one multiply, so it runs as a contiguous
 * axpy per output row instead.
 */

void
gemmTransBAccRows(float *__restrict c, const float *__restrict a,
                  const float *__restrict b, std::size_t r0,
                  std::size_t r1, std::size_t k, std::size_t n)
{
    if (k == 1) {
        for (std::size_t i = r0; i < r1; ++i)
            kernels::axpy(c + i * n, b, a[i], n);
        return;
    }
    std::size_t i = r0;
    for (; i + 4 <= r1; i += 4) {
        std::size_t j = 0;
        for (; j + 2 <= n; j += 2)
            kernels::dotTile4x2(c, a, b, i, j, k, n);
        for (; j < n; ++j)
            for (std::size_t r = 0; r < 4; ++r)
                c[(i + r) * n + j] +=
                    kernels::dot(a + (i + r) * k, b + j * k, k);
    }
    for (; i < r1; ++i) {
        const float *__restrict arow = a + i * k;
        float *__restrict crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] += kernels::dot(arow, b + j * k, k);
    }
}

/**
 * C[r0:r1) += A^T * B where C has a.cols() rows; k unrolled as above.
 *
 * The n == 1 case (dX = W^T * dOut with a single column, the other
 * common backward shape) is dispatched by accumulateMatmulTransA to
 * gemmTransAVec below instead: running it here would touch A with
 * stride a_cols per element.
 */
void
gemmTransAAccRows(float *__restrict c, const float *__restrict a,
                  const float *__restrict b, std::size_t r0,
                  std::size_t r1, std::size_t a_rows, std::size_t a_cols,
                  std::size_t n)
{
    for (std::size_t k0 = 0; k0 < a_rows; k0 += kBlockK) {
        const std::size_t k1 = std::min(a_rows, k0 + kBlockK);
        // Column i of A walked with stride a_cols; one dispatch per row.
        for (std::size_t i = r0; i < r1; ++i)
            kernels::gemmRowPanel(c + i * n, a + i, a_cols, b, k0, k1, n);
    }
}

/**
 * c += A^T * b for a single column b: accumulates b[r] * row r of A
 * into c, so every access is contiguous. Always runs serially (all
 * rows write the same output vector), which also keeps the summation
 * order — and therefore the bits — identical at every thread count.
 */
void
gemmTransAVec(float *__restrict c, const float *__restrict a,
              const float *__restrict b, std::size_t a_rows,
              std::size_t a_cols)
{
    for (std::size_t r = 0; r < a_rows; ++r)
        kernels::axpy(c, a + r * a_cols, b[r], a_cols);
}

double
gemmFlops(std::size_t m, std::size_t k, std::size_t n)
{
    return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n);
}

} // namespace

Matrix
matmul(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.rows(), "matmul inner dimension mismatch");
    if (b.cols() == 1)
        return gemv(a, b);
    Matrix c(a.rows(), b.cols());
    forRowChunks(a.rows(), gemmFlops(a.rows(), a.cols(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmAccRows(c.data(), a.data(), b.data(), r0, r1,
                                 a.cols(), b.cols(), nullptr);
                 });
    return c;
}

Matrix
matmulBias(const Matrix &a, const Matrix &b, const Matrix &bias)
{
    panicIf(a.cols() != b.rows(), "matmulBias inner dimension mismatch");
    panicIf(bias.rows() != a.rows() || bias.cols() != 1,
            "matmulBias bias must be (rows x 1)");
    if (b.cols() == 1)
        return gemvBias(a, b, bias);
    Matrix c(a.rows(), b.cols());
    forRowChunks(a.rows(), gemmFlops(a.rows(), a.cols(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmAccRows(c.data(), a.data(), b.data(), r0, r1,
                                 a.cols(), b.cols(), bias.data());
                 });
    return c;
}

Matrix
matmulTransA(const Matrix &a, const Matrix &b)
{
    panicIf(a.rows() != b.rows(), "matmulTransA dimension mismatch");
    Matrix c(a.cols(), b.cols());
    accumulateMatmulTransA(c, a, b);
    return c;
}

Matrix
matmulTransB(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.cols(), "matmulTransB dimension mismatch");
    Matrix c(a.rows(), b.rows());
    accumulateMatmulTransB(c, a, b);
    return c;
}

void
accumulateMatmul(Matrix &c, const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.rows(), "accumulateMatmul dimension mismatch");
    panicIf(c.rows() != a.rows() || c.cols() != b.cols(),
            "accumulateMatmul output shape mismatch");
    forRowChunks(a.rows(), gemmFlops(a.rows(), a.cols(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmAccRows(c.data(), a.data(), b.data(), r0, r1,
                                 a.cols(), b.cols(), nullptr);
                 });
}

void
accumulateMatmulTransA(Matrix &c, const Matrix &a, const Matrix &b)
{
    panicIf(a.rows() != b.rows(),
            "accumulateMatmulTransA dimension mismatch");
    panicIf(c.rows() != a.cols() || c.cols() != b.cols(),
            "accumulateMatmulTransA output shape mismatch");
    if (b.cols() == 1) {
        gemmTransAVec(c.data(), a.data(), b.data(), a.rows(), a.cols());
        return;
    }
    forRowChunks(a.cols(), gemmFlops(a.cols(), a.rows(), b.cols()),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmTransAAccRows(c.data(), a.data(), b.data(), r0,
                                       r1, a.rows(), a.cols(), b.cols());
                 });
}

void
accumulateMatmulTransB(Matrix &c, const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.cols(),
            "accumulateMatmulTransB dimension mismatch");
    panicIf(c.rows() != a.rows() || c.cols() != b.rows(),
            "accumulateMatmulTransB output shape mismatch");
    const std::size_t k = a.cols();
    const std::size_t n = b.rows();
    if (k > 1 && k <= 32 && n >= 16) {
        // Short-k dots waste their accumulator setup; materialize B^T
        // (small: n*k floats) once and run the wide-row kernel instead.
        // The transpose happens before any fan-out, so parallel row
        // chunks only ever read it.
        static thread_local std::vector<float> scratch;
        scratch.resize(k * n);
        const float *__restrict bd = b.data();
        float *__restrict bt = scratch.data();
        for (std::size_t j = 0; j < n; ++j)
            for (std::size_t kk = 0; kk < k; ++kk)
                bt[kk * n + j] = bd[j * k + kk];
        forRowChunks(a.rows(), gemmFlops(a.rows(), k, n),
                     [&](std::size_t r0, std::size_t r1) {
                         gemmAccRows(c.data(), a.data(), scratch.data(),
                                     r0, r1, k, n, nullptr);
                     });
        return;
    }
    forRowChunks(a.rows(), gemmFlops(a.rows(), k, n),
                 [&](std::size_t r0, std::size_t r1) {
                     gemmTransBAccRows(c.data(), a.data(), b.data(), r0,
                                       r1, k, n);
                 });
}

Matrix
gemv(const Matrix &a, const Matrix &x)
{
    panicIf(x.cols() != 1, "gemv expects a column vector");
    panicIf(a.cols() != x.rows(), "gemv dimension mismatch");
    Matrix y(a.rows(), 1);
    const float *__restrict ad = a.data();
    const float *__restrict xd = x.data();
    float *__restrict yd = y.data();
    const std::size_t k = a.cols();
    forRowChunks(a.rows(), gemmFlops(a.rows(), k, 1),
                 [&](std::size_t r0, std::size_t r1) {
                     for (std::size_t i = r0; i < r1; ++i)
                         yd[i] = kernels::dot(ad + i * k, xd, k);
                 });
    return y;
}

Matrix
gemvBias(const Matrix &a, const Matrix &x, const Matrix &b)
{
    panicIf(x.cols() != 1, "gemvBias expects a column vector");
    panicIf(a.cols() != x.rows(), "gemvBias dimension mismatch");
    panicIf(b.rows() != a.rows() || b.cols() != 1,
            "gemvBias bias must be (rows x 1)");
    Matrix y(a.rows(), 1);
    const float *__restrict ad = a.data();
    const float *__restrict xd = x.data();
    const float *__restrict bd = b.data();
    float *__restrict yd = y.data();
    const std::size_t k = a.cols();
    forRowChunks(a.rows(), gemmFlops(a.rows(), k, 1),
                 [&](std::size_t r0, std::size_t r1) {
                     for (std::size_t i = r0; i < r1; ++i)
                         yd[i] = bd[i] + kernels::dot(ad + i * k, xd, k);
                 });
    return y;
}

void
reluInPlace(Matrix &m)
{
    kernels::relu(m.data(), m.size());
}

Matrix
matmulReference(const Matrix &a, const Matrix &b)
{
    panicIf(a.cols() != b.rows(),
            "matmulReference inner dimension mismatch");
    Matrix c(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            float sum = 0.0f;
            for (std::size_t k = 0; k < a.cols(); ++k)
                sum += a(i, k) * b(k, j);
            c(i, j) = sum;
        }
    }
    return c;
}

} // namespace bigfish::ml
