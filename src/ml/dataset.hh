/**
 * @file
 * Dataset container and split utilities (train/validation splits and the
 * paper's 10-fold cross-validation protocol).
 */

#ifndef BF_ML_DATASET_HH
#define BF_ML_DATASET_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace bigfish::ml {

/** A labeled dataset of fixed-length feature vectors. */
struct Dataset
{
    std::vector<std::vector<double>> features;
    std::vector<Label> labels;
    int numClasses = 0;

    std::size_t size() const { return features.size(); }
    std::size_t featureLen() const
    {
        return features.empty() ? 0 : features.front().size();
    }

    /** Appends one sample. */
    void add(std::vector<double> x, Label y);

    /** The subset selected by @p indices. */
    Dataset subset(const std::vector<std::size_t> &indices) const;
};

/** Indices for one cross-validation fold. */
struct FoldSplit
{
    std::vector<std::size_t> train;
    std::vector<std::size_t> validation;
    std::vector<std::size_t> test;
};

/**
 * Builds the paper's k-fold protocol: the dataset is shuffled and split
 * into k folds; each fold serves once as the held-out test set while the
 * remainder is further split into train (1 - valFraction) and validation
 * (valFraction) for early stopping.
 *
 * @param n Number of samples.
 * @param folds k (paper: 10).
 * @param valFraction Validation share of the non-test data (paper: ~0.1).
 * @param seed Shuffle seed.
 */
std::vector<FoldSplit> kFoldSplits(std::size_t n, int folds,
                                   double valFraction, std::uint64_t seed);

} // namespace bigfish::ml

#endif // BF_ML_DATASET_HH
