/**
 * @file
 * A minimal dense float matrix plus the optimized kernels the
 * from-scratch neural network runs on.
 *
 * Row-major and value-semantic, with 32-byte-aligned storage
 * (base/aligned.hh) so the SIMD kernel layer's 256-bit accesses start
 * aligned. The GEMM entry points below keep the blocking/threading
 * structure and delegate all floating-point arithmetic to ml/kernels.hh,
 * which dispatches per-ISA implementations that are bit-identical by
 * construction; matmulReference() keeps the naive triple loop as the
 * correctness oracle for property tests and the old-vs-new
 * microbenchmarks. Row-parallelism splits output rows only — every
 * output element is accumulated in the same order at any thread count,
 * so results are bit-identical whether the pool has 1 or N threads.
 * Convention used by the layers: a 1-D time series sample is a
 * (channels x time) matrix; a feature vector is (features x 1).
 */

#ifndef BF_ML_MATRIX_HH
#define BF_ML_MATRIX_HH

#include <cstddef>
#include <vector>

#include "base/aligned.hh"
#include "base/rng.hh"

namespace bigfish::ml {

/** Dense row-major float matrix. */
class Matrix
{
  public:
    /** An empty 0x0 matrix. */
    Matrix() = default;

    /** A zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Builds from explicit data (size must equal rows*cols). */
    Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    float operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /**
     * Reshapes to rows x cols, reusing the existing allocation when it
     * is large enough (hot-path buffers). Contents are unspecified
     * afterwards unless @p zeroed is true.
     */
    void resize(std::size_t rows, std::size_t cols, bool zeroed = false);

    /** Sets every element to @p value. */
    void fill(float value);

    /** Sets every element to zero. */
    void zero() { fill(0.0f); }

    /** Fills with N(0, stddev) deviates (weight initialization). */
    void randomize(Rng &rng, double stddev);

    /** Element-wise in-place addition; shapes must match. */
    Matrix &operator+=(const Matrix &other);

    /** Multiplies every element by @p value. */
    Matrix &operator*=(float value);

    /** Reshapes to a (size x 1) column vector view-copy. */
    Matrix flattened() const;

    /** Sum of all elements. */
    double sum() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    AlignedVector<float> data_;
};

/** C = A * B (inner dimensions must agree). */
Matrix matmul(const Matrix &a, const Matrix &b);

/**
 * Fused C = A * B + bias: @p bias is a (rows x 1) column broadcast
 * across every output column (the GEMM epilogue the conv/dense/recurrent
 * layers all need, saving one full pass over the output).
 */
Matrix matmulBias(const Matrix &a, const Matrix &b, const Matrix &bias);

/** C = A^T * B. */
Matrix matmulTransA(const Matrix &a, const Matrix &b);

/** C = A * B^T. */
Matrix matmulTransB(const Matrix &a, const Matrix &b);

/** C += A * B (shapes must already agree). */
void accumulateMatmul(Matrix &c, const Matrix &a, const Matrix &b);

/** C += A^T * B. */
void accumulateMatmulTransA(Matrix &c, const Matrix &a, const Matrix &b);

/** C += A * B^T. */
void accumulateMatmulTransB(Matrix &c, const Matrix &a, const Matrix &b);

/**
 * Matrix-vector product y = A * x for a (n x 1) column @p x — the
 * recurrent-layer hot path, dispatched to a dot-product kernel instead
 * of the general GEMM.
 */
Matrix gemv(const Matrix &a, const Matrix &x);

/** Fused y = A * x + b for (n x 1) columns. */
Matrix gemvBias(const Matrix &a, const Matrix &x, const Matrix &b);

/** max(v, 0) over every element, in place (vectorizable epilogue). */
void reluInPlace(Matrix &m);

/**
 * The naive i-j-k triple-loop matmul the optimized kernels replaced.
 * Kept as the oracle for kernel property tests and the old-vs-new
 * microbenchmark; never used on the hot path.
 */
Matrix matmulReference(const Matrix &a, const Matrix &b);

} // namespace bigfish::ml

#endif // BF_ML_MATRIX_HH
