/**
 * @file
 * A minimal dense float matrix for the from-scratch neural network.
 *
 * Row-major, value-semantic, no expression templates: the models in this
 * reproduction are small (hundreds of KFLOPs per sample), so clarity and
 * testability win over BLAS-grade performance. Convention used by the
 * layers: a 1-D time series sample is a (channels x time) matrix; a
 * feature vector is (features x 1).
 */

#ifndef BF_ML_MATRIX_HH
#define BF_ML_MATRIX_HH

#include <cstddef>
#include <vector>

#include "base/rng.hh"

namespace bigfish::ml {

/** Dense row-major float matrix. */
class Matrix
{
  public:
    /** An empty 0x0 matrix. */
    Matrix() = default;

    /** A zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Builds from explicit data (size must equal rows*cols). */
    Matrix(std::size_t rows, std::size_t cols, std::vector<float> data);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }

    float &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    float operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Sets every element to @p value. */
    void fill(float value);

    /** Sets every element to zero. */
    void zero() { fill(0.0f); }

    /** Fills with N(0, stddev) deviates (weight initialization). */
    void randomize(Rng &rng, double stddev);

    /** Element-wise in-place addition; shapes must match. */
    Matrix &operator+=(const Matrix &other);

    /** Multiplies every element by @p value. */
    Matrix &operator*=(float value);

    /** Reshapes to a (size x 1) column vector view-copy. */
    Matrix flattened() const;

    /** Sum of all elements. */
    double sum() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** C = A * B (inner dimensions must agree). */
Matrix matmul(const Matrix &a, const Matrix &b);

/** C = A^T * B. */
Matrix matmulTransA(const Matrix &a, const Matrix &b);

/** C = A * B^T. */
Matrix matmulTransB(const Matrix &a, const Matrix &b);

} // namespace bigfish::ml

#endif // BF_ML_MATRIX_HH
