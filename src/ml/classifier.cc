#include "ml/classifier.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "base/logging.hh"
#include "ml/conv.hh"
#include "ml/lstm.hh"
#include "ml/serialize.hh"

namespace bigfish::ml {

namespace {

/** Bit-exact hexfloat text for canon lines and weight dumps. */
std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/**
 * Packs the selected samples column-wise into one (rows x B*steps)
 * minibatch matrix (see layer.hh for the batched layout).
 */
Matrix
packBatch(const std::vector<Matrix> &inputs, const std::size_t *idx,
          std::size_t count)
{
    const std::size_t rows = inputs[idx[0]].rows();
    const std::size_t steps = inputs[idx[0]].cols();
    Matrix out(rows, count * steps);
    float *__restrict dst = out.data();
    for (std::size_t r = 0; r < rows; ++r) {
        float *__restrict drow = dst + r * count * steps;
        for (std::size_t s = 0; s < count; ++s) {
            const float *__restrict src = inputs[idx[s]].data() + r * steps;
            std::copy(src, src + steps, drow + s * steps);
        }
    }
    return out;
}

} // namespace

Label
Classifier::predict(const std::vector<double> &x) const
{
    const auto scores = predictScores(x);
    panicIf(scores.empty(), "classifier returned no scores");
    return static_cast<Label>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
}

CnnLstmParams
CnnLstmParams::paperScale()
{
    CnnLstmParams p;
    p.convFilters = 256;
    p.lstmUnits = 32;
    p.dropout = 0.7;
    p.learningRate = 1e-3;
    return p;
}

CnnLstmParams
CnnLstmParams::traceDefaults()
{
    CnnLstmParams p;
    p.inputChannels = 2;
    return p;
}

CnnLstmClassifier::CnnLstmClassifier(int num_classes,
                                     std::size_t feature_len,
                                     CnnLstmParams params,
                                     std::uint64_t seed)
    : numClasses_(num_classes), featureLen_(feature_len), params_(params),
      seed_(seed)
{
    fatalIf(num_classes < 2, "need at least two classes");
    fatalIf(params_.inputChannels == 0 ||
                feature_len % params_.inputChannels != 0,
            "feature length must be a multiple of the channel count");
    const std::size_t steps = feature_len / params_.inputChannels;
    fatalIf(steps < params.convKernel * 2,
            "feature length too short for the convolution front-end");

    Rng rng(seed);
    const std::size_t f = params_.convFilters;
    auto conv1 = std::make_unique<Conv1D>(params_.inputChannels, f,
                                          params_.convKernel,
                                          params_.convStride, rng);
    std::size_t t = conv1->outLength(steps);
    net_.add(std::move(conv1));
    net_.add(std::make_unique<ReLU>());
    net_.add(std::make_unique<MaxPool1D>(params_.poolSize));
    t = std::max<std::size_t>(t / params_.poolSize, 1);

    auto conv2 = std::make_unique<Conv1D>(f, f, params_.convKernel,
                                          params_.convStride, rng);
    t = conv2->outLength(t);
    net_.add(std::move(conv2));
    net_.add(std::make_unique<ReLU>());
    net_.add(std::make_unique<MaxPool1D>(params_.poolSize));
    t = std::max<std::size_t>(t / params_.poolSize, 1);

    net_.add(std::make_unique<Lstm>(f, params_.lstmUnits, rng));
    net_.add(std::make_unique<Dropout>(params_.dropout, rng()));
    net_.add(std::make_unique<Dense>(params_.lstmUnits,
                                     static_cast<std::size_t>(num_classes),
                                     rng));
}

Matrix
CnnLstmClassifier::toInput(const std::vector<double> &x) const
{
    panicIf(x.size() != featureLen_, "feature length mismatch");
    const std::size_t channels = params_.inputChannels;
    const std::size_t steps = featureLen_ / channels;
    Matrix in(channels, steps);
    // Features are concatenated channel-major: channel c occupies
    // x[c*steps .. (c+1)*steps).
    for (std::size_t c = 0; c < channels; ++c)
        for (std::size_t t = 0; t < steps; ++t)
            in(c, t) = static_cast<float>(x[c * steps + t]);
    return in;
}

double
CnnLstmClassifier::accuracy(const Dataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        if (predict(data.features[i]) == data.labels[i])
            ++hits;
    return static_cast<double>(hits) / static_cast<double>(data.size());
}

double
CnnLstmClassifier::accuracyOn(const std::vector<Matrix> &inputs,
                              const std::vector<Label> &labels) const
{
    if (inputs.empty())
        return 0.0;
    std::size_t hits = 0;
    if (net_.supportsBatch()) {
        const std::size_t chunk =
            static_cast<std::size_t>(std::max(params_.batchSize, 1));
        std::vector<std::size_t> idx(inputs.size());
        std::iota(idx.begin(), idx.end(), 0);
        for (std::size_t i = 0; i < inputs.size(); i += chunk) {
            const std::size_t count = std::min(chunk, inputs.size() - i);
            const Matrix logits =
                net_.forwardBatch(packBatch(inputs, idx.data() + i, count),
                                  count, false);
            for (std::size_t s = 0; s < count; ++s) {
                std::size_t best = 0;
                for (std::size_t c = 1; c < logits.rows(); ++c)
                    if (logits(c, s) > logits(best, s))
                        best = c;
                if (static_cast<Label>(best) == labels[i + s])
                    ++hits;
            }
        }
    } else {
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const Matrix logits = net_.forward(inputs[i], false);
            std::size_t best = 0;
            for (std::size_t c = 1; c < logits.rows(); ++c)
                if (logits(c, 0) > logits(best, 0))
                    best = c;
            if (static_cast<Label>(best) == labels[i])
                ++hits;
        }
    }
    return static_cast<double>(hits) / static_cast<double>(inputs.size());
}

void
CnnLstmClassifier::fit(const Dataset &train, const Dataset &validation)
{
    fatalIf(train.size() == 0, "empty training set");
    Adam adam(params_.learningRate);
    Rng rng(mix64(seed_) ^ 0x7a1717c9ULL);

    double best_val = -1.0;
    int epochs_since_best = 0;
    history_.clear();
    skippedBatches_ = 0;

    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    // Convert every sample to the network's float input layout once; the
    // conversion used to be paid per sample per epoch.
    std::vector<Matrix> inputs;
    inputs.reserve(train.size());
    for (const auto &f : train.features)
        inputs.push_back(toInput(f));
    std::vector<Matrix> val_inputs;
    val_inputs.reserve(validation.size());
    for (const auto &f : validation.features)
        val_inputs.push_back(toInput(f));

    // Minibatches run through the whole network as one column-stacked
    // matrix when every layer supports it: the per-layer GEMMs see B
    // columns at once instead of B separate matrix-vector products.
    const bool batched = net_.supportsBatch();
    std::vector<Label> batch_labels;

    // The layer set is fixed for the whole fit, so gather the parameter
    // and gradient pointer lists once instead of re-walking the layers
    // (and re-allocating both vectors) on every optimizer step.
    const std::vector<Matrix *> param_ptrs = net_.params();
    const std::vector<Matrix *> grad_ptrs = net_.grads();

    Matrix grad;
    for (int epoch = 0; epoch < params_.maxEpochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        double epoch_loss = 0.0;
        std::size_t loss_samples = 0;
        std::size_t i = 0;
        while (i < order.size()) {
            net_.zeroGrads();
            const std::size_t batch_end = std::min(
                i + static_cast<std::size_t>(params_.batchSize),
                order.size());
            const std::size_t batch = batch_end - i;
            double batch_loss = 0.0;
            if (batched) {
                batch_labels.resize(batch);
                for (std::size_t j = 0; j < batch; ++j)
                    batch_labels[j] = train.labels[order[i + j]];
                const Matrix logits = net_.forwardBatch(
                    packBatch(inputs, order.data() + i, batch), batch,
                    true);
                batch_loss = SoftmaxCrossEntropy::lossAndGradientBatch(
                    logits, batch_labels, grad);
                net_.backwardBatch(grad, batch);
                i = batch_end;
            } else {
                for (; i < batch_end; ++i) {
                    const std::size_t s = order[i];
                    const Matrix logits = net_.forward(inputs[s], true);
                    batch_loss += SoftmaxCrossEntropy::lossAndGradient(
                        logits, train.labels[s], grad);
                    net_.backward(grad);
                }
            }
            // A NaN in the loss or gradients would poison the weights
            // permanently; skip the batch and keep training.
            const bool stepped =
                std::isfinite(batch_loss) &&
                adam.stepIfFinite(param_ptrs, grad_ptrs,
                                  1.0 / static_cast<double>(batch));
            if (!stepped) {
                ++skippedBatches_;
                warnOnce("ml/non-finite-batch",
                         "skipping training batch(es) with non-finite "
                         "loss or gradients");
                continue;
            }
            epoch_loss += batch_loss;
            loss_samples += batch;
        }

        // Early stopping: stop when validation accuracy stops improving.
        const double val_acc =
            validation.size() > 0 ? accuracyOn(val_inputs, validation.labels)
                                  : accuracyOn(inputs, train.labels);
        history_.push_back(
            {loss_samples > 0
                 ? epoch_loss / static_cast<double>(loss_samples)
                 : 0.0,
             val_acc});
        if (val_acc > best_val + 1e-9) {
            best_val = val_acc;
            epochs_since_best = 0;
        } else if (++epochs_since_best >= params_.patience) {
            break;
        }
    }
}

std::vector<double>
CnnLstmClassifier::predictScores(const std::vector<double> &x) const
{
    const Matrix logits = net_.forward(toInput(x), false);
    return SoftmaxCrossEntropy::probabilities(logits);
}

std::string
CnnLstmClassifier::saveModel() const
{
    std::ostringstream out;
    if (!saveWeights(out, net_).isOk())
        return {};
    return out.str();
}

bool
CnnLstmClassifier::loadModel(const std::string &text)
{
    std::istringstream in(text);
    return loadWeights(in, net_).isOk();
}

MlpClassifier::MlpClassifier(int num_classes, std::size_t feature_len,
                             MlpParams params, std::uint64_t seed)
    : numClasses_(num_classes), featureLen_(feature_len), params_(params),
      seed_(seed)
{
    fatalIf(num_classes < 2, "need at least two classes");
    Rng rng(seed);
    net_.add(std::make_unique<Dense>(feature_len, params_.hidden, rng));
    net_.add(std::make_unique<ReLU>());
    net_.add(std::make_unique<Dropout>(params_.dropout, rng()));
    net_.add(std::make_unique<Dense>(params_.hidden,
                                     static_cast<std::size_t>(num_classes),
                                     rng));
}

Matrix
MlpClassifier::toInput(const std::vector<double> &x) const
{
    panicIf(x.size() != featureLen_, "feature length mismatch");
    Matrix in(featureLen_, 1);
    for (std::size_t i = 0; i < x.size(); ++i)
        in(i, 0) = static_cast<float>(x[i]);
    return in;
}

double
MlpClassifier::accuracy(const Dataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        if (predict(data.features[i]) == data.labels[i])
            ++hits;
    return static_cast<double>(hits) / static_cast<double>(data.size());
}

void
MlpClassifier::fit(const Dataset &train, const Dataset &validation)
{
    fatalIf(train.size() == 0, "empty training set");
    Adam adam(params_.learningRate);
    Rng rng(mix64(seed_) ^ 0x31f7ULL);

    double best_val = -1.0;
    int epochs_since_best = 0;
    skippedBatches_ = 0;
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    std::vector<Matrix> inputs;
    inputs.reserve(train.size());
    for (const auto &f : train.features)
        inputs.push_back(toInput(f));

    // Fixed layer set: collect the optimizer's pointer lists once
    // rather than per step.
    const std::vector<Matrix *> param_ptrs = net_.params();
    const std::vector<Matrix *> grad_ptrs = net_.grads();

    Matrix grad;
    for (int epoch = 0; epoch < params_.maxEpochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        std::size_t i = 0;
        while (i < order.size()) {
            net_.zeroGrads();
            const std::size_t end = std::min(
                i + static_cast<std::size_t>(params_.batchSize),
                order.size());
            const std::size_t batch = end - i;
            for (; i < end; ++i) {
                const std::size_t s = order[i];
                const Matrix logits = net_.forward(inputs[s], true);
                SoftmaxCrossEntropy::lossAndGradient(logits,
                                                     train.labels[s], grad);
                net_.backward(grad);
            }
            if (!adam.stepIfFinite(param_ptrs, grad_ptrs,
                                   1.0 / static_cast<double>(batch))) {
                ++skippedBatches_;
                warnOnce("ml/non-finite-batch",
                         "skipping training batch(es) with non-finite "
                         "loss or gradients");
            }
        }
        const double val_acc = validation.size() > 0 ? accuracy(validation)
                                                     : accuracy(train);
        if (val_acc > best_val + 1e-9) {
            best_val = val_acc;
            epochs_since_best = 0;
        } else if (++epochs_since_best >= params_.patience) {
            break;
        }
    }
}

std::vector<double>
MlpClassifier::predictScores(const std::vector<double> &x) const
{
    return SoftmaxCrossEntropy::probabilities(
        net_.forward(toInput(x), false));
}

std::string
MlpClassifier::saveModel() const
{
    std::ostringstream out;
    if (!saveWeights(out, net_).isOk())
        return {};
    return out.str();
}

bool
MlpClassifier::loadModel(const std::string &text)
{
    std::istringstream in(text);
    return loadWeights(in, net_).isOk();
}

SoftmaxRegressionClassifier::SoftmaxRegressionClassifier(
    int num_classes, std::size_t feature_len, std::uint64_t seed, double lr,
    int epochs, double l2)
    : numClasses_(num_classes), featureLen_(feature_len), seed_(seed),
      lr_(lr), epochs_(epochs), l2_(l2)
{
    fatalIf(num_classes < 2, "need at least two classes");
    w_.assign(num_classes, std::vector<double>(feature_len + 1, 0.0));
}

void
SoftmaxRegressionClassifier::fit(const Dataset &train, const Dataset &)
{
    fatalIf(train.size() == 0, "empty training set");
    Rng rng(seed_);
    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);
    for (int epoch = 0; epoch < epochs_; ++epoch) {
        std::shuffle(order.begin(), order.end(), rng.engine());
        const double lr = lr_ / (1.0 + 0.02 * epoch);
        for (std::size_t s : order) {
            const auto &x = train.features[s];
            const Label y = train.labels[s];
            auto scores = predictScores(x);
            for (int c = 0; c < numClasses_; ++c) {
                const double err =
                    scores[c] - (c == y ? 1.0 : 0.0);
                auto &row = w_[c];
                for (std::size_t j = 0; j < featureLen_; ++j)
                    row[j] -= lr * (err * x[j] + l2_ * row[j]);
                row[featureLen_] -= lr * err;
            }
        }
    }
}

std::vector<double>
SoftmaxRegressionClassifier::predictScores(
    const std::vector<double> &x) const
{
    panicIf(x.size() != featureLen_, "feature length mismatch");
    std::vector<double> logits(numClasses_, 0.0);
    for (int c = 0; c < numClasses_; ++c) {
        const auto &row = w_[c];
        double acc = row[featureLen_];
        for (std::size_t j = 0; j < featureLen_; ++j)
            acc += row[j] * x[j];
        logits[c] = acc;
    }
    const double mx = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (double &v : logits) {
        v = std::exp(v - mx);
        sum += v;
    }
    for (double &v : logits)
        v /= sum;
    return logits;
}

std::string
SoftmaxRegressionClassifier::saveModel() const
{
    // The network classifiers persist through ml/serialize; this model
    // holds plain double rows, so it dumps them directly — hexfloats
    // round-trip bit-exactly through strtod.
    std::ostringstream out;
    out << "# bigfish-softmax v1 " << w_.size() << ' ' << featureLen_ + 1
        << '\n';
    for (const auto &row : w_) {
        out << 'w';
        for (const double v : row)
            out << ' ' << hexDouble(v);
        out << '\n';
    }
    return out.str();
}

bool
SoftmaxRegressionClassifier::loadModel(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line))
        return false;
    unsigned long long rows = 0, cols = 0;
    if (std::sscanf(line.c_str(), "# bigfish-softmax v1 %llu %llu", &rows,
                    &cols) != 2 ||
        rows != w_.size() || cols != featureLen_ + 1)
        return false;
    for (auto &row : w_) {
        if (!std::getline(in, line) || line.rfind("w ", 0) != 0)
            return false;
        const char *cursor = line.c_str() + 1;
        char *end = nullptr;
        for (double &v : row) {
            v = std::strtod(cursor, &end);
            if (end == cursor)
                return false;
            cursor = end;
        }
    }
    return true;
}

KnnClassifier::KnnClassifier(int num_classes, int k)
    : numClasses_(num_classes), k_(k)
{
    fatalIf(k < 1, "kNN needs k >= 1");
}

void
KnnClassifier::fit(const Dataset &train, const Dataset &)
{
    memory_ = train;
}

std::vector<double>
KnnClassifier::predictScores(const std::vector<double> &x) const
{
    panicIf(memory_.size() == 0, "kNN queried before fit");
    std::vector<std::pair<double, Label>> dists;
    dists.reserve(memory_.size());
    for (std::size_t i = 0; i < memory_.size(); ++i) {
        const auto &m = memory_.features[i];
        double d = 0.0;
        for (std::size_t j = 0; j < m.size() && j < x.size(); ++j)
            d += (m[j] - x[j]) * (m[j] - x[j]);
        dists.emplace_back(d, memory_.labels[i]);
    }
    const std::size_t k =
        std::min<std::size_t>(static_cast<std::size_t>(k_), dists.size());
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    std::vector<double> votes(numClasses_, 0.0);
    for (std::size_t i = 0; i < k; ++i)
        votes[dists[i].second] += 1.0 / (1.0 + dists[i].first);
    return votes;
}

ClassifierFactory
cnnLstmFactory(CnnLstmParams params)
{
    // Canonical one-line-per-field hyperparameter text, same discipline
    // as collectionFingerprint(): any field that changes what a trained
    // model computes must appear here, or the stage cache would reuse a
    // model across configurations it should distinguish.
    std::ostringstream canon;
    canon << "model=cnn-lstm\n"
          << "convFilters=" << params.convFilters << '\n'
          << "convKernel=" << params.convKernel << '\n'
          << "convStride=" << params.convStride << '\n'
          << "poolSize=" << params.poolSize << '\n'
          << "lstmUnits=" << params.lstmUnits << '\n'
          << "dropout=" << hexDouble(params.dropout) << '\n'
          << "learningRate=" << hexDouble(params.learningRate) << '\n'
          << "maxEpochs=" << params.maxEpochs << '\n'
          << "batchSize=" << params.batchSize << '\n'
          << "patience=" << params.patience << '\n'
          << "inputChannels=" << params.inputChannels << '\n';
    return ClassifierFactory(
        [params](int num_classes, std::size_t feature_len,
                 std::uint64_t seed) -> std::unique_ptr<Classifier> {
            return std::make_unique<CnnLstmClassifier>(
                num_classes, feature_len, params, seed);
        },
        canon.str());
}

ClassifierFactory
softmaxRegressionFactory()
{
    return ClassifierFactory(
        [](int num_classes, std::size_t feature_len,
           std::uint64_t seed) -> std::unique_ptr<Classifier> {
            return std::make_unique<SoftmaxRegressionClassifier>(
                num_classes, feature_len, seed);
        },
        "model=softmax-regression\nlr=0x1.999999999999ap-5\n"
        "epochs=120\nl2=0x1.a36e2eb1c432dp-14\n");
}

ClassifierFactory
mlpFactory(MlpParams params)
{
    std::ostringstream canon;
    canon << "model=mlp\n"
          << "hidden=" << params.hidden << '\n'
          << "dropout=" << hexDouble(params.dropout) << '\n'
          << "learningRate=" << hexDouble(params.learningRate) << '\n'
          << "maxEpochs=" << params.maxEpochs << '\n'
          << "batchSize=" << params.batchSize << '\n'
          << "patience=" << params.patience << '\n';
    return ClassifierFactory(
        [params](int num_classes, std::size_t feature_len,
                 std::uint64_t seed) -> std::unique_ptr<Classifier> {
            return std::make_unique<MlpClassifier>(num_classes, feature_len,
                                                   params, seed);
        },
        canon.str());
}

ClassifierFactory
knnFactory(int k)
{
    std::ostringstream canon;
    canon << "model=knn\nk=" << k << '\n';
    return ClassifierFactory(
        [k](int num_classes, std::size_t, std::uint64_t)
            -> std::unique_ptr<Classifier> {
            return std::make_unique<KnnClassifier>(num_classes, k);
        },
        canon.str());
}

} // namespace bigfish::ml
