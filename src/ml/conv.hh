/**
 * @file
 * 1-D convolution along the time axis (the paper's front-end layers:
 * two pairs of Conv1D(filters, stride 3, ReLU) + MaxPool(4)).
 */

#ifndef BF_ML_CONV_HH
#define BF_ML_CONV_HH

#include "ml/layer.hh"

namespace bigfish::ml {

/** Valid (no padding) strided 1-D convolution over (channels x time). */
class Conv1D : public Layer
{
  public:
    /**
     * @param in_channels Input channel count.
     * @param out_channels Filter count.
     * @param kernel Kernel width.
     * @param stride Stride along time (paper: 3).
     * @param rng Weight initialization stream.
     */
    Conv1D(std::size_t in_channels, std::size_t out_channels,
           std::size_t kernel, std::size_t stride, Rng &rng);

    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    bool supportsBatch() const override { return true; }
    Matrix forwardBatch(const Matrix &in, std::size_t samples,
                        bool train) override;
    Matrix backwardBatch(const Matrix &grad_out,
                         std::size_t samples) override;
    std::vector<Matrix *> params() override { return {&w_, &b_}; }
    std::vector<Matrix *> grads() override { return {&gw_, &gb_}; }
    std::string name() const override { return "conv1d"; }

    /** Output length for an input of length @p in_t. */
    std::size_t outLength(std::size_t in_t) const;

  private:
    /**
     * Rebuilds patches_ (the im2col buffer) from @p in, holding
     * @p samples column-concatenated samples; windows never cross a
     * sample boundary.
     */
    void packPatches(const Matrix &in, std::size_t samples,
                     std::size_t out_t);

    std::size_t inChannels_, outChannels_, kernel_, stride_;
    /** Weights laid out (out_channels x in_channels*kernel). */
    Matrix w_, b_, gw_, gb_;
    /**
     * Total input columns of the most recent forward — the only fact
     * backward needs about the raw input (the windows themselves live
     * in patches_), so the former full input copy was pure overhead.
     */
    std::size_t inCols_ = 0;
    /** Sample count of the most recent (batched) forward. */
    std::size_t samples_ = 1;
    /**
     * im2col buffer: column s*out_t + t holds the flattened
     * (channel-major) input window of sample s's output step t, so
     * forward/backward are plain GEMMs over contiguous memory — one wide
     * GEMM for a whole minibatch on the batched path. Reused across
     * calls to avoid reallocation.
     */
    Matrix patches_;
};

} // namespace bigfish::ml

#endif // BF_ML_CONV_HH
