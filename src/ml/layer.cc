#include "ml/layer.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

void
Layer::zeroGrads()
{
    for (Matrix *g : grads())
        g->zero();
}

Matrix
Layer::forwardBatch(const Matrix &, std::size_t, bool)
{
    panic("layer '" + name() + "' has no batched forward");
}

Matrix
Layer::backwardBatch(const Matrix &, std::size_t)
{
    panic("layer '" + name() + "' has no batched backward");
}

Matrix
ReLU::forward(const Matrix &in, bool)
{
    // One fused pass produces both the activation and the sign mask
    // backward needs, instead of the two full matrix copies (one kept
    // as input_, one rectified) this used to make. The rectified value
    // is the same select every kernels::relu ISA path computes, and
    // both selects are branchless compare+blend so the loop vectorizes.
    const std::size_t n = in.size();
    mask_.resize(n);
    Matrix out(in.rows(), in.cols());
    float *__restrict d = out.data();
    const float *__restrict x = in.data();
    float *__restrict m = mask_.data();
    for (std::size_t i = 0; i < n; ++i) {
        const bool pos = x[i] > 0.0f;
        m[i] = pos ? 1.0f : 0.0f;
        d[i] = pos ? x[i] : 0.0f;
    }
    return out;
}

Matrix
ReLU::backward(const Matrix &grad_out)
{
    panicIf(grad_out.size() != mask_.size(), "ReLU backward shape mismatch");
    Matrix grad_in(grad_out.rows(), grad_out.cols());
    float *__restrict g = grad_in.data();
    const float *__restrict go = grad_out.data();
    const float *__restrict m = mask_.data();
    const std::size_t n = grad_out.size();
    // A select, not a multiply: m * go would turn a masked-off non-
    // finite gradient into NaN instead of the 0 the original
    // input-compare produced, changing the allFinite guard's verdict.
    for (std::size_t i = 0; i < n; ++i)
        g[i] = m[i] != 0.0f ? go[i] : 0.0f;
    return grad_in;
}

Matrix
ReLU::forwardBatch(const Matrix &in, std::size_t, bool train)
{
    // Elementwise: the batch layout changes nothing.
    return forward(in, train);
}

Matrix
ReLU::backwardBatch(const Matrix &grad_out, std::size_t)
{
    return backward(grad_out);
}

MaxPool1D::MaxPool1D(std::size_t pool) : pool_(pool)
{
    fatalIf(pool == 0, "MaxPool1D pool size must be positive");
}

Matrix
MaxPool1D::pool(const Matrix &in, std::size_t samples)
{
    inRows_ = in.rows();
    inCols_ = in.cols();
    const std::size_t in_t = inCols_ / samples;
    const std::size_t out_t = std::max<std::size_t>(in_t / pool_, 1);
    Matrix out(inRows_, samples * out_t);
    // resize, not assign: every slot is overwritten below, so the
    // assign() pre-zeroing was a wasted pass over a large buffer.
    argmax_.resize(inRows_ * samples * out_t);
    // Pooling windows never cross a sample boundary: sample s occupies
    // input columns [s*in_t, (s+1)*in_t) and output columns
    // [s*out_t, (s+1)*out_t).
    for (std::size_t c = 0; c < inRows_; ++c) {
        const float *__restrict row = in.data() + c * inCols_;
        float *__restrict orow = out.data() + c * samples * out_t;
        std::uint32_t *__restrict arow =
            argmax_.data() + c * samples * out_t;
        for (std::size_t s = 0; s < samples; ++s) {
            const std::size_t in_base = s * in_t;
            for (std::size_t t = 0; t < out_t; ++t) {
                const std::size_t lo = in_base + t * pool_;
                const std::size_t hi =
                    std::min(lo + pool_, in_base + in_t);
                float best = row[lo];
                std::size_t best_idx = lo;
                // Select form compiles to cmov; a taken/not-taken
                // branch here is data-dependent and mispredicts.
                for (std::size_t k = lo + 1; k < hi; ++k) {
                    const float v = row[k];
                    best_idx = v > best ? k : best_idx;
                    best = v > best ? v : best;
                }
                const std::size_t oc = s * out_t + t;
                orow[oc] = best;
                arow[oc] = static_cast<std::uint32_t>(best_idx);
            }
        }
    }
    return out;
}

Matrix
MaxPool1D::forward(const Matrix &in, bool)
{
    return pool(in, 1);
}

Matrix
MaxPool1D::backward(const Matrix &grad_out)
{
    return backwardBatch(grad_out, 1);
}

Matrix
MaxPool1D::forwardBatch(const Matrix &in, std::size_t samples, bool)
{
    panicIf(samples == 0 || in.cols() % samples != 0,
            "MaxPool1D batch column count mismatch");
    return pool(in, samples);
}

Matrix
MaxPool1D::backwardBatch(const Matrix &grad_out, std::size_t)
{
    Matrix grad_in(inRows_, inCols_);
    const std::size_t out_cols = grad_out.cols();
    for (std::size_t c = 0; c < inRows_; ++c)
        for (std::size_t t = 0; t < out_cols; ++t)
            grad_in(c, argmax_[c * out_cols + t]) += grad_out(c, t);
    return grad_in;
}

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed)
{
    fatalIf(rate < 0.0 || rate >= 1.0, "Dropout rate must be in [0, 1)");
}

Matrix
Dropout::forward(const Matrix &in, bool train)
{
    lastTrain_ = train;
    if (!train || rate_ == 0.0)
        return in;
    const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
    mask_ = Matrix(in.rows(), in.cols());
    Matrix out = in;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (rng_.bernoulli(rate_)) {
            mask_.data()[i] = 0.0f;
            out.data()[i] = 0.0f;
        } else {
            mask_.data()[i] = keep_scale;
            out.data()[i] *= keep_scale;
        }
    }
    return out;
}

Matrix
Dropout::backward(const Matrix &grad_out)
{
    if (!lastTrain_ || rate_ == 0.0)
        return grad_out;
    Matrix grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.size(); ++i)
        grad_in.data()[i] *= mask_.data()[i];
    return grad_in;
}

Matrix
Dropout::forwardBatch(const Matrix &in, std::size_t samples, bool train)
{
    lastTrain_ = train;
    if (!train || rate_ == 0.0)
        return in;
    panicIf(samples == 0 || in.cols() % samples != 0,
            "Dropout batch column count mismatch");
    const std::size_t steps = in.cols() / samples;
    const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
    mask_ = Matrix(in.rows(), in.cols());
    Matrix out = in;
    // Draw the mask sample-by-sample (each sample row-major), the exact
    // order B per-sample forward() calls would consume the stream.
    for (std::size_t s = 0; s < samples; ++s) {
        for (std::size_t r = 0; r < in.rows(); ++r) {
            for (std::size_t t = 0; t < steps; ++t) {
                const std::size_t c = s * steps + t;
                if (rng_.bernoulli(rate_)) {
                    mask_(r, c) = 0.0f;
                    out(r, c) = 0.0f;
                } else {
                    mask_(r, c) = keep_scale;
                    out(r, c) *= keep_scale;
                }
            }
        }
    }
    return out;
}

Matrix
Dropout::backwardBatch(const Matrix &grad_out, std::size_t)
{
    return backward(grad_out);
}

Matrix
Flatten::forward(const Matrix &in, bool)
{
    inRows_ = in.rows();
    inCols_ = in.cols();
    return in.flattened();
}

Matrix
Flatten::backward(const Matrix &grad_out)
{
    Matrix grad_in(inRows_, inCols_);
    panicIf(grad_out.size() != grad_in.size(),
            "Flatten backward shape mismatch");
    std::copy(grad_out.data(), grad_out.data() + grad_out.size(),
              grad_in.data());
    return grad_in;
}

Matrix
Flatten::forwardBatch(const Matrix &in, std::size_t samples, bool)
{
    panicIf(samples == 0 || in.cols() % samples != 0,
            "Flatten batch column count mismatch");
    inRows_ = in.rows();
    inCols_ = in.cols();
    const std::size_t steps = inCols_ / samples;
    // (rows x samples*T) -> (rows*T x samples): column s becomes the
    // row-major flattening of sample s, matching flattened().
    Matrix out(inRows_ * steps, samples);
    for (std::size_t r = 0; r < inRows_; ++r)
        for (std::size_t s = 0; s < samples; ++s)
            for (std::size_t t = 0; t < steps; ++t)
                out(r * steps + t, s) = in(r, s * steps + t);
    return out;
}

Matrix
Flatten::backwardBatch(const Matrix &grad_out, std::size_t samples)
{
    panicIf(samples == 0 || grad_out.cols() != samples,
            "Flatten batched backward shape mismatch");
    const std::size_t steps = inCols_ / samples;
    Matrix grad_in(inRows_, inCols_);
    for (std::size_t r = 0; r < inRows_; ++r)
        for (std::size_t s = 0; s < samples; ++s)
            for (std::size_t t = 0; t < steps; ++t)
                grad_in(r, s * steps + t) = grad_out(r * steps + t, s);
    return grad_in;
}

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng &rng)
    : w_(out_features, in_features), b_(out_features, 1),
      gw_(out_features, in_features), gb_(out_features, 1)
{
    // He initialization, appropriate for the ReLU stacks used here.
    w_.randomize(rng, std::sqrt(2.0 / static_cast<double>(in_features)));
}

Matrix
Dense::forward(const Matrix &in, bool)
{
    input_ = in.rows() == w_.cols() && in.cols() == 1 ? in : in.flattened();
    panicIf(input_.rows() != w_.cols(), "Dense input size mismatch");
    return gemvBias(w_, input_, b_);
}

Matrix
Dense::backward(const Matrix &grad_out)
{
    panicIf(grad_out.rows() != w_.rows() || grad_out.cols() != 1,
            "Dense backward shape mismatch");
    accumulateMatmulTransB(gw_, grad_out, input_);
    gb_ += grad_out;
    return matmulTransA(w_, grad_out);
}

Matrix
Dense::forwardBatch(const Matrix &in, std::size_t samples, bool)
{
    // Batched Dense expects one (features x 1) sample per column.
    panicIf(in.rows() != w_.cols() || in.cols() != samples,
            "Dense batched input shape mismatch");
    input_ = in;
    return matmulBias(w_, in, b_);
}

Matrix
Dense::backwardBatch(const Matrix &grad_out, std::size_t samples)
{
    panicIf(grad_out.rows() != w_.rows() || grad_out.cols() != samples,
            "Dense batched backward shape mismatch");
    accumulateMatmulTransB(gw_, grad_out, input_);
    {
        float *__restrict gb = gb_.data();
        const float *__restrict g = grad_out.data();
        for (std::size_t r = 0; r < grad_out.rows(); ++r) {
            float acc = 0.0f;
            const float *__restrict grow = g + r * samples;
            for (std::size_t s = 0; s < samples; ++s)
                acc += grow[s];
            gb[r] += acc;
        }
    }
    return matmulTransA(w_, grad_out);
}

} // namespace bigfish::ml
