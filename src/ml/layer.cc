#include "ml/layer.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace bigfish::ml {

void
Layer::zeroGrads()
{
    for (Matrix *g : grads())
        g->zero();
}

Matrix
ReLU::forward(const Matrix &in, bool)
{
    input_ = in;
    Matrix out = in;
    for (std::size_t i = 0; i < out.size(); ++i)
        out.data()[i] = std::max(out.data()[i], 0.0f);
    return out;
}

Matrix
ReLU::backward(const Matrix &grad_out)
{
    panicIf(grad_out.size() != input_.size(), "ReLU backward shape mismatch");
    Matrix grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.size(); ++i)
        if (input_.data()[i] <= 0.0f)
            grad_in.data()[i] = 0.0f;
    return grad_in;
}

MaxPool1D::MaxPool1D(std::size_t pool) : pool_(pool)
{
    fatalIf(pool == 0, "MaxPool1D pool size must be positive");
}

Matrix
MaxPool1D::forward(const Matrix &in, bool)
{
    inRows_ = in.rows();
    inCols_ = in.cols();
    const std::size_t out_t = std::max<std::size_t>(inCols_ / pool_, 1);
    Matrix out(inRows_, out_t);
    argmax_.assign(inRows_ * out_t, 0);
    for (std::size_t c = 0; c < inRows_; ++c) {
        for (std::size_t t = 0; t < out_t; ++t) {
            const std::size_t lo = t * pool_;
            const std::size_t hi = std::min(lo + pool_, inCols_);
            float best = in(c, lo);
            std::size_t best_idx = lo;
            for (std::size_t k = lo + 1; k < hi; ++k) {
                if (in(c, k) > best) {
                    best = in(c, k);
                    best_idx = k;
                }
            }
            out(c, t) = best;
            argmax_[c * out_t + t] = best_idx;
        }
    }
    return out;
}

Matrix
MaxPool1D::backward(const Matrix &grad_out)
{
    Matrix grad_in(inRows_, inCols_);
    const std::size_t out_t = grad_out.cols();
    for (std::size_t c = 0; c < inRows_; ++c)
        for (std::size_t t = 0; t < out_t; ++t)
            grad_in(c, argmax_[c * out_t + t]) += grad_out(c, t);
    return grad_in;
}

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed)
{
    fatalIf(rate < 0.0 || rate >= 1.0, "Dropout rate must be in [0, 1)");
}

Matrix
Dropout::forward(const Matrix &in, bool train)
{
    lastTrain_ = train;
    if (!train || rate_ == 0.0)
        return in;
    const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
    mask_ = Matrix(in.rows(), in.cols());
    Matrix out = in;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (rng_.bernoulli(rate_)) {
            mask_.data()[i] = 0.0f;
            out.data()[i] = 0.0f;
        } else {
            mask_.data()[i] = keep_scale;
            out.data()[i] *= keep_scale;
        }
    }
    return out;
}

Matrix
Dropout::backward(const Matrix &grad_out)
{
    if (!lastTrain_ || rate_ == 0.0)
        return grad_out;
    Matrix grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.size(); ++i)
        grad_in.data()[i] *= mask_.data()[i];
    return grad_in;
}

Matrix
Flatten::forward(const Matrix &in, bool)
{
    inRows_ = in.rows();
    inCols_ = in.cols();
    return in.flattened();
}

Matrix
Flatten::backward(const Matrix &grad_out)
{
    Matrix grad_in(inRows_, inCols_);
    panicIf(grad_out.size() != grad_in.size(),
            "Flatten backward shape mismatch");
    std::copy(grad_out.data(), grad_out.data() + grad_out.size(),
              grad_in.data());
    return grad_in;
}

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng &rng)
    : w_(out_features, in_features), b_(out_features, 1),
      gw_(out_features, in_features), gb_(out_features, 1)
{
    // He initialization, appropriate for the ReLU stacks used here.
    w_.randomize(rng, std::sqrt(2.0 / static_cast<double>(in_features)));
}

Matrix
Dense::forward(const Matrix &in, bool)
{
    input_ = in.rows() == w_.cols() && in.cols() == 1 ? in : in.flattened();
    panicIf(input_.rows() != w_.cols(), "Dense input size mismatch");
    Matrix out = matmul(w_, input_);
    out += b_;
    return out;
}

Matrix
Dense::backward(const Matrix &grad_out)
{
    panicIf(grad_out.rows() != w_.rows() || grad_out.cols() != 1,
            "Dense backward shape mismatch");
    gw_ += matmulTransB(grad_out, input_);
    gb_ += grad_out;
    return matmulTransA(w_, grad_out);
}

} // namespace bigfish::ml
