/**
 * @file
 * Layer interface and the simple stateless/elementwise layers.
 *
 * Layers process one sample at a time — inputs are (channels x time)
 * matrices or (features x 1) vectors — and cache whatever the backward
 * pass needs. Gradients accumulate across samples in the layer's grad
 * buffers until the optimizer consumes them, giving exact minibatch
 * gradients without a batch dimension in the code.
 *
 * Layers may additionally implement the *batched* interface
 * (forwardBatch/backwardBatch): B same-shaped samples are concatenated
 * along the column axis into one (rows x B*T) matrix, sample b occupying
 * columns [b*T, (b+1)*T). Batched passes replace B small matrix-vector
 * products with one wide GEMM — the training-loop hot path at paper
 * scale — while computing the same minibatch gradient (summation order
 * differs, so results are numerically close but not bitwise equal to B
 * per-sample passes).
 */

#ifndef BF_ML_LAYER_HH
#define BF_ML_LAYER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "ml/matrix.hh"

namespace bigfish::ml {

/** Base class of every network layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Computes the layer's output for one sample.
     * @param in The input sample.
     * @param train True during training (enables dropout etc.).
     */
    virtual Matrix forward(const Matrix &in, bool train) = 0;

    /**
     * Backpropagates through the most recent forward() call.
     * Parameter gradients are *accumulated* into the grad buffers.
     * @param grad_out dLoss/dOutput.
     * @return dLoss/dInput.
     */
    virtual Matrix backward(const Matrix &grad_out) = 0;

    /** True when the batched interface below is implemented. */
    virtual bool supportsBatch() const { return false; }

    /**
     * forward() over @p samples same-shaped samples packed column-wise
     * into one (rows x samples*T) matrix. Layers without a batched
     * implementation panic; gate on supportsBatch().
     */
    virtual Matrix forwardBatch(const Matrix &in, std::size_t samples,
                                bool train);

    /** Backpropagates through the most recent forwardBatch() call. */
    virtual Matrix backwardBatch(const Matrix &grad_out,
                                 std::size_t samples);

    /** Trainable parameter tensors (empty for stateless layers). */
    virtual std::vector<Matrix *> params() { return {}; }

    /** Gradient buffers aligned with params(). */
    virtual std::vector<Matrix *> grads() { return {}; }

    /** Clears all gradient buffers. */
    void zeroGrads();

    /** Layer name for diagnostics. */
    virtual std::string name() const = 0;
};

/** Rectified linear unit. */
class ReLU : public Layer
{
  public:
    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    bool supportsBatch() const override { return true; }
    Matrix forwardBatch(const Matrix &in, std::size_t samples,
                        bool train) override;
    Matrix backwardBatch(const Matrix &grad_out,
                         std::size_t samples) override;
    std::string name() const override { return "relu"; }

  private:
    /**
     * Sign mask of the last forward input (1.0f = positive, 0.0f
     * otherwise), kept instead of the full input copy the layer used
     * to store: backward only needs the sign. Float, not byte, lanes:
     * a uint8 mask store in the middle of a float select defeats the
     * autovectorizer, and at the conv front-end these loops stream
     * megabytes per call.
     */
    std::vector<float> mask_;
};

/** Non-overlapping 1-D max pooling along the time axis. */
class MaxPool1D : public Layer
{
  public:
    /** @param pool Window (and stride) size; paper uses 4. */
    explicit MaxPool1D(std::size_t pool);

    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    bool supportsBatch() const override { return true; }
    Matrix forwardBatch(const Matrix &in, std::size_t samples,
                        bool train) override;
    Matrix backwardBatch(const Matrix &grad_out,
                         std::size_t samples) override;
    std::string name() const override { return "maxpool1d"; }

  private:
    /** Pooling pass shared by the single and batched paths: windows
     * never cross the per-sample boundary. */
    Matrix pool(const Matrix &in, std::size_t samples);

    std::size_t pool_;
    /**
     * Winning input column per output cell; 32-bit since pooled rows
     * are far narrower than 4G columns, halving the stream backward
     * re-reads.
     */
    std::vector<std::uint32_t> argmax_;
    std::size_t inRows_ = 0, inCols_ = 0;
};

/** Inverted dropout; identity at inference time. */
class Dropout : public Layer
{
  public:
    /**
     * @param rate Probability of zeroing an activation (paper: 0.7).
     * @param seed Seed for the mask stream.
     */
    Dropout(double rate, std::uint64_t seed);

    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    bool supportsBatch() const override { return true; }
    Matrix forwardBatch(const Matrix &in, std::size_t samples,
                        bool train) override;
    Matrix backwardBatch(const Matrix &grad_out,
                         std::size_t samples) override;
    std::string name() const override { return "dropout"; }

  private:
    double rate_;
    Rng rng_;
    Matrix mask_;
    bool lastTrain_ = false;
};

/** Flattens any input to a (size x 1) column vector. */
class Flatten : public Layer
{
  public:
    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    bool supportsBatch() const override { return true; }
    Matrix forwardBatch(const Matrix &in, std::size_t samples,
                        bool train) override;
    Matrix backwardBatch(const Matrix &grad_out,
                         std::size_t samples) override;
    std::string name() const override { return "flatten"; }

  private:
    std::size_t inRows_ = 0, inCols_ = 0;
};

/** Fully connected layer: out = W * in + b for (features x 1) inputs. */
class Dense : public Layer
{
  public:
    /**
     * @param in_features Input dimensionality.
     * @param out_features Output dimensionality.
     * @param rng Weight initialization stream.
     */
    Dense(std::size_t in_features, std::size_t out_features, Rng &rng);

    Matrix forward(const Matrix &in, bool train) override;
    Matrix backward(const Matrix &grad_out) override;
    bool supportsBatch() const override { return true; }
    Matrix forwardBatch(const Matrix &in, std::size_t samples,
                        bool train) override;
    Matrix backwardBatch(const Matrix &grad_out,
                         std::size_t samples) override;
    std::vector<Matrix *> params() override { return {&w_, &b_}; }
    std::vector<Matrix *> grads() override { return {&gw_, &gb_}; }
    std::string name() const override { return "dense"; }

  private:
    Matrix w_, b_, gw_, gb_;
    Matrix input_;
};

} // namespace bigfish::ml

#endif // BF_ML_LAYER_HH
