/**
 * @file
 * Sequential network container, softmax cross-entropy loss, and the Adam
 * optimizer — the training machinery behind the paper's classifier.
 */

#ifndef BF_ML_NETWORK_HH
#define BF_ML_NETWORK_HH

#include <memory>
#include <vector>

#include "ml/layer.hh"

namespace bigfish::ml {

/** A straight-line stack of layers. */
class Sequential
{
  public:
    Sequential() = default;

    /** Appends a layer; returns *this for chaining. */
    Sequential &add(std::unique_ptr<Layer> layer);

    /** Runs all layers forward on one sample. */
    Matrix forward(const Matrix &in, bool train);

    /** Backpropagates through all layers (after a forward call). */
    Matrix backward(const Matrix &grad_out);

    /** True when every layer implements the batched interface. */
    bool supportsBatch() const;

    /**
     * forward() over a column-concatenated minibatch (see layer.hh for
     * the layout). Requires supportsBatch().
     */
    Matrix forwardBatch(const Matrix &in, std::size_t samples, bool train);

    /** Backpropagates through the most recent forwardBatch(). */
    Matrix backwardBatch(const Matrix &grad_out, std::size_t samples);

    /** All trainable parameter tensors. */
    std::vector<Matrix *> params();

    /** All gradient buffers, aligned with params(). */
    std::vector<Matrix *> grads();

    /** Clears every gradient buffer. */
    void zeroGrads();

    /** Number of layers. */
    std::size_t size() const { return layers_.size(); }

    /** Total number of trainable scalars. */
    std::size_t numParameters();

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * Softmax + cross-entropy head.
 *
 * Computes class probabilities from logits and, during training, the
 * loss gradient (probs - onehot) to feed Sequential::backward.
 */
struct SoftmaxCrossEntropy
{
    /** Probabilities from a (classes x 1) logit vector. */
    static std::vector<double> probabilities(const Matrix &logits);

    /** Cross-entropy loss of the true class. */
    static double loss(const Matrix &logits, Label truth);

    /** dLoss/dLogits = softmax(logits) - onehot(truth). */
    static Matrix gradient(const Matrix &logits, Label truth);

    /**
     * Loss and gradient from a single softmax evaluation (the training
     * hot path; calling loss() + gradient() separately computes the
     * probabilities twice). @p grad is resized to (classes x 1).
     */
    static double lossAndGradient(const Matrix &logits, Label truth,
                                  Matrix &grad);

    /**
     * Summed loss and per-column gradients over a (classes x B) logit
     * batch; @p truths supplies the B labels in column order and @p grad
     * is resized to (classes x B).
     */
    static double lossAndGradientBatch(const Matrix &logits,
                                       const std::vector<Label> &truths,
                                       Matrix &grad);
};

/** True when every element of every tensor is finite. */
bool allFinite(const std::vector<Matrix *> &tensors);

/** Adam optimizer (the paper uses Adam with lr = 0.001). */
class Adam
{
  public:
    /**
     * @param lr Learning rate.
     * @param beta1 First-moment decay.
     * @param beta2 Second-moment decay.
     * @param eps Numerical floor.
     */
    explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8);

    /**
     * Applies one update step.
     * @param params Parameter tensors.
     * @param grads Gradient tensors aligned with @p params.
     * @param scale Multiplier applied to gradients (1/batch size).
     */
    void step(const std::vector<Matrix *> &params,
              const std::vector<Matrix *> &grads, double scale = 1.0);

    /**
     * Applies one update step unless any gradient is non-finite, in
     * which case the parameters and optimizer state are left untouched.
     * Exploding LSTM gradients or NaN-poisoned inputs would otherwise
     * silently destroy the model; skipping the batch recovers.
     *
     * @return true when the step was applied.
     */
    bool stepIfFinite(const std::vector<Matrix *> &params,
                      const std::vector<Matrix *> &grads,
                      double scale = 1.0);

  private:
    double lr_, beta1_, beta2_, eps_;
    int t_ = 0;
    std::vector<std::vector<float>> m_, v_;
};

} // namespace bigfish::ml

#endif // BF_ML_NETWORK_HH
