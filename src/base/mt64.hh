/**
 * @file
 * Mt64: a drop-in MT19937-64 engine bit-identical to std::mt19937_64.
 *
 * The simulator's deviate streams are frozen into artifacts, so the
 * engine's output sequence cannot change — but its *implementation*
 * can. libstdc++'s mersenne_twister_engine regenerates its 312-word
 * state block with a scalar loop that the collect phase hits hundreds
 * of thousands of times per run (every real-valued deviate consumes a
 * raw draw, and the polar normal rejection loop consumes several).
 * Mt64 produces the exact same stream — same seeding recurrence, same
 * twist, same tempering — from a state regeneration that is written to
 * vectorize (the twist is pure 64-bit integer logic, so the AVX2 path
 * is exact, not approximately equal). tests/rng_exact_test.cc pins
 * raw-draw equality against std::mt19937_64 across many refills on
 * every dispatch path.
 *
 * Mt64 satisfies the UniformRandomBitGenerator requirements with the
 * same result_type and min/max as std::mt19937_64, so std distribution
 * templates (std::uniform_int_distribution, std::shuffle) run the
 * identical rejection algorithm over it and return identical values.
 */

#ifndef BF_BASE_MT64_HH
#define BF_BASE_MT64_HH

#include <cstdint>

namespace bigfish {

/** MT19937-64 with a vectorized twist; stream-identical to std. */
class Mt64
{
  public:
    using result_type = std::uint64_t;

    /** Word count of the state block. */
    static constexpr int kN = 312;
    /** Twist offset. */
    static constexpr int kM = 156;

    /** Seeds exactly like std::mt19937_64{seed}. */
    explicit Mt64(std::uint64_t seed)
    {
        mt_[0] = seed;
        for (int i = 1; i < kN; ++i)
            mt_[i] = 6364136223846793005ULL *
                         (mt_[i - 1] ^ (mt_[i - 1] >> 62)) +
                     static_cast<std::uint64_t>(i);
        mti_ = kN;
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit draw (identical to std::mt19937_64::operator()). */
    result_type
    operator()()
    {
        if (mti_ >= kN)
            refill();
        std::uint64_t x = mt_[mti_++];
        // MT19937-64 tempering (u,d,s,b,t,c,l of the standard spec).
        x ^= (x >> 29) & 0x5555555555555555ULL;
        x ^= (x << 17) & 0x71D67FFFEDA60000ULL;
        x ^= (x << 37) & 0xFFF7EEE000000000ULL;
        x ^= (x >> 43);
        return x;
    }

  private:
    /** Regenerates the state block; dispatches on bf::simd::active(). */
    void refill();
    /** Portable twist (reference implementation). */
    void refillScalar();
#if defined(__x86_64__) || defined(__i386__)
    /** Four-words-at-a-time twist; exact (integer) AVX2. */
    void refillAvx2();
#endif

    std::uint64_t mt_[kN];
    int mti_;
};

} // namespace bigfish

#endif // BF_BASE_MT64_HH
