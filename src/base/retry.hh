/**
 * @file
 * RetryPolicy: deterministic seeded-jitter backoff for transient errors.
 *
 * The suite supervisor (src/core/supervisor.hh) retries experiments
 * that fail with transient error classes. Retry *jitter* normally comes
 * from wall-clock entropy, which bigfish-lint bans: two runs of the
 * same suite must make the same retry decisions and sleep the same
 * (reported) delays. RetryPolicy therefore derives its jitter from a
 * seed via the same splitmix64 finalizer (base/rng.hh) that drives the
 * simulator — `delaySeconds(attempt, salt)` is a pure function.
 *
 * What counts as transient: IoError (disk hiccups, torn journals) and
 * Exhausted (a degraded collection round that may succeed on retry
 * under fault injection). InvalidArgument/ParseError are permanent —
 * retrying a usage error burns the attempt budget for nothing.
 */

#ifndef BF_BASE_RETRY_HH
#define BF_BASE_RETRY_HH

#include <cstdint>
#include <string>

#include "base/status.hh"

namespace bigfish {

/** Deterministic retry schedule: attempts, backoff, seeded jitter. */
struct RetryPolicy
{
    /** Total attempts including the first (1 = never retry). */
    int maxAttempts = 1;
    /** Delay before the first retry, in seconds. */
    double baseDelaySeconds = 0.25;
    /** Multiplier applied per additional retry (exponential backoff). */
    double backoffMultiplier = 2.0;
    /** Upper clamp on any single delay, in seconds. */
    double maxDelaySeconds = 8.0;
    /** Jitter half-width as a fraction of the delay (0 = none). */
    double jitterFraction = 0.25;
    /** Seed for the jitter stream; mixed with the per-call salt. */
    std::uint64_t seed = 0;

    /** A policy that never retries. */
    [[nodiscard]] static RetryPolicy none() { return RetryPolicy{}; }

    /**
     * True when @p error is transient and @p attempt (1-based, the
     * attempt that just failed) leaves budget for another try.
     */
    [[nodiscard]] bool shouldRetry(const Status &error, int attempt) const;

    /**
     * The backoff delay after failed attempt @p attempt (1-based), in
     * seconds. @p salt decorrelates concurrent retry streams (e.g. a
     * hash of the experiment name). Pure: same policy, attempt and
     * salt always give the same delay.
     */
    [[nodiscard]] double delaySeconds(int attempt, std::uint64_t salt) const;
};

/** FNV-1a hash of @p text; the conventional salt for delaySeconds(). */
[[nodiscard]] std::uint64_t retrySalt(const std::string &text);

} // namespace bigfish

#endif // BF_BASE_RETRY_HH
