/**
 * @file
 * 32-byte-aligned storage for the SIMD kernel layer.
 *
 * The vectorized kernels (ml/kernels.cc) issue 256-bit loads and
 * stores; keeping every Matrix buffer on a 32-byte boundary lets the
 * hot loops use aligned accesses on the first lane of every row-major
 * buffer and never straddle a cache line at element zero. Alignment is
 * a performance property only — the kernels are correct (and
 * bit-identical) for any alignment, so nothing outside Matrix needs to
 * care that this allocator exists.
 */

#ifndef BF_BASE_ALIGNED_HH
#define BF_BASE_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace bigfish {

/** Minimal C++17 allocator returning @p Align-byte-aligned blocks. */
template <typename T, std::size_t Align>
struct AlignedAllocator
{
    static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                  "Align must be a power of two no smaller than "
                  "alignof(T)");
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align> &) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T *allocate(std::size_t n)
    {
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(Align)));
    }

    void deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(Align));
    }

    friend bool operator==(const AlignedAllocator &,
                           const AlignedAllocator &) noexcept
    {
        return true;
    }
};

/** The kernel layer's required buffer alignment (one AVX2 vector). */
inline constexpr std::size_t kSimdAlignment = 32;

/** A std::vector whose buffer starts on a 32-byte boundary. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kSimdAlignment>>;

} // namespace bigfish

#endif // BF_BASE_ALIGNED_HH
