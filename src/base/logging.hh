/**
 * @file
 * Minimal fatal/panic error reporting in the spirit of gem5's logging.hh.
 *
 * fatal()  — the condition is the *user's* fault (bad configuration or
 *            arguments); exits with status 1.
 * panic()  — the condition indicates a bug in this library itself; aborts
 *            so a core dump / debugger can capture the state.
 */

#ifndef BF_BASE_LOGGING_HH
#define BF_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bigfish {

/** Terminates with exit(1); use for user-caused misconfiguration. */
[[noreturn]] inline void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

/** Aborts; use for internal invariant violations (library bugs). */
[[noreturn]] inline void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

/** Prints a warning without stopping the run. */
inline void
warn(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

/** fatal() unless the condition holds. */
inline void
fatalIf(bool condition, const std::string &message)
{
    if (condition)
        fatal(message);
}

/** panic() unless the condition holds. */
inline void
panicIf(bool condition, const std::string &message)
{
    if (condition)
        panic(message);
}

} // namespace bigfish

#endif // BF_BASE_LOGGING_HH
