/**
 * @file
 * Minimal fatal/panic/warn error reporting in the spirit of gem5's
 * logging.hh.
 *
 * fatal()  — the condition is the *user's* fault (bad configuration or
 *            arguments); exits with status 1. Library code paths must not
 *            call this for runtime data errors — they return Status /
 *            Result<T> (base/status.hh, base/result.hh) and leave
 *            termination to the ...OrDie() wrappers at binary boundaries.
 * panic()  — the condition indicates a bug in this library itself; aborts
 *            so a core dump / debugger can capture the state.
 * warn()   — non-fatal diagnostics, gated by the BF_LOG_LEVEL environment
 *            variable: "silent" (or "none"/"0") suppresses warnings,
 *            anything else (including unset) keeps them on.
 * warnOnce() — like warn() but each key prints at most once per process,
 *            so lenient parsing of a 5000-row corrupt file cannot emit
 *            5000 lines.
 */

#ifndef BF_BASE_LOGGING_HH
#define BF_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_set>

namespace bigfish {

/** Terminates with exit(1); use for user-caused misconfiguration. */
[[noreturn]] inline void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

/** Aborts; use for internal invariant violations (library bugs). */
[[noreturn]] inline void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

/** True unless BF_LOG_LEVEL silences warnings ("silent"|"none"|"0"). */
inline bool
warningsEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("BF_LOG_LEVEL");
        if (env == nullptr)
            return true;
        const std::string level(env);
        return level != "silent" && level != "none" && level != "0";
    }();
    return enabled;
}

/** Prints a warning without stopping the run (see BF_LOG_LEVEL). */
inline void
warn(const std::string &message)
{
    if (warningsEnabled())
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

/**
 * Prints a warning at most once per @p key per process. Use a stable key
 * (e.g. "trace-io/short-row") for repeated per-record conditions and put
 * the variable detail in @p message.
 */
inline void
warnOnce(const std::string &key, const std::string &message)
{
    static std::mutex mutex;
    static std::unordered_set<std::string> seen;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!seen.insert(key).second)
            return;
    }
    warn(message);
}

/** fatal() unless the condition holds. */
inline void
fatalIf(bool condition, const std::string &message)
{
    if (condition)
        fatal(message);
}

/** panic() unless the condition holds. */
inline void
panicIf(bool condition, const std::string &message)
{
    if (condition)
        panic(message);
}

} // namespace bigfish

#endif // BF_BASE_LOGGING_HH
