/**
 * @file
 * ASCII table rendering used by the benchmark harnesses to print
 * paper-style result tables (Tables 1-4) to stdout.
 */

#ifndef BF_BASE_TABLE_HH
#define BF_BASE_TABLE_HH

#include <string>
#include <vector>

namespace bigfish {

/**
 * A simple left/right-aligned ASCII table.
 *
 * Usage:
 * @code
 * Table t({"Browser", "Loop", "Sweep"});
 * t.addRow({"Chrome", "96.6%", "91.4%"});
 * std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Renders the table, headers first, with a separator rule. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with the given number of decimals. */
std::string formatDouble(double value, int decimals = 1);

/** Formats a fraction in [0,1] as a percentage string like "96.6%". */
std::string formatPercent(double fraction, int decimals = 1);

/** Formats "mean +/- std" percentages, e.g. "96.6 +/- 0.8". */
std::string formatPercentPm(double mean, double std, int decimals = 1);

} // namespace bigfish

#endif // BF_BASE_TABLE_HH
