/**
 * @file
 * Recoverable-error reporting: the Status type.
 *
 * The library treats malformed data and perturbed signals as *expected
 * operating conditions* — the paper's attack works because of noise, and
 * a production deployment sees corrupt trace files, truncated model
 * checkpoints and degraded collection runs as a matter of course. Entry
 * points that can fail on runtime data therefore return Status (or
 * Result<T>, see base/result.hh) instead of calling fatal().
 *
 * fatal()/panic() remain for what they were always meant for: CLI
 * misuse at the binary level (via the ...OrDie() wrappers) and internal
 * invariant violations.
 */

#ifndef BF_BASE_STATUS_HH
#define BF_BASE_STATUS_HH

#include <string>
#include <utility>

namespace bigfish {

/** Coarse classification of a recoverable error. */
enum class ErrorCode
{
    Ok = 0,
    InvalidArgument, ///< A caller-supplied parameter is unusable.
    ParseError,      ///< Input data does not match the expected format.
    OutOfRange,      ///< A parsed value lies outside its legal range.
    IoError,         ///< The underlying stream/file operation failed.
    ShapeMismatch,   ///< Tensor/feature dimensions disagree.
    DataError,       ///< Structurally valid data that is unusable.
    Exhausted,       ///< Nothing usable survived a degraded operation.
};

/** Short stable name of an error code ("parse-error", "io-error", ...). */
constexpr const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::InvalidArgument:
        return "invalid-argument";
      case ErrorCode::ParseError:
        return "parse-error";
      case ErrorCode::OutOfRange:
        return "out-of-range";
      case ErrorCode::IoError:
        return "io-error";
      case ErrorCode::ShapeMismatch:
        return "shape-mismatch";
      case ErrorCode::DataError:
        return "data-error";
      case ErrorCode::Exhausted:
        return "exhausted";
    }
    return "unknown";
}

/**
 * The outcome of an operation that can fail recoverably: an error code
 * plus a human-readable message. A default-constructed Status is OK.
 */
class [[nodiscard]] Status
{
  public:
    /** An OK status. */
    Status() = default;

    /** An error status; @p code must not be ErrorCode::Ok. */
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    /** Named constructor for the OK status. */
    [[nodiscard]] static Status ok() { return Status(); }

    /** True when the operation succeeded. */
    bool isOk() const { return code_ == ErrorCode::Ok; }

    /** The error classification. */
    ErrorCode code() const { return code_; }

    /** The human-readable error message (empty when OK). */
    const std::string &message() const { return message_; }

    /** "ok" or "<code-name>: <message>", for logs and fatal reports. */
    std::string
    toString() const
    {
        if (isOk())
            return "ok";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

    /** Statuses compare equal on code (messages are for humans). */
    friend bool
    operator==(const Status &a, const Status &b)
    {
        return a.code_ == b.code_;
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** Convenience constructors mirroring the ErrorCode values. */
[[nodiscard]] inline Status
invalidArgumentError(std::string message)
{
    return Status(ErrorCode::InvalidArgument, std::move(message));
}

[[nodiscard]] inline Status
parseError(std::string message)
{
    return Status(ErrorCode::ParseError, std::move(message));
}

[[nodiscard]] inline Status
outOfRangeError(std::string message)
{
    return Status(ErrorCode::OutOfRange, std::move(message));
}

[[nodiscard]] inline Status
ioError(std::string message)
{
    return Status(ErrorCode::IoError, std::move(message));
}

[[nodiscard]] inline Status
shapeMismatchError(std::string message)
{
    return Status(ErrorCode::ShapeMismatch, std::move(message));
}

[[nodiscard]] inline Status
dataError(std::string message)
{
    return Status(ErrorCode::DataError, std::move(message));
}

[[nodiscard]] inline Status
exhaustedError(std::string message)
{
    return Status(ErrorCode::Exhausted, std::move(message));
}

/** Early-returns from the enclosing function on error. */
#define BF_RETURN_IF_ERROR(expr)                                            \
    do {                                                                    \
        ::bigfish::Status bf_status_ = (expr);                              \
        if (!bf_status_.isOk())                                             \
            return bf_status_;                                              \
    } while (false)

} // namespace bigfish

#endif // BF_BASE_STATUS_HH
