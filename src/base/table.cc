#include "base/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace bigfish {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    panicIf(headers_.empty(), "Table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != headers_.size(),
            "Table row width does not match header width");
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::ostringstream out;
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c]
                << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
        return out.str();
    };

    std::ostringstream out;
    out << render_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c)
        out << "|" << std::string(widths[c] + 2, '-');
    out << "|\n";
    for (const auto &row : rows_)
        out << render_row(row);
    return out.str();
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatDouble(fraction * 100.0, decimals) + "%";
}

std::string
formatPercentPm(double mean, double std, int decimals)
{
    return formatDouble(mean * 100.0, decimals) + " +/- " +
           formatDouble(std * 100.0, decimals);
}

} // namespace bigfish
