/**
 * @file
 * Result<T>: a value or a Status, with monadic composition.
 *
 * This is the return type of every library entry point that can fail on
 * runtime data (trace parsing, checkpoint loading, degraded collection
 * runs). Callers either branch on isOk(), chain with map()/andThen(), or
 * call valueOrDie() at the binary boundary where terminating is the
 * right answer (examples, bench mains).
 */

#ifndef BF_BASE_RESULT_HH
#define BF_BASE_RESULT_HH

#include <optional>
#include <type_traits>
#include <utility>

#include "base/logging.hh"
#include "base/status.hh"

namespace bigfish {

/** A T on success, a non-OK Status on failure. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Success, owning @p value. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure; @p status must be non-OK (an OK status is a bug). */
    Result(Status status) : status_(std::move(status))
    {
        panicIf(status_.isOk(),
                "Result constructed from an OK status without a value");
    }

    /** True when a value is present. */
    bool isOk() const { return value_.has_value(); }

    /** The status: OK when a value is present, the error otherwise. */
    const Status &status() const { return status_; }

    /** The value; panics if called on an error Result. */
    T &
    value()
    {
        panicIf(!isOk(), "Result::value() on error: " + status_.toString());
        return *value_;
    }

    const T &
    value() const
    {
        panicIf(!isOk(), "Result::value() on error: " + status_.toString());
        return *value_;
    }

    /**
     * The value, or fatal() with the error message. This is the one
     * sanctioned process-terminating accessor; use it only at binary
     * boundaries (examples, bench mains, CLI tools).
     */
    T
    valueOrDie() &&
    {
        if (!isOk())
            fatal(status_.toString());
        return std::move(*value_);
    }

    /** The value, or @p fallback when this Result holds an error. */
    T
    valueOr(T fallback) &&
    {
        return isOk() ? std::move(*value_) : std::move(fallback);
    }

    /**
     * Applies @p fn to the value, forwarding the error untouched.
     * fn: T -> U, giving Result<U>.
     */
    template <typename Fn>
    auto
    map(Fn &&fn) && -> Result<std::invoke_result_t<Fn, T>>
    {
        using U = std::invoke_result_t<Fn, T>;
        if (!isOk())
            return Result<U>(status_);
        return Result<U>(std::forward<Fn>(fn)(std::move(*value_)));
    }

    /**
     * Chains a fallible continuation, forwarding the error untouched.
     * fn: T -> Result<U>, giving Result<U>.
     */
    template <typename Fn>
    auto
    andThen(Fn &&fn) && -> std::invoke_result_t<Fn, T>
    {
        using R = std::invoke_result_t<Fn, T>;
        static_assert(
            std::is_constructible_v<R, Status>,
            "andThen continuation must return a Result<U>");
        if (!isOk())
            return R(status_);
        return std::forward<Fn>(fn)(std::move(*value_));
    }

  private:
    std::optional<T> value_;
    Status status_;
};

/** Early-returns the error of a Result expression, else binds nothing. */
#define BF_RETURN_IF_ERROR_RESULT(expr)                                     \
    do {                                                                    \
        const auto &bf_result_ = (expr);                                    \
        if (!bf_result_.isOk())                                             \
            return bf_result_.status();                                     \
    } while (false)

} // namespace bigfish

#endif // BF_BASE_RESULT_HH
