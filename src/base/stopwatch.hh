/**
 * @file
 * Stopwatch: the sanctioned wall-clock accessor for phase-duration
 * *reporting*.
 *
 * bigfish-lint bans raw std::chrono clock access in library code (rule
 * `nondeterminism`): wall-clock values that leak into computed results
 * silently break the bitwise-determinism contract the reproduction's
 * tables depend on. Durations are still worth reporting (train/eval
 * seconds in FingerprintResult, bench phases), so this header is the
 * one library file allowlisted to touch steady_clock — and the type it
 * exposes can only produce elapsed seconds, never absolute timestamps,
 * which keeps the temptation surface small. Measured seconds must only
 * ever be *reported*; feeding them back into anything that affects
 * results is a determinism bug the linter cannot see.
 */

#ifndef BF_BASE_STOPWATCH_HH
#define BF_BASE_STOPWATCH_HH

#include <chrono>

namespace bigfish {

/** Measures elapsed wall-clock seconds from construction or reset(). */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restarts the measurement window. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    [[nodiscard]] double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** seconds() then reset(): per-phase splits in one call. */
    [[nodiscard]] double
    lap()
    {
        const double elapsed = seconds();
        reset();
        return elapsed;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace bigfish

#endif // BF_BASE_STOPWATCH_HH
