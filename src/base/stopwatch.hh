/**
 * @file
 * Stopwatch: the sanctioned clock accessors for phase-duration
 * *reporting*.
 *
 * bigfish-lint bans raw std::chrono clock access in library code (rule
 * `nondeterminism`): wall-clock values that leak into computed results
 * silently break the bitwise-determinism contract the reproduction's
 * tables depend on. Durations are still worth reporting (train/eval
 * seconds in FingerprintResult, bench phases), so this header is the
 * one library file allowlisted to touch clocks — and the types it
 * exposes can only produce elapsed seconds, never absolute timestamps,
 * which keeps the temptation surface small. Measured seconds must only
 * ever be *reported*; feeding them back into anything that affects
 * results is a determinism bug the linter cannot see.
 *
 * Three clocks, one shape:
 *  - Stopwatch            — wall time (steady_clock); what a user waits.
 *  - ProcessCpuStopwatch  — CPU consumed by the whole process across
 *                           every thread; exceeds wall time whenever
 *                           the pool runs hot, and stays honest when
 *                           cores are timeshared (a 4-thread phase on a
 *                           1-core box reports ~wall, not 4x wall).
 *  - ThreadCpuStopwatch   — CPU consumed by the calling thread only;
 *                           the right meter inside a parallel worker
 *                           (per-fold fit cost) where wall time counts
 *                           the other workers too.
 */

#ifndef BF_BASE_STOPWATCH_HH
#define BF_BASE_STOPWATCH_HH

#include <chrono>
#include <ctime>

namespace bigfish {

/** Measures elapsed wall-clock seconds from construction or reset(). */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restarts the measurement window. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    [[nodiscard]] double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** seconds() then reset(): per-phase splits in one call. */
    [[nodiscard]] double
    lap()
    {
        const double elapsed = seconds();
        reset();
        return elapsed;
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

namespace detail {

/** Seconds on a POSIX clockid (0.0 where unsupported). */
inline double
posixClockSeconds(clockid_t id)
{
    struct timespec ts;
    if (clock_gettime(id, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Shared seconds()/lap() shape over one POSIX CPU clock. */
template <clockid_t ClockId>
class CpuStopwatchBase
{
  public:
    CpuStopwatchBase() : start_(posixClockSeconds(ClockId)) {}

    /** Restarts the measurement window. */
    void reset() { start_ = posixClockSeconds(ClockId); }

    /** CPU seconds consumed since construction or the last reset(). */
    [[nodiscard]] double
    seconds() const
    {
        return posixClockSeconds(ClockId) - start_;
    }

    /** seconds() then reset(): per-phase splits in one call. */
    [[nodiscard]] double
    lap()
    {
        const double elapsed = seconds();
        reset();
        return elapsed;
    }

  private:
    double start_;
};

} // namespace detail

/** CPU seconds consumed by the whole process (every thread summed). */
using ProcessCpuStopwatch =
    detail::CpuStopwatchBase<CLOCK_PROCESS_CPUTIME_ID>;

/** CPU seconds consumed by the calling thread only. */
using ThreadCpuStopwatch = detail::CpuStopwatchBase<CLOCK_THREAD_CPUTIME_ID>;

} // namespace bigfish

#endif // BF_BASE_STOPWATCH_HH
