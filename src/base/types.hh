/**
 * @file
 * Fundamental time and identifier types shared by every bigger-fish module.
 *
 * All simulated time is kept in integer nanoseconds. Using a single signed
 * 64-bit tick type everywhere avoids unit confusion between the machine
 * simulator, the timer models and the attackers, and gives ~292 years of
 * range which is far beyond any trace we collect.
 */

#ifndef BF_BASE_TYPES_HH
#define BF_BASE_TYPES_HH

#include <cstdint>

namespace bigfish {

/** Simulated time in nanoseconds. */
using TimeNs = std::int64_t;

/** One microsecond in TimeNs units. */
constexpr TimeNs kUsec = 1'000;
/** One millisecond in TimeNs units. */
constexpr TimeNs kMsec = 1'000'000;
/** One second in TimeNs units. */
constexpr TimeNs kSec = 1'000'000'000;

/** Identifier of a simulated CPU core. */
using CoreId = int;

/** Identifier of a website in a SiteCatalog. */
using SiteId = int;

/** Class label used by the ML pipeline. */
using Label = int;

} // namespace bigfish

#endif // BF_BASE_TYPES_HH
