#include "base/atomic_file.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

namespace bigfish {

namespace {

/** strerror(errno) wrapped for message building. */
std::string
errnoText()
{
    return std::strerror(errno);
}

/** mkdir that treats EEXIST-as-directory as success. */
Status
makeOneDirectory(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0)
        return Status::ok();
    if (errno == EEXIST) {
        struct stat st;
        if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
            return Status::ok();
        return ioError("cannot create directory " + path +
                       ": path exists and is not a directory");
    }
    return ioError("cannot create directory " + path + ": " + errnoText());
}

} // namespace

Status
createDirectories(const std::string &path)
{
    if (path.empty())
        return invalidArgumentError("createDirectories: empty path");
    // Create each prefix in turn; "a/b/c" makes "a", "a/b", "a/b/c".
    std::size_t pos = 0;
    while (pos < path.size()) {
        std::size_t slash = path.find('/', pos + 1);
        if (slash == std::string::npos)
            slash = path.size();
        const std::string prefix = path.substr(0, slash);
        // Skip the root "/" and empty components from "//".
        if (!prefix.empty() && prefix != "/")
            BF_RETURN_IF_ERROR(makeOneDirectory(prefix));
        pos = slash;
        while (pos < path.size() && path[pos] == '/')
            ++pos;
    }
    return Status::ok();
}

Status
atomicWriteFile(const std::string &path, const std::string &content)
{
    if (path.empty())
        return invalidArgumentError("atomicWriteFile: empty path");
    // Unique temp name per writer: concurrent writers of the same
    // destination (e.g. two runs storing one feature-cache entry) must
    // not interleave into a shared temp file — each stages its own and
    // the renames serialize, last writer wins.
    static std::atomic<std::uint64_t> tmp_serial{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmp_serial.fetch_add(1));

    FILE *file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr)
        return ioError("cannot open " + tmp + " for writing: " +
                       errnoText());

    Status failed = Status::ok();
    if (!content.empty() &&
        std::fwrite(content.data(), 1, content.size(), file) !=
            content.size())
        failed = ioError("short write to " + tmp + ": " + errnoText());
    if (failed.isOk() && std::fflush(file) != 0)
        failed = ioError("cannot flush " + tmp + ": " + errnoText());
    // fsync before rename: the rename must never become visible while
    // the data it points at is still only in the page cache.
    if (failed.isOk() && ::fsync(::fileno(file)) != 0)
        failed = ioError("cannot fsync " + tmp + ": " + errnoText());
    if (std::fclose(file) != 0 && failed.isOk())
        failed = ioError("cannot close " + tmp + ": " + errnoText());

    if (failed.isOk() && std::rename(tmp.c_str(), path.c_str()) != 0)
        failed = ioError("cannot rename " + tmp + " to " + path + ": " +
                         errnoText());
    if (!failed.isOk()) {
        ::unlink(tmp.c_str());
        return failed;
    }
    return Status::ok();
}

} // namespace bigfish
