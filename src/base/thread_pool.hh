/**
 * @file
 * Deterministic parallel execution: a small worker pool plus
 * parallelFor/parallelMap helpers used by the collection, training and
 * kernel hot paths.
 *
 * Design rules that make parallel runs bit-identical to serial ones:
 *
 *  - Work items are *independent* and write only to pre-sized output
 *    slots; the scheduler controls timing, never results. parallelFor
 *    hands out static chunks of the index range, so the arithmetic each
 *    index performs (including floating-point accumulation order) is
 *    the same at any thread count.
 *  - With one thread (or inside a worker, to avoid nested-pool
 *    deadlocks) the helpers degenerate to the exact serial loop.
 *  - Exceptions thrown by a body are captured, the pool drains the
 *    remaining chunks, and the first exception is rethrown on the
 *    calling thread, so a failed parallel region cannot wedge or leak
 *    work into the next one.
 *
 * Thread-count policy: the global pool defaults to the BF_THREADS
 * environment variable when set, else the hardware concurrency;
 * setGlobalThreads() (the --threads=N bench flag) overrides both.
 */

#ifndef BF_BASE_THREAD_POOL_HH
#define BF_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace bigfish {

/** A fixed-size worker pool with a shared FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; clamped to >= 1. A pool of 1 runs
     *                everything inline on the calling thread and spawns
     *                no workers at all (the exact serial path).
     */
    explicit ThreadPool(int threads);

    /** Joins all workers (any queued work is completed first). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** The number of threads that execute parallelFor bodies. */
    int threadCount() const { return threads_; }

    /**
     * Runs body(i) for every i in [0, n), statically chunked across the
     * pool. Bodies must only write to disjoint, pre-sized slots; under
     * that contract results are identical at any thread count. The
     * first exception a body throws is rethrown here after every chunk
     * has drained.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * Maps fn over [0, n) into a pre-sized result vector (slot i holds
     * fn(i)). Works for non-default-constructible result types.
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using T = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<std::optional<T>> slots(n);
        parallelFor(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> out;
        out.reserve(n);
        for (auto &slot : slots)
            out.push_back(std::move(*slot));
        return out;
    }

  private:
    void workerLoop();

    /** True on a pool worker thread (nested regions then run inline). */
    static bool onWorkerThread();

    int threads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::queue<std::function<void()>> tasks_;
    bool stopping_ = false;
};

/**
 * Thread count the global pool uses when not overridden: BF_THREADS
 * when set to a positive integer, else std::thread::hardware_concurrency.
 */
int defaultThreadCount();

/**
 * The process-wide pool used by the collection/training/kernel hot
 * paths. Created lazily with defaultThreadCount() threads.
 */
ThreadPool &globalPool();

/**
 * Replaces the global pool with one of @p threads workers (<= 0 resets
 * to defaultThreadCount()). Call only between parallel regions — e.g.
 * from flag parsing at startup or test setup.
 */
void setGlobalThreads(int threads);

/** The global pool's thread count. */
int globalThreadCount();

/** globalPool().parallelFor convenience wrapper. */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &body);

/** globalPool().parallelMap convenience wrapper. */
template <typename Fn>
auto
parallelMap(std::size_t n, Fn &&fn)
{
    return globalPool().parallelMap(n, std::forward<Fn>(fn));
}

} // namespace bigfish

#endif // BF_BASE_THREAD_POOL_HH
