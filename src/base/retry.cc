#include "base/retry.hh"

#include <algorithm>

#include "base/rng.hh"

namespace bigfish {

bool
RetryPolicy::shouldRetry(const Status &error, int attempt) const
{
    if (error.isOk() || attempt >= maxAttempts)
        return false;
    switch (error.code()) {
      case ErrorCode::IoError:
      case ErrorCode::Exhausted:
        return true;
      default:
        return false;
    }
}

double
RetryPolicy::delaySeconds(int attempt, std::uint64_t salt) const
{
    double delay = baseDelaySeconds;
    for (int i = 1; i < attempt; ++i)
        delay *= backoffMultiplier;
    delay = std::min(delay, maxDelaySeconds);
    if (jitterFraction > 0.0) {
        // A uniform in [0, 1) from the top 53 bits of a mixed word;
        // no wall-clock entropy anywhere (see file comment).
        const std::uint64_t word =
            mix64(mix64(seed ^ 0x52e7'7ab1'9cd0'4f63ULL) ^
                  mix64(salt + static_cast<std::uint64_t>(attempt)));
        const double uniform =
            static_cast<double>(word >> 11) * 0x1.0p-53;
        delay *= 1.0 - jitterFraction + 2.0 * jitterFraction * uniform;
    }
    return std::max(delay, 0.0);
}

std::uint64_t
retrySalt(const std::string &text)
{
    std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x0000'0100'0000'01b3ULL;
    }
    return hash;
}

} // namespace bigfish
