#include "base/mt64.hh"

#include "base/simd.hh"

namespace bigfish {

namespace {

constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
constexpr std::uint64_t kLowerMask = 0x000000007FFFFFFFULL;

inline std::uint64_t
twistWord(std::uint64_t cur, std::uint64_t next, std::uint64_t far)
{
    const std::uint64_t y = (cur & kUpperMask) | (next & kLowerMask);
    return far ^ (y >> 1) ^ ((y & 1) ? kMatrixA : 0ULL);
}

} // namespace

void
Mt64::refillScalar()
{
    int i = 0;
    for (; i < kN - kM; ++i)
        mt_[i] = twistWord(mt_[i], mt_[i + 1], mt_[i + kM]);
    for (; i < kN - 1; ++i)
        mt_[i] = twistWord(mt_[i], mt_[i + 1], mt_[i + kM - kN]);
    mt_[kN - 1] = twistWord(mt_[kN - 1], mt_[0], mt_[kM - 1]);
    mti_ = 0;
}

#if defined(BF_SIMD_X86)

__attribute__((target("avx2"))) void
Mt64::refillAvx2()
{
    // The twist is pure 64-bit integer logic, so four lanes at a time is
    // exact. Dependence check: iteration i writes mt_[i..i+3] and reads
    // mt_[i..i+4] (before the write) plus mt_[i+kM] / mt_[i+kM-kN]; in
    // phase one the far read is ahead of every write, in phase two it
    // trails the write cursor by kM=156 > 4 words. Unaligned loads keep
    // Mt64 free of an over-aligned-member ABI requirement.
    const __m256i um = _mm256_set1_epi64x(static_cast<long long>(kUpperMask));
    const __m256i lm = _mm256_set1_epi64x(static_cast<long long>(kLowerMask));
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i mat = _mm256_set1_epi64x(static_cast<long long>(kMatrixA));
    const __m256i zero = _mm256_setzero_si256();
    const auto twist4 = [&](const std::uint64_t *cur,
                            const std::uint64_t *far) {
        const __m256i x0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(cur));
        const __m256i x1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(cur + 1));
        const __m256i y = _mm256_or_si256(_mm256_and_si256(x0, um),
                                          _mm256_and_si256(x1, lm));
        // (y & 1) ? kMatrixA : 0, branchless: 0-(y&1) is an all-ones or
        // all-zeros lane mask.
        const __m256i mag = _mm256_and_si256(
            _mm256_sub_epi64(zero, _mm256_and_si256(y, one)), mat);
        const __m256i xf =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(far));
        return _mm256_xor_si256(_mm256_xor_si256(xf, _mm256_srli_epi64(y, 1)),
                                mag);
    };
    static_assert((kN - kM) % 4 == 0,
                  "phase one must be an exact multiple of the lane width");
    int i = 0;
    for (; i < kN - kM; i += 4)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(mt_ + i),
                            twist4(mt_ + i, mt_ + i + kM));
    for (; i + 4 <= kN - 1; i += 4)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(mt_ + i),
                            twist4(mt_ + i, mt_ + i + kM - kN));
    for (; i < kN - 1; ++i)
        mt_[i] = twistWord(mt_[i], mt_[i + 1], mt_[i + kM - kN]);
    mt_[kN - 1] = twistWord(mt_[kN - 1], mt_[0], mt_[kM - 1]);
    mti_ = 0;
}

#endif // BF_SIMD_X86

void
Mt64::refill()
{
    // Honors the BF_SIMD override like the kernel layer: =scalar really
    // does run only portable code. The paths are integer-exact, so the
    // choice can never change a deviate (rng_exact_test covers both).
#if defined(BF_SIMD_X86)
    if (simd::active() == simd::Tag::Avx2) {
        refillAvx2();
        return;
    }
#endif
    refillScalar();
}

} // namespace bigfish
