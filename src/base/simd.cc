#include "base/simd.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "base/logging.hh"

namespace bigfish::simd {

namespace {

/** -1 = not yet resolved; otherwise the int value of the active Tag. */
std::atomic<int> g_active{-1};

Tag
clampToSupported(Tag tag)
{
    if (tag == Tag::Avx2 && !supported(Tag::Avx2))
        tag = Tag::Sse2;
    if (tag == Tag::Sse2 && !supported(Tag::Sse2))
        tag = Tag::Scalar;
    return tag;
}

/** BF_SIMD override when set and recognized, else detect(). */
Tag
resolveInitial()
{
    // The one sanctioned environment read for kernel dispatch: like
    // BF_THREADS, it selects *how* work runs, never what the results
    // are — every Tag is bit-identical by construction.
    const char *env = std::getenv("BF_SIMD");
    if (env == nullptr || env[0] == '\0')
        return detect();
    const std::string want(env);
    Tag tag = detect();
    if (want == "scalar") {
        tag = Tag::Scalar;
    } else if (want == "sse2") {
        tag = Tag::Sse2;
    } else if (want == "avx2") {
        tag = Tag::Avx2;
    } else {
        warnOnce("simd/bad-env",
                 "ignoring BF_SIMD='" + want +
                     "' (want scalar, sse2 or avx2); using " + name(tag));
        return tag;
    }
    const Tag effective = clampToSupported(tag);
    if (effective != tag)
        warnOnce("simd/unsupported-env",
                 "BF_SIMD='" + want +
                     "' is not supported on this CPU; using " +
                     name(effective));
    return effective;
}

} // namespace

const char *
name(Tag tag)
{
    switch (tag) {
    case Tag::Scalar:
        return "scalar";
    case Tag::Sse2:
        return "sse2";
    case Tag::Avx2:
        return "avx2";
    }
    return "scalar";
}

bool
supported(Tag tag)
{
#if defined(BF_SIMD_X86)
    switch (tag) {
    case Tag::Scalar:
        return true;
    case Tag::Sse2:
        return __builtin_cpu_supports("sse2") != 0;
    case Tag::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
    }
    return false;
#else
    return tag == Tag::Scalar;
#endif
}

Tag
detect()
{
    if (supported(Tag::Avx2))
        return Tag::Avx2;
    if (supported(Tag::Sse2))
        return Tag::Sse2;
    return Tag::Scalar;
}

Tag
active()
{
    int current = g_active.load(std::memory_order_acquire);
    if (current >= 0)
        return static_cast<Tag>(current);
    const Tag resolved = resolveInitial();
    // Another thread may race the first resolution; both compute the
    // same value (the env is stable), so either store wins harmlessly.
    g_active.store(static_cast<int>(resolved), std::memory_order_release);
    return resolved;
}

Tag
setActive(Tag tag)
{
    const Tag effective = clampToSupported(tag);
    g_active.store(static_cast<int>(effective),
                   std::memory_order_release);
    return effective;
}

} // namespace bigfish::simd
