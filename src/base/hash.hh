/**
 * @file
 * The repository's two canonical non-cryptographic hashes.
 *
 * Every content-addressed facility (checkpoint journals, the stage
 * cache, stage fingerprints) uses the same two primitives:
 *
 *  - fnv64()  — FNV-1a over canonical one-line-per-field text; the
 *    fingerprint building block. Callers finalize compositions with
 *    mix64() (base/rng.hh) so related inputs cannot produce related
 *    keys.
 *  - crc32()  — IEEE 802.3 CRC, the whole-payload corruption trailer:
 *    torn, interleaved or bit-flipped writes surface as a clean
 *    validation failure instead of wrong data.
 *
 * Both are stable formats: their outputs are persisted in journal and
 * cache files, so changing either is a format break and must bump the
 * owning facility's format version line.
 */

#ifndef BF_BASE_HASH_HH
#define BF_BASE_HASH_HH

#include <cstdint>
#include <string_view>

namespace bigfish {

/** CRC32 (IEEE 802.3, polynomial 0xedb88320) of @p data. */
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/** FNV-1a 64-bit hash of @p text. */
[[nodiscard]] std::uint64_t fnv64(std::string_view text);

} // namespace bigfish

#endif // BF_BASE_HASH_HH
