/**
 * @file
 * Runtime ISA selection for the vectorized kernel layer.
 *
 * This header is the ONLY file in the tree allowed to include the x86
 * intrinsics headers (enforced by the bigfish-lint `intrinsics-header`
 * rule): every kernel that wants vector types reaches them through
 * here, so ISA-specific code cannot quietly spread through the tree.
 *
 * The kernel layer (ml/kernels.cc) carries three implementations of
 * every hot loop — AVX2, SSE2, and portable scalar — selected at
 * runtime behind one bf::simd::Tag. Selection order: the BF_SIMD
 * environment variable ("avx2" | "sse2" | "scalar", read once) when
 * set and supported by the host, otherwise the best ISA the CPU
 * reports. setActive() exists so tests and benches can sweep all three
 * paths in one process.
 *
 * Determinism contract (DESIGN.md §10): every Tag produces bit-identical
 * results. All reductions use a fixed 8-lane virtual accumulator — the
 * scalar and SSE2 paths emulate the same eight partial sums and the
 * same horizontal combine tree the AVX2 path uses (hsum8/hsum128 below
 * ARE that tree) — and no path uses fused multiply-add, so changing
 * Tag (or the host CPU) can never change a trained weight, a
 * checkpoint fingerprint, or a `--resume` replay.
 */

#ifndef BF_BASE_SIMD_HH
#define BF_BASE_SIMD_HH

#if defined(__x86_64__) || defined(__i386__)
#define BF_SIMD_X86 1
#include <immintrin.h>
#endif

namespace bigfish::simd {

/** One runtime-dispatched kernel implementation level. */
enum class Tag
{
    Scalar = 0, ///< Portable C++; emulates the 8-lane accumulator.
    Sse2 = 1,   ///< 128-bit pairs; emulates the 8-lane accumulator.
    Avx2 = 2,   ///< 256-bit vectors; the native 8-lane shape.
};

/** Lowercase name of @p tag ("scalar" / "sse2" / "avx2"). */
const char *name(Tag tag);

/** True when the host CPU can execute @p tag's kernels. */
bool supported(Tag tag);

/** The best Tag the host CPU supports (ignores BF_SIMD). */
Tag detect();

/**
 * The Tag kernels currently dispatch on. First call resolves the
 * BF_SIMD environment override (unknown or unsupported values warn and
 * fall back to detect()).
 */
Tag active();

/**
 * Forces the dispatch Tag (tests/benches sweeping all paths). An
 * unsupported @p tag is clamped to the best supported level at or
 * below it. Returns the Tag that took effect.
 */
Tag setActive(Tag tag);

#if defined(BF_SIMD_X86)

/**
 * The canonical horizontal combine of eight partial sums held as two
 * 128-bit halves [l0..l3], [l4..l7]:
 *
 *   ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7))
 *
 * Every reduction in the kernel layer — any Tag — must funnel its
 * eight virtual lanes through exactly this tree (the scalar path
 * spells it out in scalarHsum8 form inside ml/kernels.cc).
 */
__attribute__((always_inline, target("sse2"))) inline float
hsum128Pair(__m128 lo, __m128 hi)
{
    // s1 = [l0+l4, l1+l5, l2+l6, l3+l7]
    const __m128 s1 = _mm_add_ps(lo, hi);
    // s2 = [(l0+l4)+(l2+l6), (l1+l5)+(l3+l7), ...]
    const __m128 s2 =
        _mm_add_ps(s1, _mm_movehl_ps(s1, s1));
    // final = s2[0] + s2[1]
    const __m128 s3 = _mm_add_ss(
        s2, _mm_shuffle_ps(s2, s2, _MM_SHUFFLE(1, 1, 1, 1)));
    return _mm_cvtss_f32(s3);
}

/** hsum128Pair over one 256-bit accumulator's two halves. */
__attribute__((always_inline, target("avx"))) inline float
hsum8(__m256 v)
{
    return hsum128Pair(_mm256_castps256_ps128(v),
                       _mm256_extractf128_ps(v, 1));
}

#endif // BF_SIMD_X86

} // namespace bigfish::simd

/** Short namespace alias: bf::simd::Tag is the dispatch interface. */
namespace bf = bigfish;

#endif // BF_BASE_SIMD_HH
