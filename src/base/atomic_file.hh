/**
 * @file
 * Atomic file IO: write-temp-fsync-rename.
 *
 * Every durable artifact the suite produces — run artifact JSON, model
 * weights, checkpoint journals, the suite manifest — must never be
 * observable in a torn state. A kill -9 (or a simulated
 * FaultConfig::ioCrashAfterRecords crash) at any instant must leave
 * either the previous complete file or the new complete file, never a
 * prefix. atomicWriteFile() provides that guarantee the classic POSIX
 * way: write the full content to `<path>.tmp`, fsync it, then rename(2)
 * over the destination (atomic within a filesystem).
 *
 * The helpers return Status rather than terminating: a full disk or a
 * read-only artifact directory is an expected operating condition for a
 * long unattended run (see DESIGN.md §9).
 */

#ifndef BF_BASE_ATOMIC_FILE_HH
#define BF_BASE_ATOMIC_FILE_HH

#include <string>

#include "base/status.hh"

namespace bigfish {

/**
 * Creates @p path and any missing parents, like `mkdir -p`. Returns OK
 * when the directory already exists; an IoError naming the path when
 * creation fails.
 */
[[nodiscard]] Status createDirectories(const std::string &path);

/**
 * Atomically replaces @p path with @p content via write-temp-fsync-
 * rename. On failure the destination is untouched and the temp file is
 * removed. Concurrent writers of the *same* path race on the temp name;
 * all callers in this tree are single-writer per path.
 */
[[nodiscard]] Status atomicWriteFile(const std::string &path,
                                     const std::string &content);

} // namespace bigfish

#endif // BF_BASE_ATOMIC_FILE_HH
