/**
 * @file
 * Deterministic random number generation utilities.
 *
 * Every stochastic component in the reproduction draws from an explicitly
 * seeded Rng so that traces, datasets and experiments are bit-reproducible.
 * A small splittable-seed facility (Rng::fork) lets one master seed derive
 * independent streams for sites, runs and noise sources without the streams
 * being correlated.
 */

#ifndef BF_BASE_RNG_HH
#define BF_BASE_RNG_HH

#include <cstdint>
#include <random>

#include "base/types.hh"

namespace bigfish {

/**
 * Mixes a 64-bit value into a well-distributed hash (splitmix64 finalizer).
 *
 * Used both for seed derivation and for the "hash function" the Chrome
 * jittered timer uses to pick deterministic per-quantum jitter.
 *
 * @param x The value to mix.
 * @return A well-distributed 64-bit hash of x.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * A seeded pseudo-random stream with the distribution helpers the
 * simulator needs (uniform, normal, lognormal, exponential, Poisson).
 */
class Rng
{
  public:
    /** Constructs a stream from an explicit seed. */
    explicit Rng(std::uint64_t seed) : engine_(mix64(seed)) {}

    /**
     * Derives an independent child stream.
     *
     * @param salt Distinguishes sibling forks made from the same parent.
     * @return A new Rng whose sequence is uncorrelated with this one.
     */
    Rng
    fork(std::uint64_t salt)
    {
        return Rng(mix64(engine_()) ^ mix64(salt * 0x9e3779b97f4a7c15ULL));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Normal deviate with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return std::normal_distribution<double>(mean, stddev)(engine_);
    }

    /**
     * Lognormal deviate parameterized by the *median* and the sigma of the
     * underlying normal. Handler-time distributions in the interrupt model
     * use this because empirical interrupt costs are right-skewed.
     */
    double
    lognormal(double median, double sigma)
    {
        std::lognormal_distribution<double> dist(std::log(median), sigma);
        return dist(engine_);
    }

    /** Exponential deviate with the given mean (i.e. 1/rate). */
    double
    exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /** Poisson-distributed count with the given mean. */
    int
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        return std::poisson_distribution<int>(mean)(engine_);
    }

    /** True with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Raw 64-bit draw. */
    std::uint64_t operator()() { return engine_(); }

    /** The underlying engine, for use with std::shuffle and friends. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace bigfish

#endif // BF_BASE_RNG_HH
