/**
 * @file
 * Deterministic random number generation utilities.
 *
 * Every stochastic component in the reproduction draws from an explicitly
 * seeded Rng so that traces, datasets and experiments are bit-reproducible.
 * A small splittable-seed facility (Rng::fork) lets one master seed derive
 * independent streams for sites, runs and noise sources without the streams
 * being correlated.
 */

#ifndef BF_BASE_RNG_HH
#define BF_BASE_RNG_HH

#include <cmath>
#include <cstdint>
#include <random>

#include "base/mt64.hh"
#include "base/types.hh"

#if defined(__GLIBC__)
// Strict -std=c++20 hides glibc's lgamma_r declaration behind feature
// macros, so declare it directly.
extern "C" double lgamma_r(double, int *);
#endif

namespace bigfish {

/**
 * Computes log|Gamma(x)| without touching the global `signgam`.
 *
 * POSIX lgamma() stores the sign of Gamma(x) in a process-global as a
 * side effect, which is a data race when pool workers draw Poisson
 * deviates concurrently. lgamma_r returns the identical value and
 * writes the sign to a caller-local instead.
 */
inline double
lgammaLocal(double x)
{
#if defined(__GLIBC__)
    int sign = 0;
    return lgamma_r(x, &sign);
#else
    return std::lgamma(x);
#endif
}

/**
 * Mixes a 64-bit value into a well-distributed hash (splitmix64 finalizer).
 *
 * Used both for seed derivation and for the "hash function" the Chrome
 * jittered timer uses to pick deterministic per-quantum jitter.
 *
 * @param x The value to mix.
 * @return A well-distributed 64-bit hash of x.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * A seeded pseudo-random stream with the distribution helpers the
 * simulator needs (uniform, normal, lognormal, exponential, Poisson).
 */
class Rng
{
  public:
    /** Constructs a stream from an explicit seed. */
    explicit Rng(std::uint64_t seed) : engine_(mix64(seed)) {}

    /**
     * Derives an independent child stream.
     *
     * @param salt Distinguishes sibling forks made from the same parent.
     * @return A new Rng whose sequence is uncorrelated with this one.
     */
    Rng
    fork(std::uint64_t salt)
    {
        return Rng(mix64(engine_()) ^ mix64(salt * 0x9e3779b97f4a7c15ULL));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // std::uniform_real_distribution<double>(0, 1) evaluates
        // canonical()*(1-0)+0, which is bit-identical to canonical()
        // alone (the draw is never negative, so +0.0 is an identity).
        return canonical();
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return canonical() * (hi - lo) + lo;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
    }

    /** Normal deviate with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return polarNormal() * stddev + mean;
    }

    /**
     * Lognormal deviate parameterized by the *median* and the sigma of the
     * underlying normal. Handler-time distributions in the interrupt model
     * use this because empirical interrupt costs are right-skewed.
     */
    double
    lognormal(double median, double sigma)
    {
        return lognormalFromLogMedian(std::log(median), sigma);
    }

    /**
     * lognormal() for callers that can precompute log(median) — the
     * handler-cost model samples millions of times from a fixed table,
     * where the per-draw std::log was measurable. Identical deviate
     * stream to lognormal(median, sigma).
     */
    double
    lognormalFromLogMedian(double log_median, double sigma)
    {
        return std::exp(sigma * polarNormal() + log_median);
    }

    /** Exponential deviate with the given mean (i.e. 1/rate). */
    double
    exponential(double mean)
    {
        // The divisor replicates the lambda std::exponential_distribution
        // would store; folding the two divisions into "* mean" rounds
        // differently and would change the deviate stream.
        return -std::log(1.0 - canonical()) / (1.0 / mean);
    }

    /**
     * Poisson-distributed count with the given mean.
     *
     * std::poisson_distribution recomputes its rejection-method tables on
     * every fresh-mean construction, which dominated trace collection
     * (the synthesizer draws with a different rate*dt mean each sample).
     * Small means use Knuth's product method; large means use Hörmann's
     * PTRS transformed rejection — both exact and setup-free.
     */
    int
    poisson(double mean)
    {
        if (mean <= 0.0)
            return 0;
        if (mean < 10.0) {
            const double limit = std::exp(-mean);
            double prod = uniform();
            int k = 0;
            while (prod > limit) {
                ++k;
                prod *= uniform();
            }
            return k;
        }
        const double loglam = std::log(mean);
        const double b = 0.931 + 2.53 * std::sqrt(mean);
        const double a = -0.059 + 0.02483 * b;
        const double invalpha = 1.1239 + 1.1328 / (b - 3.4);
        const double vr = 0.9277 - 3.6224 / (b - 2.0);
        while (true) {
            const double u = uniform() - 0.5;
            double v = uniform();
            const double us = 0.5 - std::fabs(u);
            const double k =
                std::floor((2.0 * a / us + b) * u + mean + 0.43);
            if (us >= 0.07 && v <= vr)
                return static_cast<int>(k);
            if (k < 0.0 || (us < 0.013 && v > us))
                continue;
            if (std::log(v * invalpha / (a / (us * us) + b)) <=
                k * loglam - mean - lgammaLocal(k + 1.0))
                return static_cast<int>(k);
        }
    }

    /** True with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Raw 64-bit draw. */
    std::uint64_t operator()() { return engine_(); }

    /**
     * The underlying engine, for use with std::shuffle and friends.
     * Mt64 is stream-identical to the std::mt19937_64 this used to
     * return and exposes the same min/max, so std algorithms consume
     * it byte-for-byte the same way.
     */
    Mt64 &engine() { return engine_; }

  private:
    /**
     * Uniform double in [0, 1): an inline replica of libstdc++'s
     * std::generate_canonical<double, 53> over mt19937_64, which every
     * real-valued helper here used to reach through a freshly built
     * std distribution. For a 64-bit engine that algorithm reduces to
     * one raw draw divided by 2^64 (an exact power-of-two scale, so
     * the multiply below rounds identically) with results that round
     * up to 1.0 clamped to the largest double below one. Inlining it
     * drops a non-inlinable library call plus its long-double range
     * arithmetic from the simulator's hottest loop while keeping the
     * deviate stream bit-identical; tests/rng_exact_test.cc pins the
     * equivalence against the real <random> implementation.
     */
    double
    canonical()
    {
        double ret = static_cast<double>(engine_()) * 0x1p-64;
        if (ret >= 1.0)
            ret = 0x1.fffffffffffffp-1; // nextafter(1.0, 0.0)
        return ret;
    }

    /**
     * Standard normal deviate via the Marsaglia polar method, written
     * to consume canonical() draws in exactly the order a fresh
     * std::normal_distribution<double> would. The library object
     * caches the second deviate of each accepted pair, but normal()
     * and the lognormal helpers construct a new distribution per call,
     * so the cached value is always discarded — replicating only the
     * uncached path keeps the stream identical.
     */
    double
    polarNormal()
    {
        double x, y, r2;
        do {
            x = 2.0 * canonical() - 1.0;
            y = 2.0 * canonical() - 1.0;
            r2 = x * x + y * y;
        } while (r2 > 1.0 || r2 == 0.0);
        const double mult = std::sqrt(-2 * std::log(r2) / r2);
        return y * mult;
    }

    Mt64 engine_;
};

} // namespace bigfish

#endif // BF_BASE_RNG_HH
