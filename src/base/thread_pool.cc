#include "base/thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "base/logging.hh"

namespace bigfish {

namespace {

thread_local bool tls_on_worker = false;

} // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads)
{
    // A 1-thread pool is the serial path: no workers, no queue traffic.
    if (threads_ == 1)
        return;
    workers_.reserve(threads_);
    for (int i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

bool
ThreadPool::onWorkerThread()
{
    return tls_on_worker;
}

void
ThreadPool::workerLoop()
{
    tls_on_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    // Serial pool, tiny range, or a nested region on a worker thread:
    // run the exact serial loop inline.
    if (threads_ == 1 || n == 1 || onWorkerThread()) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // Static chunking: a few chunks per worker balances uneven work
    // items without dynamic stealing (results never depend on the
    // assignment, only wall-clock does).
    const std::size_t max_chunks =
        static_cast<std::size_t>(threads_) * 4;
    const std::size_t chunks = n < max_chunks ? n : max_chunks;
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;

    struct Region
    {
        std::atomic<std::size_t> remaining;
        std::mutex doneMutex;
        std::condition_variable done;
        std::exception_ptr error;
        std::mutex errorMutex;
    };
    auto region = std::make_shared<Region>();
    region->remaining.store(chunks, std::memory_order_relaxed);

    std::size_t lo = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t len = base + (c < extra ? 1 : 0);
            const std::size_t hi = lo + len;
            tasks_.push([&body, region, lo, hi] {
                try {
                    for (std::size_t i = lo; i < hi; ++i)
                        body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> error_lock(region->errorMutex);
                    if (!region->error)
                        region->error = std::current_exception();
                }
                if (region->remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1) {
                    std::lock_guard<std::mutex> done_lock(region->doneMutex);
                    region->done.notify_all();
                }
            });
            lo = hi;
        }
    }
    wake_.notify_all();

    // The caller lends a hand instead of blocking idle: pop region
    // chunks (or anything else queued) until the region drains.
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (region->remaining.load(std::memory_order_acquire) == 0)
                break;
            if (!tasks_.empty()) {
                task = std::move(tasks_.front());
                tasks_.pop();
            }
        }
        if (task) {
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(region->doneMutex);
        region->done.wait(lock, [&] {
            return region->remaining.load(std::memory_order_acquire) == 0;
        });
        break;
    }

    if (region->error)
        std::rethrow_exception(region->error);
}

int
defaultThreadCount()
{
    const char *env = std::getenv("BF_THREADS");
    if (env != nullptr) {
        const long parsed = std::atol(env);
        if (parsed >= 1)
            return static_cast<int>(parsed);
        warnOnce("thread-pool/bad-bf-threads",
                 "ignoring BF_THREADS='" + std::string(env) +
                     "' (want a positive integer)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::mutex &
globalPoolMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::unique_ptr<ThreadPool> &
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    auto &slot = globalPoolSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(defaultThreadCount());
    return *slot;
}

void
setGlobalThreads(int threads)
{
    const int count = threads <= 0 ? defaultThreadCount() : threads;
    std::lock_guard<std::mutex> lock(globalPoolMutex());
    auto &slot = globalPoolSlot();
    if (slot && slot->threadCount() == count)
        return;
    slot = std::make_unique<ThreadPool>(count);
}

int
globalThreadCount()
{
    return globalPool().threadCount();
}

void
parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
{
    globalPool().parallelFor(n, body);
}

} // namespace bigfish
