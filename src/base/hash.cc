#include "base/hash.hh"

#include <array>

namespace bigfish {

namespace {

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace

std::uint32_t
crc32(std::string_view data)
{
    std::uint32_t crc = 0xffffffffu;
    for (const char byte : data)
        crc = crcTable()[(crc ^ static_cast<unsigned char>(byte)) & 0xffu] ^
              (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint64_t
fnv64(std::string_view text)
{
    std::uint64_t hash = 0xcbf2'9ce4'8422'2325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x0000'0100'0000'01b3ULL;
    }
    return hash;
}

} // namespace bigfish
