/**
 * @file
 * Noise-injection countermeasures and workload overlays (Sections 4.3
 * and 6.2), plus the background-applications workload of Section 4.2.
 *
 * All three are expressed as ActivityTimeline overlays superimposed on
 * the victim's workload, so they generate interrupts / cache pressure
 * through exactly the same synthesizer paths as real activity:
 *
 *  - SpuriousInterruptInjector (ours, the Chrome extension): schedules
 *    thousands of random activity bursts and network pings while sites
 *    load, flooding the attacker's core with unpredictable interrupts.
 *  - CacheSweepNoise (Shusterman et al.'s defense): a thread repeatedly
 *    sweeps the whole LLC, pinning victim-visible occupancy near 1 and
 *    adding a little scheduler churn — but very few interrupts, which is
 *    why it barely dents either attack (Table 2).
 *  - BackgroundApps (Slack + Spotify playing music): moderate stationary
 *    network/audio/render activity.
 */

#ifndef BF_DEFENSE_NOISE_HH
#define BF_DEFENSE_NOISE_HH

#include "base/rng.hh"
#include "base/types.hh"
#include "sim/activity.hh"

namespace bigfish::defense {

/** Parameters of the spurious-interrupt countermeasure. */
struct SpuriousInterruptParams
{
    /** Mean bursts scheduled per second. */
    double burstsPerSecond = 8.0;
    /** Mean burst length. */
    TimeNs burstMean = 40 * kMsec;
    /** Network pings per second inside a burst. */
    double burstNetRate = 2500.0;
    /** Rescheduling wakeups per second inside a burst. */
    double burstReschedRate = 400.0;
    /** Deferred softirq work level inside a burst. */
    double burstSoftirqWork = 1.2;
    /** Stationary ping rate between bursts. */
    double baselineNetRate = 120.0;
};

/**
 * Builds the spurious-interrupt overlay for one run. Each run draws a
 * fresh random burst schedule — the randomness is the defense.
 */
sim::ActivityTimeline
spuriousInterruptOverlay(TimeNs duration, const SpuriousInterruptParams &p,
                         Rng &rng);

/** Parameters of the cache-sweep countermeasure. */
struct CacheSweepParams
{
    /** Occupancy the sweeping thread maintains. */
    double sweepOccupancy = 0.9;
    /** CPU the sweeping thread burns (cores). */
    double sweepCpuLoad = 1.0;
    /** Wakeups per second caused by the sweeping thread. */
    double sweepReschedRate = 20.0;
};

/** Builds the cache-sweep overlay (constant over the run). */
sim::ActivityTimeline cacheSweepOverlay(TimeNs duration,
                                        const CacheSweepParams &p);

/** Builds the Slack + Spotify background-noise overlay of Section 4.2. */
sim::ActivityTimeline backgroundAppsOverlay(TimeNs duration, Rng &rng);

/**
 * Estimated page-load slowdown factor caused by an overlay: the extra
 * interrupt handling and CPU demand steal victim cycles. The paper
 * measures 3.12 s -> 3.61 s (+15.7%) for the spurious-interrupt
 * extension.
 *
 * @param overlay The countermeasure overlay.
 * @param numCores Cores sharing the extra load.
 * @return Multiplicative load-time factor (>= 1).
 */
double loadTimeOverheadFactor(const sim::ActivityTimeline &overlay,
                              int numCores);

} // namespace bigfish::defense

#endif // BF_DEFENSE_NOISE_HH
