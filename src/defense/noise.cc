#include "defense/noise.hh"

#include <algorithm>
#include <cmath>

namespace bigfish::defense {

sim::ActivityTimeline
spuriousInterruptOverlay(TimeNs duration, const SpuriousInterruptParams &p,
                         Rng &rng)
{
    sim::ActivityTimeline overlay(duration);

    // Stationary ping floor.
    sim::ActivitySample baseline;
    baseline.netRxRate = p.baselineNetRate;
    baseline.softirqWork = 0.15;
    overlay.addSpan(0, duration, baseline);

    // Random activity bursts: their *schedule* is redrawn every run, so
    // the classifier cannot learn it away.
    const double duration_s =
        static_cast<double>(duration) / static_cast<double>(kSec);
    const int bursts = rng.poisson(p.burstsPerSecond * duration_s);
    for (int i = 0; i < bursts; ++i) {
        const TimeNs start = static_cast<TimeNs>(
            rng.uniform() * static_cast<double>(duration));
        const TimeNs len = static_cast<TimeNs>(
            rng.exponential(static_cast<double>(p.burstMean)));
        sim::ActivitySample burst;
        burst.netRxRate = p.burstNetRate * rng.uniform(0.5, 1.5);
        burst.reschedRate = p.burstReschedRate * rng.uniform(0.5, 1.5);
        burst.softirqWork = p.burstSoftirqWork;
        burst.cpuLoad = 2.0 * rng.uniform(0.5, 1.5);
        burst.tlbRate = 40.0;
        // The burst worker's buffers pollute the LLC as a side effect,
        // so the countermeasure also jams the cache-occupancy channel.
        burst.cacheOccupancy = 0.35 * rng.uniform(0.5, 1.5);
        overlay.addSpan(start, std::max<TimeNs>(len, kMsec), burst);
    }
    overlay.clampPhysical();
    return overlay;
}

sim::ActivityTimeline
cacheSweepOverlay(TimeNs duration, const CacheSweepParams &p)
{
    sim::ActivityTimeline overlay(duration);
    sim::ActivitySample sweep;
    sweep.cacheOccupancy = p.sweepOccupancy;
    sweep.cpuLoad = p.sweepCpuLoad;
    sweep.reschedRate = p.sweepReschedRate;
    overlay.addSpan(0, duration, sweep);
    overlay.clampPhysical();
    return overlay;
}

sim::ActivityTimeline
backgroundAppsOverlay(TimeNs duration, Rng &rng)
{
    sim::ActivityTimeline overlay(duration);

    // Slack: periodic sync chatter and occasional renders.
    sim::ActivitySample slack;
    slack.netRxRate = 60.0 * rng.uniform(0.7, 1.3);
    slack.gfxRate = 25.0;
    slack.softirqWork = 0.08;
    slack.reschedRate = 10.0;
    slack.cpuLoad = 0.15;
    slack.cacheOccupancy = 0.08;
    overlay.addSpan(0, duration, slack);

    // Spotify playing music: steady audio pipeline + buffering bursts.
    sim::ActivitySample spotify;
    spotify.netRxRate = 40.0;
    spotify.gfxRate = 15.0;
    spotify.softirqWork = 0.10;
    spotify.reschedRate = 25.0; // Audio thread wakeups.
    spotify.cpuLoad = 0.25;
    spotify.cacheOccupancy = 0.05;
    overlay.addSpan(0, duration, spotify);

    const double duration_s =
        static_cast<double>(duration) / static_cast<double>(kSec);
    const int refills = rng.poisson(0.4 * duration_s);
    for (int i = 0; i < refills; ++i) {
        sim::ActivitySample refill;
        refill.netRxRate = 500.0;
        refill.softirqWork = 0.4;
        overlay.addSpan(static_cast<TimeNs>(
                            rng.uniform() *
                            static_cast<double>(duration)),
                        300 * kMsec, refill);
    }
    overlay.clampPhysical();
    return overlay;
}

double
loadTimeOverheadFactor(const sim::ActivityTimeline &overlay, int numCores)
{
    // Average the overlay's CPU demand and interrupt handling cost and
    // charge the victim its fair share of the stolen capacity.
    double cpu_sum = 0.0;
    double handling_sum = 0.0;
    for (std::size_t i = 0; i < overlay.numIntervals(); ++i) {
        const sim::ActivitySample &s = overlay.at(i);
        cpu_sum += s.cpuLoad;
        // Rough per-interrupt victim-side costs: 5 us per network event
        // (IRQ + softirq), 2 us per wakeup.
        handling_sum += s.netRxRate * 5e-6 + s.reschedRate * 2e-6;
    }
    const double n = static_cast<double>(overlay.numIntervals());
    const double avg_cpu = cpu_sum / std::max(n, 1.0);
    const double avg_handling = handling_sum / std::max(n, 1.0);
    return 1.0 + avg_cpu / static_cast<double>(numCores) + avg_handling;
}

} // namespace bigfish::defense
