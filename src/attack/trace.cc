#include "attack/trace.hh"

#include <algorithm>

#include "stats/descriptive.hh"

namespace bigfish::attack {

double
Trace::maxCount() const
{
    if (counts.empty())
        return 0.0;
    return *std::max_element(counts.begin(), counts.end());
}

std::vector<double>
Trace::normalized() const
{
    return stats::normalizeByMax(counts);
}

int
TraceSet::numClasses() const
{
    int max_label = -1;
    for (const Trace &t : traces)
        max_label = std::max(max_label, t.label);
    return max_label + 1;
}

std::vector<std::vector<double>>
TraceSet::toFeatures(std::size_t featureLen) const
{
    std::vector<std::vector<double>> features;
    features.reserve(traces.size());
    for (const Trace &t : traces)
        features.push_back(stats::downsample(t.normalized(), featureLen));
    return features;
}

std::vector<std::vector<double>>
TraceSet::toDipFeatures(std::size_t featureLen) const
{
    std::vector<std::vector<double>> features;
    features.reserve(traces.size());
    for (const Trace &t : traces) {
        // Pair-sum adjacent periods first: consecutive measurement
        // windows tile time, so summing pairs cancels the shared
        // boundary's timer-jitter noise (a coarse-resolution fuzzed
        // timer like Firefox's 1 ms clamp adds +-A to each boundary but
        // interior boundaries telescope away in sums). The dip signal —
        // a softirq storm depressing a few consecutive periods —
        // survives the pairing.
        std::vector<double> paired;
        if (t.counts.size() >= 8) {
            paired.reserve(t.counts.size() / 2);
            for (std::size_t i = 0; i + 1 < t.counts.size(); i += 2)
                paired.push_back(t.counts[i] + t.counts[i + 1]);
        } else {
            paired = t.counts;
        }
        const auto norm = stats::normalizeByMax(paired);
        auto mean_ds = stats::downsample(norm, featureLen);
        const auto min_ds = stats::downsampleMin(norm, featureLen);
        for (std::size_t i = 0; i < featureLen; ++i)
            mean_ds[i] -= min_ds[i];
        features.push_back(std::move(mean_ds));
    }
    return features;
}

std::vector<Label>
TraceSet::labels() const
{
    std::vector<Label> out;
    out.reserve(traces.size());
    for (const Trace &t : traces)
        out.push_back(t.label);
    return out;
}

} // namespace bigfish::attack
