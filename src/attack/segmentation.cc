#include "attack/segmentation.hh"

#include <algorithm>

#include "base/logging.hh"
#include "stats/descriptive.hh"

namespace bigfish::attack {

std::vector<std::size_t>
detectNavigations(const Trace &trace, const SegmentationParams &params)
{
    std::vector<std::size_t> onsets;
    if (trace.counts.size() < 2 * params.smoothBins)
        return onsets;

    // Activity signal: 1 - normalized counter, smoothed. High = the
    // attacker is losing throughput = the victim is loading.
    const auto norm = trace.normalized();
    std::vector<double> activity(norm.size());
    for (std::size_t i = 0; i < norm.size(); ++i)
        activity[i] = 1.0 - norm[i];

    std::vector<double> smooth(activity.size(), 0.0);
    const std::size_t w = std::max<std::size_t>(params.smoothBins, 1);
    double acc = 0.0;
    for (std::size_t i = 0; i < activity.size(); ++i) {
        acc += activity[i];
        if (i >= w)
            acc -= activity[i - w];
        smooth[i] = acc / static_cast<double>(std::min(i + 1, w));
    }

    // Threshold relative to the trace's own dynamic range so the
    // detector is insensitive to absolute counter levels.
    const double lo = stats::quantile(smooth, 0.05);
    const double hi = stats::quantile(smooth, 0.98);
    if (hi <= lo)
        return onsets;
    const double threshold = lo + params.onsetThreshold * (hi - lo);

    const std::size_t min_spacing_bins = trace.period > 0
        ? static_cast<std::size_t>(params.minSpacing / trace.period)
        : w;
    bool loading = false;
    std::size_t last_onset = 0;
    for (std::size_t i = 0; i < smooth.size(); ++i) {
        const bool busy = smooth[i] > threshold;
        if (busy && !loading) {
            const std::size_t onset = i >= w / 2 ? i - w / 2 : 0;
            if (onsets.empty() ||
                onset - last_onset >= min_spacing_bins) {
                onsets.push_back(onset);
                last_onset = onset;
            }
            loading = true;
        } else if (!busy && loading) {
            loading = false;
        }
    }
    return onsets;
}

std::vector<Trace>
sliceTrace(const Trace &trace, const std::vector<std::size_t> &onsets)
{
    std::vector<Trace> slices;
    for (std::size_t i = 0; i < onsets.size(); ++i) {
        const std::size_t begin = onsets[i];
        const std::size_t end =
            i + 1 < onsets.size() ? onsets[i + 1] : trace.counts.size();
        panicIf(begin > trace.counts.size(), "onset out of range");
        if (end <= begin)
            continue;
        Trace slice;
        slice.siteId = trace.siteId;
        slice.label = trace.label;
        slice.period = trace.period;
        slice.attacker = trace.attacker;
        slice.counts.assign(trace.counts.begin() + begin,
                            trace.counts.begin() + end);
        if (trace.wallTimes.size() == trace.counts.size()) {
            slice.wallTimes.assign(trace.wallTimes.begin() + begin,
                                   trace.wallTimes.begin() + end);
        }
        slices.push_back(std::move(slice));
    }
    return slices;
}

} // namespace bigfish::attack
