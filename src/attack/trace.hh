/**
 * @file
 * Trace containers: the raw output of an attacker run and datasets of
 * labeled traces ready for the classifier.
 */

#ifndef BF_ATTACK_TRACE_HH
#define BF_ATTACK_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "base/types.hh"

namespace bigfish::attack {

/** One collected trace: the per-period counter values of Figure 2. */
struct Trace
{
    SiteId siteId = -1;     ///< Which site the victim loaded (-1 unknown).
    Label label = -1;       ///< Classifier label (may differ from siteId).
    TimeNs period = 0;      ///< Configured period length P.
    std::string attacker;   ///< "loop-counting" or "sweep-counting".

    /** Counter value stored per measurement period. */
    std::vector<double> counts;
    /** Real (wall) duration each period actually spanned. */
    std::vector<TimeNs> wallTimes;

    /** Number of periods recorded. */
    std::size_t size() const { return counts.size(); }

    /** Largest counter value (the attacker's normalization constant). */
    double maxCount() const;

    /** counts normalized by the maximum (Figures 3-4). */
    std::vector<double> normalized() const;
};

/** A labeled collection of traces. */
struct TraceSet
{
    std::vector<Trace> traces;

    std::size_t size() const { return traces.size(); }
    void add(Trace trace) { traces.push_back(std::move(trace)); }

    /** Number of distinct labels (max label + 1). */
    int numClasses() const;

    /**
     * Converts to fixed-length feature vectors: each trace is normalized
     * by its own maximum and resampled (bucket averages, or linear
     * interpolation when shorter) to @p featureLen buckets.
     */
    std::vector<std::vector<double>> toFeatures(std::size_t featureLen) const;

    /**
     * Per-bucket dip-depth companion to toFeatures(): bucket mean minus
     * bucket minimum of the normalized trace. This channel carries the
     * sub-bucket interrupt texture (a single softirq storm inside one
     * bucket) that plain bucket averages smooth away; it is zero by
     * construction when the timer is so coarse that each bucket holds at
     * most one measurement period.
     */
    std::vector<std::vector<double>>
    toDipFeatures(std::size_t featureLen) const;

    /** The label of every trace, aligned with toFeatures(). */
    std::vector<Label> labels() const;
};

} // namespace bigfish::attack

#endif // BF_ATTACK_TRACE_HH
