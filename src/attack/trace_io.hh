/**
 * @file
 * Trace persistence: CSV import/export of TraceSets.
 *
 * The paper's open-source release stores collected traces on disk and
 * trains on them offline; this module provides the same workflow:
 * collect once (expensive), then iterate on classifiers against the
 * saved dataset. The format is line-oriented CSV:
 *
 *   # bigfish-traces v1
 *   site_id,label,period_ns,attacker,count0,count1,...
 *
 * Counts are written with enough precision to round-trip exactly for
 * integer-valued counters. Wall times are not persisted (they are only
 * needed by the timer-defense analyses, which operate on live traces).
 *
 * Error contract: readers/writers return Result/Status instead of
 * terminating — corrupt trace files are an expected operating condition.
 * The strict readers reject the whole stream on the first malformed row;
 * readTracesLenient() skips malformed rows, keeps everything parseable
 * and reports per-file repair statistics. The ...OrDie() wrappers keep
 * example/bench binaries one-liners.
 */

#ifndef BF_ATTACK_TRACE_IO_HH
#define BF_ATTACK_TRACE_IO_HH

#include <cstddef>
#include <iosfwd>
#include <string>

#include "base/result.hh"
#include "base/status.hh"
#include "attack/trace.hh"

namespace bigfish::attack {

/** Largest count column-count a row may carry before it is rejected. */
inline constexpr std::size_t kMaxCountsPerRow = 1u << 22;

/** Largest site_id / label value accepted by the parser. */
inline constexpr int kMaxTraceId = 10'000'000;

/** Writes a TraceSet to a stream in bigfish-traces v1 format. */
[[nodiscard]] Status writeTraces(std::ostream &out, const TraceSet &traces);

/** Writes a TraceSet to a file. */
[[nodiscard]] Status saveTraces(const std::string &path, const TraceSet &traces);

/** saveTraces() that fatal()s on failure (binary boundaries only). */
void saveTracesOrDie(const std::string &path, const TraceSet &traces);

/**
 * Parses a bigfish-traces v1 stream strictly: the first malformed row
 * (wrong header, short row, bad number, non-finite count, out-of-range
 * site_id/label, overlong row) fails the whole read.
 */
[[nodiscard]] Result<TraceSet> readTraces(std::istream &in);

/** readTraces() that fatal()s on failure (binary boundaries only). */
TraceSet readTracesOrDie(std::istream &in);

/** Reads a TraceSet from a file (strict). */
[[nodiscard]] Result<TraceSet> loadTraces(const std::string &path);

/** loadTraces() that fatal()s on failure (binary boundaries only). */
TraceSet loadTracesOrDie(const std::string &path);

/** Per-stream repair statistics reported by the lenient reader. */
struct TraceRepairStats
{
    /** True when the stream began with the expected v1 header. */
    bool headerOk = false;
    /** The header line actually found (possibly truncated for display). */
    std::string headerFound;

    std::size_t rowsTotal = 0;     ///< Data rows seen (comments excluded).
    std::size_t rowsKept = 0;      ///< Rows parsed into traces.
    std::size_t rowsDropped = 0;   ///< Rows skipped (sum of the buckets).

    std::size_t shortRows = 0;     ///< Missing fields or no counts.
    std::size_t badNumberRows = 0; ///< Unparseable numeric fields.
    std::size_t overlongRows = 0;  ///< More than kMaxCountsPerRow counts.
    std::size_t outOfRangeRows = 0;///< site_id/label/period out of range.
    std::size_t nonFiniteRows = 0; ///< NaN or infinite counts.

    /** One-line human-readable summary for logs. */
    std::string summary() const;
};

/** The lenient reader's output: whatever parsed, plus repair stats. */
struct LenientTraces
{
    TraceSet traces;
    TraceRepairStats stats;
};

/**
 * Best-effort parse of a (possibly corrupt) trace stream: malformed rows
 * are skipped and tallied instead of failing the read, and a wrong or
 * missing header is recorded in the stats rather than rejected. Never
 * terminates the process; cannot fail on stream content.
 */
LenientTraces readTracesLenient(std::istream &in);

/**
 * File variant of readTracesLenient(). The only error is failing to
 * open the file; any content parses (possibly to zero traces).
 */
[[nodiscard]] Result<LenientTraces> loadTracesLenient(const std::string &path);

} // namespace bigfish::attack

#endif // BF_ATTACK_TRACE_IO_HH
