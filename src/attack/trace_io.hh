/**
 * @file
 * Trace persistence: CSV import/export of TraceSets.
 *
 * The paper's open-source release stores collected traces on disk and
 * trains on them offline; this module provides the same workflow:
 * collect once (expensive), then iterate on classifiers against the
 * saved dataset. The format is line-oriented CSV:
 *
 *   # bigfish-traces v1
 *   site_id,label,period_ns,attacker,count0,count1,...
 *
 * Counts are written with enough precision to round-trip exactly for
 * integer-valued counters. Wall times are not persisted (they are only
 * needed by the timer-defense analyses, which operate on live traces).
 */

#ifndef BF_ATTACK_TRACE_IO_HH
#define BF_ATTACK_TRACE_IO_HH

#include <iosfwd>
#include <string>

#include "attack/trace.hh"

namespace bigfish::attack {

/** Writes a TraceSet to a stream in bigfish-traces v1 format. */
void writeTraces(std::ostream &out, const TraceSet &traces);

/** Writes a TraceSet to a file; fatal() on I/O failure. */
void saveTraces(const std::string &path, const TraceSet &traces);

/**
 * Parses a bigfish-traces v1 stream.
 * fatal() on malformed input (wrong header, short rows, bad numbers).
 */
TraceSet readTraces(std::istream &in);

/** Reads a TraceSet from a file; fatal() on I/O failure. */
TraceSet loadTraces(const std::string &path);

} // namespace bigfish::attack

#endif // BF_ATTACK_TRACE_IO_HH
