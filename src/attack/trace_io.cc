#include "attack/trace_io.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace bigfish::attack {

namespace {

constexpr const char *kHeader = "# bigfish-traces v1";
constexpr const char *kHeaderPrefix = "# bigfish-traces ";

/** Why one row failed to parse (the lenient reader's tally buckets). */
enum class RowFault
{
    None,
    Short,      ///< Missing fields or no counts.
    BadNumber,  ///< A field that should be numeric is not.
    Overlong,   ///< More than kMaxCountsPerRow counts.
    OutOfRange, ///< site_id/label/period outside the legal range.
    NonFinite,  ///< NaN or infinite counts.
};

/** First ~60 chars of a line, for error messages naming found content. */
std::string
display(const std::string &line)
{
    constexpr std::size_t kMax = 60;
    if (line.size() <= kMax)
        return line;
    return line.substr(0, kMax) + "...";
}

/**
 * Parses one data row. On failure, returns the fault category and sets
 * @p message to a row-local description (the caller adds line context).
 */
RowFault
parseRow(const std::string &line, Trace &trace, std::string &message)
{
    std::istringstream row(line);
    std::string field;

    auto next = [&](const char *what) -> bool {
        if (!std::getline(row, field, ',') || field.empty()) {
            message = std::string("missing field: ") + what;
            return false;
        }
        return true;
    };

    try {
        if (!next("site_id"))
            return RowFault::Short;
        trace.siteId = std::stoi(field);
        if (!next("label"))
            return RowFault::Short;
        trace.label = std::stoi(field);
        if (!next("period_ns"))
            return RowFault::Short;
        trace.period = std::stoll(field);
        if (!next("attacker"))
            return RowFault::Short;
        trace.attacker = field;
        while (std::getline(row, field, ',')) {
            if (trace.counts.size() >= kMaxCountsPerRow) {
                message = "row exceeds " +
                          std::to_string(kMaxCountsPerRow) + " counts";
                return RowFault::Overlong;
            }
            trace.counts.push_back(std::stod(field));
        }
    } catch (const std::exception &e) {
        message = std::string("malformed trace row: ") + e.what() +
                  " in field \"" + display(field) + "\"";
        return RowFault::BadNumber;
    }

    if (trace.counts.empty()) {
        message = "trace row has no counts";
        return RowFault::Short;
    }
    if (trace.siteId < -1 || trace.siteId > kMaxTraceId) {
        message = "site_id " + std::to_string(trace.siteId) +
                  " out of range [-1, " + std::to_string(kMaxTraceId) + "]";
        return RowFault::OutOfRange;
    }
    if (trace.label < -1 || trace.label > kMaxTraceId) {
        message = "label " + std::to_string(trace.label) +
                  " out of range [-1, " + std::to_string(kMaxTraceId) + "]";
        return RowFault::OutOfRange;
    }
    if (trace.period <= 0) {
        message = "period_ns " + std::to_string(trace.period) +
                  " must be positive";
        return RowFault::OutOfRange;
    }
    for (double c : trace.counts) {
        if (!std::isfinite(c)) {
            message = "non-finite count value";
            return RowFault::NonFinite;
        }
    }
    return RowFault::None;
}

/** Maps a row fault to the Status the strict reader reports. */
Status
rowFaultStatus(RowFault fault, std::size_t line_no,
               const std::string &message)
{
    const std::string where = "line " + std::to_string(line_no) + ": ";
    switch (fault) {
      case RowFault::Short:
      case RowFault::BadNumber:
        return parseError(where + message);
      case RowFault::Overlong:
      case RowFault::OutOfRange:
        return outOfRangeError(where + message);
      case RowFault::NonFinite:
        return dataError(where + message);
      case RowFault::None:
        break;
    }
    return Status::ok();
}

/**
 * Validates the header line. Names the found header in the error so a
 * user staring at a v2 file (or a random CSV) sees what was wrong.
 */
Status
checkHeader(bool read_ok, const std::string &line)
{
    if (!read_ok)
        return parseError(std::string("empty stream: expected header \"") +
                          kHeader + "\"");
    if (line == kHeader)
        return Status::ok();
    if (line.rfind(kHeaderPrefix, 0) == 0)
        return parseError(std::string("unsupported bigfish-traces "
                                      "version: expected \"") +
                          kHeader + "\", found \"" + display(line) + "\"");
    return parseError(std::string("not a bigfish-traces v1 stream: "
                                  "expected header \"") +
                      kHeader + "\", found \"" + display(line) + "\"");
}

} // namespace

Status
writeTraces(std::ostream &out, const TraceSet &traces)
{
    out << kHeader << "\n";
    out << "# site_id,label,period_ns,attacker,counts...\n";
    for (const Trace &trace : traces.traces) {
        out << trace.siteId << ',' << trace.label << ',' << trace.period
            << ',' << trace.attacker;
        std::ostringstream row;
        row.precision(17);
        for (double c : trace.counts)
            row << ',' << c;
        out << row.str() << "\n";
    }
    if (!out)
        return ioError("trace stream write failed");
    return Status::ok();
}

Status
saveTraces(const std::string &path, const TraceSet &traces)
{
    std::ofstream out(path);
    if (!out)
        return ioError("cannot open " + path + " for writing");
    BF_RETURN_IF_ERROR(writeTraces(out, traces));
    out.flush();
    if (!out)
        return ioError("write to " + path + " failed");
    return Status::ok();
}

void
saveTracesOrDie(const std::string &path, const TraceSet &traces)
{
    const Status status = saveTraces(path, traces);
    fatalIf(!status.isOk(), status.toString());
}

Result<TraceSet>
readTraces(std::istream &in)
{
    std::string line;
    const bool read_ok = static_cast<bool>(std::getline(in, line));
    BF_RETURN_IF_ERROR(checkHeader(read_ok, line));

    TraceSet set;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        Trace trace;
        std::string message;
        const RowFault fault = parseRow(line, trace, message);
        if (fault != RowFault::None)
            return rowFaultStatus(fault, line_no, message);
        set.add(std::move(trace));
    }
    return set;
}

TraceSet
readTracesOrDie(std::istream &in)
{
    // OrDie wrapper implementation: abort-on-error is the contract.
    // bigfish-lint: allow(ordie-outside-binary)
    return readTraces(in).valueOrDie();
}

Result<TraceSet>
loadTraces(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status(ioError("cannot open " + path + " for reading"));
    return readTraces(in);
}

TraceSet
loadTracesOrDie(const std::string &path)
{
    // OrDie wrapper implementation: abort-on-error is the contract.
    // bigfish-lint: allow(ordie-outside-binary)
    return loadTraces(path).valueOrDie();
}

std::string
TraceRepairStats::summary() const
{
    std::ostringstream out;
    out << "kept " << rowsKept << "/" << rowsTotal << " rows";
    if (!headerOk)
        out << ", bad header \"" << display(headerFound) << "\"";
    if (shortRows)
        out << ", " << shortRows << " short";
    if (badNumberRows)
        out << ", " << badNumberRows << " bad-number";
    if (overlongRows)
        out << ", " << overlongRows << " overlong";
    if (outOfRangeRows)
        out << ", " << outOfRangeRows << " out-of-range";
    if (nonFiniteRows)
        out << ", " << nonFiniteRows << " non-finite";
    return out.str();
}

LenientTraces
readTracesLenient(std::istream &in)
{
    LenientTraces result;
    TraceRepairStats &stats = result.stats;

    std::string line;
    if (std::getline(in, line)) {
        stats.headerFound = display(line);
        stats.headerOk = (line == kHeader);
    }
    if (!stats.headerOk) {
        warnOnce("trace-io/lenient-header",
                 "lenient trace read: stream does not start with \"" +
                     std::string(kHeader) + "\" (found \"" +
                     stats.headerFound + "\"); parsing rows best-effort");
        // The first line may itself be a data row; try it below.
        if (!stats.headerFound.empty() && line[0] != '#') {
            Trace trace;
            std::string message;
            ++stats.rowsTotal;
            if (parseRow(line, trace, message) == RowFault::None) {
                ++stats.rowsKept;
                result.traces.add(std::move(trace));
            } else {
                ++stats.rowsDropped;
                ++stats.shortRows; // Headerish line: count as short.
            }
        }
    }

    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        ++stats.rowsTotal;
        Trace trace;
        std::string message;
        switch (parseRow(line, trace, message)) {
          case RowFault::None:
            ++stats.rowsKept;
            result.traces.add(std::move(trace));
            continue;
          case RowFault::Short:
            ++stats.shortRows;
            break;
          case RowFault::BadNumber:
            ++stats.badNumberRows;
            break;
          case RowFault::Overlong:
            ++stats.overlongRows;
            break;
          case RowFault::OutOfRange:
            ++stats.outOfRangeRows;
            break;
          case RowFault::NonFinite:
            ++stats.nonFiniteRows;
            break;
        }
        ++stats.rowsDropped;
        warnOnce("trace-io/lenient-row",
                 "lenient trace read: dropping malformed row(s); first: " +
                     message);
    }
    return result;
}

Result<LenientTraces>
loadTracesLenient(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status(ioError("cannot open " + path + " for reading"));
    return readTracesLenient(in);
}

} // namespace bigfish::attack
