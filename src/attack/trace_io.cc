#include "attack/trace_io.hh"

#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace bigfish::attack {

namespace {

constexpr const char *kHeader = "# bigfish-traces v1";

} // namespace

void
writeTraces(std::ostream &out, const TraceSet &traces)
{
    out << kHeader << "\n";
    out << "# site_id,label,period_ns,attacker,counts...\n";
    for (const Trace &trace : traces.traces) {
        out << trace.siteId << ',' << trace.label << ',' << trace.period
            << ',' << trace.attacker;
        std::ostringstream row;
        row.precision(17);
        for (double c : trace.counts)
            row << ',' << c;
        out << row.str() << "\n";
    }
}

void
saveTraces(const std::string &path, const TraceSet &traces)
{
    std::ofstream out(path);
    fatalIf(!out, "cannot open " + path + " for writing");
    writeTraces(out, traces);
    out.flush();
    fatalIf(!out, "write to " + path + " failed");
}

TraceSet
readTraces(std::istream &in)
{
    std::string line;
    fatalIf(!std::getline(in, line) || line != kHeader,
            "not a bigfish-traces v1 stream");
    TraceSet set;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream row(line);
        Trace trace;
        std::string field;

        auto next = [&](const char *what) {
            fatalIf(!std::getline(row, field, ','),
                    std::string("trace row missing field: ") + what);
            return field;
        };
        try {
            trace.siteId = std::stoi(next("site_id"));
            trace.label = std::stoi(next("label"));
            trace.period = std::stoll(next("period_ns"));
            trace.attacker = next("attacker");
            while (std::getline(row, field, ','))
                trace.counts.push_back(std::stod(field));
        } catch (const std::exception &e) {
            fatal(std::string("malformed trace row: ") + e.what());
        }
        fatalIf(trace.counts.empty(), "trace row has no counts");
        set.add(std::move(trace));
    }
    return set;
}

TraceSet
loadTraces(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open " + path + " for reading");
    return readTraces(in);
}

} // namespace bigfish::attack
