/**
 * @file
 * The two attackers of Figure 2.
 *
 * Both share the same outer structure: measure how many inner-loop
 * iterations complete per observed period P. They differ only in the
 * inner loop body:
 *
 *  - LoopCountingAttacker (Figure 2b, this paper's attack): the body is
 *    counter++ plus a timer read. Its per-iteration cost is a small
 *    constant scaled by the machine's frequency factor; roughly 27,000
 *    iterations complete per idle 5 ms period.
 *
 *  - SweepCountingAttacker (Figure 2a, Shusterman et al.'s cache-
 *    occupancy attack): the body additionally touches every line of an
 *    LLC-sized buffer, so its per-iteration cost is dominated by how
 *    many of those lines the victim evicted — it depends on the victim's
 *    cache occupancy, and only ~32 sweeps complete per idle 5 ms period.
 *
 * Both are executed by the same closed-form ExecutionEngine, so the only
 * differences between their traces are (a) the iteration-cost model and
 * (b) the counter's dynamic range — exactly the comparison the paper
 * makes.
 */

#ifndef BF_ATTACK_ATTACKER_HH
#define BF_ATTACK_ATTACKER_HH

#include <memory>
#include <string>
#include <vector>

#include "attack/trace.hh"
#include "base/result.hh"
#include "base/rng.hh"
#include "sim/machine.hh"
#include "sim/run_timeline.hh"
#include "timers/timer.hh"

namespace bigfish::attack {

/** Which attacker loop body to run. */
enum class AttackerKind
{
    LoopCounting,  ///< This paper's attack: no memory accesses.
    SweepCounting, ///< Shusterman et al.'s cache-occupancy attack.
};

/** Name for reports ("loop-counting" / "sweep-counting"). */
std::string attackerKindName(AttackerKind kind);

/** Cost parameters of the attacker inner loops. */
struct AttackerParams
{
    /**
     * CPU cost of one loop-counting iteration (counter++ plus a
     * performance.now() read through the browser bindings).
     */
    double loopIterNs = 185.0;
    /** Loop overhead per sweep iteration (time read + loop control). */
    double sweepOverheadNs = 300.0;
    /**
     * Fraction of the victim's occupancy the sweeping buffer actually
     * observes: each attacker sweep refills the whole LLC with its own
     * buffer, so only lines the victim re-touched since the previous
     * sweep (~150 us earlier) appear as misses.
     */
    double sweepObservedOccupancy = 0.12;
    /**
     * Per-step lognormal sigma on the sweep iteration cost: DRAM bank
     * conflicts, prefetcher behaviour and page-walk variance make the
     * memory-bound sweep loop inherently noisier than the pure
     * register loop. This is the modeled mechanism behind the paper's
     * finding that the sweep's "extensive memory accesses ... actually
     * inhibit its performance".
     */
    double sweepCostSigma = 0.08;
};

/**
 * Runs one attacker over one synthesized timeline and returns the trace.
 *
 * @param kind Which inner loop body to run.
 * @param params Iteration cost parameters.
 * @param machine The machine (provides LLC geometry for the sweeper).
 * @param timeline The schedule the attacker's core experiences.
 * @param timer The attacker's clock (browser-shaped or defended).
 * @param period The period length P.
 * @param noise_seed Seed for attacker-side cost noise (memory-system
 *                   variance of the sweeping loop).
 * @return The collected trace (counts and per-period wall times), or an
 *         InvalidArgument error for an unusable period.
 */
[[nodiscard]] Result<Trace> collectTrace(AttackerKind kind, const AttackerParams &params,
                           const sim::MachineConfig &machine,
                           const sim::RunTimeline &timeline,
                           timers::TimerModel &timer, TimeNs period,
                           std::uint64_t noise_seed = 0);

/** collectTrace() that fatal()s on failure (binary boundaries only). */
Trace collectTraceOrDie(AttackerKind kind, const AttackerParams &params,
                        const sim::MachineConfig &machine,
                        const sim::RunTimeline &timeline,
                        timers::TimerModel &timer, TimeNs period,
                        std::uint64_t noise_seed = 0);

/**
 * The per-activity-step iteration cost vector an attacker kind uses on a
 * given timeline (exposed for tests and the micro benchmarks).
 *
 * @param rng Optional attacker-side cost-noise stream; pass nullptr for
 *            the deterministic costs.
 */
std::vector<double> iterationCosts(AttackerKind kind,
                                   const AttackerParams &params,
                                   const sim::MachineConfig &machine,
                                   const sim::RunTimeline &timeline,
                                   Rng *rng = nullptr);

/**
 * The paper's third attacker variant (Section 5.2): a native process
 * that spins reading CLOCK_MONOTONIC and records, per period P, the
 * total time lost to execution gaps. Where the counting attackers
 * measure surviving throughput, this one measures the stolen time
 * directly; the two are complementary views of the same side channel
 * ("our traces and the trace of interrupt-handler activity are
 * generated using different attack code").
 *
 * @param timeline The schedule the attacker's core experiences.
 * @param period Trace bin width P.
 * @param poll_cost_ns Cost of one monotonic-clock read (vDSO, ~30 ns).
 * @param threshold Smallest observed jump recorded as lost time.
 * @return A trace whose counts are *nanoseconds lost per period*, or an
 *         InvalidArgument error for unusable period/poll parameters.
 */
[[nodiscard]] Result<Trace> collectGapTrace(const sim::RunTimeline &timeline,
                              TimeNs period, TimeNs poll_cost_ns = 30,
                              TimeNs threshold = 100);

/** collectGapTrace() that fatal()s on failure (binary boundaries only). */
Trace collectGapTraceOrDie(const sim::RunTimeline &timeline, TimeNs period,
                           TimeNs poll_cost_ns = 30,
                           TimeNs threshold = 100);

} // namespace bigfish::attack

#endif // BF_ATTACK_ATTACKER_HH
