/**
 * @file
 * Trace segmentation for continuous monitoring.
 *
 * A deployed attacker records one long trace while the victim browses
 * and must find page-navigation instants before it can classify
 * anything. Navigations announce themselves in the side channel: a page
 * load opens with a burst of interrupt activity after the relative calm
 * of reading the previous page, i.e. a sustained dip in the attacker's
 * counter following a quiet stretch.
 *
 * detectNavigations() implements exactly that heuristic; sliceTrace()
 * cuts a long trace into per-visit traces the standard classifier can
 * consume.
 */

#ifndef BF_ATTACK_SEGMENTATION_HH
#define BF_ATTACK_SEGMENTATION_HH

#include <vector>

#include "attack/trace.hh"

namespace bigfish::attack {

/** Tuning of the navigation detector. */
struct SegmentationParams
{
    /** Smoothing window over trace bins. */
    std::size_t smoothBins = 40;
    /**
     * Activity level (fraction of the trace's dip range) above which a
     * region counts as "loading".
     */
    double onsetThreshold = 0.35;
    /** Minimum quiet-then-busy spacing between navigations. */
    TimeNs minSpacing = 5 * kSec;
};

/**
 * Detects navigation onsets in a long trace.
 *
 * @param trace The attacker's continuous trace.
 * @param params Detector tuning.
 * @return Bin indices (ascending) where page loads are estimated to
 *         begin. The first detected onset may be bin 0.
 */
std::vector<std::size_t>
detectNavigations(const Trace &trace, const SegmentationParams &params = {});

/**
 * Cuts @p trace into per-visit traces at the given onset bins; each
 * slice extends to the next onset (or trace end) and inherits the
 * parent's metadata.
 */
std::vector<Trace> sliceTrace(const Trace &trace,
                              const std::vector<std::size_t> &onsets);

} // namespace bigfish::attack

#endif // BF_ATTACK_SEGMENTATION_HH
