#include "attack/attacker.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/engine.hh"

namespace bigfish::attack {

std::string
attackerKindName(AttackerKind kind)
{
    switch (kind) {
      case AttackerKind::LoopCounting:
        return "loop-counting";
      case AttackerKind::SweepCounting:
        return "sweep-counting";
    }
    return "unknown";
}

std::vector<double>
iterationCosts(AttackerKind kind, const AttackerParams &params,
               const sim::MachineConfig &machine,
               const sim::RunTimeline &timeline, Rng *rng)
{
    std::vector<double> costs(timeline.iterCostFactor.size(), 0.0);
    const double lines = static_cast<double>(machine.llcLines());
    for (std::size_t step = 0; step < costs.size(); ++step) {
        const double factor = timeline.iterCostFactor[step];
        switch (kind) {
          case AttackerKind::LoopCounting:
            costs[step] = params.loopIterNs * factor;
            break;
          case AttackerKind::SweepCounting: {
            // One iteration sweeps the whole LLC-sized buffer: resident
            // lines hit, victim-evicted lines miss to DRAM.
            const double occ = timeline.occupancy[step] *
                               params.sweepObservedOccupancy;
            const double sweep = lines * machine.sweepHitNsPerLine +
                                 occ * lines * machine.sweepMissExtraNsPerLine;
            // Memory-system variance of the sweeping loop itself.
            const double mem_noise =
                rng != nullptr ? rng->lognormal(1.0, params.sweepCostSigma)
                               : 1.0;
            costs[step] =
                (sweep + params.sweepOverheadNs) * factor * mem_noise;
            break;
          }
        }
        panicIf(costs[step] <= 0.0, "non-positive iteration cost");
    }
    return costs;
}

Result<Trace>
collectTrace(AttackerKind kind, const AttackerParams &params,
             const sim::MachineConfig &machine,
             const sim::RunTimeline &timeline, timers::TimerModel &timer,
             TimeNs period, std::uint64_t noise_seed)
{
    if (period <= 0)
        return Status(
            invalidArgumentError("attacker period must be positive"));
    Trace trace;
    trace.period = period;
    trace.attacker = attackerKindName(kind);

    Rng noise(mix64(noise_seed) ^ 0xa77acbeULL);
    sim::ExecutionEngine engine(
        timeline, iterationCosts(kind, params, machine, timeline, &noise));

    sim::PeriodResult result;
    // Reserve assuming periods roughly match P (fuzzed timers may differ).
    const std::size_t expected_periods =
        static_cast<std::size_t>(timeline.duration / period + 1);
    trace.counts.reserve(expected_periods);
    trace.wallTimes.reserve(expected_periods);
    // Resolve the timer's concrete type once per trace so the period
    // loop instantiates the engine's devirtualized fast path — observe()
    // runs tens of millions of times inside runPeriod. Unrecognized
    // models (the randomized defense's decorators, test fakes) take the
    // generic instantiation, which returns identical results.
    const auto measure = [&](auto &t) {
        while (engine.runPeriod(t, period, result)) {
            trace.counts.push_back(static_cast<double>(result.iterations));
            trace.wallTimes.push_back(result.wallTime);
        }
    };
    if (auto *jittered = dynamic_cast<timers::JitteredTimer *>(&timer))
        measure(*jittered);
    else if (auto *quantized =
                 dynamic_cast<timers::QuantizedTimer *>(&timer))
        measure(*quantized);
    else if (auto *precise = dynamic_cast<timers::PreciseTimer *>(&timer))
        measure(*precise);
    else if (auto *randomized =
                 dynamic_cast<timers::RandomizedTimer *>(&timer))
        measure(*randomized);
    else
        measure(timer);
    return trace;
}

Trace
collectTraceOrDie(AttackerKind kind, const AttackerParams &params,
                  const sim::MachineConfig &machine,
                  const sim::RunTimeline &timeline,
                  timers::TimerModel &timer, TimeNs period,
                  std::uint64_t noise_seed)
{
    return collectTrace(kind, params, machine, timeline, timer, period,
                        noise_seed)
        // This *is* the OrDie wrapper's implementation; callers opted
        // into abort-on-error by picking the ...OrDie entry point.
        // bigfish-lint: allow(ordie-outside-binary)
        .valueOrDie();
}

Result<Trace>
collectGapTrace(const sim::RunTimeline &timeline, TimeNs period,
                TimeNs poll_cost_ns, TimeNs threshold)
{
    if (period <= 0)
        return Status(
            invalidArgumentError("gap-trace period must be positive"));
    if (poll_cost_ns <= 0)
        return Status(invalidArgumentError("poll cost must be positive"));
    Trace trace;
    trace.period = period;
    trace.attacker = "gap-trace";
    const std::size_t bins =
        static_cast<std::size_t>((timeline.duration + period - 1) / period);
    trace.counts.assign(bins, 0.0);
    trace.wallTimes.assign(bins, period);

    // Between stolen intervals consecutive monotonic readings differ by
    // exactly one poll, so each observable jump corresponds to a span of
    // stolen time (spans closer together than one poll merge, exactly as
    // in ktrace::GapDetector). The jump's length is charged to the bins
    // it overlaps.
    const auto &stolen = timeline.stolen;
    std::size_t i = 0;
    while (i < stolen.size()) {
        const TimeNs gap_start = stolen[i].arrival;
        TimeNs gap_end = stolen[i].end();
        std::size_t j = i + 1;
        while (j < stolen.size() &&
               stolen[j].arrival - gap_end < poll_cost_ns) {
            gap_end = stolen[j].end();
            ++j;
        }
        if ((gap_end - gap_start) + poll_cost_ns >= threshold) {
            TimeNs t = gap_start;
            while (t < gap_end) {
                const std::size_t bin =
                    std::min(static_cast<std::size_t>(t / period),
                             bins - 1);
                const TimeNs bin_end =
                    (static_cast<TimeNs>(bin) + 1) * period;
                const TimeNs slice = std::min(gap_end, bin_end) - t;
                trace.counts[bin] += static_cast<double>(slice);
                t += slice;
            }
        }
        i = j;
    }
    return trace;
}

Trace
collectGapTraceOrDie(const sim::RunTimeline &timeline, TimeNs period,
                     TimeNs poll_cost_ns, TimeNs threshold)
{
    return collectGapTrace(timeline, period, poll_cost_ns, threshold)
        // OrDie wrapper implementation: abort-on-error is the contract.
        // bigfish-lint: allow(ordie-outside-binary)
        .valueOrDie();
}

} // namespace bigfish::attack
