#include "sim/engine.hh"

#include <algorithm>

#include "base/logging.hh"

namespace bigfish::sim {

ExecutionEngine::ExecutionEngine(const RunTimeline &timeline,
                                 std::vector<double> iterCostNs)
    : timeline_(timeline), iterCostNs_(std::move(iterCostNs)),
      durationF_(static_cast<double>(timeline.duration))
{
    panicIf(iterCostNs_.size() != timeline.iterCostFactor.size(),
            "ExecutionEngine iteration-cost vector must have one entry per "
            "timeline step");
    for (double c : iterCostNs_)
        panicIf(c <= 0.0, "iteration cost must be positive");
}

void
ExecutionEngine::restart()
{
    now_ = 0.0;
    stolenIdx_ = 0;
}

double
ExecutionEngine::skipStolen(double t)
{
    const auto &stolen = timeline_.stolen;
    while (stolenIdx_ < stolen.size() &&
           static_cast<double>(stolen[stolenIdx_].arrival) <= t) {
        t = std::max(t, static_cast<double>(stolen[stolenIdx_].end()));
        ++stolenIdx_;
    }
    return t;
}

double
ExecutionEngine::stepOneIteration(double t, double cost)
{
    const auto &stolen = timeline_.stolen;
    double rem = cost;
    while (stolenIdx_ < stolen.size()) {
        const StolenInterval &s = stolen[stolenIdx_];
        const double arrival = static_cast<double>(s.arrival);
        if (arrival > t + rem)
            break; // The iteration completes before the next interrupt.
        // Run until the interrupt fires, then resume after its handler.
        rem -= std::max(0.0, arrival - t);
        t = static_cast<double>(s.end());
        ++stolenIdx_;
    }
    return t + rem;
}

} // namespace bigfish::sim
