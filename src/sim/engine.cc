#include "sim/engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace bigfish::sim {

ExecutionEngine::ExecutionEngine(const RunTimeline &timeline,
                                 std::vector<double> iterCostNs)
    : timeline_(timeline), iterCostNs_(std::move(iterCostNs)),
      durationF_(static_cast<double>(timeline.duration))
{
    panicIf(iterCostNs_.size() != timeline.iterCostFactor.size(),
            "ExecutionEngine iteration-cost vector must have one entry per "
            "timeline step");
    for (double c : iterCostNs_)
        panicIf(c <= 0.0, "iteration cost must be positive");
}

void
ExecutionEngine::restart()
{
    now_ = 0.0;
    stolenIdx_ = 0;
}

double
ExecutionEngine::skipStolen(double t)
{
    const auto &stolen = timeline_.stolen;
    while (stolenIdx_ < stolen.size() &&
           static_cast<double>(stolen[stolenIdx_].arrival) <= t) {
        t = std::max(t, static_cast<double>(stolen[stolenIdx_].end()));
        ++stolenIdx_;
    }
    return t;
}

double
ExecutionEngine::stepOneIteration(double t, double cost)
{
    const auto &stolen = timeline_.stolen;
    double rem = cost;
    while (stolenIdx_ < stolen.size()) {
        const StolenInterval &s = stolen[stolenIdx_];
        const double arrival = static_cast<double>(s.arrival);
        if (arrival > t + rem)
            break; // The iteration completes before the next interrupt.
        // Run until the interrupt fires, then resume after its handler.
        rem -= std::max(0.0, arrival - t);
        t = static_cast<double>(s.end());
        ++stolenIdx_;
    }
    return t + rem;
}

bool
ExecutionEngine::runPeriod(timers::TimerModel &timer, TimeNs period,
                           PeriodResult &result)
{
    if (atEnd())
        return false;
    now_ = skipStolen(now_);
    if (atEnd())
        return false;

    const TimeNs t_begin_real = static_cast<TimeNs>(std::llround(now_));
    const TimeNs t_begin_obs = timer.observe(t_begin_real);
    const TimeNs target = t_begin_obs + period;
    std::int64_t counter = 0;

    const auto &stolen = timeline_.stolen;
    const double infinity = std::numeric_limits<double>::infinity();

    while (true) {
        const double cost = iterCostNs_[timeline_.stepAt(
            static_cast<TimeNs>(now_))];
        const double next_arrival =
            stolenIdx_ < stolen.size()
                ? static_cast<double>(stolen[stolenIdx_].arrival)
                : infinity;
        const double seg_end =
            std::min({next_arrival,
                      static_cast<double>(timeline_.stepEnd(
                          static_cast<TimeNs>(now_))),
                      durationF_});

        if (counter == 0) {
            // do-while semantics: the first iteration always executes.
            now_ = stepOneIteration(now_, cost);
            ++counter;
            if (timer.observe(static_cast<TimeNs>(std::llround(now_))) >=
                    target ||
                now_ >= durationF_) {
                break;
            }
            continue;
        }

        const std::int64_t n_max =
            seg_end > now_
                ? static_cast<std::int64_t>((seg_end - now_) / cost)
                : 0;
        if (n_max > 0) {
            const TimeNs t_bulk = static_cast<TimeNs>(
                std::llround(now_ + static_cast<double>(n_max) * cost));
            if (timer.observe(t_bulk) < target) {
                // The whole uninterrupted stretch fits inside the period.
                now_ += static_cast<double>(n_max) * cost;
                counter += n_max;
            } else {
                // The period ends inside this stretch: binary search the
                // first iteration boundary where the (monotone) observed
                // clock crosses the target.
                std::int64_t lo = 1, hi = n_max;
                while (lo < hi) {
                    const std::int64_t mid = lo + (hi - lo) / 2;
                    const TimeNs t_mid = static_cast<TimeNs>(std::llround(
                        now_ + static_cast<double>(mid) * cost));
                    if (timer.observe(t_mid) >= target)
                        hi = mid;
                    else
                        lo = mid + 1;
                }
                now_ += static_cast<double>(lo) * cost;
                counter += lo;
                break;
            }
        }
        if (now_ >= durationF_)
            break;

        // One iteration straddling an interrupt arrival or a step
        // boundary; charged at the current step's cost (boundaries are
        // coarse relative to a single iteration).
        now_ = stepOneIteration(now_, cost);
        ++counter;
        if (timer.observe(static_cast<TimeNs>(std::llround(now_))) >=
                target ||
            now_ >= durationF_) {
            break;
        }
    }

    result.iterations = counter;
    result.startReal = t_begin_real;
    result.wallTime = static_cast<TimeNs>(std::llround(now_)) - t_begin_real;
    return true;
}

} // namespace bigfish::sim
