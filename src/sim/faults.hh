/**
 * @file
 * Deterministic fault injection for the collection pipeline.
 *
 * The paper's central observation is that the attack *survives* noise —
 * interrupts, DVFS jitter, background apps (Sections 4-5, Table 2). A
 * production-scale deployment additionally sees outright faults: lost or
 * re-delivered interrupts, clocks that skew or step backwards (NTP slews,
 * suspend/resume), the attacker being stalled mid-measurement, and traces
 * cut short by the victim navigating away. FaultConfig describes those
 * fault processes; FaultPlan materializes one trace's deterministic fault
 * decisions so that any Table-1/2/3 configuration can be re-run under
 * injected faults and reproduce bit-identically for a fixed seed.
 *
 * All randomness is derived from (FaultConfig::seed, trace salt), and
 * every FaultPlan method re-derives its stream from a private sub-seed,
 * so the methods are idempotent and call-order independent — the property
 * the determinism tests pin down.
 */

#ifndef BF_SIM_FAULTS_HH
#define BF_SIM_FAULTS_HH

#include <cstdint>
#include <memory>

#include "base/rng.hh"
#include "base/types.hh"
#include "sim/run_timeline.hh"
#include "timers/timer.hh"

namespace bigfish::sim {

/** The fault processes to inject into one collection configuration. */
struct FaultConfig
{
    // --- Interrupt-delivery faults (applied to the synthesized timeline).
    /** Probability each stolen interval is dropped (never delivered). */
    double dropInterruptProb = 0.0;
    /** Probability each surviving interval is re-delivered shortly after. */
    double duplicateInterruptProb = 0.0;
    /** Mean redelivery delay of a duplicated interrupt. */
    TimeNs duplicateDelay = 50 * kUsec;

    // --- Attacker-timer faults.
    /** Clock-rate skew of the attacker's timebase in parts per million. */
    double timerSkewPpm = 0.0;
    /**
     * Per-quantum probability that timer reads step backwards (NTP
     * corrections, unsynchronized TSC). Non-monotonic reads are exactly
     * the fault the engine's binary search must survive.
     */
    double timerBackstepProb = 0.0;
    /** Largest backward step observed. */
    TimeNs timerBackstepMax = 10 * kUsec;
    /** Real-time bucketing of the hash-derived backstep decisions. */
    TimeNs timerBackstepQuantum = kMsec;

    // --- Attacker stalls (the attacker tab frozen mid-measurement).
    /** Expected stalls per second of trace time. */
    double stallsPerSecond = 0.0;
    /** Median stall length (lognormal). */
    TimeNs stallMedian = kMsec;
    /** Lognormal shape of the stall-length distribution. */
    double stallSigma = 0.6;

    // --- Trace truncation (victim navigates away / tab killed).
    /** Probability a recorded trace is cut short. */
    double truncateProb = 0.0;
    /** Smallest fraction of periods a truncated trace keeps. */
    double truncateKeepMin = 0.0;
    /** Largest fraction of periods a truncated trace keeps. */
    double truncateKeepMax = 1.0;

    // --- IO-layer faults (checkpoint journal / artifact writes, §9).
    // These drive the crash-recovery harness rather than the simulated
    // signal: they corrupt or abort the *persistence* of traces, never
    // their content, so they are deliberately excluded from enabled().
    /**
     * >0: hard-crash (abort, as if kill -9) after this many checkpoint
     * journal records have been appended. The crash happens *mid-append*
     * of the next record so resume code must cope with a torn tail.
     */
    int ioCrashAfterRecords = 0;
    /** Bytes of the in-flight record that reach disk before the crash. */
    int ioTornWriteBytes = 0;
    /**
     * Probability each appended journal record is corrupted on disk
     * (one payload byte flipped after the CRC was computed), exercising
     * the reader's CRC framing.
     */
    double ioCorruptRecordProb = 0.0;

    /** Fault-stream seed, mixed with each trace's identity. */
    std::uint64_t seed = 0;

    /**
     * True when any *signal* fault process is active (timeline, timer,
     * stall or truncation faults). IO faults are queried separately via
     * ioEnabled(): they never change trace content, only its
     * persistence, so they must not force the slow fault path through
     * the collection engine.
     */
    bool enabled() const;

    /** True when any IO-layer (journal/artifact) fault is active. */
    bool ioEnabled() const;

    /** The all-zeros plan (the default: no faults). */
    static FaultConfig none() { return {}; }
};

/**
 * One trace's materialized fault decisions, derived deterministically
 * from (config.seed, trace_salt).
 */
class FaultPlan
{
  public:
    /**
     * @param config The fault processes to inject.
     * @param trace_salt Per-trace identity (site/run derived), so sibling
     *                   traces under one config see independent faults.
     */
    FaultPlan(const FaultConfig &config, std::uint64_t trace_salt);

    /** True when any fault process is active. */
    bool enabled() const { return config_.enabled(); }

    /**
     * Applies delivery faults and stalls to a synthesized timeline:
     * drops/duplicates stolen intervals, inserts attacker stalls, and
     * re-normalizes. Idempotent for a given plan and input.
     */
    void applyToTimeline(RunTimeline &timeline) const;

    /**
     * Wraps the attacker's timer with the configured skew/backstep
     * faults; returns @p inner unchanged when no timer fault is active.
     */
    std::unique_ptr<timers::TimerModel>
    wrapTimer(std::unique_ptr<timers::TimerModel> inner) const;

    /**
     * The number of periods a recorded trace keeps after truncation
     * faults; returns @p periods unchanged when the trace is spared.
     */
    std::size_t truncatedLength(std::size_t periods) const;

  private:
    FaultConfig config_;
    std::uint64_t timelineSeed_ = 0;
    std::uint64_t timerSeed_ = 0;
    std::uint64_t truncateSeed_ = 0;
};

/**
 * A TimerModel decorator that injects clock faults: a constant rate skew
 * plus hash-derived backward steps bucketed by real-time quantum. The
 * output is a pure function of real time, so replaying a trace with the
 * same seeds reproduces identical reads regardless of how often the
 * engine polls the clock.
 */
class FaultyTimer : public timers::TimerModel
{
  public:
    FaultyTimer(std::unique_ptr<timers::TimerModel> inner,
                const FaultConfig &config, std::uint64_t seed);

    TimeNs observe(TimeNs real) override;
    void reset(std::uint64_t seed) override;
    TimeNs resolution() const override { return inner_->resolution(); }
    std::string name() const override { return inner_->name() + "+faults"; }

  private:
    std::unique_ptr<timers::TimerModel> inner_;
    FaultConfig config_;
    std::uint64_t seed_;
};

} // namespace bigfish::sim

#endif // BF_SIM_FAULTS_HH
