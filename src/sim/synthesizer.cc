#include "sim/synthesizer.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "sim/scratch.hh"

namespace bigfish::sim {

InterruptSynthesizer::InterruptSynthesizer(MachineConfig config)
    : config_(std::move(config))
{
    fatalIf(config_.numCores < 2,
            "InterruptSynthesizer needs at least two cores (attacker + "
            "victim)");
}

double
InterruptSynthesizer::movableRouteFraction() const
{
    switch (config_.routing) {
      case IrqRoutingPolicy::Spread:
        return 1.0 / static_cast<double>(config_.numCores);
      case IrqRoutingPolicy::PinnedAway:
        return 0.0;
    }
    return 0.0;
}

void
InterruptSynthesizer::emitPoisson(InterruptKind kind, double expected_count,
                                  TimeNs lo, TimeNs hi, double work_scale,
                                  Rng &rng,
                                  std::vector<StolenInterval> &out) const
{
    if (expected_count <= 0.0 || hi <= lo)
        return;
    const int n = rng.poisson(expected_count);
    for (int i = 0; i < n; ++i) {
        StolenInterval interval;
        interval.arrival =
            lo + static_cast<TimeNs>(rng.uniform() *
                                     static_cast<double>(hi - lo));
        interval.kind = kind;
        interval.duration = static_cast<TimeNs>(
            static_cast<double>(
                config_.handlerCosts.sample(kind, rng, config_.vmIsolation,
                                        work_scale)) *
            config_.os.handlerScale);
        out.push_back(interval);

        // A network RX IRQ taken on this core immediately raises a NET_RX
        // softirq that runs right after the hard handler returns.
        if (kind == InterruptKind::NetworkRx) {
            StolenInterval softirq;
            softirq.arrival = interval.end();
            softirq.kind = InterruptKind::SoftirqNetRx;
            softirq.duration = static_cast<TimeNs>(
                static_cast<double>(
                    config_.handlerCosts.sample(InterruptKind::SoftirqNetRx, rng,
                                            config_.vmIsolation,
                                            work_scale)) *
                config_.os.handlerScale);
            out.push_back(softirq);
        }
    }
}

void
InterruptSynthesizer::emitTicks(const ActivityTimeline &activity, Rng &rng,
                                std::vector<StolenInterval> &out) const
{
    const TimeNs period = config_.tickPeriod();
    for (TimeNs t = period; t < activity.duration(); t += period) {
        const ActivitySample &sample = activity.sampleAt(t);
        StolenInterval tick;
        tick.arrival = t + static_cast<TimeNs>(rng.uniform(0.0, 20.0) *
                                               static_cast<double>(kUsec) /
                                               20.0);
        tick.kind = InterruptKind::TimerTick;
        // The tick handler does more work when deferred work is pending.
        const double work = 1.0 + 0.5 * sample.softirqWork;
        tick.duration = static_cast<TimeNs>(
            static_cast<double>(
                config_.handlerCosts.sample(InterruptKind::TimerTick, rng,
                                        config_.vmIsolation, work)) *
            config_.os.handlerScale);
        out.push_back(tick);

        // Timer softirq processing piggybacks on busy ticks.
        if (rng.bernoulli(std::min(0.6, 0.08 + 0.4 * sample.softirqWork))) {
            StolenInterval softirq;
            softirq.arrival = tick.end();
            softirq.kind = InterruptKind::SoftirqTimer;
            softirq.duration = static_cast<TimeNs>(
                static_cast<double>(
                    config_.handlerCosts.sample(InterruptKind::SoftirqTimer, rng,
                                            config_.vmIsolation,
                                            1.0 + sample.softirqWork)) *
                config_.os.handlerScale);
            out.push_back(softirq);
        }

        // IRQ work cannot run on its own; it is typically processed while
        // handling a timer interrupt (Section 5.3), so the IRQ-work gap
        // length observed by the attacker includes the tick as well.
        if (rng.bernoulli(std::min(0.3, 0.02 + 0.15 * sample.softirqWork))) {
            StolenInterval irq_work;
            irq_work.arrival = tick.end();
            irq_work.kind = InterruptKind::IrqWork;
            irq_work.duration = static_cast<TimeNs>(
                static_cast<double>(
                    config_.handlerCosts.sample(InterruptKind::IrqWork, rng,
                                            config_.vmIsolation, 1.0)) *
                config_.os.handlerScale);
            out.push_back(irq_work);
        }
    }
}

RunTimeline
InterruptSynthesizer::synthesize(const ActivityTimeline &activity,
                                 Rng &rng, PerfCounters *perf) const
{
    RunTimeline timeline;
    timeline.duration = activity.duration();
    timeline.activityInterval = activity.interval();
    timeline.iterCostFactor.resize(activity.numIntervals(), 1.0);
    timeline.occupancy.resize(activity.numIntervals(), 0.0);

    // Build the interval stream in the per-thread arena; it is copied
    // into timeline.stolen exactly-sized at the end, so a warm thread
    // never regrows a buffer here no matter how stormy the run is.
    SimScratch &scratch = SimScratch::local();
    std::vector<StolenInterval> &out = scratch.emit;
    out.clear();
    const double route = movableRouteFraction();
    const double cores = static_cast<double>(config_.numCores);

    // OS housekeeping bursts: low-frequency background churn (page
    // reclaim, log flushes, service wakeups) whose schedule is redrawn
    // every run. The bursts raise softirq/IPI activity *and* CPU load
    // (hence DVFS droop); they are what bounds the SNR of coarse-
    // timescale amplitude measurements (Table 4's quantized-timer row
    // sits at 86%, not ~100%).
    ActivityTimeline noisy(activity.duration(), activity.interval());
    noisy.superimpose(activity);
    const double duration_s = static_cast<double>(activity.duration()) /
                              static_cast<double>(kSec);
    const int bursts =
        rng.poisson(config_.os.housekeepingBurstRate * duration_s);
    for (int b = 0; b < bursts; ++b) {
        const TimeNs start = static_cast<TimeNs>(
            rng.uniform() * static_cast<double>(activity.duration()));
        const TimeNs len = static_cast<TimeNs>(std::clamp(
            rng.lognormal(150.0 * kMsec, 0.7),
            static_cast<double>(30 * kMsec),
            static_cast<double>(800 * kMsec)));
        const double intensity =
            config_.os.housekeepingIntensity * rng.uniform(0.5, 1.6);
        ActivitySample hk;
        hk.softirqWork = 0.6 * intensity;
        hk.reschedRate = 250.0 * intensity;
        hk.tlbRate = 80.0 * intensity;
        hk.cpuLoad = 0.45 * intensity;
        noisy.addSpan(start, len, hk);
    }
    noisy.clampPhysical();

    // Ticks (plus their piggybacked softirq/irq-work entries) are the
    // bulk of the stream; reserving up front avoids repeated multi-MB
    // regrowth of the interval vector on the collection hot path.
    out.reserve(static_cast<std::size_t>(
        activity.duration() / std::max<TimeNs>(config_.tickPeriod(), 1) + 1) *
        2);
    emitTicks(noisy, rng, out);

    // Slow turbo-budget drift (Ornstein-Uhlenbeck over activity steps):
    // materialized once per run, applied inside the per-step loop.
    double walk = 0.0;
    const double walk_a = std::exp(
        -static_cast<double>(activity.interval()) /
        static_cast<double>(std::max<TimeNs>(config_.frequencyWalkTau, 1)));
    const double walk_noise =
        config_.frequencyWalkSigma * std::sqrt(1.0 - walk_a * walk_a);
    walk = rng.normal(0.0, config_.frequencyWalkSigma);

    for (std::size_t step = 0; step < activity.numIntervals(); ++step) {
        const ActivitySample &sample = noisy.at(step);
        const TimeNs lo = static_cast<TimeNs>(step) * activity.interval();
        const TimeNs hi =
            std::min(lo + activity.interval(), activity.duration());
        const double dt =
            static_cast<double>(hi - lo) / static_cast<double>(kSec);

        // Movable device IRQs raised by the victim's page load.
        emitPoisson(InterruptKind::NetworkRx, sample.netRxRate * dt * route,
                    lo, hi, 0.6 + sample.softirqWork, rng, out);
        emitPoisson(InterruptKind::Graphics, sample.gfxRate * dt * route, lo,
                    hi, 1.0, rng, out);
        emitPoisson(InterruptKind::Disk, sample.diskRate * dt * route, lo,
                    hi, 1.0, rng, out);

        // Stationary background device IRQs (OS housekeeping, peripherals).
        emitPoisson(InterruptKind::Usb,
                    config_.os.backgroundIrqRate * dt * route, lo, hi, 1.0,
                    rng, out);

        // Deferred softirq work raised by the victim's processing lands on
        // the attacker's core with an OS share regardless of IRQ routing:
        // the kernel picks where ksoftirqd/timer processing runs and
        // offers no user interface to prevent it (Takeaway 5). Pending
        // work drains in *storms*: ksoftirqd processes a backlog as a
        // train of short handler executions in quick succession. Each
        // individual gap stays in the few-microsecond range (Figure 6),
        // but a storm inside one 5 ms measurement period removes a
        // sizeable slice of it — the dark bands of Figure 3.
        const double storm_rate =
            0.10 * sample.netRxRate + 15.0 * sample.softirqWork;
        const int storms =
            rng.poisson(storm_rate * dt * config_.os.softirqShare);
        for (int i = 0; i < storms; ++i) {
            TimeNs at =
                lo + static_cast<TimeNs>(rng.uniform() *
                                         static_cast<double>(hi - lo));
            const int train_len =
                1 + rng.poisson(22.0 * (0.7 + sample.softirqWork));
            for (int k = 0; k < train_len && at < activity.duration();
                 ++k) {
                StolenInterval softirq;
                softirq.arrival = at;
                softirq.kind = InterruptKind::SoftirqNetRx;
                softirq.duration = static_cast<TimeNs>(
                    static_cast<double>(
                        config_.handlerCosts.sample(
                        InterruptKind::SoftirqNetRx, rng,
                        config_.vmIsolation, rng.uniform(0.8, 1.6))) *
                    config_.os.handlerScale);
                at = softirq.end() + static_cast<TimeNs>(
                                         rng.exponential(12.0 * kUsec));
                out.push_back(softirq);
            }
        }

        // Rescheduling IPIs: victim thread wakeups targeting this core
        // plus the stationary background share.
        const double resched_rate =
            sample.reschedRate +
            config_.os.backgroundReschedRate / cores;
        emitPoisson(InterruptKind::ReschedIpi, resched_rate * dt, lo, hi,
                    1.0, rng, out);

        // TLB shootdowns broadcast to every core.
        emitPoisson(InterruptKind::TlbShootdown, sample.tlbRate * dt, lo, hi,
                    1.0, rng, out);

        // SMI-like stalls no kernel tracer can observe.
        emitPoisson(InterruptKind::UntraceableStall,
                    config_.os.untraceableStallRate * dt, lo, hi, 1.0, rng,
                    out);

        // Scheduler contention: without pinning, a loaded victim
        // occasionally gets this core for a timeslice.
        if (!config_.pinnedCores && sample.cpuLoad > 0.0) {
            // With free cores available the scheduler rarely displaces
            // the spinning attacker; Table 3 shows pinning is worth only
            // ~0.2 accuracy points.
            const double share = std::min(1.0, sample.cpuLoad / cores);
            const double preempt_rate = 1.2 * share; // preemptions / s
            const int n = rng.poisson(preempt_rate * dt);
            for (int i = 0; i < n; ++i) {
                StolenInterval preempt;
                preempt.arrival = lo + static_cast<TimeNs>(
                                           rng.uniform() *
                                           static_cast<double>(hi - lo));
                preempt.kind = InterruptKind::Preemption;
                // Interactive victim threads run in short bursts, not
                // full timeslices: a spinning attacker loses a few
                // hundred microseconds per displacement.
                preempt.duration = static_cast<TimeNs>(std::min(
                    rng.lognormal(250.0 * kUsec, 0.8),
                    static_cast<double>(config_.timesliceNs)));
                out.push_back(preempt);
            }
        }

        // DVFS: victim load nudges the chip-wide frequency, slowing the
        // attacker's loop slightly — a secondary signal (Table 3, row 2).
        double factor = 1.0;
        if (config_.frequencyScaling) {
            const double load = std::min(1.0, sample.cpuLoad / cores);
            walk = walk_a * walk + rng.normal(0.0, walk_noise);
            factor = 1.0 + config_.frequencyLoadDip * load + walk +
                     rng.normal(0.0, 0.006);
        }
        timeline.iterCostFactor[step] = std::max(0.5, factor);
        // The victim's LLC residency is volatile: the attacker's own
        // sweeps, other processes and prefetchers churn it continuously,
        // so the occupancy a sweeping attacker actually observes is a
        // noisy version of the victim's working-set demand. This is the
        // modeled reason the cache-occupancy channel is *weaker* than it
        // looks — the paper's central claim.
        timeline.occupancy[step] = std::clamp(
            sample.cacheOccupancy * rng.lognormal(1.0, 0.6) +
                rng.uniform(0.0, 0.05),
            0.0, 1.0);
    }

    if (perf) {
        // Events are counted as emitted, before normalization clamps the
        // stream: one per stolen interval plus one per activity step
        // update, a pure function of the run content.
        perf->eventsSimulated +=
            static_cast<long long>(out.size() + activity.numIntervals());
        for (const StolenInterval &s : out) {
            if (isInterrupt(s.kind))
                ++perf->interruptsSynthesized;
        }
    }

    normalizeTimeline(out, perf);
    // Clamp anything pushed past the end of the run by serialization.
    while (!out.empty() && out.back().arrival >= timeline.duration)
        out.pop_back();
    if (!out.empty() && out.back().end() > timeline.duration)
        out.back().duration = timeline.duration - out.back().arrival;

    // Materialize the result with one exact-size allocation (the arena
    // buffer stays behind, capacity intact, for the next cell).
    timeline.stolen.assign(out.begin(), out.end());
    if (perf)
        perf->allocations += 1;
    return timeline;
}

RunTimeline
InterruptSynthesizer::synthesize(const ActivityTimeline &activity,
                                 Rng &rng) const
{
    return synthesize(activity, rng, nullptr);
}

} // namespace bigfish::sim
