#include "sim/run_timeline.hh"

#include <algorithm>

namespace bigfish::sim {

std::size_t
RunTimeline::stepAt(TimeNs t) const
{
    if (t < 0 || iterCostFactor.empty())
        return 0;
    const std::size_t index = static_cast<std::size_t>(t / activityInterval);
    return std::min(index, iterCostFactor.size() - 1);
}

double
RunTimeline::iterCostFactorAt(TimeNs t) const
{
    if (iterCostFactor.empty())
        return 1.0;
    return iterCostFactor[stepAt(t)];
}

double
RunTimeline::occupancyAt(TimeNs t) const
{
    if (occupancy.empty())
        return 0.0;
    return occupancy[std::min(stepAt(t), occupancy.size() - 1)];
}

TimeNs
RunTimeline::stepEnd(TimeNs t) const
{
    const TimeNs end =
        (static_cast<TimeNs>(stepAt(t)) + 1) * activityInterval;
    return std::min(end, duration);
}

TimeNs
RunTimeline::totalStolenAll() const
{
    return totalStolen([](const StolenInterval &) { return true; });
}

} // namespace bigfish::sim
