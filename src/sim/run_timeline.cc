#include "sim/run_timeline.hh"

namespace bigfish::sim {

TimeNs
RunTimeline::totalStolenAll() const
{
    return totalStolen([](const StolenInterval &) { return true; });
}

} // namespace bigfish::sim
