#include "sim/machine.hh"

namespace bigfish::sim {

OsProfile
OsProfile::linux()
{
    OsProfile os;
    os.name = "linux";
    os.tickHz = 250;
    os.handlerScale = 1.0;
    os.softirqShare = 0.35;
    os.backgroundIrqRate = 40.0;
    os.backgroundReschedRate = 15.0;
    os.untraceableStallRate = 0.4;
    return os;
}

OsProfile
OsProfile::windows()
{
    OsProfile os;
    os.name = "windows";
    os.tickHz = 64; // Classic 15.6 ms Windows timer.
    os.handlerScale = 1.15;
    os.softirqShare = 0.30; // DPC distribution analog.
    // Windows 10 runs noticeably more background services, which is the
    // main reason Table 1's Windows rows trail the Linux rows.
    os.backgroundIrqRate = 160.0;
    os.backgroundReschedRate = 60.0;
    os.untraceableStallRate = 0.8;
    return os;
}

OsProfile
OsProfile::macos()
{
    OsProfile os;
    os.name = "macos";
    os.tickHz = 100;
    os.handlerScale = 1.05;
    os.softirqShare = 0.32;
    os.backgroundIrqRate = 80.0;
    os.backgroundReschedRate = 30.0;
    os.untraceableStallRate = 0.5;
    return os;
}

MachineConfig
MachineConfig::linuxDesktop()
{
    MachineConfig config;
    config.numCores = 4;
    config.os = OsProfile::linux();
    return config;
}

MachineConfig
MachineConfig::windowsWorkstation()
{
    MachineConfig config;
    config.numCores = 8; // Xeon workstation.
    config.os = OsProfile::windows();
    return config;
}

MachineConfig
MachineConfig::macbook()
{
    MachineConfig config;
    config.numCores = 4;
    config.os = OsProfile::macos();
    return config;
}

} // namespace bigfish::sim
