/**
 * @file
 * KernelSim: an event-driven multi-core kernel model.
 *
 * The InterruptSynthesizer (synthesizer.hh) generates the attacker
 * core's schedule *statistically* — Poisson streams thinned by routing
 * probabilities. KernelSim builds the same schedule *mechanistically*:
 * a discrete-event simulation in which
 *
 *  - devices (NIC, GPU, disk, USB) raise IRQs that the interrupt
 *    controller routes to a concrete core according to the active
 *    routing policy (round-robin spread, or everything pinned to
 *    core 0);
 *  - a NET_RX hard handler on any core raises pending softirq work on
 *    that core; ksoftirqd occasionally migrates backlogs between cores
 *    (the non-movable leakage path);
 *  - each core takes periodic scheduler ticks that drain part of its
 *    pending deferred work as storm trains;
 *  - victim thread wakeups send rescheduling IPIs, and page-table
 *    updates broadcast TLB shootdowns to every core;
 *  - each core executes one handler at a time; concurrent arrivals
 *    queue (the per-core serialization normalizeTimeline() applies).
 *
 * The output is a RunTimeline for the attacker's core, directly
 * comparable with the synthesizer's. The test suite cross-validates the
 * two models: same activity in, statistically consistent interrupt-time
 * profiles out. Keeping both is deliberate — the synthesizer is ~an
 * order of magnitude faster and drives the large benchmark sweeps,
 * while KernelSim grounds its routing semantics in an actual mechanism.
 */

#ifndef BF_SIM_KERNEL_SIM_HH
#define BF_SIM_KERNEL_SIM_HH

#include "base/rng.hh"
#include "sim/activity.hh"
#include "sim/machine.hh"
#include "sim/perf.hh"
#include "sim/run_timeline.hh"

namespace bigfish::sim {

/** Event-driven kernel model producing attacker-core schedules. */
class KernelSim
{
  public:
    /** @param config The machine/OS under test. */
    explicit KernelSim(MachineConfig config);

    const MachineConfig &config() const { return config_; }

    /**
     * Runs the event-driven simulation for one trace.
     *
     * Event streams are generated per source (per-core tick trains,
     * per-step noise spans) and k-way merged by (time, emission order)
     * instead of globally sorted: each source is already in time order,
     * so the merge is linear with an explicit deterministic tie-break.
     *
     * @param activity The victim's activity over the run.
     * @param rng Per-run randomness.
     * @param perf When non-null, accumulates simulated-event counters.
     * @return The attacker-core timeline (sorted, serialized), with the
     *         same iteration-cost-factor and occupancy semantics as the
     *         statistical synthesizer.
     */
    RunTimeline run(const ActivityTimeline &activity, Rng &rng,
                    PerfCounters *perf) const;

    /** run() without counter accounting. */
    RunTimeline run(const ActivityTimeline &activity, Rng &rng) const;

  private:
    MachineConfig config_;
};

} // namespace bigfish::sim

#endif // BF_SIM_KERNEL_SIM_HH
