/**
 * @file
 * InterruptSynthesizer: turns a victim ActivityTimeline plus a
 * MachineConfig into the concrete RunTimeline the attacker's core
 * experiences.
 *
 * Interrupt arrivals are inhomogeneous Poisson processes modulated by the
 * victim's activity rates; the routing semantics implement exactly the
 * isolation knobs of Table 3:
 *
 *  - Movable device IRQs reach the attacker's core with probability
 *    1/numCores under the default spread policy and never under
 *    irqbalance pinning.
 *  - Deferred softirq work raised by the victim's processing lands on the
 *    attacker's core with an OS-specific share *regardless* of IRQ
 *    routing (ksoftirqd / timer-tick processing) — the non-movable
 *    leakage path.
 *  - Rescheduling IPIs and TLB shootdowns always reach the attacker.
 *  - Timer ticks are periodic per core, and their handler cost grows with
 *    pending deferred work; softirq and IRQ-work processing piggybacks on
 *    them (Figure 6's coupled distributions).
 *  - When cores are not pinned, the scheduler occasionally gives the
 *    attacker's core to a victim thread for a timeslice.
 *  - Under VM isolation every handler is amplified by host+guest double
 *    handling (which *helps* the attacker, as the paper observes).
 */

#ifndef BF_SIM_SYNTHESIZER_HH
#define BF_SIM_SYNTHESIZER_HH

#include "base/rng.hh"
#include "sim/activity.hh"
#include "sim/machine.hh"
#include "sim/perf.hh"
#include "sim/run_timeline.hh"

namespace bigfish::sim {

/** Builds RunTimelines from victim activity descriptions. */
class InterruptSynthesizer
{
  public:
    /** @param config The machine/OS under test. */
    explicit InterruptSynthesizer(MachineConfig config);

    /** The machine configuration in use. */
    const MachineConfig &config() const { return config_; }

    /**
     * Synthesizes the attacker-core schedule for one run.
     *
     * The timeline is built in the per-thread SimScratch arena and
     * materialized into the result with a single exact-size copy, so a
     * warm thread performs no growth reallocations on this path.
     *
     * @param activity The victim's activity over the run.
     * @param rng Per-run randomness (fork one stream per trace).
     * @param perf When non-null, accumulates emitted events, synthesized
     *             interrupts, logical allocations and sorted bytes.
     * @return The materialized, normalized timeline.
     */
    RunTimeline synthesize(const ActivityTimeline &activity, Rng &rng,
                           PerfCounters *perf) const;

    /** synthesize() without counter accounting. */
    RunTimeline synthesize(const ActivityTimeline &activity, Rng &rng) const;

  private:
    /** Fraction of movable IRQs routed to the attacker's core. */
    double movableRouteFraction() const;

    /** Emits periodic timer ticks with piggybacked deferred work. */
    void emitTicks(const ActivityTimeline &activity, Rng &rng,
                   std::vector<StolenInterval> &out) const;

    /** Emits Poisson arrivals for one kind during one activity step. */
    void emitPoisson(InterruptKind kind, double expected_count, TimeNs lo,
                     TimeNs hi, double work_scale, Rng &rng,
                     std::vector<StolenInterval> &out) const;

    MachineConfig config_;
};

} // namespace bigfish::sim

#endif // BF_SIM_SYNTHESIZER_HH
