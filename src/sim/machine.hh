/**
 * @file
 * Machine and OS configuration for the simulated testbed.
 *
 * A MachineConfig captures everything Table 3 toggles: DVFS (frequency
 * scaling), core pinning, IRQ routing (irqbalance), and VM isolation —
 * plus the per-OS parameters (tick rate, background interrupt load,
 * softirq dispatch share) that differentiate the Linux / Windows / macOS
 * rows of Table 1.
 */

#ifndef BF_SIM_MACHINE_HH
#define BF_SIM_MACHINE_HH

#include <cstdint>
#include <string>

#include "base/types.hh"
#include "sim/interrupt.hh"

namespace bigfish::sim {

/** How the OS distributes *movable* device IRQs among cores. */
enum class IrqRoutingPolicy
{
    /** Default: device IRQs are spread over all cores round-robin. */
    Spread,
    /**
     * irqbalance --banirq style pinning: all movable IRQs are bound to
     * core 0, away from the attacker. Non-movable interrupts (ticks,
     * softirqs, IPIs) still reach every core — the paper's key point.
     */
    PinnedAway,
};

/** Per-operating-system behavioral parameters. */
struct OsProfile
{
    std::string name = "linux";
    /** Scheduler tick frequency on each core (Hz). */
    int tickHz = 250;
    /** Multiplier on all interrupt handler costs. */
    double handlerScale = 1.0;
    /**
     * Fraction of victim-raised deferred softirq work that the kernel
     * dispatches onto the attacker's core (via ksoftirqd / timer-tick
     * processing). This is the non-movable leakage path of Takeaway 5.
     */
    double softirqShare = 0.35;
    /** Stationary background device-IRQ rate per core (per second). */
    double backgroundIrqRate = 40.0;
    /** Stationary background rescheduling-IPI rate (per second). */
    double backgroundReschedRate = 15.0;
    /** Untraceable SMI-like stall rate (per second), invisible to eBPF. */
    double untraceableStallRate = 0.4;

    /**
     * OS housekeeping bursts per second (page reclaim, log flushes,
     * background services). Each burst raises softirq/IPI activity for
     * 50-500 ms at a random time — the low-frequency system noise that
     * limits how much signal survives coarse (100 ms-scale) timers.
     */
    double housekeepingBurstRate = 1.0;
    /** Intensity multiplier on housekeeping burst activity. */
    double housekeepingIntensity = 1.0;

    /** Ubuntu 20.04 on the paper's Core-i5 desktops. */
    static OsProfile linux();
    /** Windows 10 Enterprise on the Xeon workstation. */
    static OsProfile windows();
    /** macOS Big Sur 11.5 on the MacBook. */
    static OsProfile macos();
};

/** The full simulated-machine configuration. */
struct MachineConfig
{
    /** Number of physical cores (paper machines: 4, no hyperthreading). */
    int numCores = 4;
    /** Core the attacker runs on. */
    CoreId attackerCore = 1;

    OsProfile os = OsProfile::linux();

    /**
     * DVFS enabled. When true, chip-wide frequency reacts to victim load
     * and modulates the attacker's instruction throughput — a secondary
     * signal Table 3 shows is worth about one accuracy point.
     */
    bool frequencyScaling = true;
    /**
     * Relative frequency dip at full load when scaling is enabled. A
     * secondary signal: Table 3 attributes only about one accuracy
     * point to DVFS, so the dip is small relative to interrupt effects.
     */
    double frequencyLoadDip = 0.03;

    /**
     * Stationary sigma of the slow turbo-budget random walk (thermal
     * state, co-tenant load). This drift decorrelates coarse-timescale
     * amplitudes between runs — the reason Table 3 attributes only ~1
     * accuracy point to DVFS and Table 4's randomized timer (which
     * leaves only coarse amplitude readable) collapses the attack.
     */
    double frequencyWalkSigma = 0.010;
    /** Correlation time of the turbo random walk. */
    TimeNs frequencyWalkTau = kSec;

    /**
     * Attacker and victim pinned to distinct cores (taskset). When false
     * the scheduler occasionally runs victim threads on the attacker's
     * core, stealing whole timeslices.
     */
    bool pinnedCores = false;

    /** Movable-IRQ routing policy (irqbalance). */
    IrqRoutingPolicy routing = IrqRoutingPolicy::Spread;

    /** Attacker and victim in separate VMs (Section 5.1, last row). */
    bool vmIsolation = false;

    /** Handler cost distributions. */
    HandlerCostModel handlerCosts;

    /** Scheduler timeslice used for contention preemptions. */
    TimeNs timesliceNs = 4 * kMsec;

    /** LLC capacity in bytes (paper-era Core-i5: ~8 MiB). */
    std::int64_t llcBytes = 8LL * 1024 * 1024;
    /** Cache line size in bytes. */
    int lineBytes = 64;

    /**
     * Nanoseconds to touch one resident (hit) LLC line during a sweep.
     * 1.2 ns/line puts an idle full-LLC sweep at ~157 us, i.e. ~32
     * sweeps per idle 5 ms period — the paper's observed maximum.
     */
    double sweepHitNsPerLine = 1.2;
    /**
     * Extra nanoseconds per line when the line was evicted. Sequential
     * sweeps are heavily prefetched, so the *effective* per-line miss
     * penalty is ~1 ns, not a full DRAM round trip — one reason the
     * cache-occupancy channel is weaker than it looks.
     */
    double sweepMissExtraNsPerLine = 1.2;

    /** Number of LLC lines (llcBytes / lineBytes). */
    std::int64_t llcLines() const { return llcBytes / lineBytes; }

    /** Period of the local timer tick. */
    TimeNs tickPeriod() const { return kSec / os.tickHz; }

    /** Preset matching the paper's Ubuntu 20.04 Core-i5 desktops. */
    static MachineConfig linuxDesktop();
    /** Preset matching the Windows 10 Xeon workstation. */
    static MachineConfig windowsWorkstation();
    /** Preset matching the macOS Big Sur MacBook. */
    static MachineConfig macbook();
};

} // namespace bigfish::sim

#endif // BF_SIM_MACHINE_HH
