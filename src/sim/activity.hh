/**
 * @file
 * Victim activity timelines — the interface between website workload
 * models (src/web) and the machine simulator (src/sim).
 *
 * A website load is summarized as a piecewise-constant vector of rates at
 * a fixed interval (default 10 ms): how many network packets arrive, how
 * much rendering happens, how much deferred softirq work the victim's
 * processing raises, how often its threads are woken (rescheduling IPIs),
 * how much page-table churn it causes (TLB shootdowns), how loaded the
 * CPUs are, and how much of the LLC the victim occupies. The interrupt
 * synthesizer turns these rates into concrete interrupt streams.
 */

#ifndef BF_SIM_ACTIVITY_HH
#define BF_SIM_ACTIVITY_HH

#include <cstddef>
#include <vector>

#include "base/types.hh"

namespace bigfish::sim {

/** Victim activity rates during one timeline interval. */
struct ActivitySample
{
    double netRxRate = 0.0;   ///< Network RX IRQs per second.
    double gfxRate = 0.0;     ///< Graphics IRQs per second.
    double diskRate = 0.0;    ///< Disk IRQs per second.
    double softirqWork = 0.0; ///< Deferred softirq work (0 = idle, 1 = busy).
    double reschedRate = 0.0; ///< Rescheduling IPIs per second (attacker core).
    double tlbRate = 0.0;     ///< TLB shootdown IPIs per second (broadcast).
    double cpuLoad = 0.0;     ///< Victim CPU demand in cores (0..numCores).
    double cacheOccupancy = 0.0; ///< Victim's share of the LLC, 0..1.

    /** Element-wise sum, used to superimpose noise sources. */
    ActivitySample &operator+=(const ActivitySample &other);
};

/**
 * A piecewise-constant activity description over a trace's duration.
 */
class ActivityTimeline
{
  public:
    /**
     * @param duration Total described time.
     * @param interval Width of each piecewise-constant step.
     */
    ActivityTimeline(TimeNs duration, TimeNs interval = 10 * kMsec);

    /** Total described time. */
    TimeNs duration() const { return duration_; }

    /** Step width. */
    TimeNs interval() const { return interval_; }

    /** Number of steps. */
    std::size_t numIntervals() const { return samples_.size(); }

    /** Mutable sample for step @p index. */
    ActivitySample &at(std::size_t index) { return samples_.at(index); }

    /** Sample for step @p index. */
    const ActivitySample &at(std::size_t index) const
    {
        return samples_.at(index);
    }

    /** Step index containing real time @p t (clamped to the last step). */
    std::size_t indexAt(TimeNs t) const;

    /** Sample in effect at real time @p t. */
    const ActivitySample &sampleAt(TimeNs t) const { return at(indexAt(t)); }

    /**
     * Adds @p contribution to every step overlapping [start, start+len),
     * weighted by the overlap fraction so sub-interval bursts deposit the
     * right total amount of activity.
     */
    void addSpan(TimeNs start, TimeNs len, const ActivitySample &contribution);

    /** Adds @p other element-wise (must have identical geometry). */
    void superimpose(const ActivityTimeline &other);

    /**
     * Adds @p other element-wise starting at @p offset; the part of
     * @p other extending past this timeline's end is dropped. Interval
     * widths must match (offsets are rounded down to interval
     * boundaries). Used to compose multi-page browsing sessions.
     */
    void addShifted(const ActivityTimeline &other, TimeNs offset);

    /** Clamps every cacheOccupancy to [0, 1] and rates to >= 0. */
    void clampPhysical();

  private:
    TimeNs duration_;
    TimeNs interval_;
    std::vector<ActivitySample> samples_;
};

} // namespace bigfish::sim

#endif // BF_SIM_ACTIVITY_HH
