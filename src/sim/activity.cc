#include "sim/activity.hh"

#include <algorithm>

#include "base/logging.hh"

namespace bigfish::sim {

ActivitySample &
ActivitySample::operator+=(const ActivitySample &other)
{
    netRxRate += other.netRxRate;
    gfxRate += other.gfxRate;
    diskRate += other.diskRate;
    softirqWork += other.softirqWork;
    reschedRate += other.reschedRate;
    tlbRate += other.tlbRate;
    cpuLoad += other.cpuLoad;
    cacheOccupancy += other.cacheOccupancy;
    return *this;
}

ActivityTimeline::ActivityTimeline(TimeNs duration, TimeNs interval)
    : duration_(duration), interval_(interval)
{
    fatalIf(duration <= 0, "ActivityTimeline duration must be positive");
    fatalIf(interval <= 0, "ActivityTimeline interval must be positive");
    const std::size_t steps =
        static_cast<std::size_t>((duration + interval - 1) / interval);
    samples_.resize(std::max<std::size_t>(steps, 1));
}

std::size_t
ActivityTimeline::indexAt(TimeNs t) const
{
    if (t < 0)
        return 0;
    const std::size_t index = static_cast<std::size_t>(t / interval_);
    return std::min(index, samples_.size() - 1);
}

void
ActivityTimeline::addSpan(TimeNs start, TimeNs len,
                          const ActivitySample &contribution)
{
    if (len <= 0)
        return;
    const TimeNs end = std::min(start + len, duration_);
    start = std::max<TimeNs>(start, 0);
    if (start >= end)
        return;
    for (TimeNs t = (start / interval_) * interval_; t < end;
         t += interval_) {
        const TimeNs step_lo = std::max(t, start);
        const TimeNs step_hi = std::min(t + interval_, end);
        if (step_hi <= step_lo)
            continue;
        const double frac = static_cast<double>(step_hi - step_lo) /
                            static_cast<double>(interval_);
        ActivitySample scaled = contribution;
        scaled.netRxRate *= frac;
        scaled.gfxRate *= frac;
        scaled.diskRate *= frac;
        scaled.softirqWork *= frac;
        scaled.reschedRate *= frac;
        scaled.tlbRate *= frac;
        scaled.cpuLoad *= frac;
        scaled.cacheOccupancy *= frac;
        at(indexAt(t)) += scaled;
    }
}

void
ActivityTimeline::superimpose(const ActivityTimeline &other)
{
    panicIf(other.interval_ != interval_ ||
                other.samples_.size() != samples_.size(),
            "ActivityTimeline::superimpose requires identical geometry");
    for (std::size_t i = 0; i < samples_.size(); ++i)
        samples_[i] += other.samples_[i];
}

void
ActivityTimeline::addShifted(const ActivityTimeline &other, TimeNs offset)
{
    panicIf(other.interval_ != interval_,
            "ActivityTimeline::addShifted requires equal interval widths");
    if (offset < 0)
        offset = 0;
    const std::size_t base = static_cast<std::size_t>(offset / interval_);
    for (std::size_t i = 0;
         i < other.samples_.size() && base + i < samples_.size(); ++i)
        samples_[base + i] += other.samples_[i];
}

void
ActivityTimeline::clampPhysical()
{
    for (ActivitySample &s : samples_) {
        s.netRxRate = std::max(s.netRxRate, 0.0);
        s.gfxRate = std::max(s.gfxRate, 0.0);
        s.diskRate = std::max(s.diskRate, 0.0);
        s.softirqWork = std::clamp(s.softirqWork, 0.0, 4.0);
        s.reschedRate = std::max(s.reschedRate, 0.0);
        s.tlbRate = std::max(s.tlbRate, 0.0);
        s.cpuLoad = std::max(s.cpuLoad, 0.0);
        s.cacheOccupancy = std::clamp(s.cacheOccupancy, 0.0, 1.0);
    }
}

} // namespace bigfish::sim
