/**
 * @file
 * ExecutionEngine: instruction-throughput-accurate replay of an attacker
 * loop (Figure 2) against a RunTimeline.
 *
 * The engine advances the attacker in closed form between events instead
 * of simulating 27,000 loop iterations per 5 ms period one by one: within
 * a segment where the iteration cost is constant and no interrupt
 * arrives, the number of iterations that fit is computed directly, and
 * the iteration on which the (possibly fuzzed) timer first crosses the
 * period boundary is found by binary search over the monotone observe()
 * function. Interrupt arrivals are charged mid-iteration exactly as a
 * real core would experience them: the iteration in flight completes
 * after the handler returns.
 *
 * This keeps full-trace collection (15-50 s of simulated time, millions
 * of iterations) at microseconds of host time while preserving the exact
 * do { counter++ } while (time() - t_begin < P) semantics, including
 * iteration-granular timer polling.
 */

#ifndef BF_SIM_ENGINE_HH
#define BF_SIM_ENGINE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "base/types.hh"
#include "sim/run_timeline.hh"
#include "timers/timer.hh"

namespace bigfish::sim {

/** Result of one measurement period executed by the engine. */
struct PeriodResult
{
    std::int64_t iterations = 0; ///< Counter value stored into the trace.
    TimeNs wallTime = 0;         ///< Real time the period actually spanned.
    TimeNs startReal = 0;        ///< Real time at which the period began.
};

/**
 * Replays one attacker loop over one RunTimeline.
 *
 * The per-iteration CPU cost is supplied as a piecewise-constant vector
 * aligned with the timeline's activity steps, so both the loop-counting
 * attacker (constant base cost scaled by DVFS) and the sweep-counting
 * attacker (cost dominated by cache misses, i.e. victim occupancy) use
 * the same engine.
 */
class ExecutionEngine
{
  public:
    /**
     * @param timeline The schedule to replay against (must outlive the
     *                 engine).
     * @param iterCostNs Per-activity-step iteration cost in nanoseconds;
     *                   must have one entry per timeline step.
     */
    ExecutionEngine(const RunTimeline &timeline,
                    std::vector<double> iterCostNs);

    /**
     * Runs one measurement period with do-while semantics: at least one
     * iteration executes, and the period ends on the first iteration
     * boundary where observed time has advanced by at least @p period.
     *
     * A member template so that callers holding a *concrete* timer type
     * (the trace-collection loop dispatches once per trace) get a
     * devirtualized, inlined observe() in the probe loop below — the
     * engine calls observe() tens of millions of times per run.
     * Instantiated with the TimerModel base the code is byte-for-byte
     * the old virtual path; every instantiation returns identical
     * results because observe() is a deterministic function of real
     * time (see timer.hh), so only call overhead changes.
     *
     * @param timer The attacker's clock.
     * @param period The target period length P in observed time.
     * @param result Filled with the counter value and wall time.
     * @return false when the run has ended (no period was executed).
     */
    template <typename Timer>
    bool
    runPeriod(Timer &timer, TimeNs period, PeriodResult &result)
    {
        if (atEnd())
            return false;
        now_ = skipStolen(now_);
        if (atEnd())
            return false;

        const TimeNs t_begin_real = static_cast<TimeNs>(std::llround(now_));
        const TimeNs t_begin_obs = timer.observe(t_begin_real);
        const TimeNs target = t_begin_obs + period;
        std::int64_t counter = 0;

        const auto &stolen = timeline_.stolen;
        const double infinity = std::numeric_limits<double>::infinity();

        while (true) {
            const double cost = iterCostNs_[timeline_.stepAt(
                static_cast<TimeNs>(now_))];
            const double next_arrival =
                stolenIdx_ < stolen.size()
                    ? static_cast<double>(stolen[stolenIdx_].arrival)
                    : infinity;
            const double seg_end =
                std::min({next_arrival,
                          static_cast<double>(timeline_.stepEnd(
                              static_cast<TimeNs>(now_))),
                          durationF_});

            if (counter == 0) {
                // do-while semantics: the first iteration always executes.
                now_ = stepOneIteration(now_, cost);
                ++counter;
                if (timer.observe(static_cast<TimeNs>(
                        std::llround(now_))) >= target ||
                    now_ >= durationF_) {
                    break;
                }
                continue;
            }

            const std::int64_t n_max =
                seg_end > now_
                    ? static_cast<std::int64_t>((seg_end - now_) / cost)
                    : 0;
            if (n_max > 0) {
                const TimeNs t_bulk = static_cast<TimeNs>(
                    std::llround(now_ + static_cast<double>(n_max) * cost));
                if (timer.observe(t_bulk) < target) {
                    // The whole uninterrupted stretch fits inside the
                    // period.
                    now_ += static_cast<double>(n_max) * cost;
                    counter += n_max;
                } else {
                    // The period ends inside this stretch: binary search
                    // the first iteration boundary where the (monotone)
                    // observed clock crosses the target.
                    std::int64_t lo = 1, hi = n_max;
                    while (lo < hi) {
                        const std::int64_t mid = lo + (hi - lo) / 2;
                        const TimeNs t_mid =
                            static_cast<TimeNs>(std::llround(
                                now_ + static_cast<double>(mid) * cost));
                        if (timer.observe(t_mid) >= target)
                            hi = mid;
                        else
                            lo = mid + 1;
                    }
                    now_ += static_cast<double>(lo) * cost;
                    counter += lo;
                    break;
                }
            }
            if (now_ >= durationF_)
                break;

            // One iteration straddling an interrupt arrival or a step
            // boundary; charged at the current step's cost (boundaries
            // are coarse relative to a single iteration).
            now_ = stepOneIteration(now_, cost);
            ++counter;
            if (timer.observe(static_cast<TimeNs>(std::llround(now_))) >=
                    target ||
                now_ >= durationF_) {
                break;
            }
        }

        result.iterations = counter;
        result.startReal = t_begin_real;
        result.wallTime =
            static_cast<TimeNs>(std::llround(now_)) - t_begin_real;
        return true;
    }

    /** Current real time. */
    TimeNs now() const { return static_cast<TimeNs>(now_); }

    /** True when the run's duration has been consumed. */
    bool atEnd() const { return now_ >= durationF_; }

    /** Rewinds to the start of the run. */
    void restart();

  private:
    /**
     * Executes exactly one iteration from real time @p t, charging any
     * interrupts that arrive before it completes.
     */
    double stepOneIteration(double t, double cost);

    /** Skips past stolen intervals that have already begun at @p t. */
    double skipStolen(double t);

    const RunTimeline &timeline_;
    std::vector<double> iterCostNs_;
    double now_ = 0.0;
    double durationF_ = 0.0;
    std::size_t stolenIdx_ = 0;
};

} // namespace bigfish::sim

#endif // BF_SIM_ENGINE_HH
