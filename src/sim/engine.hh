/**
 * @file
 * ExecutionEngine: instruction-throughput-accurate replay of an attacker
 * loop (Figure 2) against a RunTimeline.
 *
 * The engine advances the attacker in closed form between events instead
 * of simulating 27,000 loop iterations per 5 ms period one by one: within
 * a segment where the iteration cost is constant and no interrupt
 * arrives, the number of iterations that fit is computed directly, and
 * the iteration on which the (possibly fuzzed) timer first crosses the
 * period boundary is found by binary search over the monotone observe()
 * function. Interrupt arrivals are charged mid-iteration exactly as a
 * real core would experience them: the iteration in flight completes
 * after the handler returns.
 *
 * This keeps full-trace collection (15-50 s of simulated time, millions
 * of iterations) at microseconds of host time while preserving the exact
 * do { counter++ } while (time() - t_begin < P) semantics, including
 * iteration-granular timer polling.
 */

#ifndef BF_SIM_ENGINE_HH
#define BF_SIM_ENGINE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "sim/run_timeline.hh"
#include "timers/timer.hh"

namespace bigfish::sim {

/** Result of one measurement period executed by the engine. */
struct PeriodResult
{
    std::int64_t iterations = 0; ///< Counter value stored into the trace.
    TimeNs wallTime = 0;         ///< Real time the period actually spanned.
    TimeNs startReal = 0;        ///< Real time at which the period began.
};

/**
 * Replays one attacker loop over one RunTimeline.
 *
 * The per-iteration CPU cost is supplied as a piecewise-constant vector
 * aligned with the timeline's activity steps, so both the loop-counting
 * attacker (constant base cost scaled by DVFS) and the sweep-counting
 * attacker (cost dominated by cache misses, i.e. victim occupancy) use
 * the same engine.
 */
class ExecutionEngine
{
  public:
    /**
     * @param timeline The schedule to replay against (must outlive the
     *                 engine).
     * @param iterCostNs Per-activity-step iteration cost in nanoseconds;
     *                   must have one entry per timeline step.
     */
    ExecutionEngine(const RunTimeline &timeline,
                    std::vector<double> iterCostNs);

    /**
     * Runs one measurement period with do-while semantics: at least one
     * iteration executes, and the period ends on the first iteration
     * boundary where observed time has advanced by at least @p period.
     *
     * @param timer The attacker's clock.
     * @param period The target period length P in observed time.
     * @param result Filled with the counter value and wall time.
     * @return false when the run has ended (no period was executed).
     */
    bool runPeriod(timers::TimerModel &timer, TimeNs period,
                   PeriodResult &result);

    /** Current real time. */
    TimeNs now() const { return static_cast<TimeNs>(now_); }

    /** True when the run's duration has been consumed. */
    bool atEnd() const { return now_ >= durationF_; }

    /** Rewinds to the start of the run. */
    void restart();

  private:
    /**
     * Executes exactly one iteration from real time @p t, charging any
     * interrupts that arrive before it completes.
     */
    double stepOneIteration(double t, double cost);

    /** Skips past stolen intervals that have already begun at @p t. */
    double skipStolen(double t);

    const RunTimeline &timeline_;
    std::vector<double> iterCostNs_;
    double now_ = 0.0;
    double durationF_ = 0.0;
    std::size_t stolenIdx_ = 0;
};

} // namespace bigfish::sim

#endif // BF_SIM_ENGINE_HH
