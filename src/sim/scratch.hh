/**
 * @file
 * SimScratch: the per-thread scratch arena of the simulator hot path
 * (DESIGN.md §13).
 *
 * Trace collection synthesizes one timeline per (site, run) cell, and
 * before the arena existed every cell paid the same multi-megabyte
 * allocation pattern from scratch: a fresh emission vector grown
 * through several doublings, a fresh scatter target plus two offset
 * vectors inside the bucket sort, and a hidden temporary buffer inside
 * std::inplace_merge. None of those buffers' *contents* survive a cell,
 * but their *capacity* should: the grid collects thousands of cells of
 * near-identical size per thread.
 *
 * The arena is strictly capacity reuse. Every algorithm that borrows a
 * buffer fully overwrites the range it reads back, so results are
 * byte-identical to the fresh-allocation code — vector capacity is
 * invisible to output. Buffers are thread_local, so pool threads never
 * share or synchronize, and thread count cannot influence results
 * (each cell's output never depends on which thread's arena served it).
 *
 * Rules for borrowing (keep these, reviewers check them):
 *  1. assign()/clear() before reading anything back — stale contents
 *     from the previous cell must be unobservable.
 *  2. Never hold a borrowed buffer across a call that may also borrow
 *     it (the synthesizer's emit buffer and the bucket sort's scatter
 *     target are distinct members for exactly this reason).
 *  3. Swapping a borrowed buffer with a caller vector is encouraged:
 *     the arena inherits the caller's capacity for the next cell.
 */

#ifndef BF_SIM_SCRATCH_HH
#define BF_SIM_SCRATCH_HH

#include <cstddef>
#include <vector>

#include "sim/interrupt.hh"

namespace bigfish::sim {

/** Reusable per-thread buffers for timeline synthesis and sorting. */
class SimScratch
{
  public:
    /** Emission buffer the synthesizer builds timelines in. */
    std::vector<StolenInterval> emit;
    /** Bucket-sort scatter target (swapped with the input each call). */
    std::vector<StolenInterval> sorted;
    /** Bucket-sort bucket offsets (size buckets + 1). */
    std::vector<std::size_t> offsets;
    /** Bucket-sort scatter cursors (size buckets). */
    std::vector<std::size_t> cursor;
    /** Tail copy for the sorted-prefix merge in normalizeTimeline(). */
    std::vector<StolenInterval> tailMerge;

    /** This thread's arena. Pool threads each get their own. */
    static SimScratch &
    local()
    {
        thread_local SimScratch scratch;
        return scratch;
    }
};

} // namespace bigfish::sim

#endif // BF_SIM_SCRATCH_HH
