#include "sim/kernel_sim.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"

namespace bigfish::sim {

namespace {

/** One raw event before kernel processing. */
struct RawEvent
{
    TimeNs at = 0;
    enum class Type
    {
        DeviceIrq,  ///< Hard IRQ delivered to `core`.
        Tick,       ///< Scheduler tick on `core`.
        ReschedIpi, ///< Wakeup IPI targeting `core`.
        TlbFlush,   ///< Broadcast shootdown (reaches every core).
        Stall,      ///< SMI-like stall on `core`.
        Preempt,    ///< Scheduler gives `core` to a victim thread.
    } type = Type::Tick;
    InterruptKind irq = InterruptKind::NetworkRx;
    CoreId core = 0;
    double work = 1.0; ///< Work scale (softirq backlog, timeslice...).
};

bool
byTime(const RawEvent &a, const RawEvent &b)
{
    return a.at < b.at;
}

} // namespace

KernelSim::KernelSim(MachineConfig config) : config_(std::move(config))
{
    fatalIf(config_.numCores < 2,
            "KernelSim needs at least two cores (attacker + victim)");
    fatalIf(config_.attackerCore < 0 ||
                config_.attackerCore >= config_.numCores,
            "attacker core out of range");
}

RunTimeline
KernelSim::run(const ActivityTimeline &activity, Rng &rng) const
{
    RunTimeline timeline;
    timeline.duration = activity.duration();
    timeline.activityInterval = activity.interval();
    timeline.iterCostFactor.resize(activity.numIntervals(), 1.0);
    timeline.occupancy.resize(activity.numIntervals(), 0.0);

    const CoreId attacker = config_.attackerCore;
    const int cores = config_.numCores;

    // ---- Background noise overlay (same model as the synthesizer). ----
    ActivityTimeline noisy(activity.duration(), activity.interval());
    noisy.superimpose(activity);
    const double duration_s = static_cast<double>(activity.duration()) /
                              static_cast<double>(kSec);
    const int hk_bursts =
        rng.poisson(config_.os.housekeepingBurstRate * duration_s);
    for (int b = 0; b < hk_bursts; ++b) {
        const TimeNs start = static_cast<TimeNs>(
            rng.uniform() * static_cast<double>(activity.duration()));
        const TimeNs len = static_cast<TimeNs>(std::clamp(
            rng.lognormal(150.0 * kMsec, 0.7),
            static_cast<double>(30 * kMsec),
            static_cast<double>(800 * kMsec)));
        const double intensity =
            config_.os.housekeepingIntensity * rng.uniform(0.5, 1.6);
        ActivitySample hk;
        hk.softirqWork = 0.6 * intensity;
        hk.reschedRate = 250.0 * intensity;
        hk.tlbRate = 80.0 * intensity;
        hk.cpuLoad = 0.45 * intensity;
        noisy.addSpan(start, len, hk);
    }
    noisy.clampPhysical();

    // ---- Phase 1: generate raw events. -------------------------------
    std::vector<RawEvent> events;
    int round_robin = 0;
    auto route = [&]() -> CoreId {
        switch (config_.routing) {
          case IrqRoutingPolicy::Spread:
            return round_robin++ % cores;
          case IrqRoutingPolicy::PinnedAway:
            return 0; // irqbalance binds all movable IRQs to core 0.
        }
        return 0;
    };

    // Per-core scheduler ticks with distinct phases.
    const TimeNs tick_period = config_.tickPeriod();
    for (CoreId c = 0; c < cores; ++c) {
        const TimeNs phase = static_cast<TimeNs>(
            rng.uniform() * static_cast<double>(tick_period));
        for (TimeNs t = phase; t < activity.duration(); t += tick_period) {
            RawEvent e;
            e.at = t;
            e.type = RawEvent::Type::Tick;
            e.core = c;
            events.push_back(e);
        }
    }

    for (std::size_t step = 0; step < noisy.numIntervals(); ++step) {
        const ActivitySample &sample = noisy.at(step);
        const TimeNs lo = static_cast<TimeNs>(step) * noisy.interval();
        const TimeNs hi =
            std::min(lo + noisy.interval(), noisy.duration());
        const double dt =
            static_cast<double>(hi - lo) / static_cast<double>(kSec);
        auto at_uniform = [&]() {
            return lo + static_cast<TimeNs>(
                            rng.uniform() *
                            static_cast<double>(hi - lo));
        };

        // System-wide device IRQs: the full victim rate, each routed to
        // a concrete core. (The synthesizer instead thins the rate by
        // the attacker's routing share.)
        struct DeviceRate
        {
            InterruptKind kind;
            double rate;
        };
        const DeviceRate devices[] = {
            {InterruptKind::NetworkRx, sample.netRxRate},
            {InterruptKind::Graphics, sample.gfxRate},
            {InterruptKind::Disk, sample.diskRate},
            {InterruptKind::Usb, config_.os.backgroundIrqRate},
        };
        for (const auto &device : devices) {
            const int n = rng.poisson(device.rate * dt);
            for (int i = 0; i < n; ++i) {
                RawEvent e;
                e.at = at_uniform();
                e.type = RawEvent::Type::DeviceIrq;
                e.irq = device.kind;
                e.core = route();
                e.work = 0.6 + sample.softirqWork;
                events.push_back(e);
            }
        }

        // Wakeup IPIs targeting the attacker's core (per-core rate, as
        // in the synthesizer) and broadcast TLB shootdowns.
        const double resched_rate =
            sample.reschedRate +
            config_.os.backgroundReschedRate / cores;
        const int ipis = rng.poisson(resched_rate * dt);
        for (int i = 0; i < ipis; ++i) {
            RawEvent e;
            e.at = at_uniform();
            e.type = RawEvent::Type::ReschedIpi;
            e.core = attacker;
            events.push_back(e);
        }
        const int flushes = rng.poisson(sample.tlbRate * dt);
        for (int i = 0; i < flushes; ++i) {
            RawEvent e;
            e.at = at_uniform();
            e.type = RawEvent::Type::TlbFlush;
            events.push_back(e);
        }
        const int stalls =
            rng.poisson(config_.os.untraceableStallRate * dt);
        for (int i = 0; i < stalls; ++i) {
            RawEvent e;
            e.at = at_uniform();
            e.type = RawEvent::Type::Stall;
            e.core = attacker;
            events.push_back(e);
        }
        if (!config_.pinnedCores && sample.cpuLoad > 0.0) {
            const double share =
                std::min(1.0, sample.cpuLoad / cores);
            const int n = rng.poisson(1.2 * share * dt);
            for (int i = 0; i < n; ++i) {
                RawEvent e;
                e.at = at_uniform();
                e.type = RawEvent::Type::Preempt;
                e.core = attacker;
                events.push_back(e);
            }
        }

        // Machine state (same DVFS model as the synthesizer; the walk
        // is re-derived below so both models share the formula).
        timeline.occupancy[step] = std::clamp(
            sample.cacheOccupancy * rng.lognormal(1.0, 0.6) +
                rng.uniform(0.0, 0.05),
            0.0, 1.0);
    }

    // DVFS factor with the turbo random walk.
    double walk = rng.normal(0.0, config_.frequencyWalkSigma);
    const double walk_a = std::exp(
        -static_cast<double>(activity.interval()) /
        static_cast<double>(std::max<TimeNs>(config_.frequencyWalkTau, 1)));
    const double walk_noise =
        config_.frequencyWalkSigma * std::sqrt(1.0 - walk_a * walk_a);
    for (std::size_t step = 0; step < noisy.numIntervals(); ++step) {
        double factor = 1.0;
        if (config_.frequencyScaling) {
            const double load =
                std::min(1.0, noisy.at(step).cpuLoad / cores);
            walk = walk_a * walk + rng.normal(0.0, walk_noise);
            factor = 1.0 + config_.frequencyLoadDip * load + walk +
                     rng.normal(0.0, 0.006);
        }
        timeline.iterCostFactor[step] = std::max(0.5, factor);
    }

    std::sort(events.begin(), events.end(), byTime);

    // ---- Phase 2: kernel processing. ----------------------------------
    // Pending deferred softirq batches queued to the attacker's core.
    double pending_batches = 0.0;
    auto &out = timeline.stolen;

    auto emit = [&](TimeNs at, InterruptKind kind, double work) {
        StolenInterval s;
        s.arrival = at;
        s.kind = kind;
        s.duration = static_cast<TimeNs>(
            static_cast<double>(
                config_.handlerCosts.sample(kind, rng, config_.vmIsolation,
                                        work)) *
            config_.os.handlerScale);
        out.push_back(s);
        return s.end();
    };

    for (const RawEvent &e : events) {
        switch (e.type) {
          case RawEvent::Type::DeviceIrq: {
            const bool here = e.core == attacker;
            if (here) {
                const TimeNs end = emit(e.at, e.irq, e.work);
                if (e.irq == InterruptKind::NetworkRx)
                    emit(end, InterruptKind::SoftirqNetRx, e.work);
            }
            // NET_RX processing raises deferred backlog; ksoftirqd may
            // queue the batch onto the attacker's core no matter where
            // the IRQ ran (non-movable leakage, Takeaway 5). The 0.06
            // batch weight calibrates the mechanistic path to the
            // synthesizer's statistical storm rate (~0.1 storms per
            // victim packet times the softirq share).
            if (e.irq == InterruptKind::NetworkRx &&
                rng.bernoulli(config_.os.softirqShare)) {
                pending_batches += 0.06 * e.work;
            }
            break;
          }
          case RawEvent::Type::Tick: {
            if (e.core != attacker)
                break;
            const ActivitySample &sample = noisy.sampleAt(e.at);
            const double work = 1.0 + 0.5 * sample.softirqWork;
            TimeNs end = emit(e.at, InterruptKind::TimerTick, work);
            if (rng.bernoulli(
                    std::min(0.6, 0.08 + 0.4 * sample.softirqWork))) {
                end = emit(end, InterruptKind::SoftirqTimer,
                           1.0 + sample.softirqWork);
            }
            if (rng.bernoulli(
                    std::min(0.3, 0.02 + 0.15 * sample.softirqWork))) {
                end = emit(end, InterruptKind::IrqWork, 1.0);
            }
            // Drain pending deferred work as a storm train.
            if (pending_batches >= 1.0) {
                const int train =
                    1 + rng.poisson(22.0 * (0.7 + sample.softirqWork));
                TimeNs at = end;
                for (int k = 0;
                     k < train && at < timeline.duration; ++k) {
                    at = emit(at, InterruptKind::SoftirqNetRx,
                              rng.uniform(0.8, 1.6));
                    at += static_cast<TimeNs>(
                        rng.exponential(12.0 * kUsec));
                }
                pending_batches -= 1.0;
            }
            break;
          }
          case RawEvent::Type::ReschedIpi:
            emit(e.at, InterruptKind::ReschedIpi, 1.0);
            break;
          case RawEvent::Type::TlbFlush:
            emit(e.at, InterruptKind::TlbShootdown, 1.0);
            break;
          case RawEvent::Type::Stall:
            emit(e.at, InterruptKind::UntraceableStall, 1.0);
            break;
          case RawEvent::Type::Preempt: {
            StolenInterval s;
            s.arrival = e.at;
            s.kind = InterruptKind::Preemption;
            s.duration = static_cast<TimeNs>(std::min(
                rng.lognormal(250.0 * kUsec, 0.8),
                static_cast<double>(config_.timesliceNs)));
            out.push_back(s);
            break;
          }
        }
    }

    normalizeTimeline(out);
    while (!out.empty() && out.back().arrival >= timeline.duration)
        out.pop_back();
    if (!out.empty() && out.back().end() > timeline.duration)
        out.back().duration = timeline.duration - out.back().arrival;
    return timeline;
}

} // namespace bigfish::sim
