#include "sim/kernel_sim.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"

namespace bigfish::sim {

namespace {

/** One raw event before kernel processing. */
struct RawEvent
{
    TimeNs at = 0;
    enum class Type
    {
        DeviceIrq,  ///< Hard IRQ delivered to `core`.
        Tick,       ///< Scheduler tick on `core`.
        ReschedIpi, ///< Wakeup IPI targeting `core`.
        TlbFlush,   ///< Broadcast shootdown (reaches every core).
        Stall,      ///< SMI-like stall on `core`.
        Preempt,    ///< Scheduler gives `core` to a victim thread.
    } type = Type::Tick;
    InterruptKind irq = InterruptKind::NetworkRx;
    CoreId core = 0;
    double work = 1.0; ///< Work scale (softirq backlog, timeslice...).
    /** Global emission index: the deterministic tie-break for events
     *  that land on the same nanosecond. */
    long long seq = 0;
};

/**
 * Orders events by time, breaking ties by emission order. A total,
 * deterministic order — unlike the unstable full-stream std::sort this
 * replaced, whose tie permutation depended on the standard library.
 */
bool
byTimeSeq(const RawEvent &a, const RawEvent &b)
{
    if (a.at != b.at)
        return a.at < b.at;
    return a.seq < b.seq;
}

/**
 * K-way merges per-source event streams, each already ordered by
 * (at, seq), into `merged` with a linear min-scan: the stream count is
 * cores + 1, so scanning beats a heap and the whole merge is O(n * k)
 * with sequential access — replacing the former O(n log n) full
 * std::sort over every event of the run.
 */
void
mergeStreams(const std::vector<const std::vector<RawEvent> *> &streams,
             std::vector<RawEvent> &merged)
{
    std::size_t total = 0;
    for (const auto *s : streams)
        total += s->size();
    merged.clear();
    merged.reserve(total);
    std::vector<std::size_t> pos(streams.size(), 0);
    for (std::size_t n = 0; n < total; ++n) {
        std::size_t best = streams.size();
        for (std::size_t i = 0; i < streams.size(); ++i) {
            if (pos[i] >= streams[i]->size())
                continue;
            if (best == streams.size() ||
                byTimeSeq((*streams[i])[pos[i]],
                          (*streams[best])[pos[best]])) {
                best = i;
            }
        }
        merged.push_back((*streams[best])[pos[best]++]);
    }
}

} // namespace

KernelSim::KernelSim(MachineConfig config) : config_(std::move(config))
{
    fatalIf(config_.numCores < 2,
            "KernelSim needs at least two cores (attacker + victim)");
    fatalIf(config_.attackerCore < 0 ||
                config_.attackerCore >= config_.numCores,
            "attacker core out of range");
}

RunTimeline
KernelSim::run(const ActivityTimeline &activity, Rng &rng,
               PerfCounters *perf) const
{
    RunTimeline timeline;
    timeline.duration = activity.duration();
    timeline.activityInterval = activity.interval();
    timeline.iterCostFactor.resize(activity.numIntervals(), 1.0);
    timeline.occupancy.resize(activity.numIntervals(), 0.0);

    const CoreId attacker = config_.attackerCore;
    const int cores = config_.numCores;

    // ---- Background noise overlay (same model as the synthesizer). ----
    ActivityTimeline noisy(activity.duration(), activity.interval());
    noisy.superimpose(activity);
    const double duration_s = static_cast<double>(activity.duration()) /
                              static_cast<double>(kSec);
    const int hk_bursts =
        rng.poisson(config_.os.housekeepingBurstRate * duration_s);
    for (int b = 0; b < hk_bursts; ++b) {
        const TimeNs start = static_cast<TimeNs>(
            rng.uniform() * static_cast<double>(activity.duration()));
        const TimeNs len = static_cast<TimeNs>(std::clamp(
            rng.lognormal(150.0 * kMsec, 0.7),
            static_cast<double>(30 * kMsec),
            static_cast<double>(800 * kMsec)));
        const double intensity =
            config_.os.housekeepingIntensity * rng.uniform(0.5, 1.6);
        ActivitySample hk;
        hk.softirqWork = 0.6 * intensity;
        hk.reschedRate = 250.0 * intensity;
        hk.tlbRate = 80.0 * intensity;
        hk.cpuLoad = 0.45 * intensity;
        noisy.addSpan(start, len, hk);
    }
    noisy.clampPhysical();

    // ---- Phase 1: generate raw events, one stream per source. --------
    // Tick trains are in time order by construction; the per-step noise
    // events are sorted span by span (spans cover disjoint time ranges,
    // so the concatenation is globally ordered). The merge below then
    // replaces what used to be a full std::sort over every event.
    long long seq = 0;
    std::vector<std::vector<RawEvent>> tick_streams(
        static_cast<std::size_t>(cores));
    std::vector<RawEvent> noise;
    long long span_sorted_bytes = 0;
    int round_robin = 0;
    auto route = [&]() -> CoreId {
        switch (config_.routing) {
          case IrqRoutingPolicy::Spread:
            return round_robin++ % cores;
          case IrqRoutingPolicy::PinnedAway:
            return 0; // irqbalance binds all movable IRQs to core 0.
        }
        return 0;
    };

    // Per-core scheduler ticks with distinct phases.
    const TimeNs tick_period = config_.tickPeriod();
    for (CoreId c = 0; c < cores; ++c) {
        std::vector<RawEvent> &stream =
            tick_streams[static_cast<std::size_t>(c)];
        const TimeNs phase = static_cast<TimeNs>(
            rng.uniform() * static_cast<double>(tick_period));
        for (TimeNs t = phase; t < activity.duration(); t += tick_period) {
            RawEvent e;
            e.at = t;
            e.type = RawEvent::Type::Tick;
            e.core = c;
            e.seq = seq++;
            stream.push_back(e);
        }
    }

    for (std::size_t step = 0; step < noisy.numIntervals(); ++step) {
        const std::size_t span_begin = noise.size();
        const ActivitySample &sample = noisy.at(step);
        const TimeNs lo = static_cast<TimeNs>(step) * noisy.interval();
        const TimeNs hi =
            std::min(lo + noisy.interval(), noisy.duration());
        const double dt =
            static_cast<double>(hi - lo) / static_cast<double>(kSec);
        auto at_uniform = [&]() {
            return lo + static_cast<TimeNs>(
                            rng.uniform() *
                            static_cast<double>(hi - lo));
        };

        // System-wide device IRQs: the full victim rate, each routed to
        // a concrete core. (The synthesizer instead thins the rate by
        // the attacker's routing share.)
        struct DeviceRate
        {
            InterruptKind kind;
            double rate;
        };
        const DeviceRate devices[] = {
            {InterruptKind::NetworkRx, sample.netRxRate},
            {InterruptKind::Graphics, sample.gfxRate},
            {InterruptKind::Disk, sample.diskRate},
            {InterruptKind::Usb, config_.os.backgroundIrqRate},
        };
        for (const auto &device : devices) {
            const int n = rng.poisson(device.rate * dt);
            for (int i = 0; i < n; ++i) {
                RawEvent e;
                e.at = at_uniform();
                e.type = RawEvent::Type::DeviceIrq;
                e.irq = device.kind;
                e.core = route();
                e.work = 0.6 + sample.softirqWork;
                e.seq = seq++;
                noise.push_back(e);
            }
        }

        // Wakeup IPIs targeting the attacker's core (per-core rate, as
        // in the synthesizer) and broadcast TLB shootdowns.
        const double resched_rate =
            sample.reschedRate +
            config_.os.backgroundReschedRate / cores;
        const int ipis = rng.poisson(resched_rate * dt);
        for (int i = 0; i < ipis; ++i) {
            RawEvent e;
            e.at = at_uniform();
            e.type = RawEvent::Type::ReschedIpi;
            e.core = attacker;
            e.seq = seq++;
            noise.push_back(e);
        }
        const int flushes = rng.poisson(sample.tlbRate * dt);
        for (int i = 0; i < flushes; ++i) {
            RawEvent e;
            e.at = at_uniform();
            e.type = RawEvent::Type::TlbFlush;
            e.seq = seq++;
            noise.push_back(e);
        }
        const int stalls =
            rng.poisson(config_.os.untraceableStallRate * dt);
        for (int i = 0; i < stalls; ++i) {
            RawEvent e;
            e.at = at_uniform();
            e.type = RawEvent::Type::Stall;
            e.core = attacker;
            e.seq = seq++;
            noise.push_back(e);
        }
        if (!config_.pinnedCores && sample.cpuLoad > 0.0) {
            const double share =
                std::min(1.0, sample.cpuLoad / cores);
            const int n = rng.poisson(1.2 * share * dt);
            for (int i = 0; i < n; ++i) {
                RawEvent e;
                e.at = at_uniform();
                e.type = RawEvent::Type::Preempt;
                e.core = attacker;
                e.seq = seq++;
                noise.push_back(e);
            }
        }

        // Order this step's span; spans cover disjoint [lo, hi) ranges,
        // so the noise stream as a whole stays ordered.
        if (noise.size() - span_begin > 1) {
            std::sort(noise.begin() +
                          static_cast<std::ptrdiff_t>(span_begin),
                      noise.end(), byTimeSeq);
            span_sorted_bytes += static_cast<long long>(
                (noise.size() - span_begin) * sizeof(RawEvent));
        }

        // Machine state (same DVFS model as the synthesizer; the walk
        // is re-derived below so both models share the formula).
        timeline.occupancy[step] = std::clamp(
            sample.cacheOccupancy * rng.lognormal(1.0, 0.6) +
                rng.uniform(0.0, 0.05),
            0.0, 1.0);
    }

    // DVFS factor with the turbo random walk.
    double walk = rng.normal(0.0, config_.frequencyWalkSigma);
    const double walk_a = std::exp(
        -static_cast<double>(activity.interval()) /
        static_cast<double>(std::max<TimeNs>(config_.frequencyWalkTau, 1)));
    const double walk_noise =
        config_.frequencyWalkSigma * std::sqrt(1.0 - walk_a * walk_a);
    for (std::size_t step = 0; step < noisy.numIntervals(); ++step) {
        double factor = 1.0;
        if (config_.frequencyScaling) {
            const double load =
                std::min(1.0, noisy.at(step).cpuLoad / cores);
            walk = walk_a * walk + rng.normal(0.0, walk_noise);
            factor = 1.0 + config_.frequencyLoadDip * load + walk +
                     rng.normal(0.0, 0.006);
        }
        timeline.iterCostFactor[step] = std::max(0.5, factor);
    }

    std::vector<RawEvent> events;
    {
        std::vector<const std::vector<RawEvent> *> streams;
        streams.reserve(tick_streams.size() + 1);
        for (const std::vector<RawEvent> &stream : tick_streams)
            streams.push_back(&stream);
        streams.push_back(&noise);
        mergeStreams(streams, events);
    }
    if (perf) {
        perf->allocations +=
            static_cast<long long>(tick_streams.size()) + 2;
        perf->bytesSorted +=
            span_sorted_bytes +
            static_cast<long long>(events.size() * sizeof(RawEvent));
    }

    // ---- Phase 2: kernel processing. ----------------------------------
    // Pending deferred softirq batches queued to the attacker's core.
    double pending_batches = 0.0;
    auto &out = timeline.stolen;

    auto emit = [&](TimeNs at, InterruptKind kind, double work) {
        StolenInterval s;
        s.arrival = at;
        s.kind = kind;
        s.duration = static_cast<TimeNs>(
            static_cast<double>(
                config_.handlerCosts.sample(kind, rng, config_.vmIsolation,
                                        work)) *
            config_.os.handlerScale);
        out.push_back(s);
        return s.end();
    };

    for (const RawEvent &e : events) {
        switch (e.type) {
          case RawEvent::Type::DeviceIrq: {
            const bool here = e.core == attacker;
            if (here) {
                const TimeNs end = emit(e.at, e.irq, e.work);
                if (e.irq == InterruptKind::NetworkRx)
                    emit(end, InterruptKind::SoftirqNetRx, e.work);
            }
            // NET_RX processing raises deferred backlog; ksoftirqd may
            // queue the batch onto the attacker's core no matter where
            // the IRQ ran (non-movable leakage, Takeaway 5). The 0.06
            // batch weight calibrates the mechanistic path to the
            // synthesizer's statistical storm rate (~0.1 storms per
            // victim packet times the softirq share).
            if (e.irq == InterruptKind::NetworkRx &&
                rng.bernoulli(config_.os.softirqShare)) {
                pending_batches += 0.06 * e.work;
            }
            break;
          }
          case RawEvent::Type::Tick: {
            if (e.core != attacker)
                break;
            const ActivitySample &sample = noisy.sampleAt(e.at);
            const double work = 1.0 + 0.5 * sample.softirqWork;
            TimeNs end = emit(e.at, InterruptKind::TimerTick, work);
            if (rng.bernoulli(
                    std::min(0.6, 0.08 + 0.4 * sample.softirqWork))) {
                end = emit(end, InterruptKind::SoftirqTimer,
                           1.0 + sample.softirqWork);
            }
            if (rng.bernoulli(
                    std::min(0.3, 0.02 + 0.15 * sample.softirqWork))) {
                end = emit(end, InterruptKind::IrqWork, 1.0);
            }
            // Drain pending deferred work as a storm train.
            if (pending_batches >= 1.0) {
                const int train =
                    1 + rng.poisson(22.0 * (0.7 + sample.softirqWork));
                TimeNs at = end;
                for (int k = 0;
                     k < train && at < timeline.duration; ++k) {
                    at = emit(at, InterruptKind::SoftirqNetRx,
                              rng.uniform(0.8, 1.6));
                    at += static_cast<TimeNs>(
                        rng.exponential(12.0 * kUsec));
                }
                pending_batches -= 1.0;
            }
            break;
          }
          case RawEvent::Type::ReschedIpi:
            emit(e.at, InterruptKind::ReschedIpi, 1.0);
            break;
          case RawEvent::Type::TlbFlush:
            emit(e.at, InterruptKind::TlbShootdown, 1.0);
            break;
          case RawEvent::Type::Stall:
            emit(e.at, InterruptKind::UntraceableStall, 1.0);
            break;
          case RawEvent::Type::Preempt: {
            StolenInterval s;
            s.arrival = e.at;
            s.kind = InterruptKind::Preemption;
            s.duration = static_cast<TimeNs>(std::min(
                rng.lognormal(250.0 * kUsec, 0.8),
                static_cast<double>(config_.timesliceNs)));
            out.push_back(s);
            break;
          }
        }
    }

    if (perf) {
        perf->eventsSimulated += static_cast<long long>(
            out.size() + noisy.numIntervals());
        for (const StolenInterval &s : out) {
            if (isInterrupt(s.kind))
                ++perf->interruptsSynthesized;
        }
    }

    normalizeTimeline(out, perf);
    while (!out.empty() && out.back().arrival >= timeline.duration)
        out.pop_back();
    if (!out.empty() && out.back().end() > timeline.duration)
        out.back().duration = timeline.duration - out.back().arrival;
    return timeline;
}

RunTimeline
KernelSim::run(const ActivityTimeline &activity, Rng &rng) const
{
    return run(activity, rng, nullptr);
}

} // namespace bigfish::sim
