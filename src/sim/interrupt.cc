#include "sim/interrupt.hh"

#include <algorithm>

#include "base/logging.hh"

namespace bigfish::sim {

std::string
interruptKindName(InterruptKind kind)
{
    switch (kind) {
      case InterruptKind::TimerTick:
        return "timer_tick";
      case InterruptKind::NetworkRx:
        return "net_rx_irq";
      case InterruptKind::Graphics:
        return "graphics_irq";
      case InterruptKind::Disk:
        return "disk_irq";
      case InterruptKind::Usb:
        return "usb_irq";
      case InterruptKind::SoftirqNetRx:
        return "softirq:net_rx";
      case InterruptKind::SoftirqTimer:
        return "softirq:timer";
      case InterruptKind::IrqWork:
        return "irq_work";
      case InterruptKind::ReschedIpi:
        return "resched_ipi";
      case InterruptKind::TlbShootdown:
        return "tlb_shootdown";
      case InterruptKind::SpuriousNoise:
        return "spurious_noise";
      case InterruptKind::Preemption:
        return "preemption";
      case InterruptKind::UntraceableStall:
        return "untraceable_stall";
      case InterruptKind::NumKinds:
        break;
    }
    return "unknown";
}

bool
isMovable(InterruptKind kind)
{
    switch (kind) {
      case InterruptKind::NetworkRx:
      case InterruptKind::Graphics:
      case InterruptKind::Disk:
      case InterruptKind::Usb:
        return true;
      default:
        return false;
    }
}

bool
isInterrupt(InterruptKind kind)
{
    return kind != InterruptKind::Preemption &&
           kind != InterruptKind::UntraceableStall &&
           kind != InterruptKind::NumKinds;
}

bool
isTraceable(InterruptKind kind)
{
    return kind != InterruptKind::UntraceableStall &&
           kind != InterruptKind::NumKinds;
}

HandlerCostModel::HandlerCostModel()
{
    // Medians chosen so the *total* gap (median + 1.5us context switch)
    // reproduces the characteristic per-kind distributions of Figure 6:
    // every gap exceeds 1.5us; timer ticks cluster near 2-4us with a
    // second mode at ~5.5us when IRQ work piggybacks; network RX spreads
    // wider; rescheduling IPIs are the cheapest.
    auto set = [&](InterruptKind k, TimeNs median, double sigma) {
        table_[static_cast<int>(k)] = {median, sigma};
    };
    set(InterruptKind::TimerTick, 2100, 0.35);
    set(InterruptKind::NetworkRx, 3400, 0.50);
    set(InterruptKind::Graphics, 2900, 0.45);
    set(InterruptKind::Disk, 2600, 0.40);
    set(InterruptKind::Usb, 2000, 0.35);
    set(InterruptKind::SoftirqNetRx, 2500, 0.55);
    set(InterruptKind::SoftirqTimer, 1800, 0.40);
    set(InterruptKind::IrqWork, 4000, 0.20);
    set(InterruptKind::ReschedIpi, 1400, 0.30);
    set(InterruptKind::TlbShootdown, 2200, 0.35);
    set(InterruptKind::SpuriousNoise, 3000, 0.50);
    // Preemption "handler cost" is the stolen timeslice; the synthesizer
    // overrides its duration directly, so this entry is only a fallback.
    set(InterruptKind::Preemption, 1000 * 1000, 0.50);
    set(InterruptKind::UntraceableStall, 800, 0.60);
}

void
HandlerCostModel::setParams(InterruptKind kind, HandlerCostParams params)
{
    table_[static_cast<int>(kind)] = params;
}

HandlerCostParams
HandlerCostModel::params(InterruptKind kind) const
{
    return table_[static_cast<int>(kind)];
}

TimeNs
HandlerCostModel::sample(InterruptKind kind, Rng &rng, bool vmIsolated,
                         double workScale) const
{
    const HandlerCostParams &p = table_[static_cast<int>(kind)];
    double body = rng.lognormal(static_cast<double>(p.median), p.sigma);
    body *= std::max(workScale, 0.0);
    double total = body;
    if (kind != InterruptKind::UntraceableStall)
        total += static_cast<double>(contextSwitchNs);
    if (vmIsolated && isInterrupt(kind)) {
        // Host handles the interrupt, exits to the guest, and the guest
        // kernel processes its virtual interrupt: the stolen time grows.
        total = total * vmAmplification + static_cast<double>(vmExitNs);
    }
    return static_cast<TimeNs>(std::max(total, 1.0));
}

void
normalizeTimeline(std::vector<StolenInterval> &stolen)
{
    std::sort(stolen.begin(), stolen.end(),
              [](const StolenInterval &a, const StolenInterval &b) {
                  return a.arrival < b.arrival;
              });
    TimeNs busy_until = 0;
    for (auto &interval : stolen) {
        if (interval.arrival < busy_until)
            interval.arrival = busy_until;
        busy_until = interval.end();
    }
}

} // namespace bigfish::sim
