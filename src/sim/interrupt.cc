#include "sim/interrupt.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "sim/scratch.hh"

namespace bigfish::sim {

std::string
interruptKindName(InterruptKind kind)
{
    switch (kind) {
      case InterruptKind::TimerTick:
        return "timer_tick";
      case InterruptKind::NetworkRx:
        return "net_rx_irq";
      case InterruptKind::Graphics:
        return "graphics_irq";
      case InterruptKind::Disk:
        return "disk_irq";
      case InterruptKind::Usb:
        return "usb_irq";
      case InterruptKind::SoftirqNetRx:
        return "softirq:net_rx";
      case InterruptKind::SoftirqTimer:
        return "softirq:timer";
      case InterruptKind::IrqWork:
        return "irq_work";
      case InterruptKind::ReschedIpi:
        return "resched_ipi";
      case InterruptKind::TlbShootdown:
        return "tlb_shootdown";
      case InterruptKind::SpuriousNoise:
        return "spurious_noise";
      case InterruptKind::Preemption:
        return "preemption";
      case InterruptKind::UntraceableStall:
        return "untraceable_stall";
      case InterruptKind::NumKinds:
        break;
    }
    return "unknown";
}

bool
isMovable(InterruptKind kind)
{
    switch (kind) {
      case InterruptKind::NetworkRx:
      case InterruptKind::Graphics:
      case InterruptKind::Disk:
      case InterruptKind::Usb:
        return true;
      default:
        return false;
    }
}

bool
isInterrupt(InterruptKind kind)
{
    return kind != InterruptKind::Preemption &&
           kind != InterruptKind::UntraceableStall &&
           kind != InterruptKind::NumKinds;
}

bool
isTraceable(InterruptKind kind)
{
    return kind != InterruptKind::UntraceableStall &&
           kind != InterruptKind::NumKinds;
}

HandlerCostModel::HandlerCostModel()
{
    // Medians chosen so the *total* gap (median + 1.5us context switch)
    // reproduces the characteristic per-kind distributions of Figure 6:
    // every gap exceeds 1.5us; timer ticks cluster near 2-4us with a
    // second mode at ~5.5us when IRQ work piggybacks; network RX spreads
    // wider; rescheduling IPIs are the cheapest.
    auto set = [&](InterruptKind k, TimeNs median, double sigma) {
        setParams(k, {median, sigma});
    };
    set(InterruptKind::TimerTick, 2100, 0.35);
    set(InterruptKind::NetworkRx, 3400, 0.50);
    set(InterruptKind::Graphics, 2900, 0.45);
    set(InterruptKind::Disk, 2600, 0.40);
    set(InterruptKind::Usb, 2000, 0.35);
    set(InterruptKind::SoftirqNetRx, 2500, 0.55);
    set(InterruptKind::SoftirqTimer, 1800, 0.40);
    set(InterruptKind::IrqWork, 4000, 0.20);
    set(InterruptKind::ReschedIpi, 1400, 0.30);
    set(InterruptKind::TlbShootdown, 2200, 0.35);
    set(InterruptKind::SpuriousNoise, 3000, 0.50);
    // Preemption "handler cost" is the stolen timeslice; the synthesizer
    // overrides its duration directly, so this entry is only a fallback.
    set(InterruptKind::Preemption, 1000 * 1000, 0.50);
    set(InterruptKind::UntraceableStall, 800, 0.60);
}

void
HandlerCostModel::setParams(InterruptKind kind, HandlerCostParams params)
{
    table_[static_cast<int>(kind)] = params;
    logMedian_[static_cast<int>(kind)] =
        std::log(static_cast<double>(params.median));
}

HandlerCostParams
HandlerCostModel::params(InterruptKind kind) const
{
    return table_[static_cast<int>(kind)];
}

TimeNs
HandlerCostModel::sample(InterruptKind kind, Rng &rng, bool vmIsolated,
                         double workScale) const
{
    const HandlerCostParams &p = table_[static_cast<int>(kind)];
    double body =
        rng.lognormalFromLogMedian(logMedian_[static_cast<int>(kind)],
                                   p.sigma);
    body *= std::max(workScale, 0.0);
    double total = body;
    if (kind != InterruptKind::UntraceableStall)
        total += static_cast<double>(contextSwitchNs);
    if (vmIsolated && isInterrupt(kind)) {
        // Host handles the interrupt, exits to the guest, and the guest
        // kernel processes its virtual interrupt: the stolen time grows.
        total = total * vmAmplification + static_cast<double>(vmExitNs);
    }
    return static_cast<TimeNs>(std::max(total, 1.0));
}

namespace {

constexpr auto byArrival = [](const StolenInterval &a,
                              const StolenInterval &b) {
    return a.arrival < b.arrival;
};

/**
 * Sorts intervals by arrival with a bucket sort: arrivals are
 * near-uniform over the run (the synthesizer emits them clustered by
 * activity step), so scattering into ~size/16 arrival-range buckets and
 * insertion-sorting each bucket is O(n) where a comparison sort was a
 * quarter of trace-collection time at paper scale. Bucket assignment is
 * pure arithmetic on the arrival, so the result is deterministic and
 * independent of thread count.
 *
 * All three working buffers (scatter target, offsets, cursors) are
 * borrowed from the per-thread SimScratch arena: their capacity
 * survives across the (site, run) grid while every element read back
 * is written first, so results match the fresh-allocation code
 * byte-for-byte. The swap at the end donates the caller's old buffer
 * to the arena for the next cell.
 */
void
bucketSortByArrival(std::vector<StolenInterval> &stolen,
                    SimScratch &scratch, PerfCounters *perf)
{
    TimeNs lo = stolen[0].arrival;
    TimeNs hi = lo;
    for (const StolenInterval &s : stolen) {
        lo = std::min(lo, s.arrival);
        hi = std::max(hi, s.arrival);
    }
    const std::size_t buckets =
        std::max<std::size_t>(stolen.size() / 16, 1);
    const double scale = static_cast<double>(buckets) /
                         (static_cast<double>(hi - lo) + 1.0);
    const auto bucket_of = [&](const StolenInterval &s) {
        return std::min<std::size_t>(
            static_cast<std::size_t>(
                static_cast<double>(s.arrival - lo) * scale),
            buckets - 1);
    };
    std::vector<std::size_t> &offsets = scratch.offsets;
    offsets.assign(buckets + 1, 0);
    for (const StolenInterval &s : stolen)
        ++offsets[bucket_of(s) + 1];
    for (std::size_t b = 1; b <= buckets; ++b)
        offsets[b] += offsets[b - 1];
    std::vector<StolenInterval> &sorted = scratch.sorted;
    sorted.resize(stolen.size());
    {
        std::vector<std::size_t> &cursor = scratch.cursor;
        cursor.assign(offsets.begin(), offsets.end() - 1);
        for (const StolenInterval &s : stolen)
            sorted[cursor[bucket_of(s)]++] = s;
    }
    // Buckets average ~16 elements: insertion sort handles those
    // allocation-free, while softirq-storm clusters that land many
    // intervals in one bucket fall back to std::sort. The fallback's
    // tie permutation is part of the bit-identity baseline (see the
    // tie-policy note on normalizeTimeline) — do not replace it with a
    // stable sort without re-recording reference traces.
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t len = offsets[b + 1] - offsets[b];
        if (len < 2)
            continue;
        if (len > 48) {
            std::sort(sorted.begin() +
                          static_cast<std::ptrdiff_t>(offsets[b]),
                      sorted.begin() +
                          static_cast<std::ptrdiff_t>(offsets[b + 1]),
                      byArrival);
            continue;
        }
        for (std::size_t i = offsets[b] + 1; i < offsets[b + 1]; ++i) {
            StolenInterval v = sorted[i];
            std::size_t j = i;
            while (j > offsets[b] && v.arrival < sorted[j - 1].arrival) {
                sorted[j] = sorted[j - 1];
                --j;
            }
            sorted[j] = v;
        }
    }
    stolen.swap(sorted);
    if (perf) {
        perf->allocations += 3;
        perf->bytesSorted += static_cast<long long>(
            stolen.size() * sizeof(StolenInterval));
    }
}

/**
 * Merges an already-sorted prefix with a sorted tail in place, working
 * backward from the end. Output is element-for-element identical to
 * std::inplace_merge: on ties (equal arrivals) the prefix element
 * precedes the tail element, because a tail element only overtakes a
 * prefix element when the prefix arrival is *strictly* greater. Unlike
 * std::inplace_merge, which allocates a hidden temporary buffer on
 * every call, the tail copy lives in the arena.
 */
void
mergeSortedTail(std::vector<StolenInterval> &stolen,
                std::size_t sorted_prefix, SimScratch &scratch,
                PerfCounters *perf)
{
    std::vector<StolenInterval> &tailBuf = scratch.tailMerge;
    tailBuf.assign(stolen.begin() +
                       static_cast<std::ptrdiff_t>(sorted_prefix),
                   stolen.end());
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(sorted_prefix) - 1;
    std::ptrdiff_t j = static_cast<std::ptrdiff_t>(tailBuf.size()) - 1;
    std::ptrdiff_t k = static_cast<std::ptrdiff_t>(stolen.size()) - 1;
    while (j >= 0) {
        if (i >= 0 && stolen[static_cast<std::size_t>(i)].arrival >
                          tailBuf[static_cast<std::size_t>(j)].arrival) {
            stolen[static_cast<std::size_t>(k--)] =
                stolen[static_cast<std::size_t>(i--)];
        } else {
            stolen[static_cast<std::size_t>(k--)] =
                tailBuf[static_cast<std::size_t>(j--)];
        }
    }
    if (perf) {
        perf->allocations += 1;
        perf->bytesSorted += static_cast<long long>(
            stolen.size() * sizeof(StolenInterval));
    }
}

} // namespace

void
normalizeTimeline(std::vector<StolenInterval> &stolen, PerfCounters *perf)
{
    if (stolen.size() > 1) {
        // Re-normalization after appending a few intervals to an
        // already-normalized stream (browser stalls, injected faults) is
        // common: detect the sorted prefix and merge the short tail
        // instead of re-sorting everything.
        std::size_t sorted_prefix = 1;
        while (sorted_prefix < stolen.size() &&
               stolen[sorted_prefix].arrival >=
                   stolen[sorted_prefix - 1].arrival)
            ++sorted_prefix;
        const std::size_t tail = stolen.size() - sorted_prefix;
        if (tail == 0) {
            // Already sorted: only the clamp pass below is needed.
        } else if (tail <= 256) {
            SimScratch &scratch = SimScratch::local();
            const auto mid =
                stolen.begin() + static_cast<std::ptrdiff_t>(sorted_prefix);
            std::sort(mid, stolen.end(), byArrival);
            if (perf) {
                perf->bytesSorted += static_cast<long long>(
                    tail * sizeof(StolenInterval));
            }
            mergeSortedTail(stolen, sorted_prefix, scratch, perf);
        } else {
            bucketSortByArrival(stolen, SimScratch::local(), perf);
        }
    }
    TimeNs busy_until = 0;
    for (auto &interval : stolen) {
        if (interval.arrival < busy_until)
            interval.arrival = busy_until;
        busy_until = interval.end();
    }
}

void
normalizeTimeline(std::vector<StolenInterval> &stolen)
{
    normalizeTimeline(stolen, nullptr);
}

} // namespace bigfish::sim
