/**
 * @file
 * Lightweight simulator perf counters (DESIGN.md §13).
 *
 * Cold runs are dominated by trace collection — millions of synthesized
 * interrupt events per run — and before these counters existed the
 * per-stage table could only say *that* the Collect stage was slow,
 * never *why*. PerfCounters attributes the cycles: how many discrete
 * events the sim layer produced, how many of them were genuine
 * interrupts, how many logical buffer acquisitions the hot path made,
 * and how many bytes flowed through ordering operations (sorts and
 * merges). StageReports carry them into `--explain` and the
 * schemaVersion-3 artifact.
 *
 * Counter semantics are chosen to be *deterministic*: every field is a
 * pure function of the work content, never of the machine state, so
 * the counts are bit-identical across BF_THREADS and BF_SIMD settings
 * (asserted by tests/sim_perf_test.cc):
 *
 *  - eventsSimulated counts emitted stolen intervals, per-step activity
 *    updates and attacker measurement periods — not wall-clock samples.
 *  - allocations counts *logical* buffer acquisitions (a scratch arena
 *    acquire or a result-buffer materialization), not mallocs: the
 *    whole point of the arena is that repeated acquisitions stop being
 *    mallocs, while the logical count stays fixed.
 *  - bytesSorted counts each sort/merge once over the span it ordered.
 *  - Cells replayed from a checkpoint journal or stage cache report
 *    zero: counters measure work *performed*, exactly like cpuSeconds.
 */

#ifndef BF_SIM_PERF_HH
#define BF_SIM_PERF_HH

namespace bigfish::sim {

/** Deterministic counters of simulator hot-path work. */
struct PerfCounters
{
    /** Discrete events simulated: emitted stolen intervals + activity
     *  step updates + attacker measurement periods. */
    long long eventsSimulated = 0;
    /** Subset of emitted intervals that are genuine interrupts
     *  (isInterrupt(kind); excludes preemptions and SMI stalls). */
    long long interruptsSynthesized = 0;
    /** Logical buffer acquisitions on the hot path (arena acquires and
     *  result-buffer materializations), not physical mallocs. */
    long long allocations = 0;
    /** Bytes that flowed through an ordering operation, counted once
     *  per sort/merge over the span it ordered. */
    long long bytesSorted = 0;

    PerfCounters &
    operator+=(const PerfCounters &other)
    {
        eventsSimulated += other.eventsSimulated;
        interruptsSynthesized += other.interruptsSynthesized;
        allocations += other.allocations;
        bytesSorted += other.bytesSorted;
        return *this;
    }

    /** True when no work has been recorded (cache/journal replays). */
    bool
    empty() const
    {
        return eventsSimulated == 0 && interruptsSynthesized == 0 &&
               allocations == 0 && bytesSorted == 0;
    }
};

inline PerfCounters
operator+(PerfCounters a, const PerfCounters &b)
{
    a += b;
    return a;
}

} // namespace bigfish::sim

#endif // BF_SIM_PERF_HH
