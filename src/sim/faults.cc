#include "sim/faults.hh"

#include <algorithm>
#include <cmath>

#include "sim/interrupt.hh"

namespace bigfish::sim {

bool
FaultConfig::enabled() const
{
    return dropInterruptProb > 0.0 || duplicateInterruptProb > 0.0 ||
           timerSkewPpm != 0.0 || timerBackstepProb > 0.0 ||
           stallsPerSecond > 0.0 || truncateProb > 0.0;
}

bool
FaultConfig::ioEnabled() const
{
    return ioCrashAfterRecords > 0 || ioCorruptRecordProb > 0.0;
}

FaultPlan::FaultPlan(const FaultConfig &config, std::uint64_t trace_salt)
    : config_(config)
{
    const std::uint64_t base =
        mix64(config.seed ^ 0xfa0172a5b6c9d3e1ULL) ^ mix64(trace_salt);
    timelineSeed_ = mix64(base ^ 1);
    timerSeed_ = mix64(base ^ 2);
    truncateSeed_ = mix64(base ^ 3);
}

void
FaultPlan::applyToTimeline(RunTimeline &timeline) const
{
    const bool delivery = config_.dropInterruptProb > 0.0 ||
                          config_.duplicateInterruptProb > 0.0;
    const bool stalls = config_.stallsPerSecond > 0.0;
    if (!delivery && !stalls)
        return;

    Rng rng(timelineSeed_);
    std::vector<StolenInterval> faulted;
    faulted.reserve(timeline.stolen.size());
    for (const StolenInterval &s : timeline.stolen) {
        if (delivery && rng.bernoulli(config_.dropInterruptProb))
            continue; // Delivery lost.
        faulted.push_back(s);
        if (delivery && config_.duplicateInterruptProb > 0.0 &&
            rng.bernoulli(config_.duplicateInterruptProb)) {
            StolenInterval dup = s;
            dup.arrival =
                s.end() + static_cast<TimeNs>(rng.exponential(
                              static_cast<double>(config_.duplicateDelay)));
            if (dup.arrival < timeline.duration)
                faulted.push_back(dup);
        }
    }

    if (stalls) {
        const double duration_s = static_cast<double>(timeline.duration) /
                                  static_cast<double>(kSec);
        const int n = rng.poisson(config_.stallsPerSecond * duration_s);
        for (int i = 0; i < n; ++i) {
            StolenInterval stall;
            stall.arrival = static_cast<TimeNs>(
                rng.uniform() * static_cast<double>(timeline.duration));
            stall.kind = InterruptKind::UntraceableStall;
            stall.duration = static_cast<TimeNs>(
                rng.lognormal(static_cast<double>(config_.stallMedian),
                              config_.stallSigma));
            faulted.push_back(stall);
        }
    }

    normalizeTimeline(faulted);
    // Clamp anything serialization pushed past the end of the run, the
    // same way the synthesizer does for its own output.
    while (!faulted.empty() &&
           faulted.back().arrival >= timeline.duration)
        faulted.pop_back();
    if (!faulted.empty() && faulted.back().end() > timeline.duration)
        faulted.back().duration =
            timeline.duration - faulted.back().arrival;
    timeline.stolen = std::move(faulted);
}

std::unique_ptr<timers::TimerModel>
FaultPlan::wrapTimer(std::unique_ptr<timers::TimerModel> inner) const
{
    if (config_.timerSkewPpm == 0.0 && config_.timerBackstepProb <= 0.0)
        return inner;
    return std::make_unique<FaultyTimer>(std::move(inner), config_,
                                         timerSeed_);
}

std::size_t
FaultPlan::truncatedLength(std::size_t periods) const
{
    if (config_.truncateProb <= 0.0 || periods == 0)
        return periods;
    Rng rng(truncateSeed_);
    if (!rng.bernoulli(config_.truncateProb))
        return periods;
    const double keep = rng.uniform(config_.truncateKeepMin,
                                    config_.truncateKeepMax);
    return static_cast<std::size_t>(
        std::floor(static_cast<double>(periods) *
                   std::clamp(keep, 0.0, 1.0)));
}

FaultyTimer::FaultyTimer(std::unique_ptr<timers::TimerModel> inner,
                         const FaultConfig &config, std::uint64_t seed)
    : inner_(std::move(inner)), config_(config), seed_(seed)
{
}

void
FaultyTimer::reset(std::uint64_t seed)
{
    // Re-key both the inner timer and the backstep hash so a re-seeded
    // trace draws an independent fault pattern.
    inner_->reset(seed);
    seed_ = mix64(seed ^ 0xbac5e1eaULL);
}

TimeNs
FaultyTimer::observe(TimeNs real)
{
    // Rate skew: the attacker's timebase runs fast (positive ppm) or
    // slow. Applied to real time before the inner defense so a defended
    // timer still sees a monotone input.
    TimeNs skewed = real;
    if (config_.timerSkewPpm != 0.0) {
        skewed += static_cast<TimeNs>(std::llround(
            static_cast<double>(real) * config_.timerSkewPpm * 1e-6));
        skewed = std::max<TimeNs>(skewed, 0);
    }
    TimeNs observed = inner_->observe(skewed);

    // Backward steps: a keyed hash decides, per real-time quantum,
    // whether reads in that quantum are stepped back and by how much.
    // Pure in `real`, so identical replays observe identical faults.
    if (config_.timerBackstepProb > 0.0 &&
        config_.timerBackstepQuantum > 0) {
        const std::uint64_t bucket =
            static_cast<std::uint64_t>(real / config_.timerBackstepQuantum);
        const std::uint64_t h = mix64(seed_ ^ mix64(bucket));
        const double u =
            static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
        if (u < config_.timerBackstepProb) {
            const TimeNs step = static_cast<TimeNs>(
                mix64(h ^ 0x5b7e1ULL) %
                static_cast<std::uint64_t>(
                    std::max<TimeNs>(config_.timerBackstepMax, 1)));
            observed = std::max<TimeNs>(observed - step, 0);
        }
    }
    return observed;
}

} // namespace bigfish::sim
