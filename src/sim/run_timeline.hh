/**
 * @file
 * The fully materialized schedule of one trace-collection run.
 *
 * A RunTimeline is what the attacker's core actually experiences while a
 * victim loads a page: a sorted, non-overlapping sequence of stolen
 * intervals (interrupt handlers, preemptions, stalls) plus the
 * piecewise-constant machine state (frequency factor, LLC occupancy)
 * the attacker's instruction stream runs against. It is produced by the
 * InterruptSynthesizer and consumed by the ExecutionEngine, the kernel
 * tracer and the gap detector — all observers share this single ground
 * truth, which is what lets the attribution experiment of Section 5.2 be
 * a real join rather than an assumption.
 */

#ifndef BF_SIM_RUN_TIMELINE_HH
#define BF_SIM_RUN_TIMELINE_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "base/types.hh"
#include "sim/interrupt.hh"

namespace bigfish::sim {

/** The materialized schedule of one run on the attacker's core. */
struct RunTimeline
{
    /** Total run length. */
    TimeNs duration = 0;
    /** Step width of the piecewise-constant vectors below. */
    TimeNs activityInterval = 10 * kMsec;

    /** Sorted, non-overlapping intervals of stolen core time. */
    std::vector<StolenInterval> stolen;

    /**
     * Per-step multiplier on the attacker's iteration cost (DVFS plus
     * run-level throughput noise); 1.0 means nominal speed.
     */
    std::vector<double> iterCostFactor;

    /** Per-step victim LLC occupancy in [0, 1]. */
    std::vector<double> occupancy;

    // The step accessors are inline: the execution engine calls them on
    // every segment of every measurement period (tens of millions of
    // times per run), and out-of-line they cost a call plus a repeated
    // t / activityInterval division the caller could otherwise CSE.

    /** Step index for real time @p t, clamped to the last step. */
    std::size_t
    stepAt(TimeNs t) const
    {
        if (t < 0 || iterCostFactor.empty())
            return 0;
        const std::size_t index =
            static_cast<std::size_t>(t / activityInterval);
        return std::min(index, iterCostFactor.size() - 1);
    }

    /** Iteration-cost factor in effect at real time @p t. */
    double
    iterCostFactorAt(TimeNs t) const
    {
        if (iterCostFactor.empty())
            return 1.0;
        return iterCostFactor[stepAt(t)];
    }

    /** Victim LLC occupancy in effect at real time @p t. */
    double
    occupancyAt(TimeNs t) const
    {
        if (occupancy.empty())
            return 0.0;
        return occupancy[std::min(stepAt(t), occupancy.size() - 1)];
    }

    /** Real time at which the step containing @p t ends. */
    TimeNs
    stepEnd(TimeNs t) const
    {
        const TimeNs end =
            (static_cast<TimeNs>(stepAt(t)) + 1) * activityInterval;
        return std::min(end, duration);
    }

    /** Sum of stolen durations for which @p predicate holds. */
    template <typename Predicate>
    TimeNs
    totalStolen(Predicate predicate) const
    {
        TimeNs total = 0;
        for (const StolenInterval &s : stolen)
            if (predicate(s))
                total += s.duration;
        return total;
    }

    /** Sum of all stolen durations. */
    TimeNs totalStolenAll() const;
};

} // namespace bigfish::sim

#endif // BF_SIM_RUN_TIMELINE_HH
