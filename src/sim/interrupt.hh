/**
 * @file
 * Interrupt taxonomy and handler-cost models (Sections 2.2 and 5.3).
 *
 * The paper's central causal claim is about *which classes* of interrupt
 * leak victim activity, so the taxonomy is modeled explicitly:
 *
 *  - Device IRQs (network RX, graphics, disk, USB) are *movable*: the OS
 *    can route them away from the attacker's core (irqbalance).
 *  - Local timer ticks, softirqs, IRQ work, rescheduling IPIs and TLB
 *    shootdowns are *non-movable*: they execute on every core and Linux
 *    offers no interface to displace them. These carry the residual
 *    leakage that survives every isolation mechanism in Table 3.
 *
 * Each kind has a characteristic handler-cost distribution (Figure 6),
 * right-skewed and floored by the context-switch overhead that Meltdown
 * era mitigations impose on every kernel entry (~1.5 us in the paper).
 */

#ifndef BF_SIM_INTERRUPT_HH
#define BF_SIM_INTERRUPT_HH

#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "sim/perf.hh"

namespace bigfish::sim {

/** Every way the attacker's core can have time stolen from it. */
enum class InterruptKind
{
    TimerTick,        ///< Local APIC timer (non-movable).
    NetworkRx,        ///< NIC device IRQ (movable).
    Graphics,         ///< GPU device IRQ (movable).
    Disk,             ///< SATA/NVMe device IRQ (movable).
    Usb,              ///< USB device IRQ (movable).
    SoftirqNetRx,     ///< NET_RX softirq (non-movable, deferred work).
    SoftirqTimer,     ///< Timer softirq (non-movable).
    IrqWork,          ///< IRQ-work entries piggybacking on ticks.
    ReschedIpi,       ///< Rescheduling IPI (non-movable).
    TlbShootdown,     ///< TLB-shootdown IPI, broadcast (non-movable).
    SpuriousNoise,    ///< Interrupts injected by the noise countermeasure.
    Preemption,       ///< Scheduler timeslice given to another process.
    UntraceableStall, ///< SMI-like stall invisible to the kernel tracer.
    NumKinds,
};

/** Number of interrupt kinds, for arrays indexed by kind. */
constexpr int kNumInterruptKinds = static_cast<int>(InterruptKind::NumKinds);

/** Human-readable kind name ("softirq:net_rx", "resched_ipi", ...). */
std::string interruptKindName(InterruptKind kind);

/**
 * True for device IRQs, which irqbalance can bind to a remote core.
 * Everything else (ticks, softirqs, IPIs) is non-movable.
 */
bool isMovable(InterruptKind kind);

/** True for genuine interrupts (excludes preemption and SMI stalls). */
bool isInterrupt(InterruptKind kind);

/**
 * True when the kind is visible to the eBPF-analog kernel tracer. The
 * paper notes Linux restricts which entry points can be kprobe'd; we model
 * the untraceable residue with the UntraceableStall kind.
 */
bool isTraceable(InterruptKind kind);

/**
 * One interval of time stolen from the attacker's core.
 *
 * `duration` includes the kernel-entry context-switch overhead; `arrival`
 * is when user execution pauses.
 */
struct StolenInterval
{
    TimeNs arrival = 0;
    TimeNs duration = 0;
    InterruptKind kind = InterruptKind::TimerTick;

    /** Time at which user execution resumes. */
    TimeNs end() const { return arrival + duration; }
};

/** Parameters of one kind's right-skewed handler-cost distribution. */
struct HandlerCostParams
{
    TimeNs median = 2 * kUsec; ///< Median handler body cost.
    double sigma = 0.3;        ///< Lognormal shape (skew).
};

/**
 * Samples handler costs per interrupt kind.
 *
 * Costs are lognormal around a per-kind median (Figure 6 shows distinct,
 * characteristic distributions per kind) plus a fixed context-switch
 * overhead, optionally amplified when the victim runs inside a VM
 * (Section 5.1: VM entries/exits are far more expensive than process
 * context switches, which *increases* the attack's signal).
 */
class HandlerCostModel
{
  public:
    /** Builds the default cost table used throughout the evaluation. */
    HandlerCostModel();

    /** Overrides one kind's distribution. */
    void setParams(InterruptKind kind, HandlerCostParams params);

    /** Reads back one kind's distribution. */
    HandlerCostParams params(InterruptKind kind) const;

    /** Fixed kernel-entry overhead added to every handler (default 1.5us). */
    TimeNs contextSwitchNs = 1500;

    /** Multiplier applied under VM isolation (host + guest handling). */
    double vmAmplification = 2.0;

    /** Extra VM-exit / VM-entry cost per interrupt under VM isolation. */
    TimeNs vmExitNs = kUsec;

    /**
     * Samples the total stolen duration for one interrupt.
     *
     * @param kind Interrupt kind.
     * @param rng Randomness source.
     * @param vmIsolated Whether the attacker runs inside a VM.
     * @param workScale Extra multiplicative work factor (softirq backlog).
     */
    TimeNs sample(InterruptKind kind, Rng &rng, bool vmIsolated = false,
                  double workScale = 1.0) const;

  private:
    HandlerCostParams table_[kNumInterruptKinds];
    /** log(median) per kind, cached so sample() skips a std::log. */
    double logMedian_[kNumInterruptKinds];
};

/**
 * Sorts intervals by arrival and serializes overlaps: when an interrupt
 * arrives while another handler is still running it queues and executes
 * immediately afterwards, exactly as a single core would process it.
 *
 * Tie policy (audited, DESIGN.md §13): equal arrivals are *common* —
 * tick-piggybacked softirq/IRQ-work entries arrive at exactly the
 * tick's end — and the ordering comparator is a valid strict weak
 * ordering that treats them as equivalent. The short-tail merge path
 * is stable (prefix entries precede appended entries on ties, the
 * std::inplace_merge contract). The bucket-sort fallback's std::sort
 * leaves tie order to the standard library's (unstable, but
 * deterministic for a fixed libstdc++ and input) introsort; that
 * permutation is part of the repository's recorded bit-identity
 * baseline and is deliberately preserved — see the property tests in
 * tests/sim_test.cc (Normalize, TieHeavy*).
 *
 * @param perf When non-null, accumulates sort/merge work (bytesSorted,
 *             arena acquisitions) into the counters.
 */
void normalizeTimeline(std::vector<StolenInterval> &stolen,
                       PerfCounters *perf);

/** normalizeTimeline() without counter accounting. */
void normalizeTimeline(std::vector<StolenInterval> &stolen);

} // namespace bigfish::sim

#endif // BF_SIM_INTERRUPT_HH
