#include "timers/timer.hh"

#include <algorithm>

#include "base/logging.hh"

namespace bigfish::timers {

QuantizedTimer::QuantizedTimer(TimeNs resolution) : resolution_(resolution)
{
    fatalIf(resolution <= 0, "QuantizedTimer resolution must be positive");
}

JitteredTimer::JitteredTimer(TimeNs resolution, std::uint64_t seed)
    : resolution_(resolution), seed_(seed)
{
    fatalIf(resolution <= 0, "JitteredTimer resolution must be positive");
}

RandomizedTimer::RandomizedTimer(RandomizedTimerParams params,
                                 std::uint64_t seed)
    : params_(params), rng_(seed)
{
    fatalIf(params.resolution <= 0,
            "RandomizedTimer resolution must be positive");
    fatalIf(params.alphaLo > params.alphaHi || params.betaLo > params.betaHi,
            "RandomizedTimer alpha/beta bounds are inverted");
    fatalIf(params.threshold < params.resolution,
            "RandomizedTimer threshold must cover at least one quantum");
}

void
RandomizedTimer::reset(std::uint64_t seed)
{
    rng_ = Rng(seed);
    values_.clear();
}

void
RandomizedTimer::materialize(std::size_t index)
{
    const TimeNs a = params_.resolution;
    while (values_.size() <= index) {
        const std::size_t k = values_.size();
        const TimeNs real = static_cast<TimeNs>(k) * a;
        const TimeNs prev = values_.empty() ? 0 : values_.back();
        const TimeNs alpha =
            rng_.uniformInt(params_.alphaLo, params_.alphaHi);
        const TimeNs beta = rng_.uniformInt(params_.betaLo, params_.betaHi);
        TimeNs next = prev;
        const TimeNs lag = real - prev;
        if (lag < alpha * a) {
            // Within the tolerated lag: the observed clock stays put.
            next = prev;
        } else if (lag <= params_.threshold) {
            // Advance by a random increment.
            next = prev + beta * a;
        } else {
            // Catch up so the lag never exceeds the threshold.
            next = real - beta * a;
        }
        next = std::clamp(next, prev, real);
        values_.push_back(next);
    }
}

TimeNs
RandomizedTimer::observe(TimeNs real)
{
    if (real < 0)
        real = 0;
    const std::size_t index =
        static_cast<std::size_t>(real / params_.resolution);
    materialize(index);
    return values_[index];
}

TimerSpec
TimerSpec::precise()
{
    TimerSpec spec;
    spec.kind = TimerKind::Precise;
    spec.resolution = 1;
    return spec;
}

TimerSpec
TimerSpec::quantized(TimeNs resolution)
{
    TimerSpec spec;
    spec.kind = TimerKind::Quantized;
    spec.resolution = resolution;
    return spec;
}

TimerSpec
TimerSpec::jittered(TimeNs resolution)
{
    TimerSpec spec;
    spec.kind = TimerKind::Jittered;
    spec.resolution = resolution;
    return spec;
}

TimerSpec
TimerSpec::randomizedDefense(RandomizedTimerParams params)
{
    TimerSpec spec;
    spec.kind = TimerKind::Randomized;
    spec.resolution = params.resolution;
    spec.randomized = params;
    return spec;
}

std::unique_ptr<TimerModel>
TimerSpec::make(std::uint64_t seed) const
{
    switch (kind) {
      case TimerKind::Precise:
        return std::make_unique<PreciseTimer>();
      case TimerKind::Quantized:
        return std::make_unique<QuantizedTimer>(resolution);
      case TimerKind::Jittered:
        return std::make_unique<JitteredTimer>(resolution, seed);
      case TimerKind::Randomized:
        return std::make_unique<RandomizedTimer>(randomized, seed);
    }
    panic("unknown TimerKind");
}

std::string
TimerSpec::name() const
{
    switch (kind) {
      case TimerKind::Precise:
        return "precise";
      case TimerKind::Quantized:
        return "quantized";
      case TimerKind::Jittered:
        return "jittered";
      case TimerKind::Randomized:
        return "randomized";
    }
    return "unknown";
}

} // namespace bigfish::timers
