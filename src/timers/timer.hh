/**
 * @file
 * Timer models (Section 6.1 of the paper).
 *
 * Everything the attacker learns flows through a timer read, so browser
 * timer defenses are modeled as functions from *real* simulated time to
 * *observed* time:
 *
 *  - PreciseTimer    — a native clock (the Python/Rust attackers).
 *  - QuantizedTimer  — floor(T/A)*A       (Tor Browser, A = 100 ms).
 *  - JitteredTimer   — floor(T/A)*A + e, e in {0, A} from a hash
 *                      (Chrome, A = 0.1 ms; Firefox/Safari, A = 1 ms).
 *  - RandomizedTimer — the paper's proposed defense: the observed clock
 *                      advances by random increments (beta * A) at random
 *                      intervals (alpha * A), bounded by a catch-up
 *                      threshold so it never lags real time by more than
 *                      `threshold`.
 *
 * All models are monotone non-decreasing, deterministic functions of real
 * time once their per-trace random state is fixed. Determinism matters:
 * the attacker stepping engine binary-searches observe() to find the
 * iteration on which a measurement period ends.
 */

#ifndef BF_TIMERS_TIMER_HH
#define BF_TIMERS_TIMER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace bigfish::timers {

/**
 * Abstract mapping from real simulated time to attacker-observed time.
 */
class TimerModel
{
  public:
    virtual ~TimerModel() = default;

    /**
     * Observed time at real time @p real. Must be monotone non-decreasing
     * in @p real and deterministic between reset() calls.
     */
    virtual TimeNs observe(TimeNs real) = 0;

    /** Clears per-trace state and reseeds the internal randomness. */
    virtual void reset(std::uint64_t seed) = 0;

    /** Granularity hint (the A of the defense), 1 for a precise timer. */
    virtual TimeNs resolution() const = 0;

    /** Human-readable name for reports. */
    virtual std::string name() const = 0;
};

// The concrete timers are `final` with inline observe() bodies: the
// execution engine's period loop makes tens of millions of observe()
// calls per run, and when the engine's templated fast path holds a
// concrete reference the compiler can then devirtualize and inline the
// read instead of an indirect call per probe (the generic TimerModel&
// path still works and returns identical values).

/** A perfect clock: observe(T) == T. */
class PreciseTimer final : public TimerModel
{
  public:
    TimeNs observe(TimeNs real) override { return real; }
    void reset(std::uint64_t) override {}
    TimeNs resolution() const override { return 1; }
    std::string name() const override { return "precise"; }
};

/** Tor-style quantization: floor(T/A)*A. */
class QuantizedTimer final : public TimerModel
{
  public:
    /** @param resolution The quantum A in nanoseconds. */
    explicit QuantizedTimer(TimeNs resolution);

    TimeNs
    observe(TimeNs real) override
    {
        return (real / resolution_) * resolution_;
    }
    void reset(std::uint64_t) override {}
    TimeNs resolution() const override { return resolution_; }
    std::string name() const override { return "quantized"; }

  private:
    TimeNs resolution_;
};

/**
 * Chrome-style clamp-and-jitter: floor(T/A)*A + e with e in {0, A} chosen
 * by a keyed hash of the quantum index, so the output stays monotone and
 * deterministic yet unpredictable to the attacker.
 */
class JitteredTimer final : public TimerModel
{
  public:
    /**
     * @param resolution The quantum A in nanoseconds.
     * @param seed Key for the per-quantum jitter hash.
     */
    JitteredTimer(TimeNs resolution, std::uint64_t seed);

    TimeNs
    observe(TimeNs real) override
    {
        const TimeNs quantum = real / resolution_;
        // e in {0, A}: the paper notes e is computed with a hash rather
        // than drawn at read time so the timer remains monotone and
        // consistent.
        const bool jitter_up =
            (mix64(static_cast<std::uint64_t>(quantum) ^ seed_) & 1) != 0;
        return quantum * resolution_ + (jitter_up ? resolution_ : 0);
    }
    void reset(std::uint64_t seed) override { seed_ = seed; }
    TimeNs resolution() const override { return resolution_; }
    std::string name() const override { return "jittered"; }

  private:
    TimeNs resolution_;
    std::uint64_t seed_;
};

/** Parameters of the randomized-timer defense (Section 6.1). */
struct RandomizedTimerParams
{
    TimeNs resolution = kMsec;      ///< Update quantum A (Table 4: 1 ms).
    int alphaLo = 5;                ///< Lower bound of the alpha draw.
    int alphaHi = 55;               ///< Upper bound of the alpha draw.
    int betaLo = 5;                 ///< Lower bound of the beta draw.
    int betaHi = 55;                ///< Upper bound of the beta draw.
    TimeNs threshold = 100 * kMsec; ///< Maximum lag behind real time.
};

/**
 * The paper's randomized timer. Every quantum A the defense draws two
 * integers alpha and beta. If the observed clock lags real time by less
 * than alpha*A it stays put; if it lags by more it advances by beta*A;
 * and if the lag would exceed `threshold` it catches up to
 * real - beta*A. The result increases monotonically but in increments
 * whose timing and size the attacker cannot invert, destroying the
 * ability to delimit fixed-length measurement periods (Figure 8c).
 */
class RandomizedTimer final : public TimerModel
{
  public:
    RandomizedTimer(RandomizedTimerParams params, std::uint64_t seed);

    TimeNs observe(TimeNs real) override;
    void reset(std::uint64_t seed) override;
    TimeNs resolution() const override { return params_.resolution; }
    std::string name() const override { return "randomized"; }

  private:
    /** Materializes per-quantum values up to and including index. */
    void materialize(std::size_t index);

    RandomizedTimerParams params_;
    Rng rng_;
    std::vector<TimeNs> values_;
};

/** Which TimerModel a TimerSpec should build. */
enum class TimerKind
{
    Precise,
    Quantized,
    Jittered,
    Randomized,
};

/**
 * A value-type description of a timer, so experiment configs can be
 * copied around and instantiated per trace with fresh seeds.
 */
struct TimerSpec
{
    TimerKind kind = TimerKind::Precise;
    TimeNs resolution = 1;
    RandomizedTimerParams randomized = {};

    /** A native high-resolution clock. */
    static TimerSpec precise();
    /** Tor-style quantization with quantum A. */
    static TimerSpec quantized(TimeNs resolution);
    /** Chrome-style jitter with quantum A. */
    static TimerSpec jittered(TimeNs resolution);
    /** The randomized-timer defense. */
    static TimerSpec randomizedDefense(RandomizedTimerParams params = {});

    /** Instantiates the described timer. */
    std::unique_ptr<TimerModel> make(std::uint64_t seed) const;

    /** Name of the timer this spec builds. */
    std::string name() const;
};

} // namespace bigfish::timers

#endif // BF_TIMERS_TIMER_HH
