#include "stats/histogram.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/logging.hh"

namespace bigfish::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0)
{
    panicIf(hi <= lo, "Histogram range must be non-empty");
    panicIf(bins == 0, "Histogram needs at least one bin");
}

void
Histogram::add(double value)
{
    samples_.push_back(value);
    double idx_f = (value - lo_) / width_;
    std::size_t idx;
    if (idx_f < 0.0)
        idx = 0;
    else if (idx_f >= static_cast<double>(bins_.size()))
        idx = bins_.size() - 1;
    else
        idx = static_cast<std::size_t>(idx_f);
    ++bins_[idx];
    ++count_;
}

void
Histogram::addAll(const std::vector<double> &values)
{
    for (double v : values)
        add(v);
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::binFraction(std::size_t i) const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(bins_[i]) / static_cast<double>(count_);
}

std::size_t
Histogram::modeBin() const
{
    return static_cast<std::size_t>(
        std::max_element(bins_.begin(), bins_.end()) - bins_.begin());
}

double
Histogram::fractionAtLeast(double threshold) const
{
    if (count_ == 0)
        return 0.0;
    std::size_t n = 0;
    for (double v : samples_)
        if (v >= threshold)
            ++n;
    return static_cast<double>(n) / static_cast<double>(count_);
}

std::string
Histogram::render(const std::string &unit, std::size_t maxWidth) const
{
    std::size_t max_count = 1;
    for (std::size_t b : bins_)
        max_count = std::max(max_count, b);

    std::ostringstream out;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        char label[64];
        std::snprintf(label, sizeof(label), "%8.2f%s", binCenter(i),
                      unit.c_str());
        const std::size_t bar =
            bins_[i] * maxWidth / max_count;
        out << label << " | " << std::string(bar, '#');
        char frac[32];
        std::snprintf(frac, sizeof(frac), " %.3f", binFraction(i));
        out << frac << "\n";
    }
    return out.str();
}

} // namespace bigfish::stats
