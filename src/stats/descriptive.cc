#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>

namespace bigfish::stats {

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
variance(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    const double m = mean(values);
    double sum = 0.0;
    for (double v : values)
        sum += (v - m) * (v - m);
    return sum / static_cast<double>(values.size());
}

double
sampleVariance(const std::vector<double> &values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double sum = 0.0;
    for (double v : values)
        sum += (v - m) * (v - m);
    return sum / static_cast<double>(values.size() - 1);
}

double
stddev(const std::vector<double> &values)
{
    return std::sqrt(variance(values));
}

double
sampleStddev(const std::vector<double> &values)
{
    return std::sqrt(sampleVariance(values));
}

double
minValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

double
quantile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    p = std::clamp(p, 0.0, 1.0);
    const double idx = p * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.size() < 2)
        return 0.0;
    const double ma = mean(a);
    const double mb = mean(b);
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    if (va <= 0.0 || vb <= 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

std::vector<double>
normalizeByMax(const std::vector<double> &values)
{
    const double mx = maxValue(values);
    if (mx <= 0.0)
        return values;
    std::vector<double> out(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = values[i] / mx;
    return out;
}

std::vector<double>
zscore(const std::vector<double> &values)
{
    const double m = mean(values);
    const double s = stddev(values);
    std::vector<double> out(values.size(), 0.0);
    if (s <= 0.0)
        return out;
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = (values[i] - m) / s;
    return out;
}

std::vector<double>
downsampleMin(const std::vector<double> &values, std::size_t targetLen)
{
    if (targetLen == 0)
        return {};
    if (values.empty())
        return std::vector<double>(targetLen, 0.0);
    if (values.size() <= targetLen)
        return downsample(values, targetLen);
    std::vector<double> out(targetLen, 0.0);
    const double step =
        static_cast<double>(values.size()) / static_cast<double>(targetLen);
    for (std::size_t i = 0; i < targetLen; ++i) {
        const std::size_t lo = static_cast<std::size_t>(static_cast<double>(i) * step);
        std::size_t hi = static_cast<std::size_t>(static_cast<double>(i + 1) * step);
        hi = std::max(hi, lo + 1);
        hi = std::min(hi, values.size());
        double m = values[lo];
        for (std::size_t j = lo + 1; j < hi; ++j)
            m = std::min(m, values[j]);
        out[i] = m;
    }
    return out;
}

std::vector<double>
winsorize(const std::vector<double> &values, double pLo, double pHi)
{
    if (values.size() < 3)
        return values;
    const double lo = quantile(values, pLo);
    const double hi = quantile(values, pHi);
    std::vector<double> out(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = std::clamp(values[i], lo, hi);
    return out;
}

std::vector<double>
elementwiseMean(const std::vector<std::vector<double>> &series)
{
    if (series.empty())
        return {};
    std::size_t len = series.front().size();
    for (const auto &s : series)
        len = std::min(len, s.size());
    std::vector<double> out(len, 0.0);
    for (const auto &s : series)
        for (std::size_t i = 0; i < len; ++i)
            out[i] += s[i];
    for (double &v : out)
        v /= static_cast<double>(series.size());
    return out;
}

std::vector<double>
downsample(const std::vector<double> &values, std::size_t targetLen)
{
    if (targetLen == 0)
        return {};
    std::vector<double> out(targetLen, 0.0);
    if (values.empty())
        return out;
    if (values.size() == targetLen)
        return values;
    if (values.size() < targetLen) {
        // Upsample by linear interpolation: coarse-timer traces (e.g.
        // 150 bins under a 100 ms quantized timer) must not be padded
        // with zeros, which would swamp the per-trace normalization.
        if (values.size() == 1) {
            std::fill(out.begin(), out.end(), values[0]);
            return out;
        }
        const double step = static_cast<double>(values.size() - 1) /
                            static_cast<double>(targetLen - 1);
        for (std::size_t i = 0; i < targetLen; ++i) {
            const double pos = static_cast<double>(i) * step;
            const std::size_t lo = static_cast<std::size_t>(pos);
            const std::size_t hi = std::min(lo + 1, values.size() - 1);
            const double frac = pos - static_cast<double>(lo);
            out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
        }
        return out;
    }
    // Average contiguous buckets so no samples are dropped.
    const double step =
        static_cast<double>(values.size()) / static_cast<double>(targetLen);
    for (std::size_t i = 0; i < targetLen; ++i) {
        const std::size_t lo = static_cast<std::size_t>(static_cast<double>(i) * step);
        std::size_t hi = static_cast<std::size_t>(static_cast<double>(i + 1) * step);
        hi = std::max(hi, lo + 1);
        hi = std::min(hi, values.size());
        double sum = 0.0;
        for (std::size_t j = lo; j < hi; ++j)
            sum += values[j];
        out[i] = sum / static_cast<double>(hi - lo);
    }
    return out;
}

} // namespace bigfish::stats
