/**
 * @file
 * Confusion matrix and accuracy metrics for the fingerprinting classifiers:
 * top-1 / top-k accuracy (Tables 1, 3, 4) and the open-world
 * sensitive / non-sensitive / combined split (Table 1, right half).
 */

#ifndef BF_STATS_CONFUSION_HH
#define BF_STATS_CONFUSION_HH

#include <cstddef>
#include <string>
#include <vector>

#include "base/types.hh"

namespace bigfish::stats {

/** Square confusion matrix over a fixed number of classes. */
class ConfusionMatrix
{
  public:
    /** Creates an empty numClasses x numClasses matrix. */
    explicit ConfusionMatrix(int numClasses);

    /** Records one prediction. */
    void add(Label truth, Label predicted);

    /** Count of (truth, predicted) cells. */
    std::size_t at(Label truth, Label predicted) const;

    /** Overall top-1 accuracy. */
    double accuracy() const;

    /** Recall (per-class accuracy) for one class; 0 if never seen. */
    double recall(Label truth) const;

    /** Number of classes. */
    int numClasses() const { return numClasses_; }

    /** Total number of recorded predictions. */
    std::size_t total() const { return total_; }

  private:
    int numClasses_;
    std::vector<std::size_t> cells_;
    std::size_t total_ = 0;
    std::size_t correct_ = 0;
};

/**
 * Top-k accuracy from per-sample class scores.
 *
 * @param scores One score vector per sample (higher = more likely).
 * @param truths Ground-truth label per sample.
 * @param k How many top predictions count as a hit.
 */
double topKAccuracy(const std::vector<std::vector<double>> &scores,
                    const std::vector<Label> &truths, int k);

/** Metrics of one open-world evaluation (Table 1, right half). */
struct OpenWorldMetrics
{
    /** Accuracy on sensitive sites: correct exact-site prediction. */
    double sensitiveAccuracy = 0.0;
    /** Accuracy on non-sensitive sites: predicted the non-sensitive class. */
    double nonSensitiveAccuracy = 0.0;
    /** Accuracy over the combined test set. */
    double combinedAccuracy = 0.0;
};

/**
 * Computes open-world metrics given that label @p nonSensitiveLabel
 * denotes the catch-all "non-sensitive" class.
 */
OpenWorldMetrics openWorldMetrics(const std::vector<Label> &truths,
                                  const std::vector<Label> &predictions,
                                  Label nonSensitiveLabel);

/**
 * Renders a classification report: one row per class with support,
 * recall and the most frequent confusion, plus the overall accuracy.
 *
 * @param matrix Filled confusion matrix.
 * @param classNames Optional class names (index = label); numeric
 *                   labels are printed when empty or too short.
 */
std::string renderClassificationReport(
    const ConfusionMatrix &matrix,
    const std::vector<std::string> &classNames = {});

} // namespace bigfish::stats

#endif // BF_STATS_CONFUSION_HH
