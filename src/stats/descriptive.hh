/**
 * @file
 * Descriptive statistics used throughout the evaluation: means, standard
 * deviations, Pearson correlation (Figure 4) and normalization helpers.
 */

#ifndef BF_STATS_DESCRIPTIVE_HH
#define BF_STATS_DESCRIPTIVE_HH

#include <cstddef>
#include <vector>

namespace bigfish::stats {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &values);

/** Population variance; 0 for fewer than one element. */
double variance(const std::vector<double> &values);

/** Sample (n-1) variance; 0 for fewer than two elements. */
double sampleVariance(const std::vector<double> &values);

/** Population standard deviation. */
double stddev(const std::vector<double> &values);

/** Sample standard deviation. */
double sampleStddev(const std::vector<double> &values);

/** Smallest element; 0 for an empty input. */
double minValue(const std::vector<double> &values);

/** Largest element; 0 for an empty input. */
double maxValue(const std::vector<double> &values);

/** The p-quantile (0 <= p <= 1) by linear interpolation. */
double quantile(std::vector<double> values, double p);

/**
 * Pearson correlation coefficient between two equal-length series.
 *
 * Used to reproduce Figure 4's r values between averaged loop-counting and
 * sweep-counting traces. Returns 0 when either series is constant.
 */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/** Divides every element by the series maximum (no-op if max <= 0). */
std::vector<double> normalizeByMax(const std::vector<double> &values);

/**
 * Standardizes a series to zero mean and unit variance (z-score).
 * Constant series map to all-zeros. Classifier inputs are standardized
 * per trace: raw counter values sit in a narrow band near the maximum
 * (e.g. 26,000-28,000), and centering them is what lets gradient-based
 * training converge.
 */
std::vector<double> zscore(const std::vector<double> &values);

/**
 * Clips a series to its [pLo, pHi] quantile range (winsorization).
 * Applied before standardization so single outlier bins (e.g. one
 * period eaten by a scheduler preemption) cannot compress the dynamic
 * range of the whole trace.
 */
std::vector<double> winsorize(const std::vector<double> &values,
                              double pLo = 0.01, double pHi = 0.99);

/** Element-wise mean of equal-length series (the "average trace"). */
std::vector<double>
elementwiseMean(const std::vector<std::vector<double>> &series);

/**
 * Downsamples a series to targetLen buckets by averaging each bucket.
 * Series shorter than targetLen are zero-padded instead.
 */
std::vector<double>
downsample(const std::vector<double> &values, std::size_t targetLen);

/**
 * Per-bucket minimum companion to downsample(): the deepest sample in
 * each bucket. For inputs shorter than targetLen this interpolates the
 * same way downsample() does (each stretched sample is its own
 * minimum). Together with the bucket mean this exposes sub-bucket dip
 * depth — the fine-timescale interrupt texture — without feeding the
 * classifier full-length traces.
 */
std::vector<double>
downsampleMin(const std::vector<double> &values, std::size_t targetLen);

} // namespace bigfish::stats

#endif // BF_STATS_DESCRIPTIVE_HH
