/**
 * @file
 * Fixed-width histogram with ASCII rendering, used for the gap-length
 * distributions of Figure 6 and the loop-duration distributions of
 * Figure 8.
 */

#ifndef BF_STATS_HISTOGRAM_HH
#define BF_STATS_HISTOGRAM_HH

#include <cstddef>
#include <string>
#include <vector>

namespace bigfish::stats {

/** A histogram over [lo, hi) with uniform-width bins. */
class Histogram
{
  public:
    /**
     * @param lo Lower bound of the first bin.
     * @param hi Upper bound of the last bin; must exceed lo.
     * @param bins Number of bins; must be positive.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Adds one sample; out-of-range samples are clamped to edge bins. */
    void add(double value);

    /** Adds every sample in the vector. */
    void addAll(const std::vector<double> &values);

    /** Number of samples recorded. */
    std::size_t count() const { return count_; }

    /** Raw bin counts. */
    const std::vector<std::size_t> &bins() const { return bins_; }

    /** Center of bin i. */
    double binCenter(std::size_t i) const;

    /** Fraction of samples in bin i (0 when empty). */
    double binFraction(std::size_t i) const;

    /** Index of the fullest bin (the distribution's mode). */
    std::size_t modeBin() const;

    /** Fraction of samples with value >= threshold. */
    double fractionAtLeast(double threshold) const;

    /**
     * Renders the histogram as rows of "center | ###### frac", with bars
     * scaled to maxWidth characters. @p unit is appended to bin labels.
     */
    std::string render(const std::string &unit = "",
                       std::size_t maxWidth = 50) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> bins_;
    std::vector<double> samples_;
    std::size_t count_ = 0;
};

} // namespace bigfish::stats

#endif // BF_STATS_HISTOGRAM_HH
