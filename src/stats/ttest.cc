#include "stats/ttest.hh"

#include <cmath>
#include <limits>

#include "base/rng.hh"
#include "stats/descriptive.hh"

namespace bigfish::stats {

namespace {

/** Continued fraction for the incomplete beta function. */
double
betaContinuedFraction(double a, double b, double x)
{
    constexpr int max_iters = 300;
    constexpr double eps = 3.0e-12;
    constexpr double fpmin = 1.0e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iters; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return h;
}

} // namespace

double
regularizedIncompleteBeta(double a, double b, double x)
{
    if (x <= 0.0)
        return 0.0;
    if (x >= 1.0)
        return 1.0;
    const double ln_beta = lgammaLocal(a + b) - lgammaLocal(a) -
                           lgammaLocal(b) + a * std::log(x) +
                           b * std::log(1.0 - x);
    const double front = std::exp(ln_beta);
    // Use the symmetry relation to keep the continued fraction convergent.
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinuedFraction(a, b, x) / a;
    return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

double
studentTCdf(double t, double df)
{
    if (df <= 0.0)
        return 0.5;
    const double x = df / (df + t * t);
    const double p = 0.5 * regularizedIncompleteBeta(df / 2.0, 0.5, x);
    return t >= 0.0 ? 1.0 - p : p;
}

TTestResult
welchTTest(const std::vector<double> &a, const std::vector<double> &b)
{
    return welchTTestSummary(mean(a), sampleStddev(a),
                             static_cast<int>(a.size()), mean(b),
                             sampleStddev(b), static_cast<int>(b.size()));
}

TTestResult
welchTTestSummary(double mean_a, double std_a, int n_a, double mean_b,
                  double std_b, int n_b)
{
    TTestResult result;
    if (n_a < 2 || n_b < 2)
        return result;
    const double va = std_a * std_a / n_a;
    const double vb = std_b * std_b / n_b;
    const double denom = std::sqrt(va + vb);
    if (denom <= 0.0) {
        result.t = mean_a == mean_b
                       ? 0.0
                       : std::numeric_limits<double>::infinity();
        result.pTwoSided = mean_a == mean_b ? 1.0 : 0.0;
        return result;
    }
    result.t = (mean_a - mean_b) / denom;
    const double df_num = (va + vb) * (va + vb);
    const double df_den =
        va * va / (n_a - 1) + vb * vb / (n_b - 1);
    result.df = df_den > 0.0 ? df_num / df_den : 1.0;
    const double tail = 1.0 - studentTCdf(std::fabs(result.t), result.df);
    result.pTwoSided = std::min(1.0, 2.0 * tail);
    return result;
}

} // namespace bigfish::stats
