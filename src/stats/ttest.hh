/**
 * @file
 * Welch's two-sample t-test.
 *
 * The paper uses a standard two-sample t-test to show that the
 * loop-counting attack's accuracy improvements over the cache-occupancy
 * attack are statistically significant (p < 0.0001 in all configurations
 * except Tor top-1, p < 0.05). We implement Welch's unequal-variance
 * variant together with a Student-t CDF evaluated through the regularized
 * incomplete beta function, so significance can be computed without any
 * external statistics dependency.
 */

#ifndef BF_STATS_TTEST_HH
#define BF_STATS_TTEST_HH

#include <vector>

namespace bigfish::stats {

/** Result of a two-sample Welch t-test. */
struct TTestResult
{
    double t = 0.0;       ///< The t statistic.
    double df = 0.0;      ///< Welch-Satterthwaite degrees of freedom.
    double pTwoSided = 1; ///< Two-sided p-value.
};

/**
 * Regularized incomplete beta function I_x(a, b), evaluated with the
 * continued-fraction expansion (Numerical-Recipes style).
 */
double regularizedIncompleteBeta(double a, double b, double x);

/** CDF of Student's t distribution with df degrees of freedom. */
double studentTCdf(double t, double df);

/**
 * Welch's t-test between two samples.
 *
 * @param a First sample (e.g. per-fold accuracies of attack A).
 * @param b Second sample.
 * @return t statistic, degrees of freedom and two-sided p-value.
 */
TTestResult welchTTest(const std::vector<double> &a,
                       const std::vector<double> &b);

/**
 * Welch's t-test from summary statistics (mean, sample std, n), for
 * comparing against results reported only as mean +/- std in the paper.
 */
TTestResult welchTTestSummary(double mean_a, double std_a, int n_a,
                              double mean_b, double std_b, int n_b);

} // namespace bigfish::stats

#endif // BF_STATS_TTEST_HH
