#include "stats/confusion.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "base/table.hh"

namespace bigfish::stats {

ConfusionMatrix::ConfusionMatrix(int numClasses)
    : numClasses_(numClasses),
      cells_(static_cast<std::size_t>(numClasses) * numClasses, 0)
{
    panicIf(numClasses <= 0, "ConfusionMatrix needs a positive class count");
}

void
ConfusionMatrix::add(Label truth, Label predicted)
{
    panicIf(truth < 0 || truth >= numClasses_ || predicted < 0 ||
                predicted >= numClasses_,
            "ConfusionMatrix label out of range");
    ++cells_[static_cast<std::size_t>(truth) * numClasses_ + predicted];
    ++total_;
    if (truth == predicted)
        ++correct_;
}

std::size_t
ConfusionMatrix::at(Label truth, Label predicted) const
{
    return cells_[static_cast<std::size_t>(truth) * numClasses_ + predicted];
}

double
ConfusionMatrix::accuracy() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(correct_) / static_cast<double>(total_);
}

double
ConfusionMatrix::recall(Label truth) const
{
    std::size_t row_total = 0;
    for (int p = 0; p < numClasses_; ++p)
        row_total += at(truth, p);
    if (row_total == 0)
        return 0.0;
    return static_cast<double>(at(truth, truth)) /
           static_cast<double>(row_total);
}

double
topKAccuracy(const std::vector<std::vector<double>> &scores,
             const std::vector<Label> &truths, int k)
{
    panicIf(scores.size() != truths.size(),
            "topKAccuracy: scores/truths size mismatch");
    if (scores.empty() || k <= 0)
        return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        const auto &row = scores[i];
        const Label truth = truths[i];
        if (truth < 0 || truth >= static_cast<Label>(row.size()))
            continue;
        // Count classes scoring strictly above the truth; a hit when fewer
        // than k do.
        const double truth_score = row[truth];
        int above = 0;
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c] > truth_score)
                ++above;
        if (above < k)
            ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(scores.size());
}

OpenWorldMetrics
openWorldMetrics(const std::vector<Label> &truths,
                 const std::vector<Label> &predictions,
                 Label nonSensitiveLabel)
{
    panicIf(truths.size() != predictions.size(),
            "openWorldMetrics: size mismatch");
    std::size_t sens_total = 0, sens_hit = 0;
    std::size_t non_total = 0, non_hit = 0;
    for (std::size_t i = 0; i < truths.size(); ++i) {
        if (truths[i] == nonSensitiveLabel) {
            ++non_total;
            if (predictions[i] == nonSensitiveLabel)
                ++non_hit;
        } else {
            ++sens_total;
            if (predictions[i] == truths[i])
                ++sens_hit;
        }
    }
    OpenWorldMetrics m;
    if (sens_total > 0)
        m.sensitiveAccuracy =
            static_cast<double>(sens_hit) / static_cast<double>(sens_total);
    if (non_total > 0)
        m.nonSensitiveAccuracy =
            static_cast<double>(non_hit) / static_cast<double>(non_total);
    if (!truths.empty())
        m.combinedAccuracy = static_cast<double>(sens_hit + non_hit) /
                             static_cast<double>(truths.size());
    return m;
}

std::string
renderClassificationReport(const ConfusionMatrix &matrix,
                           const std::vector<std::string> &classNames)
{
    auto name_of = [&](Label label) {
        if (label >= 0 &&
            label < static_cast<Label>(classNames.size()))
            return classNames[static_cast<std::size_t>(label)];
        return std::string("class ") + std::to_string(label);
    };

    Table table({"class", "support", "recall", "top confusion"});
    for (Label truth = 0; truth < matrix.numClasses(); ++truth) {
        std::size_t support = 0;
        Label worst = -1;
        std::size_t worst_count = 0;
        for (Label pred = 0; pred < matrix.numClasses(); ++pred) {
            const std::size_t n = matrix.at(truth, pred);
            support += n;
            if (pred != truth && n > worst_count) {
                worst_count = n;
                worst = pred;
            }
        }
        if (support == 0)
            continue;
        table.addRow({name_of(truth), std::to_string(support),
                      formatPercent(matrix.recall(truth)),
                      worst < 0 ? std::string("-")
                                : name_of(worst) + " (" +
                                      std::to_string(worst_count) + ")"});
    }
    std::ostringstream out;
    out << table.render();
    out << "overall accuracy: " << formatPercent(matrix.accuracy()) << " ("
        << matrix.total() << " samples)\n";
    return out.str();
}

} // namespace bigfish::stats
